//! Workspace-level facade for the String Figure (HPCA 2019) reproduction.
//!
//! The real code lives in the `crates/` workspace members; this root package
//! exists to host the cross-crate integration tests in `tests/` and the
//! runnable examples in `examples/`. It re-exports the user-facing crate so
//! `cargo doc` from the root lands somewhere useful.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub use stringfigure;
