#!/usr/bin/env bash
# CI gate for the String Figure reproduction workspace.
#
#   ./ci.sh          # fmt + clippy + build + tests
#   ./ci.sh --quick  # skip the release build (fastest signal)
#
# Every step must pass; the script stops at the first failure.

set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

if [[ "${1:-}" != "--quick" ]]; then
    echo "==> cargo build --release"
    cargo build --release
fi

echo "==> cargo test -q"
cargo test -q

if [[ "${1:-}" != "--quick" ]]; then
    sfbench=./target/release/sfbench

    # Smoke the full stack through the unified CLI with BOTH parallelism
    # layers forced on: a 2-worker sweep pool around 2-shard cycle-level
    # simulations. The run's artifact must be byte-identical to the fully
    # serial run — that is the determinism contract of sf-harness and
    # sf-simcore.
    echo "==> sfbench run fig10 --quick smoke (2 sweep workers x 2 sim shards)"
    serial_csv="$(mktemp)"
    sharded_csv="$(mktemp)"
    SF_HARNESS_THREADS=1 SF_SIM_SHARDS=1 \
        "$sfbench" run fig10 --quick --no-resume --csv "$serial_csv" >/dev/null
    SF_HARNESS_THREADS=2 SF_SIM_SHARDS=2 \
        "$sfbench" run fig10 --quick --no-resume --csv "$sharded_csv" >/dev/null
    cmp "$serial_csv" "$sharded_csv"
    rm -f "$serial_csv" "$sharded_csv"
    echo "==> smoke artifacts byte-identical"

    # Checkpoint/resume smoke: start a run, kill -9 it after the journal has
    # flushed at least one completed job, rerun the same command (which
    # resumes from the journal), and demand bytes identical to a clean run.
    echo "==> checkpoint/resume smoke (kill -9 after first journal flush)"
    resume_csv="$(mktemp)"
    clean_csv="$(mktemp)"
    rm -f "$resume_csv.journal"
    SF_HARNESS_THREADS=1 "$sfbench" run fig10 --quick --csv "$resume_csv" >/dev/null 2>&1 &
    run_pid=$!
    for _ in $(seq 1 1500); do
        if [[ -f "$resume_csv.journal" ]] \
            && (( $(wc -l < "$resume_csv.journal") >= 2 )); then
            break
        fi
        sleep 0.01
    done
    kill -9 "$run_pid" 2>/dev/null || true
    wait "$run_pid" 2>/dev/null || true
    if [[ ! -f "$resume_csv.journal" ]]; then
        echo "    note: run finished before the kill; resume path not exercised this time"
    fi
    SF_HARNESS_THREADS=1 "$sfbench" run fig10 --quick --csv "$resume_csv" >/dev/null
    "$sfbench" run fig10 --quick --no-resume --csv "$clean_csv" >/dev/null
    cmp "$resume_csv" "$clean_csv"
    rm -f "$resume_csv" "$clean_csv" "$resume_csv.journal"
    echo "==> resumed artifact byte-identical to a clean run"

    # Extended-scenario smoke: the fault-injection study must uphold the
    # same determinism contract — a 2-worker x 2-shard run of a faulty
    # network produces bytes identical to the fully serial run.
    echo "==> sfbench run fault_resilience --quick smoke (2 sweep workers x 2 sim shards)"
    fault_serial_csv="$(mktemp)"
    fault_sharded_csv="$(mktemp)"
    SF_HARNESS_THREADS=1 SF_SIM_SHARDS=1 \
        "$sfbench" run fault_resilience --quick --no-resume --csv "$fault_serial_csv" >/dev/null
    SF_HARNESS_THREADS=2 SF_SIM_SHARDS=2 \
        "$sfbench" run fault_resilience --quick --no-resume --csv "$fault_sharded_csv" >/dev/null
    cmp "$fault_serial_csv" "$fault_sharded_csv"
    rm -f "$fault_serial_csv" "$fault_sharded_csv"
    echo "==> fault-scenario artifacts byte-identical"
fi

echo "==> CI green"
