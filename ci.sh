#!/usr/bin/env bash
# CI gate for the String Figure reproduction workspace.
#
#   ./ci.sh          # fmt + clippy + build + tests
#   ./ci.sh --quick  # skip the release build (fastest signal)
#
# Every step must pass; the script stops at the first failure.

set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

if [[ "${1:-}" != "--quick" ]]; then
    echo "==> cargo build --release"
    cargo build --release
fi

echo "==> cargo test -q"
cargo test -q

if [[ "${1:-}" != "--quick" ]]; then
    sfbench=./target/release/sfbench

    # Smoke the full stack through the unified CLI with BOTH parallelism
    # layers forced on: a 2-worker sweep pool around 2-shard cycle-level
    # simulations. The run's artifact must be byte-identical to the fully
    # serial run — that is the determinism contract of sf-harness and
    # sf-simcore.
    echo "==> sfbench run fig10 --quick smoke (2 sweep workers x 2 sim shards)"
    serial_csv="$(mktemp)"
    sharded_csv="$(mktemp)"
    SF_HARNESS_THREADS=1 SF_SIM_SHARDS=1 \
        "$sfbench" run fig10 --quick --no-resume --csv "$serial_csv" \
        --telemetry "$serial_csv.telemetry.bin" --telemetry-every 32 \
        --metrics "$serial_csv.metrics.json" >/dev/null
    # The sharded run also exercises the observability sinks: tracing,
    # metrics, and the telemetry stream must stay strictly out-of-band
    # (identical CSV bytes), and the stream itself must be bit-identical
    # to the serial run's.
    SF_HARNESS_THREADS=2 SF_SIM_SHARDS=2 \
        "$sfbench" run fig10 --quick --no-resume --csv "$sharded_csv" \
        --telemetry "$sharded_csv.telemetry.bin" --telemetry-every 32 \
        --trace "$sharded_csv.trace.jsonl" --metrics "$sharded_csv.metrics.json" >/dev/null
    cmp "$serial_csv" "$sharded_csv"
    # The pooled kernel must still hit the committed golden bytes — not just
    # agree with itself across worker/shard layouts.
    cmp "$serial_csv" crates/bench/tests/golden/fig10_saturation.quick.csv
    cmp "$serial_csv.telemetry.bin" "$sharded_csv.telemetry.bin"
    head -c 15 "$sharded_csv.telemetry.bin" | grep -q 'sf-telemetry/v1'
    test -s "$sharded_csv.trace.jsonl"
    grep -q '"schema": "sf-metrics/v1"' "$sharded_csv.metrics.json"
    grep -q '"sim.delivered"' "$sharded_csv.metrics.json"
    grep -q '"sim.telemetry_samples"' "$sharded_csv.metrics.json"
    # A telemetry-off run must reproduce the same golden CSV: recording is
    # observability, never simulation input.
    off_csv="$(mktemp)"
    SF_HARNESS_THREADS=2 SF_SIM_SHARDS=2 \
        "$sfbench" run fig10 --quick --no-resume --csv "$off_csv" >/dev/null
    cmp "$serial_csv" "$off_csv"
    rm -f "$off_csv"
    echo "==> smoke artifacts byte-identical (telemetry on/off, serial vs sharded)"

    # Analyzer smoke: sfbench report over the artifacts the smoke just
    # produced must exit 0 and emit a markdown document with every section.
    echo "==> sfbench report smoke (span tree + heatmap + diff + trajectory)"
    report_md="$(mktemp)"
    "$sfbench" report \
        --trace "$sharded_csv.trace.jsonl" \
        --telemetry "$sharded_csv.telemetry.bin" \
        --heatmap-csv "$report_md.heatmap.csv" \
        --diff "$serial_csv.metrics.json" "$sharded_csv.metrics.json" \
        --bench-dir . \
        --out "$report_md" --quiet
    test -s "$report_md"
    grep -q '^## Span tree' "$report_md"
    grep -q '^## Congestion heatmap' "$report_md"
    grep -q '^## Metric diff' "$report_md"
    grep -q '^## Perf trajectory' "$report_md"
    grep -q '^router,mean_queue,max_queue,stalls$' "$report_md.heatmap.csv"
    rm -f "$report_md" "$report_md.heatmap.csv"
    rm -f "$serial_csv" "$sharded_csv" "$sharded_csv.trace.jsonl" \
        "$serial_csv.metrics.json" "$sharded_csv.metrics.json" \
        "$serial_csv.telemetry.bin" "$sharded_csv.telemetry.bin"
    echo "==> report sections present and heatmap CSV exported"

    # Checkpoint/resume smoke: start a run, kill -9 it after the journal has
    # flushed at least one completed job, rerun the same command (which
    # resumes from the journal), and demand bytes identical to a clean run.
    echo "==> checkpoint/resume smoke (kill -9 after first journal flush)"
    resume_csv="$(mktemp)"
    clean_csv="$(mktemp)"
    rm -f "$resume_csv.journal"
    SF_HARNESS_THREADS=1 "$sfbench" run fig10 --quick --csv "$resume_csv" >/dev/null 2>&1 &
    run_pid=$!
    for _ in $(seq 1 1500); do
        if [[ -f "$resume_csv.journal" ]] \
            && (( $(wc -l < "$resume_csv.journal") >= 2 )); then
            break
        fi
        sleep 0.01
    done
    kill -9 "$run_pid" 2>/dev/null || true
    wait "$run_pid" 2>/dev/null || true
    if [[ ! -f "$resume_csv.journal" ]]; then
        echo "    note: run finished before the kill; resume path not exercised this time"
    fi
    SF_HARNESS_THREADS=1 "$sfbench" run fig10 --quick --csv "$resume_csv" >/dev/null
    "$sfbench" run fig10 --quick --no-resume --csv "$clean_csv" >/dev/null
    cmp "$resume_csv" "$clean_csv"
    rm -f "$resume_csv" "$clean_csv" "$resume_csv.journal"
    echo "==> resumed artifact byte-identical to a clean run"

    # Streaming mega-sweep smoke: the bounded-memory pipeline end to end.
    # A serial uninterrupted run is the reference; a 2-worker run with a
    # tiny --max-journal-bytes (forcing >= 1 journal compaction), killed
    # mid-sweep and resumed with the same command, must emit byte-identical
    # rows. Peak RSS comes from the run's own in-process probe (VmHWM from
    # /proc/self/status) — exact, and immune to the 0 kB race the external
    # /usr/bin/time and polling samplers suffered.
    echo "==> sfbench run megasweep --quick streaming smoke (compaction + kill + resume)"
    mega_serial_csv="$(mktemp)"
    mega_resume_csv="$(mktemp)"
    rm -f "$mega_resume_csv.journal"
    SF_HARNESS_THREADS=1 \
        "$sfbench" run megasweep --quick --no-resume --csv "$mega_serial_csv" \
        >/dev/null 2>"$mega_serial_csv.log"
    grep "peak RSS" "$mega_serial_csv.log" \
        | sed 's/^#[[:space:]]*/    megasweep --quick /' || true
    rm -f "$mega_serial_csv.log"
    SF_HARNESS_THREADS=2 "$sfbench" run megasweep --quick \
        --csv "$mega_resume_csv" --max-journal-bytes 256 >/dev/null 2>&1 &
    mega_pid=$!
    for _ in $(seq 1 1500); do
        if [[ -f "$mega_resume_csv.journal" ]] \
            && (( $(wc -l < "$mega_resume_csv.journal") >= 2 )); then
            break
        fi
        sleep 0.01
    done
    kill -9 "$mega_pid" 2>/dev/null || true
    wait "$mega_pid" 2>/dev/null || true
    if [[ ! -f "$mega_resume_csv.journal" ]]; then
        echo "    note: run finished before the kill; resume path not exercised this time"
    fi
    SF_HARNESS_THREADS=2 "$sfbench" run megasweep --quick \
        --csv "$mega_resume_csv" --max-journal-bytes 256 >/dev/null
    cmp "$mega_serial_csv" "$mega_resume_csv"
    rm -f "$mega_serial_csv" "$mega_resume_csv" "$mega_resume_csv.journal"
    echo "==> mega-sweep artifacts byte-identical (serial vs interrupted+compacted+resumed)"

    # Distributed-fabric smoke: the same megasweep dispatched as 3 partition
    # worker processes must converge to bytes identical to the serial run —
    # the whole point of the partition/merge/dispatch fabric.
    echo "==> sfbench dispatch --workers 3 run megasweep --quick smoke"
    fabric_dir="$(mktemp -d)"
    "$sfbench" run megasweep --quick --no-resume --csv "$fabric_dir/serial.csv" \
        --quiet >/dev/null
    "$sfbench" dispatch --workers 3 --quiet run megasweep --quick \
        --csv "$fabric_dir/dispatched.csv" >/dev/null
    cmp "$fabric_dir/serial.csv" "$fabric_dir/dispatched.csv"
    echo "==> dispatched artifacts byte-identical to the serial run"

    # Straggler convergence: run two of three partitions, kill the third
    # mid-flight after its journal has entries, then let dispatch re-drive
    # the full set — re-issued workers resume from the partition journals
    # and the merge must still hit the serial bytes.
    echo "==> dispatch straggler smoke (kill one partition worker, re-dispatch)"
    "$sfbench" run megasweep --quick --quiet \
        --csv "$fabric_dir/victim.csv" --partition 1/3 >/dev/null
    "$sfbench" run megasweep --quick --quiet \
        --csv "$fabric_dir/victim.csv" --partition 3/3 >/dev/null
    "$sfbench" run megasweep --quick --quiet \
        --csv "$fabric_dir/victim.csv" --partition 2/3 >/dev/null 2>&1 &
    victim_pid=$!
    for _ in $(seq 1 1500); do
        if [[ -f "$fabric_dir/victim.csv.p2of3.journal" ]] \
            && (( $(wc -l < "$fabric_dir/victim.csv.p2of3.journal") >= 2 )); then
            break
        fi
        sleep 0.01
    done
    kill -9 "$victim_pid" 2>/dev/null || true
    wait "$victim_pid" 2>/dev/null || true
    if [[ -f "$fabric_dir/victim.csv.p2of3" ]]; then
        echo "    note: partition finished before the kill; re-issue path not exercised this time"
    fi
    "$sfbench" dispatch --workers 3 --quiet run megasweep --quick \
        --csv "$fabric_dir/victim.csv" >/dev/null
    cmp "$fabric_dir/serial.csv" "$fabric_dir/victim.csv"
    rm -rf "$fabric_dir"
    echo "==> killed-partition dispatch converged to the serial bytes"

    # Extended-scenario smoke: the fault-injection study must uphold the
    # same determinism contract — a 2-worker x 2-shard run of a faulty
    # network produces bytes identical to the fully serial run.
    echo "==> sfbench run fault_resilience --quick smoke (2 sweep workers x 2 sim shards)"
    fault_serial_csv="$(mktemp)"
    fault_sharded_csv="$(mktemp)"
    SF_HARNESS_THREADS=1 SF_SIM_SHARDS=1 \
        "$sfbench" run fault_resilience --quick --no-resume --csv "$fault_serial_csv" >/dev/null
    SF_HARNESS_THREADS=2 SF_SIM_SHARDS=2 \
        "$sfbench" run fault_resilience --quick --no-resume --csv "$fault_sharded_csv" >/dev/null
    cmp "$fault_serial_csv" "$fault_sharded_csv"
    rm -f "$fault_serial_csv" "$fault_sharded_csv"
    echo "==> fault-scenario artifacts byte-identical"

    # Sweep-as-a-service smoke: a background daemon must produce artifacts
    # byte-identical to a direct run, then shut down cleanly over the
    # protocol (removing its socket file).
    echo "==> sfbench serve smoke (daemon submit vs direct run)"
    serve_dir="$(mktemp -d)"
    "$sfbench" serve --socket "$serve_dir/sock" --quiet &
    serve_pid=$!
    for _ in $(seq 1 500); do
        [[ -S "$serve_dir/sock" ]] && break
        sleep 0.01
    done
    "$sfbench" run fig05 --quick --quiet --no-resume --csv "$serve_dir/direct.csv" >/dev/null
    "$sfbench" submit fig05 --quick --quiet --socket "$serve_dir/sock" \
        --csv "$serve_dir/served.csv"
    cmp "$serve_dir/direct.csv" "$serve_dir/served.csv"
    "$sfbench" submit --shutdown --quiet --socket "$serve_dir/sock"
    wait "$serve_pid"
    [[ ! -e "$serve_dir/sock" ]]
    rm -rf "$serve_dir"
    echo "==> daemon-served artifact byte-identical to the direct run"

    # Perf trajectory: record this PR's in-process bench snapshot and gate
    # against the newest prior BENCH_*.json (wall-clock > +25% on a probe,
    # or peak RSS > +10%, fails the build). The first run only records.
    echo "==> sfbench bench (perf snapshot BENCH_10.json)"
    prev_bench="$(ls -1 BENCH_*.json 2>/dev/null | grep -v '^BENCH_10\.json$' | sort -V | tail -1 || true)"
    if [[ -n "${prev_bench:-}" ]]; then
        "$sfbench" bench --label BENCH_10 --out BENCH_10.json --baseline "$prev_bench"
    else
        "$sfbench" bench --label BENCH_10 --out BENCH_10.json
        echo "    no prior BENCH_*.json snapshot; recorded baseline only"
    fi
fi

echo "==> CI green"
