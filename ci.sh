#!/usr/bin/env bash
# CI gate for the String Figure reproduction workspace.
#
#   ./ci.sh          # fmt + clippy + build + tests
#   ./ci.sh --quick  # skip the release build (fastest signal)
#
# Every step must pass; the script stops at the first failure.

set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

if [[ "${1:-}" != "--quick" ]]; then
    echo "==> cargo build --release"
    cargo build --release
fi

echo "==> cargo test -q"
cargo test -q

if [[ "${1:-}" != "--quick" ]]; then
    # Smoke the full stack with BOTH parallelism layers forced on: a
    # 2-worker sweep pool around 2-shard cycle-level simulations. The run's
    # artifact must be byte-identical to the fully serial run — that is the
    # determinism contract of sf-harness and sf-simcore.
    echo "==> fig10_saturation --quick smoke (2 sweep workers x 2 sim shards)"
    serial_csv="$(mktemp)"
    sharded_csv="$(mktemp)"
    SF_HARNESS_THREADS=1 SF_SIM_SHARDS=1 \
        cargo run --release -q -p sf-bench --bin fig10_saturation -- --quick --csv "$serial_csv" >/dev/null
    SF_HARNESS_THREADS=2 SF_SIM_SHARDS=2 \
        cargo run --release -q -p sf-bench --bin fig10_saturation -- --quick --csv "$sharded_csv" >/dev/null
    cmp "$serial_csv" "$sharded_csv"
    rm -f "$serial_csv" "$sharded_csv"
    echo "==> smoke artifacts byte-identical"
fi

echo "==> CI green"
