#!/usr/bin/env bash
# CI gate for the String Figure reproduction workspace.
#
#   ./ci.sh          # fmt + clippy + build + tests
#   ./ci.sh --quick  # skip the release build (fastest signal)
#
# Every step must pass; the script stops at the first failure.

set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

if [[ "${1:-}" != "--quick" ]]; then
    echo "==> cargo build --release"
    cargo build --release
fi

echo "==> cargo test -q"
cargo test -q

echo "==> CI green"
