#!/usr/bin/env bash
# CI gate for the String Figure reproduction workspace.
#
#   ./ci.sh          # fmt + clippy + build + tests
#   ./ci.sh --quick  # skip the release build (fastest signal)
#
# Every step must pass; the script stops at the first failure.

set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

if [[ "${1:-}" != "--quick" ]]; then
    echo "==> cargo build --release"
    cargo build --release
fi

echo "==> cargo test -q"
cargo test -q

if [[ "${1:-}" != "--quick" ]]; then
    sfbench=./target/release/sfbench

    # Smoke the full stack through the unified CLI with BOTH parallelism
    # layers forced on: a 2-worker sweep pool around 2-shard cycle-level
    # simulations. The run's artifact must be byte-identical to the fully
    # serial run — that is the determinism contract of sf-harness and
    # sf-simcore.
    echo "==> sfbench run fig10 --quick smoke (2 sweep workers x 2 sim shards)"
    serial_csv="$(mktemp)"
    sharded_csv="$(mktemp)"
    SF_HARNESS_THREADS=1 SF_SIM_SHARDS=1 \
        "$sfbench" run fig10 --quick --no-resume --csv "$serial_csv" >/dev/null
    # The sharded run also exercises the observability sinks: tracing and
    # metrics must stay strictly out-of-band (identical CSV bytes).
    SF_HARNESS_THREADS=2 SF_SIM_SHARDS=2 \
        "$sfbench" run fig10 --quick --no-resume --csv "$sharded_csv" \
        --trace "$sharded_csv.trace.jsonl" --metrics "$sharded_csv.metrics.json" >/dev/null
    cmp "$serial_csv" "$sharded_csv"
    test -s "$sharded_csv.trace.jsonl"
    grep -q '"schema": "sf-metrics/v1"' "$sharded_csv.metrics.json"
    grep -q '"sim.delivered"' "$sharded_csv.metrics.json"
    rm -f "$serial_csv" "$sharded_csv" "$sharded_csv.trace.jsonl" "$sharded_csv.metrics.json"
    echo "==> smoke artifacts byte-identical (with tracing + metrics on the sharded run)"

    # Checkpoint/resume smoke: start a run, kill -9 it after the journal has
    # flushed at least one completed job, rerun the same command (which
    # resumes from the journal), and demand bytes identical to a clean run.
    echo "==> checkpoint/resume smoke (kill -9 after first journal flush)"
    resume_csv="$(mktemp)"
    clean_csv="$(mktemp)"
    rm -f "$resume_csv.journal"
    SF_HARNESS_THREADS=1 "$sfbench" run fig10 --quick --csv "$resume_csv" >/dev/null 2>&1 &
    run_pid=$!
    for _ in $(seq 1 1500); do
        if [[ -f "$resume_csv.journal" ]] \
            && (( $(wc -l < "$resume_csv.journal") >= 2 )); then
            break
        fi
        sleep 0.01
    done
    kill -9 "$run_pid" 2>/dev/null || true
    wait "$run_pid" 2>/dev/null || true
    if [[ ! -f "$resume_csv.journal" ]]; then
        echo "    note: run finished before the kill; resume path not exercised this time"
    fi
    SF_HARNESS_THREADS=1 "$sfbench" run fig10 --quick --csv "$resume_csv" >/dev/null
    "$sfbench" run fig10 --quick --no-resume --csv "$clean_csv" >/dev/null
    cmp "$resume_csv" "$clean_csv"
    rm -f "$resume_csv" "$clean_csv" "$resume_csv.journal"
    echo "==> resumed artifact byte-identical to a clean run"

    # Streaming mega-sweep smoke: the bounded-memory pipeline end to end.
    # A serial uninterrupted run is the reference; a 2-worker run with a
    # tiny --max-journal-bytes (forcing >= 1 journal compaction), killed
    # mid-sweep and resumed with the same command, must emit byte-identical
    # rows. Peak RSS comes from the run's own in-process probe (VmHWM from
    # /proc/self/status) — exact, and immune to the 0 kB race the external
    # /usr/bin/time and polling samplers suffered.
    echo "==> sfbench run megasweep --quick streaming smoke (compaction + kill + resume)"
    mega_serial_csv="$(mktemp)"
    mega_resume_csv="$(mktemp)"
    rm -f "$mega_resume_csv.journal"
    SF_HARNESS_THREADS=1 \
        "$sfbench" run megasweep --quick --no-resume --csv "$mega_serial_csv" \
        >/dev/null 2>"$mega_serial_csv.log"
    grep "peak RSS" "$mega_serial_csv.log" \
        | sed 's/^#[[:space:]]*/    megasweep --quick /' || true
    rm -f "$mega_serial_csv.log"
    SF_HARNESS_THREADS=2 "$sfbench" run megasweep --quick \
        --csv "$mega_resume_csv" --max-journal-bytes 256 >/dev/null 2>&1 &
    mega_pid=$!
    for _ in $(seq 1 1500); do
        if [[ -f "$mega_resume_csv.journal" ]] \
            && (( $(wc -l < "$mega_resume_csv.journal") >= 2 )); then
            break
        fi
        sleep 0.01
    done
    kill -9 "$mega_pid" 2>/dev/null || true
    wait "$mega_pid" 2>/dev/null || true
    if [[ ! -f "$mega_resume_csv.journal" ]]; then
        echo "    note: run finished before the kill; resume path not exercised this time"
    fi
    SF_HARNESS_THREADS=2 "$sfbench" run megasweep --quick \
        --csv "$mega_resume_csv" --max-journal-bytes 256 >/dev/null
    cmp "$mega_serial_csv" "$mega_resume_csv"
    rm -f "$mega_serial_csv" "$mega_resume_csv" "$mega_resume_csv.journal"
    echo "==> mega-sweep artifacts byte-identical (serial vs interrupted+compacted+resumed)"

    # Extended-scenario smoke: the fault-injection study must uphold the
    # same determinism contract — a 2-worker x 2-shard run of a faulty
    # network produces bytes identical to the fully serial run.
    echo "==> sfbench run fault_resilience --quick smoke (2 sweep workers x 2 sim shards)"
    fault_serial_csv="$(mktemp)"
    fault_sharded_csv="$(mktemp)"
    SF_HARNESS_THREADS=1 SF_SIM_SHARDS=1 \
        "$sfbench" run fault_resilience --quick --no-resume --csv "$fault_serial_csv" >/dev/null
    SF_HARNESS_THREADS=2 SF_SIM_SHARDS=2 \
        "$sfbench" run fault_resilience --quick --no-resume --csv "$fault_sharded_csv" >/dev/null
    cmp "$fault_serial_csv" "$fault_sharded_csv"
    rm -f "$fault_serial_csv" "$fault_sharded_csv"
    echo "==> fault-scenario artifacts byte-identical"

    # Perf trajectory: record this PR's in-process bench snapshot and gate
    # against the newest prior BENCH_*.json (wall-clock > +25% on a probe,
    # or peak RSS > +10%, fails the build). The first run only records.
    echo "==> sfbench bench (perf snapshot BENCH_6.json)"
    prev_bench="$(ls -1 BENCH_*.json 2>/dev/null | grep -v '^BENCH_6\.json$' | sort -V | tail -1 || true)"
    if [[ -n "${prev_bench:-}" ]]; then
        "$sfbench" bench --label BENCH_6 --out BENCH_6.json --baseline "$prev_bench"
    else
        "$sfbench" bench --label BENCH_6 --out BENCH_6.json
        echo "    no prior BENCH_*.json snapshot; recorded baseline only"
    fi
fi

echo "==> CI green"
