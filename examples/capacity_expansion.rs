//! Static capacity expansion for design reuse: deploy a 256-node String
//! Figure design with only half of the memory nodes mounted, then mount the
//! reserved nodes later without re-fabricating the network.
//!
//! Run with:
//!
//! ```text
//! cargo run --release -p stringfigure --example capacity_expansion
//! ```

use sf_types::{NodeId, SimulationConfig};
use sf_workloads::SyntheticPattern;
use stringfigure::StringFigureNetwork;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Fabricate the full 256-node design once (2 TB at 8 GiB per node).
    let mut network = StringFigureNetwork::builder(256)
        .seed(77)
        .simulation(SimulationConfig {
            max_cycles: 2_500,
            warmup_cycles: 300,
            ..SimulationConfig::default()
        })
        .build()?;
    println!(
        "Fabricated design: {} nodes, {} wires, {} router ports",
        network.num_nodes(),
        network.topology().total_fabricated_wires(),
        network.topology().config().ports
    );

    // ------------------------------------------------------------------
    // Initial deployment: only the first 128 nodes are mounted; the rest are
    // "reserved for future use" exactly as the paper describes. Unmounting
    // uses the same mechanism as power gating, applied at deployment time.
    // ------------------------------------------------------------------
    let mut unmounted = Vec::new();
    for i in (128..256).rev() {
        match network.gate_node(NodeId::new(i)) {
            Ok(_) => unmounted.push(i),
            Err(e) => println!("  keeping node {i} mounted ({e})"),
        }
    }
    println!(
        "\nInitial deployment: {} mounted nodes ({} GiB)",
        network.num_active_nodes(),
        network.active_capacity_gib()
    );
    let before = network.path_stats();
    let before_sim = network.run_pattern(SyntheticPattern::UniformRandom, 0.06, 5)?;
    println!("  average shortest path : {:.2} hops", before.average);
    println!(
        "  simulated latency     : {:.1} cycles",
        before_sim.average_latency_cycles()
    );
    network.check_invariants()?;

    // ------------------------------------------------------------------
    // Capacity upgrade: mount the reserved nodes. Only the affected routing
    // tables change; the fabricated wires and the routing scheme stay as-is.
    // ------------------------------------------------------------------
    let mut mounted = 0;
    for &i in unmounted.iter().rev() {
        network.ungate_node(NodeId::new(i))?;
        mounted += 1;
    }
    println!("\nExpansion: mounted {mounted} additional nodes");
    println!(
        "  new capacity          : {} GiB across {} nodes",
        network.active_capacity_gib(),
        network.num_active_nodes()
    );
    let after = network.path_stats();
    let after_sim = network.run_pattern(SyntheticPattern::UniformRandom, 0.06, 5)?;
    println!("  average shortest path : {:.2} hops", after.average);
    println!(
        "  simulated latency     : {:.1} cycles",
        after_sim.average_latency_cycles()
    );
    network.check_invariants()?;

    // An arbitrary, non-power-of-two deployment also works: mount 213 nodes
    // of a fresh 256-node design.
    let mut odd = StringFigureNetwork::builder(256).seed(78).build()?;
    for i in 213..256 {
        let _ = odd.gate_node(NodeId::new(i));
    }
    println!(
        "\nArbitrary scale deployment: {} nodes mounted (no power-of-two restriction)",
        odd.num_active_nodes()
    );
    odd.check_invariants()?;

    Ok(())
}
