//! In-memory computing workloads on a disaggregated memory pool: run the
//! paper's application models (Spark, PageRank, Redis, Memcached, K-means,
//! MatMul) on a String Figure network versus a distributed mesh and compare
//! throughput and dynamic memory energy — a miniature of Figure 12.
//!
//! Run with:
//!
//! ```text
//! cargo run --release -p stringfigure --example datacenter_workloads
//! ```

use sf_workloads::ApplicationModel;
use stringfigure::experiments::{socket_nodes, workload_study, ExperimentScale};
use stringfigure::TopologyKind;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let nodes = 128;
    let sockets = 4;
    let scale = ExperimentScale {
        max_cycles: 4_000,
        warmup_cycles: 500,
        ..ExperimentScale::paper()
    };
    println!(
        "Running {} workloads on 2 designs ({} memory nodes, {} CPU sockets at nodes {:?})\n",
        ApplicationModel::ALL.len(),
        nodes,
        sockets,
        socket_nodes(nodes, sockets)
    );

    let kinds = [TopologyKind::DistributedMesh, TopologyKind::StringFigure];
    let rows = workload_study(&kinds, &ApplicationModel::ALL, nodes, sockets, scale, 2019)?;

    println!(
        "{:<12} {:>14} {:>14} {:>16} {:>16}",
        "workload", "DM req/kcycle", "SF req/kcycle", "SF speedup", "SF energy ratio"
    );
    let mut speedups = Vec::new();
    for workload in ApplicationModel::ALL {
        let dm = rows
            .iter()
            .find(|r| r.kind == TopologyKind::DistributedMesh && r.workload == workload)
            .expect("row exists");
        let sf = rows
            .iter()
            .find(|r| r.kind == TopologyKind::StringFigure && r.workload == workload)
            .expect("row exists");
        let speedup = sf.requests_per_cycle / dm.requests_per_cycle.max(f64::MIN_POSITIVE);
        let energy_ratio =
            sf.energy_per_request_pj / dm.energy_per_request_pj.max(f64::MIN_POSITIVE);
        speedups.push(speedup);
        println!(
            "{:<12} {:>14.2} {:>14.2} {:>15.2}x {:>16.2}",
            workload.name(),
            dm.requests_per_cycle * 1_000.0,
            sf.requests_per_cycle * 1_000.0,
            speedup,
            energy_ratio
        );
    }
    let geomean = speedups.iter().map(|s| s.ln()).sum::<f64>() / speedups.len() as f64;
    println!(
        "\nGeometric-mean String Figure speedup over the distributed mesh: {:.2}x",
        geomean.exp()
    );
    println!("(The paper reports ~1.3x over ODM at 1024 nodes; the gap widens with scale.)");

    Ok(())
}
