//! Elastic power management: dynamically scale a String Figure network down
//! by power gating a quarter of its memory nodes, show how shortcuts keep the
//! network connected and fast, then bring the nodes back.
//!
//! Run with:
//!
//! ```text
//! cargo run --release -p stringfigure --example power_management
//! ```

use sf_types::SimulationConfig;
use sf_workloads::SyntheticPattern;
use stringfigure::{PowerManager, StringFigureNetwork};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The paper's working example scale is 1296 nodes with 8-port routers;
    // 324 nodes keeps this example fast while exercising the same machinery.
    let mut network = StringFigureNetwork::builder(324)
        .seed(11)
        .simulation(SimulationConfig {
            max_cycles: 3_000,
            warmup_cycles: 400,
            ..SimulationConfig::default()
        })
        .build()?;

    let full_stats = network.path_stats();
    let full_sim = network.run_pattern(SyntheticPattern::UniformRandom, 0.08, 1)?;
    println!("Full network ({} nodes)", network.num_active_nodes());
    println!("  average shortest path : {:.2} hops", full_stats.average);
    println!(
        "  simulated latency     : {:.1} cycles",
        full_sim.average_latency_cycles()
    );
    println!(
        "  enabled shortcuts     : {}",
        network.topology().enabled_shortcuts().len()
    );

    // ------------------------------------------------------------------
    // Gate off 25% of the nodes through the power manager, which models the
    // paper's four-step reconfiguration with its sleep latency (680 ns per
    // link) and the 100 us reconfiguration granularity.
    // ------------------------------------------------------------------
    let report = {
        let mut pm = PowerManager::new(&mut network);
        let gated = pm.gate_fraction(0.25, 99)?;
        println!("\nPower gating {} nodes (25% of the network)", gated.len());
        pm.report().clone()
    };
    println!(
        "  reconfiguration latency paid : {:.1} us",
        report.total_latency_ns / 1_000.0
    );
    println!(
        "  routers whose tables changed : {}",
        report
            .events
            .iter()
            .map(|e| e.routers_updated)
            .sum::<usize>()
    );
    println!(
        "  shortcuts switched on        : {}",
        report
            .events
            .iter()
            .map(|e| e.shortcuts_enabled)
            .sum::<usize>()
    );

    let gated_stats = network.path_stats();
    let gated_sim = network.run_pattern(SyntheticPattern::UniformRandom, 0.08, 1)?;
    println!(
        "\nDown-scaled network ({} nodes)",
        network.num_active_nodes()
    );
    println!(
        "  capacity              : {} GiB",
        network.active_capacity_gib()
    );
    println!("  average shortest path : {:.2} hops", gated_stats.average);
    println!(
        "  unreachable pairs     : {}",
        gated_stats.unreachable_pairs
    );
    println!(
        "  simulated latency     : {:.1} cycles",
        gated_sim.average_latency_cycles()
    );
    println!(
        "  dynamic network energy: {:.1} nJ (vs {:.1} nJ at full scale)",
        gated_sim.network_energy_pj / 1_000.0,
        full_sim.network_energy_pj / 1_000.0
    );

    // ------------------------------------------------------------------
    // Bring everything back online (the reverse reconfiguration).
    // ------------------------------------------------------------------
    {
        let gated: Vec<_> = (0..network.num_nodes())
            .map(sf_types::NodeId::new)
            .filter(|&n| network.topology().is_gated(n))
            .collect();
        let mut pm = PowerManager::new(&mut network);
        for node in gated {
            pm.ungate(node)?;
        }
    }
    network.check_invariants()?;
    println!(
        "\nRestored network: {} active nodes, invariants hold",
        network.num_active_nodes()
    );

    Ok(())
}
