//! Quickstart: build a String Figure memory network, route packets through
//! it, and run a short cycle-level simulation.
//!
//! Run with:
//!
//! ```text
//! cargo run --release -p stringfigure --example quickstart
//! ```

use sf_types::{NodeId, SimulationConfig};
use sf_workloads::SyntheticPattern;
use stringfigure::StringFigureNetwork;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // ------------------------------------------------------------------
    // 1. Build a 128-node memory network (1 TB at 8 GiB per node) with
    //    4-port routers, exactly like the paper's smaller working example.
    // ------------------------------------------------------------------
    let network = StringFigureNetwork::builder(128)
        .ports(4)
        .seed(2019)
        .simulation(SimulationConfig {
            max_cycles: 4_000,
            warmup_cycles: 500,
            ..SimulationConfig::default()
        })
        .build()?;

    println!("String Figure memory network");
    println!("  memory nodes      : {}", network.num_nodes());
    println!(
        "  capacity          : {} GiB",
        network.active_capacity_gib()
    );
    println!(
        "  router ports      : {}",
        network.topology().config().ports
    );
    println!(
        "  virtual spaces    : {}",
        network.topology().config().virtual_spaces()
    );
    println!(
        "  fabricated wires  : {}",
        network.topology().total_fabricated_wires()
    );
    println!(
        "  routing table bits: {} per router (average)",
        network.routing_storage_bits() / network.num_nodes() as u64
    );

    // ------------------------------------------------------------------
    // 2. Topology quality: shortest paths stay short even though every
    //    router has only four ports.
    // ------------------------------------------------------------------
    let stats = network.path_stats();
    println!("\nPath lengths (graph metric)");
    println!("  average : {:.2} hops", stats.average);
    println!(
        "  p10/p50/p90 : {} / {} / {}",
        stats.p10, stats.p50, stats.p90
    );
    println!("  diameter: {} hops", stats.diameter);

    // ------------------------------------------------------------------
    // 3. Route a few packets with the greediest protocol and show the
    //    hop-by-hop paths.
    // ------------------------------------------------------------------
    println!("\nGreediest routing examples");
    for (from, to) in [(0usize, 97usize), (5, 64), (127, 3)] {
        let route = network.route(NodeId::new(from), NodeId::new(to))?;
        let path: Vec<String> = route.path.iter().map(ToString::to_string).collect();
        println!(
            "  {from:>3} -> {to:<3} : {} hops  [{}]",
            route.hops(),
            path.join(" -> ")
        );
    }
    let routed = network.average_routed_hops(2_000, 7)?;
    println!("  average routed hops over 2000 random pairs: {routed:.2}");

    // ------------------------------------------------------------------
    // 4. Run uniform-random traffic through the cycle-level simulator.
    // ------------------------------------------------------------------
    println!("\nCycle-level simulation (uniform random, 10% injection)");
    let sim_stats = network.run_pattern(SyntheticPattern::UniformRandom, 0.10, 42)?;
    println!("  injected packets  : {}", sim_stats.injected);
    println!("  delivered packets : {}", sim_stats.delivered);
    println!(
        "  average latency   : {:.1} cycles ({:.1} ns)",
        sim_stats.average_latency_cycles(),
        sim_stats.average_latency_cycles() * network.system().cycle_ns()
    );
    println!("  average hops      : {:.2}", sim_stats.average_hops());
    println!(
        "  network energy    : {:.1} nJ",
        sim_stats.network_energy_pj / 1_000.0
    );
    println!("  saturated         : {}", sim_stats.is_saturated());

    Ok(())
}
