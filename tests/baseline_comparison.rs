//! Cross-design integration tests: the qualitative trends the paper's
//! evaluation reports must hold in this reproduction (who wins, and roughly
//! by how much), at reduced scale so the suite stays fast.

use sf_workloads::SyntheticPattern;
use stringfigure::experiments::{
    bisection_study, configuration_table, hop_count_study, saturation_study,
    surg_path_length_study, ExperimentScale,
};
use stringfigure::{NetworkInstance, TopologyKind};

#[test]
fn figure5_trend_random_topologies_have_flat_path_length_scaling() {
    let rows = surg_path_length_study(&[100, 400], 2).unwrap();
    let small = &rows[0];
    let large = &rows[1];
    // 4x more nodes costs well under one extra hop for all three random
    // designs, and String Figure tracks Jellyfish and S2 closely.
    assert!(large.string_figure - small.string_figure < 1.0);
    assert!(large.jellyfish - small.jellyfish < 1.0);
    assert!((large.string_figure - large.s2).abs() < 0.8);
    assert!((large.string_figure - large.jellyfish).abs() < 1.2);
}

#[test]
fn figure9a_trend_mesh_hops_blow_up_but_sf_stays_flat() {
    let kinds = [
        TopologyKind::DistributedMesh,
        TopologyKind::OptimizedMesh,
        TopologyKind::StringFigure,
    ];
    let rows = hop_count_study(&kinds, &[64, 256], 300, 7).unwrap();
    let get = |kind, nodes| {
        rows.iter()
            .find(|r| r.kind == kind && r.nodes == nodes)
            .unwrap()
            .average_routed_hops
    };
    let dm_growth =
        get(TopologyKind::DistributedMesh, 256) / get(TopologyKind::DistributedMesh, 64);
    let sf_growth = get(TopologyKind::StringFigure, 256) / get(TopologyKind::StringFigure, 64);
    assert!(
        dm_growth > sf_growth,
        "mesh hop growth {dm_growth} should exceed SF growth {sf_growth}"
    );
    // At 256 nodes SF should already be clearly ahead of the plain mesh.
    assert!(get(TopologyKind::DistributedMesh, 256) > 1.5 * get(TopologyKind::StringFigure, 256));
    // ODM improves on DM but does not catch SF at this scale.
    assert!(get(TopologyKind::OptimizedMesh, 256) < get(TopologyKind::DistributedMesh, 256));
}

#[test]
fn figure9a_trend_fb_is_shortest_but_needs_high_radix() {
    let fb = NetworkInstance::build(TopologyKind::FlattenedButterfly, 256, 1).unwrap();
    let sf = NetworkInstance::build(TopologyKind::StringFigure, 256, 1).unwrap();
    assert!(fb.average_shortest_path() < sf.average_shortest_path());
    assert!(
        fb.router_ports() > 3 * sf.router_ports(),
        "FB radix {} vs SF {}",
        fb.router_ports(),
        sf.router_ports()
    );
}

#[test]
fn figure10_trend_sf_saturates_later_than_mesh_on_uniform_random() {
    let rows = saturation_study(
        &[TopologyKind::DistributedMesh, TopologyKind::StringFigure],
        49,
        SyntheticPattern::UniformRandom,
        &[0.02, 0.08, 0.20, 0.40, 0.70],
        ExperimentScale::quick(),
        11,
    )
    .unwrap();
    let dm = rows[0].saturation_percent.unwrap_or(0.0);
    let sf = rows[1].saturation_percent.unwrap_or(0.0);
    assert!(sf >= dm, "SF saturation {sf}% must not trail mesh {dm}%");
}

#[test]
fn bisection_bandwidth_of_sf_matches_or_beats_mesh() {
    let rows = bisection_study(
        &[TopologyKind::DistributedMesh, TopologyKind::StringFigure],
        64,
        8,
        2,
    )
    .unwrap();
    let dm = &rows[0];
    let sf = &rows[1];
    assert!(sf.average >= dm.average * 0.9);
}

#[test]
fn table2_and_figure8_configuration_summary() {
    let rows = configuration_table(&TopologyKind::ALL, &[61, 256], 3).unwrap();
    assert_eq!(rows.len(), 12);
    for row in &rows {
        assert!(row.links > 0);
        assert!(row.router_ports >= 4);
        match row.kind {
            TopologyKind::StringFigure => {
                assert!(row.supports_reconfiguration);
                assert!(!row.requires_high_radix);
                assert!(row.router_ports <= 8);
            }
            TopologyKind::FlattenedButterfly | TopologyKind::AdaptedFlattenedButterfly => {
                assert!(row.requires_high_radix);
                if row.nodes == 256 {
                    assert!(row.router_ports > 8);
                }
            }
            _ => assert!(!row.supports_reconfiguration),
        }
    }
    // AFB uses fewer ports than FB at the same scale.
    let fb = rows
        .iter()
        .find(|r| r.kind == TopologyKind::FlattenedButterfly && r.nodes == 256)
        .unwrap();
    let afb = rows
        .iter()
        .find(|r| r.kind == TopologyKind::AdaptedFlattenedButterfly && r.nodes == 256)
        .unwrap();
    assert!(afb.router_ports < fb.router_ports);
}

#[test]
fn every_design_routes_loop_free_on_non_power_of_two_sizes() {
    for kind in TopologyKind::ALL {
        let instance = NetworkInstance::build(kind, 61, 5).unwrap();
        let hops = instance.average_routed_hops(200).unwrap();
        assert!(hops >= 1.0, "{kind}");
        assert!(hops < 12.0, "{kind}: {hops}");
    }
}
