//! End-to-end integration: topology generation -> routing -> cycle-level
//! simulation, across several network sizes and port counts.

use sf_types::{NodeId, SimulationConfig};
use sf_workloads::SyntheticPattern;
use stringfigure::{StringFigureBuilder, StringFigureNetwork};

fn quick_sim() -> SimulationConfig {
    SimulationConfig {
        max_cycles: 1_200,
        warmup_cycles: 200,
        ..SimulationConfig::default()
    }
}

#[test]
fn arbitrary_network_scales_build_and_route() {
    // The paper's Figure 8 sizes, including the awkward non-power-of-two ones
    // that rigid topologies cannot support.
    for nodes in [16usize, 17, 32, 61, 64, 113, 128] {
        let network = StringFigureNetwork::generate(nodes).unwrap();
        network.check_invariants().unwrap();
        let stats = network.path_stats();
        assert_eq!(stats.unreachable_pairs, 0, "N={nodes}");
        assert!(stats.average < 7.0, "N={nodes}: {}", stats.average);
        // Route between every pair of a sample set.
        for s in (0..nodes).step_by(5) {
            for t in (0..nodes).step_by(7) {
                let route = network.route(NodeId::new(s), NodeId::new(t)).unwrap();
                assert!(!route.has_loop(), "N={nodes} {s}->{t}");
                assert_eq!(route.destination(), NodeId::new(t));
            }
        }
    }
}

#[test]
fn path_length_scales_sublinearly_with_network_size() {
    let small = StringFigureNetwork::generate(64).unwrap().path_stats();
    let large = StringFigureNetwork::generate(512).unwrap().path_stats();
    // 8x the nodes must cost far less than 2x the hops (the paper reports
    // under 5 hops at 1296 nodes).
    assert!(large.average < small.average * 2.0);
    assert!(large.average < 6.0);
    assert!(large.p90 <= 7);
}

#[test]
fn routing_table_storage_is_independent_of_scale() {
    // Compare at the same router radix: per-router storage must grow only
    // with the log2(N) node-number field, not with the table entry count.
    let small = StringFigureBuilder::new(64).ports(4).build().unwrap();
    let large = StringFigureBuilder::new(512).ports(4).build().unwrap();
    let per_router_small = small.routing_storage_bits() as f64 / 64.0;
    let per_router_large = large.routing_storage_bits() as f64 / 512.0;
    assert!(
        per_router_large < per_router_small * 1.6,
        "per-router bits grew from {per_router_small} to {per_router_large}"
    );
}

#[test]
fn simulation_pipeline_delivers_traffic_on_all_patterns() {
    let network = StringFigureBuilder::new(36)
        .seed(5)
        .simulation(quick_sim())
        .build()
        .unwrap();
    for pattern in SyntheticPattern::ALL {
        let stats = network.run_pattern(pattern, 0.04, 9).unwrap();
        assert!(stats.injected > 0, "{pattern}");
        assert!(
            stats.delivery_ratio() > 0.85,
            "{pattern}: delivery {}",
            stats.delivery_ratio()
        );
        assert!(stats.average_hops() >= 1.0, "{pattern}");
        assert!(stats.network_energy_pj > 0.0, "{pattern}");
    }
}

#[test]
fn greediest_routing_matches_graph_distance_closely() {
    let network = StringFigureNetwork::generate(100).unwrap();
    let graph_avg = network.path_stats().average;
    let routed_avg = network.average_routed_hops(1_500, 3).unwrap();
    // Greediest routing does not guarantee shortest paths, but with two-hop
    // lookahead it should stay within about one hop of the graph average.
    assert!(routed_avg >= graph_avg - 0.2);
    assert!(
        routed_avg <= graph_avg + 1.5,
        "routed {routed_avg} vs shortest {graph_avg}"
    );
}

#[test]
fn deterministic_generation_is_reproducible_end_to_end() {
    let a = StringFigureBuilder::new(80).seed(42).build().unwrap();
    let b = StringFigureBuilder::new(80).seed(42).build().unwrap();
    assert_eq!(a.topology().graph().edges(), b.topology().graph().edges());
    let route_a = a.route(NodeId::new(1), NodeId::new(70)).unwrap();
    let route_b = b.route(NodeId::new(1), NodeId::new(70)).unwrap();
    assert_eq!(route_a.path, route_b.path);
    let stats_a = a.run_pattern(SyntheticPattern::Tornado, 0.05, 7).unwrap();
    let stats_b = b.run_pattern(SyntheticPattern::Tornado, 0.05, 7).unwrap();
    assert_eq!(stats_a.delivered, stats_b.delivered);
    assert_eq!(stats_a.total_latency_cycles, stats_b.total_latency_cycles);
}

#[test]
fn eight_port_routers_shorten_paths() {
    let four = StringFigureBuilder::new(200).ports(4).build().unwrap();
    let eight = StringFigureBuilder::new(200).ports(8).build().unwrap();
    assert!(eight.path_stats().average < four.path_stats().average);
}
