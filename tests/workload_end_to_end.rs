//! End-to-end workload runs: application models -> cache filter -> memory
//! network simulation, plus the power-management energy study (Figures 12
//! and 9b at reduced scale).

use sf_types::NodeId;
use sf_workloads::ApplicationModel;
use stringfigure::experiments::{
    power_gating_study, socket_nodes, workload_study, ExperimentScale,
};
use stringfigure::TopologyKind;

#[test]
fn all_workloads_complete_requests_on_string_figure() {
    let rows = workload_study(
        &[TopologyKind::StringFigure],
        &ApplicationModel::ALL,
        48,
        4,
        ExperimentScale::quick(),
        13,
    )
    .unwrap();
    assert_eq!(rows.len(), ApplicationModel::ALL.len());
    for row in &rows {
        assert!(
            row.requests_per_cycle > 0.0,
            "{} produced no completed requests",
            row.workload
        );
        assert!(row.average_round_trip_cycles > 2.0, "{}", row.workload);
        assert!(row.energy_per_request_pj > 0.0, "{}", row.workload);
    }
}

#[test]
fn figure12_trend_sf_beats_mesh_on_throughput() {
    let rows = workload_study(
        &[TopologyKind::DistributedMesh, TopologyKind::StringFigure],
        &[ApplicationModel::Pagerank, ApplicationModel::Redis],
        64,
        4,
        ExperimentScale::quick(),
        21,
    )
    .unwrap();
    for workload in [ApplicationModel::Pagerank, ApplicationModel::Redis] {
        let dm = rows
            .iter()
            .find(|r| r.kind == TopologyKind::DistributedMesh && r.workload == workload)
            .unwrap();
        let sf = rows
            .iter()
            .find(|r| r.kind == TopologyKind::StringFigure && r.workload == workload)
            .unwrap();
        assert!(
            sf.requests_per_cycle >= dm.requests_per_cycle * 0.9,
            "{workload}: SF {} vs DM {}",
            sf.requests_per_cycle,
            dm.requests_per_cycle
        );
        assert!(
            sf.average_round_trip_cycles <= dm.average_round_trip_cycles * 1.2,
            "{workload}: SF latency should not be much worse than mesh"
        );
    }
}

#[test]
fn figure12_trend_sf_uses_less_network_energy_per_request_than_mesh() {
    let rows = workload_study(
        &[TopologyKind::DistributedMesh, TopologyKind::StringFigure],
        &[ApplicationModel::Memcached],
        100,
        4,
        ExperimentScale::quick(),
        31,
    )
    .unwrap();
    let dm = &rows[0];
    let sf = &rows[1];
    // Energy per request tracks hop count; SF's shorter paths at 100 nodes
    // must show up as lower (or at worst equal) per-request energy.
    assert!(
        sf.energy_per_request_pj <= dm.energy_per_request_pj * 1.05,
        "SF {} pJ vs DM {} pJ",
        sf.energy_per_request_pj,
        dm.energy_per_request_pj
    );
}

#[test]
fn figure9b_power_gating_study_produces_consistent_rows() {
    let rows = power_gating_study(
        60,
        &[0.0, 0.2, 0.4],
        ApplicationModel::SparkWordcount,
        4,
        ExperimentScale::quick(),
        5,
    )
    .unwrap();
    assert_eq!(rows.len(), 3);
    assert!((rows[0].normalized_edp - 1.0).abs() < 1e-9);
    assert!(rows[1].gated_nodes >= 8);
    assert!(rows[2].gated_nodes > rows[1].gated_nodes);
    for row in &rows {
        assert!(row.energy_delay_product > 0.0);
        assert!(row.average_round_trip_cycles > 0.0);
    }
}

#[test]
fn socket_placement_spreads_processors() {
    let sockets = socket_nodes(1296, 4);
    assert_eq!(sockets.len(), 4);
    assert_eq!(sockets[0], NodeId::new(0));
    assert_eq!(sockets[1], NodeId::new(324));
    assert_eq!(sockets[3], NodeId::new(972));
}
