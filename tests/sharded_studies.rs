//! Serial-vs-sharded golden tests at the figure binaries' `--quick` scale:
//! the three routed studies (Figure 10 saturation, Figure 11 latency curves,
//! Figure 12 workloads) must produce **byte-identical rows** whether each
//! cycle-level simulation runs on one router shard (the serial reference,
//! which reproduces the historical simulator) or on several — and whether or
//! not the sweep-level worker pool is parallel at the same time.

use sf_harness::pool::PoolConfig;
use sf_workloads::{ApplicationModel, SyntheticPattern};
use stringfigure::experiments::{
    latency_curve_with_pool, saturation_study_with_pool, workload_study_with_pool, ExperimentScale,
};
use stringfigure::TopologyKind;

#[test]
fn saturation_study_is_identical_serial_vs_sharded() {
    // Figure 10 `--quick` parameters: 64 nodes, the full design set, the
    // quick rate ladder.
    let rates = [0.05, 0.2, 0.4, 0.7];
    let pool = PoolConfig::serial();
    let run = |shards: usize| {
        saturation_study_with_pool(
            &pool,
            &TopologyKind::ALL,
            64,
            SyntheticPattern::UniformRandom,
            &rates,
            ExperimentScale::quick().with_shards(shards),
            3,
        )
        .unwrap()
    };
    let serial = run(1);
    assert_eq!(serial.len(), TopologyKind::ALL.len());
    assert_eq!(run(4), serial);
}

#[test]
fn latency_curve_is_identical_serial_vs_sharded() {
    // Figure 11 `--quick` parameters: 64 nodes, quick rates, DM and SF.
    let rates = [0.05, 0.2, 0.5];
    let pool = PoolConfig::serial();
    for kind in [TopologyKind::DistributedMesh, TopologyKind::StringFigure] {
        let run = |shards: usize| {
            latency_curve_with_pool(
                &pool,
                kind,
                64,
                SyntheticPattern::UniformRandom,
                &rates,
                ExperimentScale::quick().with_shards(shards),
                5,
            )
            .unwrap()
        };
        let serial = run(1);
        assert_eq!(serial.len(), rates.len());
        assert_eq!(run(4), serial, "{kind}");
    }
}

#[test]
fn workload_study_is_identical_serial_vs_sharded() {
    // Figure 12 `--quick` parameters: 64 nodes, two applications,
    // request–reply mode end to end.
    let pool = PoolConfig::serial();
    let kinds = [
        TopologyKind::DistributedMesh,
        TopologyKind::SpaceShuffle,
        TopologyKind::StringFigure,
    ];
    let workloads = [ApplicationModel::SparkWordcount, ApplicationModel::Redis];
    let run = |shards: usize| {
        workload_study_with_pool(
            &pool,
            &kinds,
            &workloads,
            64,
            4,
            ExperimentScale::quick().with_shards(shards),
            2019,
        )
        .unwrap()
    };
    let serial = run(1);
    assert_eq!(serial.len(), kinds.len() * workloads.len());
    for row in &serial {
        assert!(row.requests_per_cycle > 0.0);
    }
    assert_eq!(run(4), serial);
}

#[test]
fn nested_parallelism_never_changes_rows() {
    // Both layers at once: a parallel sweep pool *and* sharded simulations
    // must still match the fully serial run bit for bit.
    let rates = [0.05, 0.2, 0.4];
    let run = |pool: PoolConfig, shards: usize| {
        saturation_study_with_pool(
            &pool,
            &[TopologyKind::DistributedMesh, TopologyKind::StringFigure],
            48,
            SyntheticPattern::Tornado,
            &rates,
            ExperimentScale::quick().with_shards(shards),
            7,
        )
        .unwrap()
    };
    let golden = run(PoolConfig::serial(), 1);
    assert_eq!(run(PoolConfig::threads(2).with_chunk(1), 2), golden);
    assert_eq!(run(PoolConfig::threads(4), 3), golden);
}
