//! Property-based integration tests over the whole stack: for arbitrary
//! network sizes, port counts, seeds, and gating patterns, the core
//! invariants of the paper must hold — connected topologies, bounded port
//! usage, loop-free monotone greediest routing, and reversible
//! reconfiguration.

use proptest::prelude::*;
use sf_routing::{trace_route, GreediestRouting};
use sf_topology::{MemoryNetworkTopology, StringFigureTopology};
use sf_types::{NetworkConfig, NodeId};
use stringfigure::{StringFigureBuilder, StringFigureNetwork};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Generated topologies are connected, respect port budgets, and keep the
    /// per-node fabricated wiring bounded.
    #[test]
    fn prop_topology_invariants(
        nodes in 8usize..200,
        ports in prop::sample::select(vec![4usize, 6, 8]),
        seed in any::<u64>(),
    ) {
        let config = NetworkConfig::new(nodes, ports).unwrap().with_seed(seed);
        let topo = StringFigureTopology::generate(&config).unwrap();
        prop_assert!(topo.graph().is_connected());
        prop_assert_eq!(topo.graph().num_nodes(), nodes);
        for v in topo.graph().nodes() {
            prop_assert!(topo.ports_in_use(v) <= ports, "node {} oversubscribed", v);
        }
        prop_assert!(topo.max_fabricated_degree() <= ports + 4);
        prop_assert!(topo.total_fabricated_wires() <= nodes * (ports / 2 + 2));
        prop_assert_eq!(topo.router_ports(), ports);
    }

    /// Greediest routing terminates loop-free with a strictly decreasing MD
    /// for random pairs on random topologies.
    #[test]
    fn prop_greediest_routing_loop_free_and_monotone(
        nodes in 8usize..150,
        seed in any::<u64>(),
        pair_seed in any::<u64>(),
    ) {
        let config = NetworkConfig::new(nodes, 4).unwrap().with_seed(seed);
        let topo = StringFigureTopology::generate(&config).unwrap();
        let routing = GreediestRouting::new(&topo);
        let mut rng = sf_types::DeterministicRng::new(pair_seed);
        for _ in 0..8 {
            let s = NodeId::new(rng.next_index(nodes));
            let t = NodeId::new(rng.next_index(nodes));
            let route = trace_route(&routing, s, t, nodes).unwrap();
            prop_assert!(!route.has_loop());
            prop_assert_eq!(route.destination(), t);
            // MD decreases monotonically hop over hop (Proposition 3).
            for w in route.path.windows(2) {
                prop_assert!(
                    w[1] == t || routing.md(w[1], t) < routing.md(w[0], t) + 1e-12,
                    "MD must not increase along the route"
                );
            }
        }
        prop_assert_eq!(routing.fallback_count(), 0);
    }

    /// Gating a random subset of nodes keeps the network usable, and
    /// un-gating restores the original link count.
    #[test]
    fn prop_reconfiguration_is_reversible(
        nodes in 24usize..100,
        seed in any::<u64>(),
        gate_count in 1usize..10,
    ) {
        let mut network = StringFigureBuilder::new(nodes).seed(seed).build().unwrap();
        let original_edges = network.topology().graph().num_edges();
        let mut rng = sf_types::DeterministicRng::new(seed ^ 0xff);
        let mut gated = Vec::new();
        for _ in 0..gate_count {
            let candidate = NodeId::new(rng.next_index(nodes));
            if network.gate_node(candidate).is_ok() {
                gated.push(candidate);
            }
        }
        network.check_invariants().unwrap();
        prop_assert_eq!(network.path_stats().unreachable_pairs, 0);
        for node in gated.iter().rev() {
            network.ungate_node(*node).unwrap();
        }
        network.check_invariants().unwrap();
        prop_assert_eq!(network.num_active_nodes(), nodes);
        prop_assert_eq!(network.topology().graph().num_edges(), original_edges);
    }

    /// The public facade produces consistent path statistics for arbitrary
    /// sizes (including non-powers-of-two).
    #[test]
    fn prop_network_path_stats_consistent(nodes in 8usize..180, seed in any::<u64>()) {
        let network = StringFigureBuilder::new(nodes).seed(seed).build().unwrap();
        let stats = network.path_stats();
        prop_assert_eq!(stats.unreachable_pairs, 0);
        prop_assert!(stats.p10 <= stats.p50);
        prop_assert!(stats.p50 <= stats.p90);
        prop_assert!(stats.p90 as u32 <= stats.diameter);
        prop_assert!(stats.average >= 1.0);
        prop_assert!(f64::from(stats.diameter) >= stats.average);
    }
}

#[test]
fn facade_and_raw_topology_agree() {
    let network = StringFigureNetwork::generate(72).unwrap();
    let raw = StringFigureTopology::generate(network.topology().config()).unwrap();
    assert_eq!(network.topology().graph().edges(), raw.graph().edges());
}
