//! Integration tests for elastic reconfiguration: dynamic power gating,
//! static expansion/reduction, and the invariants the paper's mechanism must
//! preserve (connectivity, port budgets, loop-free routing after updates).

use sf_types::{NodeId, SimulationConfig};
use sf_workloads::SyntheticPattern;
use stringfigure::{PowerManager, StringFigureBuilder, StringFigureNetwork};

#[test]
fn gating_preserves_connectivity_and_routing() {
    let mut network = StringFigureNetwork::generate(96).unwrap();
    let mut pm = PowerManager::new(&mut network);
    let gated = pm.gate_fraction(0.3, 17).unwrap();
    assert!(gated.len() >= 20, "only gated {}", gated.len());
    drop(pm);

    network.check_invariants().unwrap();
    let stats = network.path_stats();
    assert_eq!(stats.unreachable_pairs, 0);

    // Routing still works between all remaining nodes and never touches a
    // gated node.
    let active: Vec<NodeId> = network.topology().graph().active_nodes().collect();
    for (i, &s) in active.iter().enumerate().step_by(6) {
        for &t in active.iter().skip(i % 4).step_by(9) {
            let route = network.route(s, t).unwrap();
            assert!(!route.has_loop());
            for hop in &route.path {
                assert!(!network.topology().is_gated(*hop));
            }
        }
    }
}

#[test]
fn shortcuts_keep_downscaled_network_fast() {
    // Compare a down-scaled network with shortcuts against one without:
    // the shortcut wires are what keeps throughput and path length good
    // after scaling down (the stated purpose of shortcut generation).
    let build = |shortcuts: bool| {
        let mut network = StringFigureBuilder::new(150)
            .seed(23)
            .shortcuts(shortcuts)
            .build()
            .unwrap();
        let mut pm = PowerManager::new(&mut network);
        pm.gate_fraction(0.3, 5).unwrap();
        drop(pm);
        network.path_stats().average
    };
    let with_shortcuts = build(true);
    let without_shortcuts = build(false);
    assert!(
        with_shortcuts <= without_shortcuts + 0.05,
        "shortcuts should not hurt: with {with_shortcuts}, without {without_shortcuts}"
    );
}

#[test]
fn gate_ungate_roundtrip_restores_performance() {
    let mut network = StringFigureBuilder::new(64)
        .seed(3)
        .simulation(SimulationConfig {
            max_cycles: 1_000,
            warmup_cycles: 100,
            ..SimulationConfig::default()
        })
        .build()
        .unwrap();
    let before = network.path_stats();

    let mut pm = PowerManager::new(&mut network);
    let gated = pm.gate_fraction(0.25, 31).unwrap();
    let restored = pm.restore_all().unwrap();
    assert_eq!(restored, gated.len());
    drop(pm);

    let after = network.path_stats();
    assert_eq!(network.num_active_nodes(), 64);
    assert!((after.average - before.average).abs() < 0.3);
    network.check_invariants().unwrap();

    // Simulation still behaves after the round trip.
    let stats = network
        .run_pattern(SyntheticPattern::UniformRandom, 0.05, 2)
        .unwrap();
    assert!(stats.delivery_ratio() > 0.9);
}

#[test]
fn reconfiguration_events_account_latency_and_table_updates() {
    let mut network = StringFigureNetwork::generate(48).unwrap();
    let sleep = network.system().link_sleep_ns;
    let wake = network.system().link_wake_ns;
    let mut pm = PowerManager::new(&mut network);
    let gate = pm.gate(NodeId::new(10)).unwrap();
    assert_eq!(gate.latency_ns, sleep);
    assert!(gate.routers_updated >= 2);
    let ungate = pm.ungate(NodeId::new(10)).unwrap();
    assert_eq!(ungate.latency_ns, wake);
    assert!(pm.report().total_latency_ns >= sleep + wake);
    assert_eq!(pm.report().net_gated(), 0);
}

#[test]
fn static_reduction_supports_arbitrary_target_sizes() {
    // Deploy a 200-node fabrication at several arbitrary mounted counts.
    for target in [137usize, 150, 199] {
        let mut network = StringFigureBuilder::new(200).seed(9).build().unwrap();
        let mut removed = 0;
        let mut candidate = 199;
        while 200 - removed > target {
            if network.gate_node(NodeId::new(candidate)).is_ok() {
                removed += 1;
            }
            if candidate == 0 {
                break;
            }
            candidate -= 1;
        }
        assert_eq!(network.num_active_nodes(), target, "target {target}");
        network.check_invariants().unwrap();
        assert_eq!(network.path_stats().unreachable_pairs, 0);
    }
}

#[test]
fn gating_rejections_do_not_corrupt_state() {
    let mut network = StringFigureNetwork::generate(32).unwrap();
    // Gate aggressively until requests start being rejected; state must stay
    // consistent throughout.
    let mut rejected = 0;
    for i in 0..32 {
        if network.gate_node(NodeId::new(i)).is_err() {
            rejected += 1;
        }
        network.check_invariants().unwrap();
    }
    assert!(
        rejected > 0,
        "some gatings must be rejected to avoid disconnection"
    );
    assert!(network.num_active_nodes() >= 2);
}
