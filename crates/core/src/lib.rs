//! # `stringfigure`
//!
//! A Rust reproduction of **String Figure: A Scalable and Elastic Memory
//! Network Architecture** (Ogleari, Yu, Qian, Miller, Zhao — HPCA 2019).
//!
//! String Figure interconnects hundreds to ~1300 3D die-stacked memory nodes
//! with a *balanced random multi-space topology*, routes packets with a
//! *compute+table hybrid greediest protocol* whose per-router state is
//! independent of network size, and supports *elastic reconfiguration*
//! (power gating and static expansion/reduction) without regenerating the
//! network.
//!
//! This crate is the user-facing facade over the workspace:
//!
//! * [`StringFigureNetwork`] / [`StringFigureBuilder`] — build a network,
//!   route packets, inspect path lengths and routing-table costs, gate and
//!   un-gate nodes, and run cycle-level simulations.
//! * [`PowerManager`] — dynamic scale-down/up with the paper's
//!   reconfiguration sequence and sleep/wake latencies.
//! * [`TopologyKind`] / [`NetworkInstance`] — uniform access to every
//!   baseline design the paper compares against (DM, ODM, FB, AFB, S2-ideal,
//!   Jellyfish).
//! * [`experiments`] — drivers that regenerate each table and figure of the
//!   paper's evaluation.
//! * [`study`] — the unified experiment API: the [`Study`] trait, the
//!   builder-style [`RunContext`] (pool, cache, scale, emitters,
//!   checkpoint/resume), and the [`StudyRegistry`] of all eight paper
//!   artefacts that the `sfbench` CLI multiplexes over.
//!
//! ## Quick start
//!
//! ```
//! use stringfigure::StringFigureNetwork;
//! use sf_types::NodeId;
//!
//! // A 128-node memory network with 4-port routers (1 TB at 8 GiB/node).
//! let network = StringFigureNetwork::generate(128)?;
//! let route = network.route(NodeId::new(3), NodeId::new(97))?;
//! assert!(!route.has_loop());
//! assert!(network.path_stats().average < 6.0);
//! # Ok::<(), sf_types::SfError>(())
//! ```
//!
//! ## Crates underneath
//!
//! | crate | contents |
//! |-------|----------|
//! | `sf-types`     | ids, coordinates, configuration, deterministic RNG |
//! | `sf-topology`  | String Figure topology, baselines, graph analysis |
//! | `sf-routing`   | greediest routing, mesh routing, table routing |
//! | `sf-netsim`    | cycle-level simulator, DRAM model, energy accounting |
//! | `sf-workloads` | traffic patterns, application models, cache filter |

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

pub mod comparison;
pub mod experiments;
pub mod network;
pub mod power;
pub mod study;

pub use comparison::{NetworkInstance, TopologyKind};
pub use network::{StringFigureBuilder, StringFigureNetwork};
pub use power::{PowerManager, PowerReport, ReconfigurationEvent};
pub use study::{RunContext, Study, StudyGrid, StudyRegistry};

// Re-export the underlying crates so downstream users need a single
// dependency.
pub use sf_netsim as netsim;
pub use sf_routing as routing;
pub use sf_topology as topology;
pub use sf_types as types;
pub use sf_workloads as workloads;
