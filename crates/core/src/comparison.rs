//! Uniform construction of String Figure and every baseline network design
//! evaluated in the paper (Figure 8 / Table II).
//!
//! A [`NetworkInstance`] bundles a topology with the routing protocol the
//! paper pairs it with, so experiment drivers can sweep over
//! [`TopologyKind::ALL`] without caring which concrete types are involved:
//!
//! | kind | topology | routing | ports (Fig. 8) |
//! |------|----------|---------|----------------|
//! | `DM`  | distributed mesh            | greedy + adaptive        | 4 |
//! | `ODM` | mesh with express links     | greedy + adaptive        | 8 |
//! | `FB`  | full 2D flattened butterfly | minimal + adaptive       | grows with N |
//! | `AFB` | partitioned FB              | minimal + adaptive       | grows with N (≈half of FB) |
//! | `S2`  | multi-space random rings    | look-up table (minimal)  | 4 / 8 |
//! | `SF`  | String Figure               | greediest + adaptive     | 4 / 8 |
//! | `Jellyfish` | random regular graph  | k-shortest-path table    | 4 / 8 |

use sf_netsim::NetworkSimulator;
use sf_routing::{
    trace_route, GreediestOptions, GreediestRouting, MeshRouting, RoutingProtocol,
    ShortestPathRouting,
};
use sf_topology::analysis;
use sf_topology::baselines::MemoryNetworkTopology;
use sf_topology::{
    AdjacencyGraph, FlattenedButterfly, JellyfishTopology, MeshTopology, S2Topology,
    StringFigureTopology,
};
use sf_types::{DeterministicRng, NetworkConfig, NodeId, SfResult, SimulationConfig, SystemConfig};
use std::fmt;

/// The network designs compared in the paper's evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum TopologyKind {
    /// Distributed mesh (DM).
    DistributedMesh,
    /// Optimized distributed mesh with express links (ODM).
    OptimizedMesh,
    /// Full 2D flattened butterfly (FB).
    FlattenedButterfly,
    /// Adapted (partitioned) flattened butterfly (AFB).
    AdaptedFlattenedButterfly,
    /// Space Shuffle ideal baseline (S2-ideal).
    SpaceShuffle,
    /// String Figure (SF).
    StringFigure,
    /// Jellyfish random regular graph (used in the Figure 5 comparison).
    Jellyfish,
}

impl TopologyKind {
    /// The six designs of Figures 9–12, in the paper's plotting order.
    pub const ALL: [Self; 6] = [
        Self::DistributedMesh,
        Self::OptimizedMesh,
        Self::FlattenedButterfly,
        Self::AdaptedFlattenedButterfly,
        Self::SpaceShuffle,
        Self::StringFigure,
    ];

    /// Short name used in tables (matches the paper's abbreviations).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Self::DistributedMesh => "DM",
            Self::OptimizedMesh => "ODM",
            Self::FlattenedButterfly => "FB",
            Self::AdaptedFlattenedButterfly => "AFB",
            Self::SpaceShuffle => "S2",
            Self::StringFigure => "SF",
            Self::Jellyfish => "Jellyfish",
        }
    }

    /// The design whose [`name`](Self::name) is `name`, if any — the inverse
    /// of the table rendering, used when restoring checkpointed rows.
    #[must_use]
    pub fn from_name(name: &str) -> Option<Self> {
        [
            Self::DistributedMesh,
            Self::OptimizedMesh,
            Self::FlattenedButterfly,
            Self::AdaptedFlattenedButterfly,
            Self::SpaceShuffle,
            Self::StringFigure,
            Self::Jellyfish,
        ]
        .into_iter()
        .find(|k| k.name() == name)
    }

    /// Whether the design needs high-radix routers whose port count grows
    /// with network scale (Table II).
    #[must_use]
    pub fn requires_high_radix(self) -> bool {
        matches!(
            self,
            Self::FlattenedButterfly | Self::AdaptedFlattenedButterfly
        )
    }

    /// Whether the design supports reconfigurable (elastic) network scaling
    /// (Table II — only String Figure does).
    #[must_use]
    pub fn supports_reconfiguration(self) -> bool {
        matches!(self, Self::StringFigure)
    }

    /// Router ports used at a given network scale, following Figure 8's
    /// configuration table for the fixed-radix designs.
    #[must_use]
    pub fn figure8_ports(self, nodes: usize) -> usize {
        match self {
            Self::DistributedMesh => 4,
            Self::OptimizedMesh => 8,
            Self::SpaceShuffle | Self::StringFigure | Self::Jellyfish => {
                if nodes <= 128 {
                    4
                } else {
                    8
                }
            }
            // FB/AFB radix depends on the grid; reported after construction.
            Self::FlattenedButterfly | Self::AdaptedFlattenedButterfly => 0,
        }
    }
}

impl fmt::Display for TopologyKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// The concrete topology behind a [`NetworkInstance`].
#[derive(Debug, Clone)]
enum TopologyInstance {
    Mesh(MeshTopology),
    Butterfly(FlattenedButterfly),
    SpaceShuffle(S2Topology),
    StringFigure(StringFigureTopology),
    Jellyfish(JellyfishTopology),
}

/// A topology plus the routing protocol the paper evaluates it with.
#[derive(Debug)]
pub struct NetworkInstance {
    kind: TopologyKind,
    nodes: usize,
    seed: u64,
    topology: TopologyInstance,
}

impl NetworkInstance {
    /// Builds the network design `kind` at scale `nodes` with the given seed.
    ///
    /// # Errors
    ///
    /// Propagates topology construction errors (e.g. too few nodes).
    pub fn build(kind: TopologyKind, nodes: usize, seed: u64) -> SfResult<Self> {
        // Timed here rather than at the cache front-ends so every real
        // construction is visible whichever cache (or none) requested it;
        // cache hits never reach this function.
        let _span = sf_obs::span::Tracer::global().span("topology_build");
        let ports = kind.figure8_ports(nodes);
        let topology = match kind {
            TopologyKind::DistributedMesh => {
                TopologyInstance::Mesh(MeshTopology::distributed(nodes)?)
            }
            TopologyKind::OptimizedMesh => TopologyInstance::Mesh(MeshTopology::optimized(nodes)?),
            TopologyKind::FlattenedButterfly => {
                TopologyInstance::Butterfly(FlattenedButterfly::full(nodes)?)
            }
            TopologyKind::AdaptedFlattenedButterfly => {
                TopologyInstance::Butterfly(FlattenedButterfly::adapted(nodes)?)
            }
            TopologyKind::SpaceShuffle => {
                let config = NetworkConfig {
                    nodes,
                    ports,
                    seed,
                    ..NetworkConfig::default()
                };
                TopologyInstance::SpaceShuffle(S2Topology::generate(&config)?)
            }
            TopologyKind::StringFigure => {
                let config = NetworkConfig {
                    nodes,
                    ports,
                    seed,
                    ..NetworkConfig::default()
                };
                TopologyInstance::StringFigure(StringFigureTopology::generate(&config)?)
            }
            TopologyKind::Jellyfish => {
                TopologyInstance::Jellyfish(JellyfishTopology::generate(nodes, ports, seed)?)
            }
        };
        Ok(Self {
            kind,
            nodes,
            seed,
            topology,
        })
    }

    /// The design kind of this instance.
    #[must_use]
    pub fn kind(&self) -> TopologyKind {
        self.kind
    }

    /// Number of memory nodes.
    #[must_use]
    pub fn num_nodes(&self) -> usize {
        self.nodes
    }

    /// The live link graph.
    #[must_use]
    pub fn graph(&self) -> &AdjacencyGraph {
        match &self.topology {
            TopologyInstance::Mesh(t) => t.graph(),
            TopologyInstance::Butterfly(t) => t.graph(),
            TopologyInstance::SpaceShuffle(t) => t.graph(),
            TopologyInstance::StringFigure(t) => t.graph(),
            TopologyInstance::Jellyfish(t) => t.graph(),
        }
    }

    /// Router ports this design needs at this scale (for FB/AFB this is the
    /// actual constructed radix).
    #[must_use]
    pub fn router_ports(&self) -> usize {
        match &self.topology {
            TopologyInstance::Mesh(t) => t.router_ports(),
            TopologyInstance::Butterfly(t) => t.router_ports(),
            TopologyInstance::SpaceShuffle(t) => t.router_ports(),
            TopologyInstance::StringFigure(t) => t.router_ports(),
            TopologyInstance::Jellyfish(t) => t.router_ports(),
        }
    }

    /// The String Figure topology behind this instance, when applicable (used
    /// by reconfiguration experiments).
    #[must_use]
    pub fn as_string_figure(&self) -> Option<&StringFigureTopology> {
        match &self.topology {
            TopologyInstance::StringFigure(t) => Some(t),
            _ => None,
        }
    }

    /// Creates the routing protocol the paper pairs with this design.
    #[must_use]
    pub fn make_protocol(&self) -> Box<dyn RoutingProtocol> {
        match &self.topology {
            TopologyInstance::Mesh(t) => Box::new(MeshRouting::new(t)),
            TopologyInstance::Butterfly(t) => {
                Box::new(ShortestPathRouting::new(t.graph(), "minimal-adaptive"))
            }
            TopologyInstance::SpaceShuffle(t) => Box::new(GreediestRouting::from_parts(
                t.graph(),
                t.spaces(),
                GreediestOptions {
                    adaptive: false,
                    ..GreediestOptions::default()
                },
            )),
            TopologyInstance::StringFigure(t) => Box::new(GreediestRouting::new(t)),
            TopologyInstance::Jellyfish(t) => {
                Box::new(ShortestPathRouting::new(t.graph(), "k-shortest-path"))
            }
        }
    }

    /// Average shortest-path length of the topology (graph metric).
    #[must_use]
    pub fn average_shortest_path(&self) -> f64 {
        analysis::average_shortest_path_length(self.graph())
    }

    /// Average routed hop count over a pseudo-random sample of node pairs,
    /// using the design's own routing protocol.
    ///
    /// # Errors
    ///
    /// Propagates routing errors.
    pub fn average_routed_hops(&self, samples: usize) -> SfResult<f64> {
        let protocol = self.make_protocol();
        let mut rng = DeterministicRng::new(self.seed ^ 0xbeef);
        let mut total = 0usize;
        let mut count = 0usize;
        for _ in 0..samples.max(1) {
            let a = NodeId::new(rng.next_index(self.nodes));
            let b = NodeId::new(rng.next_index(self.nodes));
            if a == b {
                continue;
            }
            total += trace_route(protocol.as_ref(), a, b, self.nodes)?.hops();
            count += 1;
        }
        Ok(if count == 0 {
            0.0
        } else {
            total as f64 / count as f64
        })
    }

    /// Creates a cycle-level simulator for this design.
    ///
    /// # Errors
    ///
    /// Propagates simulator configuration errors.
    pub fn make_simulator(
        &self,
        system: SystemConfig,
        config: SimulationConfig,
    ) -> SfResult<NetworkSimulator> {
        NetworkSimulator::new(self.graph().clone(), self.make_protocol(), system, config)
    }

    /// Empirical minimum bisection bandwidth of this design (Section V's
    /// methodology).
    #[must_use]
    pub fn bisection_bandwidth(&self, samples: usize, seed: u64) -> analysis::BisectionBandwidth {
        let mut rng = DeterministicRng::new(seed);
        analysis::empirical_bisection_bandwidth(self.graph(), samples, &mut rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_kinds_build_and_route_at_64_nodes() {
        for kind in TopologyKind::ALL {
            let instance = NetworkInstance::build(kind, 64, 1).unwrap();
            assert_eq!(instance.num_nodes(), 64);
            assert!(instance.graph().is_connected(), "{kind}");
            let hops = instance.average_routed_hops(100).unwrap();
            assert!((1.0..20.0).contains(&hops), "{kind}: {hops}");
            assert!(instance.router_ports() >= 4, "{kind}");
        }
    }

    #[test]
    fn jellyfish_builds_too() {
        let instance = NetworkInstance::build(TopologyKind::Jellyfish, 100, 2).unwrap();
        assert!(instance.graph().is_connected());
        assert_eq!(instance.kind(), TopologyKind::Jellyfish);
        assert!(instance.average_shortest_path() < 5.0);
    }

    #[test]
    fn string_figure_accessor() {
        let sf = NetworkInstance::build(TopologyKind::StringFigure, 32, 1).unwrap();
        assert!(sf.as_string_figure().is_some());
        let mesh = NetworkInstance::build(TopologyKind::DistributedMesh, 32, 1).unwrap();
        assert!(mesh.as_string_figure().is_none());
    }

    #[test]
    fn fb_radix_grows_but_sf_stays_constant() {
        let fb_small = NetworkInstance::build(TopologyKind::FlattenedButterfly, 64, 1).unwrap();
        let fb_large = NetworkInstance::build(TopologyKind::FlattenedButterfly, 256, 1).unwrap();
        assert!(fb_large.router_ports() > fb_small.router_ports());
        let sf_small = NetworkInstance::build(TopologyKind::StringFigure, 64, 1).unwrap();
        let sf_large = NetworkInstance::build(TopologyKind::StringFigure, 256, 1).unwrap();
        assert_eq!(sf_small.router_ports(), 4);
        assert_eq!(sf_large.router_ports(), 8);
    }

    #[test]
    fn mesh_paths_are_longest_at_scale() {
        let mesh = NetworkInstance::build(TopologyKind::DistributedMesh, 256, 1).unwrap();
        let sf = NetworkInstance::build(TopologyKind::StringFigure, 256, 1).unwrap();
        assert!(mesh.average_shortest_path() > 2.0 * sf.average_shortest_path());
    }

    #[test]
    fn table2_feature_matrix() {
        assert!(!TopologyKind::DistributedMesh.requires_high_radix());
        assert!(TopologyKind::FlattenedButterfly.requires_high_radix());
        assert!(TopologyKind::AdaptedFlattenedButterfly.requires_high_radix());
        assert!(!TopologyKind::SpaceShuffle.supports_reconfiguration());
        assert!(TopologyKind::StringFigure.supports_reconfiguration());
        assert_eq!(TopologyKind::ALL.len(), 6);
        assert_eq!(TopologyKind::StringFigure.to_string(), "SF");
    }

    #[test]
    fn figure8_port_table() {
        assert_eq!(TopologyKind::StringFigure.figure8_ports(64), 4);
        assert_eq!(TopologyKind::StringFigure.figure8_ports(1296), 8);
        assert_eq!(TopologyKind::SpaceShuffle.figure8_ports(512), 8);
        assert_eq!(TopologyKind::DistributedMesh.figure8_ports(1024), 4);
        assert_eq!(TopologyKind::OptimizedMesh.figure8_ports(1024), 8);
    }

    #[test]
    fn bisection_bandwidth_is_positive() {
        let sf = NetworkInstance::build(TopologyKind::StringFigure, 64, 3).unwrap();
        let bb = sf.bisection_bandwidth(10, 1);
        assert!(bb.minimum > 0);
        assert!(bb.average >= bb.minimum as f64);
    }

    #[test]
    fn simulators_run_for_every_kind() {
        for kind in TopologyKind::ALL {
            let instance = NetworkInstance::build(kind, 36, 1).unwrap();
            let mut sim = instance
                .make_simulator(
                    SystemConfig::default(),
                    SimulationConfig {
                        max_cycles: 600,
                        warmup_cycles: 100,
                        ..SimulationConfig::default()
                    },
                )
                .unwrap();
            let mut traffic = sf_netsim::UniformRandomTraffic::new(36, 0.03, 5);
            let stats = sim.run(&mut traffic).unwrap();
            assert!(stats.delivered > 0, "{kind}");
        }
    }
}
