//! The unified experiment API: [`Study`] trait, [`RunContext`], and the
//! [`StudyRegistry`] of all eight paper artefacts.
//!
//! Every evaluation artefact of the paper (Figures 5, 8, 9a, 9b, 10, 11, 12
//! and the Section V bisection methodology) is a [`Study`]: a named,
//! self-describing driver that knows its own quick/full parameter grid and
//! produces a machine-readable [`Table`]. Studies run inside a builder-style
//! [`RunContext`] owning everything an experiment needs:
//!
//! * the sweep worker pool (`sf-harness`),
//! * the shared topology [`BuildCache`],
//! * the [`ExperimentScale`] policy (quick vs. paper scale, simulation
//!   shards),
//! * the artifact emitters (CSV / JSON paths), and
//! * an optional **checkpoint journal** for resumable mega-sweeps: every
//!   completed sweep job is appended to `<csv>.journal`, so an interrupted
//!   run restarted with the same command restores finished jobs instead of
//!   recomputing them — and the final artifact is **byte-identical** to an
//!   uninterrupted run (job results round-trip exactly through the journal).
//!
//! Beyond the paper, [`StudyRegistry::extended`] groups the scenario
//! studies (fault injection, adversarial traffic, scale-out past 1296
//! nodes) that the same trait machinery makes additive; the `sfbench` CLI
//! in `sf-bench` is a thin multiplexer over [`StudyRegistry::all`] (paper
//! plus extended), and the old per-figure binaries are shims that delegate
//! to the same registry.

use crate::comparison::{NetworkInstance, TopologyKind};
use crate::experiments::{
    self, adversarial_saturation_study_with_ctx, bisection_study_with_ctx,
    configuration_table_with_ctx, fault_resilience_study_with_ctx, hop_count_study_with_ctx,
    latency_curve_with_ctx, megasweep_study_with_ctx, power_gating_study_with_ctx,
    saturation_study_with_ctx, scaleout_study_with_ctx, surg_path_length_study_with_ctx,
    workload_study_with_ctx, ExperimentScale, FaultResilienceRow, HopCountRow, LatencyPoint,
    MegasweepRow, PowerGateRow, SaturationRow, WorkloadRow,
};
use sf_harness::fabric::{self, Partition, ShardFormat, ShardMeta};
use sf_harness::journal::{self, Journal};
use sf_harness::pool::PoolConfig;
use sf_harness::sink::RowSink;
use sf_harness::sweep::{JobCtx, LazySweep, SweepError};
use sf_harness::table::{Record, Table, Value};
use sf_harness::BuildCache;
use sf_topology::analysis::BisectionBandwidth;
use sf_types::{SfError, SfResult};
use sf_workloads::{ApplicationModel, SyntheticPattern};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

// ---------------------------------------------------------------------------
// Checkpointable job results
// ---------------------------------------------------------------------------

/// A sweep-job result that can round-trip through the checkpoint journal.
///
/// `from_cells(to_cells(r)) == Some(r)` must hold **exactly** (floats are
/// journalled with shortest-roundtrip formatting), which is what makes a
/// resumed run's artifact byte-identical to an uninterrupted one.
pub trait CheckpointRow: Sized {
    /// Encodes this result as journal cells.
    fn to_cells(&self) -> Vec<Value>;
    /// Decodes a result previously encoded with [`to_cells`](Self::to_cells).
    fn from_cells(cells: &[Value]) -> Option<Self>;
}

fn cell_f64(cell: &Value) -> Option<f64> {
    match cell {
        Value::Float(x) => Some(*x),
        _ => None,
    }
}

fn cell_u64(cell: &Value) -> Option<u64> {
    match cell {
        Value::UInt(u) => Some(*u),
        _ => None,
    }
}

fn cell_usize(cell: &Value) -> Option<usize> {
    cell_u64(cell).map(|u| u as usize)
}

fn cell_bool(cell: &Value) -> Option<bool> {
    match cell {
        Value::Bool(b) => Some(*b),
        _ => None,
    }
}

fn cell_str(cell: &Value) -> Option<&str> {
    match cell {
        Value::Str(s) => Some(s),
        _ => None,
    }
}

fn cell_opt_f64(cell: &Value) -> Option<Option<f64>> {
    match cell {
        Value::Null => Some(None),
        Value::Float(x) => Some(Some(*x)),
        _ => None,
    }
}

impl CheckpointRow for f64 {
    fn to_cells(&self) -> Vec<Value> {
        vec![(*self).into()]
    }
    fn from_cells(cells: &[Value]) -> Option<Self> {
        match cells {
            [cell] => cell_f64(cell),
            _ => None,
        }
    }
}

impl CheckpointRow for HopCountRow {
    fn to_cells(&self) -> Vec<Value> {
        self.values()
    }
    fn from_cells(cells: &[Value]) -> Option<Self> {
        let [kind, nodes, asp, hops, ports] = cells else {
            return None;
        };
        Some(Self {
            kind: TopologyKind::from_name(cell_str(kind)?)?,
            nodes: cell_usize(nodes)?,
            average_shortest_path: cell_f64(asp)?,
            average_routed_hops: cell_f64(hops)?,
            router_ports: cell_usize(ports)?,
        })
    }
}

impl CheckpointRow for SaturationRow {
    fn to_cells(&self) -> Vec<Value> {
        self.values()
    }
    fn from_cells(cells: &[Value]) -> Option<Self> {
        let [kind, nodes, pattern, point] = cells else {
            return None;
        };
        Some(Self {
            kind: TopologyKind::from_name(cell_str(kind)?)?,
            nodes: cell_usize(nodes)?,
            pattern: SyntheticPattern::from_name(cell_str(pattern)?)?,
            saturation_percent: cell_opt_f64(point)?,
        })
    }
}

impl CheckpointRow for LatencyPoint {
    fn to_cells(&self) -> Vec<Value> {
        self.values()
    }
    fn from_cells(cells: &[Value]) -> Option<Self> {
        let [rate, latency, throughput, saturated] = cells else {
            return None;
        };
        Some(Self {
            injection_rate: cell_f64(rate)?,
            average_latency_cycles: cell_f64(latency)?,
            accepted_throughput: cell_f64(throughput)?,
            saturated: cell_bool(saturated)?,
        })
    }
}

impl CheckpointRow for WorkloadRow {
    fn to_cells(&self) -> Vec<Value> {
        self.values()
    }
    fn from_cells(cells: &[Value]) -> Option<Self> {
        let [kind, workload, rpc, rtt, epr, total] = cells else {
            return None;
        };
        Some(Self {
            kind: TopologyKind::from_name(cell_str(kind)?)?,
            workload: ApplicationModel::from_name(cell_str(workload)?)?,
            requests_per_cycle: cell_f64(rpc)?,
            average_round_trip_cycles: cell_f64(rtt)?,
            energy_per_request_pj: cell_f64(epr)?,
            total_energy_pj: cell_f64(total)?,
        })
    }
}

impl CheckpointRow for PowerGateRow {
    fn to_cells(&self) -> Vec<Value> {
        self.values()
    }
    fn from_cells(cells: &[Value]) -> Option<Self> {
        let [fraction, gated, edp, norm, rtt] = cells else {
            return None;
        };
        Some(Self {
            gated_fraction: cell_f64(fraction)?,
            gated_nodes: cell_usize(gated)?,
            energy_delay_product: cell_f64(edp)?,
            normalized_edp: cell_f64(norm)?,
            average_round_trip_cycles: cell_f64(rtt)?,
        })
    }
}

impl CheckpointRow for BisectionBandwidth {
    fn to_cells(&self) -> Vec<Value> {
        vec![
            self.minimum.into(),
            self.average.into(),
            self.samples.into(),
        ]
    }
    fn from_cells(cells: &[Value]) -> Option<Self> {
        let [minimum, average, samples] = cells else {
            return None;
        };
        Some(Self {
            minimum: cell_u64(minimum)?,
            average: cell_f64(average)?,
            samples: cell_usize(samples)?,
        })
    }
}

impl CheckpointRow for FaultResilienceRow {
    fn to_cells(&self) -> Vec<Value> {
        self.values()
    }
    fn from_cells(cells: &[Value]) -> Option<Self> {
        let [kind, nodes, links, routers, link_ev, router_ev, injected, completed, dropped, ratio, rtt] =
            cells
        else {
            return None;
        };
        Some(Self {
            kind: TopologyKind::from_name(cell_str(kind)?)?,
            nodes: cell_usize(nodes)?,
            links_per_wave: cell_usize(links)?,
            routers_per_wave: cell_usize(routers)?,
            link_down_events: cell_u64(link_ev)?,
            router_down_events: cell_u64(router_ev)?,
            injected: cell_u64(injected)?,
            completed_requests: cell_u64(completed)?,
            dropped_packets: cell_u64(dropped)?,
            completion_ratio: cell_f64(ratio)?,
            average_round_trip_cycles: cell_f64(rtt)?,
        })
    }
}

impl CheckpointRow for MegasweepRow {
    fn to_cells(&self) -> Vec<Value> {
        self.values()
    }
    fn from_cells(cells: &[Value]) -> Option<Self> {
        let [kind, nodes, rate, seed, latency, throughput, saturated] = cells else {
            return None;
        };
        Some(Self {
            kind: TopologyKind::from_name(cell_str(kind)?)?,
            nodes: cell_usize(nodes)?,
            injection_rate: cell_f64(rate)?,
            seed: cell_u64(seed)?,
            average_latency_cycles: cell_f64(latency)?,
            accepted_throughput: cell_f64(throughput)?,
            saturated: cell_bool(saturated)?,
        })
    }
}

impl CheckpointRow for crate::experiments::ConfigurationRow {
    fn to_cells(&self) -> Vec<Value> {
        self.values()
    }
    fn from_cells(cells: &[Value]) -> Option<Self> {
        let [kind, nodes, ports, links, radix, reconf] = cells else {
            return None;
        };
        Some(Self {
            kind: TopologyKind::from_name(cell_str(kind)?)?,
            nodes: cell_usize(nodes)?,
            router_ports: cell_usize(ports)?,
            links: cell_usize(links)?,
            requires_high_radix: cell_bool(radix)?,
            supports_reconfiguration: cell_bool(reconf)?,
        })
    }
}

// ---------------------------------------------------------------------------
// RunContext
// ---------------------------------------------------------------------------

/// The build-once topology cache studies share: `(design, nodes, seed)` →
/// generated [`NetworkInstance`].
pub type TopologyCache = BuildCache<(TopologyKind, usize, u64), NetworkInstance>;

/// An observer invoked with every row a [`RowStream`] writes, in delivery
/// (enumeration) order — the seam the `sfbench serve` daemon uses to stream
/// result rows to a submitting client while the artifact files are being
/// written. Taps are passive: they cannot alter, reorder, or fail the rows,
/// so artifacts are byte-identical with or without one.
#[derive(Clone)]
pub struct RowTap(RowObserver);

type RowObserver = Arc<dyn Fn(&[Value]) + Send + Sync>;

impl RowTap {
    /// Wraps a row observer.
    pub fn new(observer: impl Fn(&[Value]) + Send + Sync + 'static) -> Self {
        Self(Arc::new(observer))
    }

    fn observe(&self, cells: &[Value]) {
        (self.0)(cells);
    }
}

impl std::fmt::Debug for RowTap {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("RowTap(..)")
    }
}

/// Where a study's result table is written after the run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Emitter {
    /// Write the table's CSV form to this path.
    Csv(PathBuf),
    /// Write the table's JSON form to this path.
    Json(PathBuf),
}

/// Everything a study runs inside: worker pool, topology cache, scale
/// policy, artifact emitters, and the optional checkpoint journal.
///
/// Built builder-style:
///
/// ```
/// use sf_harness::pool::PoolConfig;
/// use stringfigure::study::RunContext;
///
/// let ctx = RunContext::new()
///     .with_pool(PoolConfig::serial())
///     .quick(true)
///     .with_shards(2);
/// assert!(ctx.is_quick());
/// ```
#[derive(Debug)]
pub struct RunContext {
    pool: PoolConfig,
    quick: bool,
    shards: usize,
    scale_override: Option<ExperimentScale>,
    cache: Option<Arc<TopologyCache>>,
    emitters: Vec<Emitter>,
    checkpoint_path: Option<PathBuf>,
    max_journal_bytes: Option<u64>,
    telemetry: Option<PathBuf>,
    telemetry_every: Option<u64>,
    partition: Option<Partition>,
    row_tap: Option<RowTap>,
    /// Total point count of the last partitioned sweep (the *unpartitioned*
    /// grid size), recorded by `run_jobs_streaming` so `execute` can stamp
    /// shard metadata without re-deriving the grid. `u64::MAX` = unset.
    partition_total: AtomicU64,
    journal: OnceLock<Journal>,
    sweep_seq: AtomicU64,
}

impl Default for RunContext {
    fn default() -> Self {
        Self::new()
    }
}

impl RunContext {
    /// A context with the default worker pool, full (paper) scale, no
    /// emitters, and no checkpointing.
    #[must_use]
    pub fn new() -> Self {
        Self {
            pool: PoolConfig::auto(),
            quick: false,
            shards: 0,
            scale_override: None,
            cache: None,
            emitters: Vec::new(),
            checkpoint_path: None,
            max_journal_bytes: None,
            telemetry: None,
            telemetry_every: None,
            partition: None,
            row_tap: None,
            partition_total: AtomicU64::new(u64::MAX),
            journal: OnceLock::new(),
            sweep_seq: AtomicU64::new(0),
        }
    }

    /// Sets the sweep worker pool.
    #[must_use]
    pub fn with_pool(mut self, pool: PoolConfig) -> Self {
        self.pool = pool;
        self
    }

    /// Selects quick (smoke) scale instead of the study's full scale.
    #[must_use]
    pub fn quick(mut self, quick: bool) -> Self {
        self.quick = quick;
        self
    }

    /// Forces an intra-simulation router shard count (`0` = automatic).
    /// Sharding only trades wall-clock time; rows are bit-identical.
    #[must_use]
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.shards = shards;
        self
    }

    /// Overrides the simulation scale for every study run in this context
    /// (otherwise each study picks its own quick/full scale).
    #[must_use]
    pub fn with_scale(mut self, scale: ExperimentScale) -> Self {
        self.scale_override = Some(scale);
        self
    }

    /// Uses a private topology [`BuildCache`] instead of the process-wide
    /// one (useful for isolation in tests).
    #[must_use]
    pub fn with_build_cache(mut self, cache: Arc<TopologyCache>) -> Self {
        self.cache = Some(cache);
        self
    }

    /// Adds a CSV emitter for the study's result table.
    #[must_use]
    pub fn with_csv(mut self, path: impl Into<PathBuf>) -> Self {
        self.emitters.push(Emitter::Csv(path.into()));
        self
    }

    /// Adds a JSON emitter for the study's result table.
    #[must_use]
    pub fn with_json(mut self, path: impl Into<PathBuf>) -> Self {
        self.emitters.push(Emitter::Json(path.into()));
        self
    }

    /// Enables checkpoint/resume: completed sweep jobs are journalled at
    /// `path` (conventionally `<csv>.journal`), restored by a later run of
    /// the same study at the same scale, and the file is removed once the
    /// final artifact is written.
    #[must_use]
    pub fn with_checkpoint(mut self, path: impl Into<PathBuf>) -> Self {
        self.checkpoint_path = Some(path.into());
        self
    }

    /// Caps the checkpoint journal's append log: once it outgrows `bytes`,
    /// it is compacted in place to a kill-safe snapshot (and an oversized
    /// journal found on resume is compacted before the run continues). The
    /// cap changes only disk usage, never output bytes, so it is — like
    /// worker and shard counts — excluded from the resume fingerprint.
    #[must_use]
    pub fn with_max_journal_bytes(mut self, bytes: u64) -> Self {
        self.max_journal_bytes = Some(bytes);
        self
    }

    /// Records an `sf-telemetry/v1` stream of every simulation this context
    /// runs at `path` (written via the atomic `.part`-rename pattern).
    /// Telemetry is strictly out-of-band — result artifacts are
    /// byte-identical with it on or off — and the stream itself is, like
    /// every other artifact, bit-identical for any worker or shard count.
    /// Like those parallelism knobs it is excluded from the resume
    /// fingerprint; note a resumed run skips restored jobs' simulations, so
    /// stream comparisons should use fresh (`--no-resume`) runs.
    #[must_use]
    pub fn with_telemetry(mut self, path: impl Into<PathBuf>) -> Self {
        self.telemetry = Some(path.into());
        self
    }

    /// Sets the telemetry sampling stride in cycles (default
    /// [`sf_obs::telemetry::DEFAULT_EVERY`]; clamped to at least 1).
    #[must_use]
    pub fn with_telemetry_every(mut self, every: u64) -> Self {
        self.telemetry_every = Some(every.max(1));
        self
    }

    /// Restricts every sweep this context runs to partition `p` of the
    /// distributed fabric: only the points in the partition's contiguous
    /// global index range execute, each keeping its **global** index (and
    /// therefore its derived seed and journal key), so the union of all
    /// partitions' rows is bit-identical to the unpartitioned run. Only
    /// meaningful for single-sweep row-streaming studies — the CLI enforces
    /// that gate.
    #[must_use]
    pub fn with_partition(mut self, p: Partition) -> Self {
        self.partition = Some(p);
        self
    }

    /// The partition configured with
    /// [`with_partition`](Self::with_partition), if any.
    #[must_use]
    pub fn partition(&self) -> Option<Partition> {
        self.partition
    }

    /// Installs a [`RowTap`] observing every row the context's
    /// [`RowStream`]s deliver, in enumeration order. Purely additive:
    /// artifact bytes are unchanged.
    #[must_use]
    pub fn with_row_tap(mut self, tap: RowTap) -> Self {
        self.row_tap = Some(tap);
        self
    }

    /// The telemetry stream path configured with
    /// [`with_telemetry`](Self::with_telemetry), if any.
    #[must_use]
    pub fn telemetry(&self) -> Option<&Path> {
        self.telemetry.as_deref()
    }

    /// The effective telemetry sampling stride of this context's
    /// simulations: 0 (off) without a stream path, else the configured or
    /// default stride.
    #[must_use]
    pub fn telemetry_every(&self) -> u64 {
        if self.telemetry.is_none() {
            return 0;
        }
        self.telemetry_every
            .unwrap_or(sf_obs::telemetry::DEFAULT_EVERY)
    }

    /// Whether this context runs studies at quick (smoke) scale.
    #[must_use]
    pub fn is_quick(&self) -> bool {
        self.quick
    }

    /// The sweep worker pool.
    #[must_use]
    pub fn pool(&self) -> &PoolConfig {
        &self.pool
    }

    /// The configured emitters.
    #[must_use]
    pub fn emitters(&self) -> &[Emitter] {
        &self.emitters
    }

    /// The journal path configured with
    /// [`with_checkpoint`](Self::with_checkpoint), if any.
    #[must_use]
    pub fn checkpoint_path(&self) -> Option<&Path> {
        self.checkpoint_path.as_deref()
    }

    /// Resolves the simulation scale a study should run at: the explicit
    /// override if one was set, else quick or the study's own `full` scale,
    /// with the context's shard count applied on top.
    #[must_use]
    pub fn scale(&self, full: ExperimentScale) -> ExperimentScale {
        let base = self.scale_override.unwrap_or(if self.quick {
            ExperimentScale::quick()
        } else {
            full
        });
        let base = if self.shards > 0 {
            base.with_shards(self.shards)
        } else {
            base
        };
        base.with_telemetry_every(self.telemetry_every())
    }

    /// Builds or reuses the network design `kind` at scale `nodes` with
    /// `seed` through this context's topology cache.
    ///
    /// # Errors
    ///
    /// Propagates topology construction errors.
    pub fn instance(
        &self,
        kind: TopologyKind,
        nodes: usize,
        seed: u64,
    ) -> SfResult<Arc<NetworkInstance>> {
        match &self.cache {
            Some(cache) => cache.get_or_build((kind, nodes, seed), || {
                NetworkInstance::build(kind, nodes, seed)
            }),
            None => experiments::cached_instance(kind, nodes, seed),
        }
    }

    /// Opens the checkpoint journal for a run identified by `fingerprint`,
    /// restoring any completed jobs a previous interrupted run recorded.
    /// Returns the number of restored jobs; a no-op returning 0 when no
    /// checkpoint path is configured.
    ///
    /// # Errors
    ///
    /// Surfaces journal I/O failures as [`SfError::Simulation`].
    pub fn resume_checkpoint(&self, fingerprint: u64) -> SfResult<usize> {
        let Some(path) = &self.checkpoint_path else {
            return Ok(0);
        };
        if let Some(journal) = self.journal.get() {
            return Ok(journal.restored_count());
        }
        let journal =
            Journal::open_with_limit(path, fingerprint, self.max_journal_bytes).map_err(|e| {
                SfError::Simulation {
                    reason: format!("cannot open checkpoint journal {}: {e}", path.display()),
                }
            })?;
        // An interrupted mega-sweep can leave a log far past the cap; settle
        // it to a snapshot before appending more.
        let compacted = journal.maybe_compact().map_err(|e| SfError::Simulation {
            reason: format!("cannot compact checkpoint journal {}: {e}", path.display()),
        })?;
        if compacted {
            sf_obs::progress::Progress::global().note(&format!(
                "# compacted checkpoint journal {} to {} byte(s)",
                path.display(),
                journal.len_bytes()
            ));
        }
        let restored = journal.restored_count();
        let _ = self.journal.set(journal);
        Ok(restored)
    }

    /// The open checkpoint journal, if [`resume_checkpoint`] ran.
    ///
    /// [`resume_checkpoint`]: Self::resume_checkpoint
    #[must_use]
    pub fn journal(&self) -> Option<&Journal> {
        self.journal.get()
    }

    /// Runs one streaming sweep of `points` through the worker pool,
    /// delivering each completed row to `on_row` **in enumeration order**
    /// without collecting the rows — **the** single execution path every
    /// study driver uses (the collecting [`run_jobs`](Self::run_jobs) is a
    /// thin wrapper). This is the bounded-memory pipeline: points stream in
    /// from the iterator, rows stream out through the callback, and the
    /// engine only buffers the out-of-order window, so a million-point
    /// mega-sweep peaks at `O(workers × chunk)` memory.
    ///
    /// With a checkpoint journal open, jobs completed by a previous
    /// interrupted run are restored from the journal instead of recomputed
    /// (and still flow through `on_row` in order), and every newly completed
    /// job is journalled (and flushed) before its row is delivered — which
    /// is what makes `kill -9` at any point resumable with bit-identical
    /// final output. Returns the number of rows delivered.
    ///
    /// # Errors
    ///
    /// Returns the lowest-indexed job error (panics inside a job surface as
    /// [`SfError::Simulation`] tagged with the job index) or the first error
    /// `on_row` returned. The first error **cancels the sweep**: no further
    /// points are pulled, so a failed mega-sweep stops within the in-flight
    /// window instead of computing the rest of its grid.
    pub fn run_jobs_streaming<I, P, R, F, S>(
        &self,
        points: I,
        job: F,
        mut on_row: S,
    ) -> SfResult<usize>
    where
        I: IntoIterator<Item = P>,
        I::IntoIter: ExactSizeIterator + Send,
        P: Send,
        R: CheckpointRow + Send,
        F: Fn(JobCtx, &P) -> SfResult<R> + Sync,
        S: FnMut(usize, R) -> SfResult<()> + Send,
    {
        let seq = self.sweep_seq.fetch_add(1, Ordering::Relaxed);
        let journal = self.journal.get();
        let mut failure: Option<SfError> = None;
        let mut delivered = 0usize;
        let points = points.into_iter();
        // Partitioning slices the stream to a contiguous global index range;
        // the index offset lifts job indices back to their grid-global
        // values, so seeds, journal keys, and telemetry scopes are exactly
        // the unpartitioned run's. (The `0..len` range of the unpartitioned
        // case makes this one code path, not two.)
        let total = points.len();
        let range = match self.partition {
            Some(p) => {
                self.partition_total.store(total as u64, Ordering::Relaxed);
                fabric::partition_range(total, p)
            }
            None => 0..total,
        };
        let points = points.skip(range.start).take(range.len());
        let progress = sf_obs::progress::Progress::global();
        progress.start_sweep(points.len());
        LazySweep::new(points)
            .with_index_offset(range.start)
            .run_streaming(
                &self.pool,
                |jctx, point| {
                    // Telemetry blocks this job's simulations submit are keyed
                    // by (sweep, job index) so the collector can write them in
                    // enumeration order, whatever worker ran the job.
                    let _telemetry_scope = sf_obs::telemetry::job_scope(seq, jctx.index as u64);
                    if let Some(journal) = journal {
                        if let Some(cells) = journal.restored(seq, jctx.index as u64) {
                            if let Some(row) = R::from_cells(cells) {
                                return Ok(row);
                            }
                        }
                    }
                    let row = job(jctx, point)?;
                    if let Some(journal) = journal {
                        journal
                            .record(seq, jctx.index as u64, &row.to_cells())
                            .map_err(|e| SfError::Simulation {
                                reason: format!("checkpoint journal write failed: {e}"),
                            })?;
                    }
                    Ok(row)
                },
                |outcome| {
                    // Ordered delivery means the first failure seen is the
                    // lowest-indexed one — the error the old serial loops
                    // surfaced. Returning false cancels the sweep, so a failed
                    // mega-sweep stops instead of running the rest of its grid.
                    match outcome.result {
                        Ok(row) => match on_row(outcome.index, row) {
                            Ok(()) => {
                                delivered += 1;
                                // This callback runs in enumeration order, so
                                // flushing parked telemetry here pins the
                                // stream's block order to the job order.
                                sf_obs::telemetry::Collector::global()
                                    .deliver_through(seq, outcome.index as u64);
                                progress.tick(1, 1);
                                true
                            }
                            Err(e) => {
                                failure = Some(e);
                                false
                            }
                        },
                        Err(SweepError::Job(e)) => {
                            failure = Some(e);
                            false
                        }
                        Err(SweepError::Panic(message)) => {
                            failure = Some(SfError::Simulation {
                                reason: format!(
                                    "experiment job {} panicked: {message}",
                                    outcome.index
                                ),
                            });
                            false
                        }
                    }
                },
            );
        progress.finish_sweep();
        match failure {
            Some(e) => Err(e),
            None => Ok(delivered),
        }
    }

    /// [`run_jobs_streaming`](Self::run_jobs_streaming) collecting the rows
    /// into a `Vec` — the path for studies whose grids are small enough to
    /// hold (every `Vec<P>` also streams through here, which keeps old
    /// drivers compiling unchanged).
    ///
    /// # Errors
    ///
    /// Returns the lowest-indexed job error; panics inside a job surface as
    /// [`SfError::Simulation`] tagged with the job index.
    pub fn run_jobs<I, P, R, F>(&self, points: I, job: F) -> SfResult<Vec<R>>
    where
        I: IntoIterator<Item = P>,
        I::IntoIter: ExactSizeIterator + Send,
        P: Send,
        R: CheckpointRow + Send,
        F: Fn(JobCtx, &P) -> SfResult<R> + Sync,
    {
        let mut rows = Vec::new();
        self.run_jobs_streaming(points, job, |_, row| {
            rows.push(row);
            Ok(())
        })?;
        Ok(rows)
    }

    /// Opens one streaming [`RowSink`] per configured emitter, all sharing
    /// `columns` — the artifact end of the bounded-memory pipeline. With no
    /// emitters configured the stream is an empty no-op.
    ///
    /// # Errors
    ///
    /// Surfaces filesystem failures as [`SfError::Simulation`].
    pub fn open_row_stream<S: AsRef<str>>(&self, columns: &[S]) -> SfResult<RowStream> {
        let mut sinks = Vec::with_capacity(self.emitters.len());
        for emitter in &self.emitters {
            let (path, sink) = match emitter {
                Emitter::Csv(path) => (path, RowSink::csv(path, columns)),
                Emitter::Json(path) => (path, RowSink::json(path, columns)),
            };
            sinks.push(sink.map_err(|e| SfError::Simulation {
                reason: format!("cannot open artifact {}: {e}", path.display()),
            })?);
        }
        Ok(RowStream {
            sinks,
            tap: self.row_tap.clone(),
        })
    }

    /// Writes `table` through every configured emitter — the post-hoc path
    /// for studies that aggregate before emitting. Runs over the same
    /// streaming sinks as [`open_row_stream`](Self::open_row_stream), so
    /// both paths produce identical bytes.
    ///
    /// # Errors
    ///
    /// Surfaces filesystem failures as [`SfError::Simulation`].
    pub fn emit(&self, table: &Table) -> SfResult<()> {
        let mut stream = self.open_row_stream(&table.columns)?;
        for row in &table.rows {
            stream.push(row)?;
        }
        stream.finish()
    }
}

/// The artifact end of a streaming run: every pushed row goes to each of the
/// context's emitters incrementally, and [`finish`](Self::finish) finalises
/// all artifacts atomically. Created by
/// [`RunContext::open_row_stream`]; dropping without `finish` discards the
/// partial artifacts and leaves the destinations untouched.
#[derive(Debug)]
pub struct RowStream {
    sinks: Vec<RowSink>,
    tap: Option<RowTap>,
}

impl RowStream {
    /// Appends one row to every open sink, then notifies the context's
    /// [`RowTap`] (if one is installed).
    ///
    /// # Errors
    ///
    /// Surfaces filesystem failures as [`SfError::Simulation`].
    pub fn push(&mut self, cells: &[Value]) -> SfResult<()> {
        for sink in &mut self.sinks {
            // Error context is formatted only on failure — push runs once
            // per row per sink inside the serialised emit section, so the
            // success path must not allocate.
            if let Err(e) = sink.push(cells) {
                return Err(SfError::Simulation {
                    reason: format!("cannot write artifact {}: {e}", sink.path().display()),
                });
            }
        }
        if let Some(tap) = &self.tap {
            tap.observe(cells);
        }
        Ok(())
    }

    /// Number of sinks this stream writes to.
    #[must_use]
    pub fn len(&self) -> usize {
        self.sinks.len()
    }

    /// Whether the stream has no sinks (no emitters configured).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.sinks.is_empty()
    }

    /// Finalises and atomically publishes every artifact.
    ///
    /// # Errors
    ///
    /// Surfaces filesystem failures as [`SfError::Simulation`].
    pub fn finish(self) -> SfResult<()> {
        for sink in self.sinks {
            let path = sink.path().display().to_string();
            let rows = sink.rows();
            sink.finish().map_err(|e| SfError::Simulation {
                reason: format!("cannot write artifact {path}: {e}"),
            })?;
            sf_obs::progress::Progress::global().note(&format!("# wrote {path} ({rows} rows)"));
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Study trait and grid description
// ---------------------------------------------------------------------------

/// The parameter grid a study will sweep at a given scale: named axes and
/// their point counts, enumerable lazily in row-major order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StudyGrid {
    /// `(axis name, point count)` pairs, outermost axis first.
    pub axes: Vec<(&'static str, usize)>,
}

impl StudyGrid {
    /// A grid over the given axes.
    #[must_use]
    pub fn new(axes: Vec<(&'static str, usize)>) -> Self {
        Self { axes }
    }

    /// Total number of sweep jobs (product of the axis sizes).
    #[must_use]
    pub fn jobs(&self) -> usize {
        self.axes.iter().map(|(_, n)| *n).product()
    }

    /// Streams every grid point as per-axis indices (row-major, outermost
    /// axis first) without materialising the grid.
    pub fn points(&self) -> impl ExactSizeIterator<Item = Vec<usize>> + Send + '_ {
        let sizes: Vec<usize> = self.axes.iter().map(|(_, n)| *n).collect();
        (0..self.jobs()).map(move |mut flat| {
            let mut coords = vec![0usize; sizes.len()];
            for (slot, &size) in coords.iter_mut().zip(&sizes).rev() {
                *slot = flat % size.max(1);
                flat /= size.max(1);
            }
            coords
        })
    }

    /// The grid as a streaming [`LazySweep`] over its points — the shape a
    /// million-point mega-sweep runs in.
    #[must_use]
    pub fn lazy_sweep(&self) -> LazySweep<impl ExactSizeIterator<Item = Vec<usize>> + Send + '_> {
        LazySweep::new(self.points())
    }
}

/// One evaluation artefact of the paper, runnable by name through the
/// registry and the `sfbench` CLI.
pub trait Study: Send + Sync {
    /// Short registry name (`fig10`, `bisection`, …).
    fn name(&self) -> &'static str;

    /// Alternative names this study answers to (e.g. the old binary name).
    fn aliases(&self) -> &'static [&'static str] {
        &[]
    }

    /// The paper artefact this study reproduces (`Figure 10`, `Table II`…).
    fn artefact(&self) -> &'static str;

    /// One-line human description (shown by `sfbench list`; never empty).
    fn description(&self) -> &'static str;

    /// The `experiments` module driver behind this study, for the
    /// registry-completeness test.
    fn driver(&self) -> &'static str;

    /// The parameter grid this study sweeps at the context's scale.
    fn grid(&self, ctx: &RunContext) -> StudyGrid;

    /// Runs the study and returns its result table — the exact table the
    /// figure binary historically emitted via `--csv`.
    ///
    /// # Errors
    ///
    /// Propagates construction, workload, and simulation errors.
    fn run(&self, ctx: &RunContext) -> SfResult<Table>;

    /// Whether [`run`](Self::run) streams its rows straight to the context's
    /// emitters while the sweep executes, returning only a summary table —
    /// the shape mega-sweeps take, whose row sets must never be collected.
    /// [`execute`] then skips the post-hoc emission of the returned table.
    fn streams_rows(&self) -> bool {
        false
    }

    /// Prints any extra derived tables the old binary showed on stdout
    /// (normalised figures, feature matrices). Default: nothing.
    fn print_extras(&self, table: &Table) {
        let _ = table;
    }
}

/// The identity parts of running `study` in `ctx`, *without* any partition
/// coordinate — the serial run's identity, shared by every shard of one
/// distributed run.
fn fingerprint_parts(study: &dyn Study, ctx: &RunContext) -> Vec<String> {
    let mut parts: Vec<String> = vec![
        study.name().to_string(),
        if ctx.is_quick() { "quick" } else { "full" }.to_string(),
    ];
    if let Some(scale) = ctx.scale_override {
        parts.push(format!(
            "scale:{}:{}",
            scale.max_cycles, scale.warmup_cycles
        ));
    }
    parts
}

/// The checkpoint fingerprint of running `study` in `ctx`: identifies the
/// study and everything that changes its grid or rows, while deliberately
/// excluding worker/shard counts (which never change output bytes), so a
/// resume may use different parallelism than the interrupted run. A
/// partitioned context additionally folds in its `i/N` coordinate, so a
/// partition journal can never be misapplied to a different partition (or to
/// the serial run).
#[must_use]
pub fn study_fingerprint(study: &dyn Study, ctx: &RunContext) -> u64 {
    let mut parts = fingerprint_parts(study, ctx);
    if let Some(p) = ctx.partition() {
        parts.push(format!("partition:{p}"));
    }
    journal::fingerprint(parts)
}

/// The **serial** (partition-free) fingerprint of running `study` in `ctx` —
/// what shard metadata records and what a merged artifact's resume journal
/// carries, identical across all partitions of one run.
#[must_use]
pub fn study_fingerprint_serial(study: &dyn Study, ctx: &RunContext) -> u64 {
    journal::fingerprint(fingerprint_parts(study, ctx))
}

/// Runs `study` end to end inside `ctx`: opens the checkpoint journal (when
/// configured), executes the study, writes every emitter, and removes the
/// journal once the artifact is safely on disk.
///
/// # Errors
///
/// Propagates study and emitter errors; on error the journal is kept so the
/// run can be resumed.
pub fn execute(study: &dyn Study, ctx: &RunContext) -> SfResult<Table> {
    let progress = sf_obs::progress::Progress::global();
    progress.set_task(study.name());
    // Telemetry brackets the whole run: the stream opens (as a .part)
    // before any simulation and publishes atomically only on success, so a
    // failed run leaves no partial stream behind.
    if let Some(path) = ctx.telemetry() {
        sf_obs::telemetry::Collector::global()
            .configure(path)
            .map_err(|e| SfError::Simulation {
                reason: format!("cannot open telemetry stream {}: {e}", path.display()),
            })?;
    }
    let result = execute_inner(study, ctx);
    if ctx.telemetry().is_some() {
        let collector = sf_obs::telemetry::Collector::global();
        if result.is_ok() {
            match collector.finish() {
                Ok(Some((path, blocks))) => progress.note(&format!(
                    "# wrote {} ({blocks} telemetry block(s))",
                    path.display()
                )),
                Ok(None) => {}
                Err(e) => {
                    return Err(SfError::Simulation {
                        reason: format!("cannot write telemetry stream: {e}"),
                    });
                }
            }
        } else {
            collector.abort();
        }
    }
    result
}

fn execute_inner(study: &dyn Study, ctx: &RunContext) -> SfResult<Table> {
    let progress = sf_obs::progress::Progress::global();
    let expected_fp = study_fingerprint(study, ctx);
    // A journal left by a *different* configuration is about to be
    // discarded; say exactly what clashed (both fingerprints plus this
    // run's config) instead of silently starting fresh.
    if let Some(path) = ctx.checkpoint_path() {
        if let Some(found) = journal::peek_fingerprint(path) {
            if found != expected_fp {
                progress.note(&format!(
                    "# checkpoint journal {} fingerprint mismatch: expected {expected_fp:016x} (study={} mode={}{}), found {found:016x} — discarding it and starting fresh",
                    path.display(),
                    study.name(),
                    if ctx.is_quick() { "quick" } else { "full" },
                    ctx.partition()
                        .map_or_else(String::new, |p| format!(" partition={p}")),
                ));
            }
        }
    }
    let restored = ctx.resume_checkpoint(expected_fp)?;
    if restored > 0 {
        progress.note(&format!(
            "# resuming {}: {restored} job(s) restored from {}",
            study.name(),
            ctx.checkpoint_path()
                .map_or_else(String::new, |p| p.display().to_string()),
        ));
    }
    let table = study.run(ctx)?;
    // Streaming studies already wrote their artifacts row by row; emitting
    // the summary table over them would clobber the real rows.
    if !study.streams_rows() {
        ctx.emit(&table)?;
    }
    if let Some(journal) = ctx.journal() {
        // Journal health — reported before the (successful) run deletes it.
        progress.note(&format!(
            "# journal {}: {} byte(s), {} job(s) restored, {} compaction(s)",
            journal.path().display(),
            journal.len_bytes(),
            journal.restored_count(),
            journal.compactions(),
        ));
        journal.finish().map_err(|e| SfError::Simulation {
            reason: format!("cannot remove checkpoint journal: {e}"),
        })?;
    }
    write_shard_metadata(study, ctx)?;
    Ok(table)
}

/// After a successful partitioned run, stamps every emitted artifact (and
/// the telemetry stream) with a [`ShardMeta`] sidecar carrying the study,
/// mode, **serial** fingerprint, partition coordinate, and covered index
/// range — everything `sfbench merge` needs to validate shard compatibility.
/// A no-op for unpartitioned contexts.
fn write_shard_metadata(study: &dyn Study, ctx: &RunContext) -> SfResult<()> {
    let Some(partition) = ctx.partition() else {
        return Ok(());
    };
    let total = ctx.partition_total.load(Ordering::Relaxed);
    if total == u64::MAX {
        // The study never ran a partitioned sweep (nothing streamed), so
        // there is no shard to describe.
        return Ok(());
    }
    let total = usize::try_from(total).expect("point count fits usize");
    let meta = |format: ShardFormat| ShardMeta {
        study: study.name().to_string(),
        mode: if ctx.is_quick() { "quick" } else { "full" }.to_string(),
        fingerprint: study_fingerprint_serial(study, ctx),
        partition,
        range: fabric::partition_range(total, partition),
        total,
        format,
    };
    let mut targets: Vec<(PathBuf, ShardFormat)> = Vec::new();
    for emitter in ctx.emitters() {
        match emitter {
            Emitter::Csv(path) => targets.push((path.clone(), ShardFormat::Csv)),
            Emitter::Json(path) => targets.push((path.clone(), ShardFormat::Json)),
        }
    }
    if let Some(path) = ctx.telemetry() {
        targets.push((path.to_path_buf(), ShardFormat::Telemetry));
    }
    for (path, format) in targets {
        meta(format)
            .write_for(&path)
            .map_err(|e| SfError::Simulation {
                reason: format!("cannot write shard metadata for {}: {e}", path.display()),
            })?;
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

/// Name-addressable collection of studies.
#[derive(Default)]
pub struct StudyRegistry {
    studies: Vec<Box<dyn Study>>,
}

impl std::fmt::Debug for StudyRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StudyRegistry")
            .field("studies", &self.names())
            .finish()
    }
}

impl StudyRegistry {
    /// An empty registry.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// The registry of all eight paper artefacts.
    #[must_use]
    pub fn paper() -> Self {
        let mut registry = Self::new();
        registry.register(Box::new(Fig05Surg));
        registry.register(Box::new(Fig08Configs));
        registry.register(Box::new(Fig09aHopCounts));
        registry.register(Box::new(Fig09bPowerGating));
        registry.register(Box::new(Fig10Saturation));
        registry.register(Box::new(Fig11LatencyCurves));
        registry.register(Box::new(Fig12Workloads));
        registry.register(Box::new(BisectionStudy));
        registry
    }

    /// The extended (beyond-paper) scenario group: fault injection,
    /// adversarial traffic, and scale-out sweeps past the paper's 1296-node
    /// maximum. Kept separate from [`paper`](Self::paper) so the
    /// reproduction surface stays clearly delineated; `sfbench` exposes both
    /// through [`all`](Self::all).
    #[must_use]
    pub fn extended() -> Self {
        let mut registry = Self::new();
        registry.register(Box::new(FaultResilience));
        registry.register(Box::new(AdversarialSaturation));
        registry.register(Box::new(Scaleout2048));
        registry.register(Box::new(Megasweep));
        registry
    }

    /// Every registered study: the paper group followed by the extended
    /// scenario group — the registry behind `sfbench list/grid/run`.
    #[must_use]
    pub fn all() -> Self {
        let mut registry = Self::paper();
        for study in Self::extended().studies {
            registry.register(study);
        }
        registry
    }

    /// Adds a study; later registrations win name clashes in [`get`].
    ///
    /// [`get`]: Self::get
    pub fn register(&mut self, study: Box<dyn Study>) {
        self.studies.push(study);
    }

    /// Looks a study up by name or alias (case-sensitive).
    #[must_use]
    pub fn get(&self, name: &str) -> Option<&dyn Study> {
        self.studies
            .iter()
            .rev()
            .find(|s| s.name() == name || s.aliases().contains(&name))
            .map(AsRef::as_ref)
    }

    /// Registered studies, in registration order.
    pub fn iter(&self) -> impl Iterator<Item = &dyn Study> {
        self.studies.iter().map(AsRef::as_ref)
    }

    /// Registered study names, in registration order.
    #[must_use]
    pub fn names(&self) -> Vec<&'static str> {
        self.studies.iter().map(|s| s.name()).collect()
    }

    /// Number of registered studies.
    #[must_use]
    pub fn len(&self) -> usize {
        self.studies.len()
    }

    /// Whether the registry is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.studies.is_empty()
    }
}

// ---------------------------------------------------------------------------
// Table rendering (shared by the CLI and the study extras)
// ---------------------------------------------------------------------------

/// Prints a Markdown-style table: a header row followed by data rows.
/// Column widths adapt to the widest cell so the output is readable both in
/// a terminal and when pasted into a report.
pub fn print_table(headers: &[&str], rows: &[Vec<String>]) {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let line = |cells: Vec<String>| {
        let padded: Vec<String> = cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:width$}", c, width = widths.get(i).copied().unwrap_or(4)))
            .collect();
        println!("| {} |", padded.join(" | "));
    };
    line(headers.iter().map(|h| (*h).to_string()).collect());
    let separator: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
    line(separator);
    for row in rows {
        line(row.clone());
    }
}

/// Formats a float with three significant decimals for table cells.
#[must_use]
pub fn fmt_f(value: f64) -> String {
    format!("{value:.3}")
}

/// Formats an optional percentage (used for saturation points).
#[must_use]
pub fn fmt_percent(value: Option<f64>) -> String {
    match value {
        Some(v) => format!("{v:.0}%"),
        None => "saturated".to_string(),
    }
}

/// Renders one table cell for terminal display (floats at three decimals).
#[must_use]
pub fn render_cell(value: &Value) -> String {
    match value {
        Value::Float(x) => fmt_f(*x),
        Value::Null => "-".to_string(),
        other => other.render(),
    }
}

/// Prints a result [`Table`] as a Markdown-style terminal table.
pub fn print_result_table(table: &Table) {
    let headers: Vec<&str> = table.columns.iter().map(String::as_str).collect();
    let rows: Vec<Vec<String>> = table
        .rows
        .iter()
        .map(|row| row.iter().map(render_cell).collect())
        .collect();
    print_table(&headers, &rows);
}

// ---------------------------------------------------------------------------
// The eight paper studies
// ---------------------------------------------------------------------------

/// Figure 5: average shortest path length of Jellyfish, S2, and SF.
#[derive(Debug, Clone, Copy)]
pub struct Fig05Surg;

impl Fig05Surg {
    fn params(ctx: &RunContext) -> (Vec<usize>, u64) {
        if ctx.is_quick() {
            (vec![100, 200, 400], 3)
        } else {
            // The paper's x-axis: 100–1200 nodes, 20 topologies per point.
            (vec![100, 200, 400, 800, 1200], 20)
        }
    }
}

impl Study for Fig05Surg {
    fn name(&self) -> &'static str {
        "fig05"
    }
    fn aliases(&self) -> &'static [&'static str] {
        &["fig05_surg_path_length"]
    }
    fn artefact(&self) -> &'static str {
        "Figure 5"
    }
    fn description(&self) -> &'static str {
        "average shortest path length of Jellyfish, S2, and String Figure across network sizes"
    }
    fn driver(&self) -> &'static str {
        "surg_path_length_study"
    }
    fn grid(&self, ctx: &RunContext) -> StudyGrid {
        let (sizes, seeds) = Self::params(ctx);
        StudyGrid::new(vec![
            ("nodes", sizes.len()),
            ("topology seed", seeds as usize),
            ("design", 3),
        ])
    }
    fn run(&self, ctx: &RunContext) -> SfResult<Table> {
        let (sizes, seeds) = Self::params(ctx);
        let rows = surg_path_length_study_with_ctx(ctx, &sizes, seeds)?;
        Ok(Table::from_records(&rows))
    }
}

/// Figure 8 / Table II: evaluated configurations and the feature matrix.
#[derive(Debug, Clone, Copy)]
pub struct Fig08Configs;

impl Fig08Configs {
    fn sizes(ctx: &RunContext) -> Vec<usize> {
        if ctx.is_quick() {
            vec![16, 61, 128]
        } else {
            // Figure 8's column headers.
            vec![16, 17, 32, 61, 64, 113, 128, 256, 512, 1024, 1296]
        }
    }
}

impl Study for Fig08Configs {
    fn name(&self) -> &'static str {
        "fig08"
    }
    fn aliases(&self) -> &'static [&'static str] {
        &["fig08_table02_configs", "table02"]
    }
    fn artefact(&self) -> &'static str {
        "Figure 8 / Table II"
    }
    fn description(&self) -> &'static str {
        "evaluated network configurations (router ports, links) and the qualitative feature matrix"
    }
    fn driver(&self) -> &'static str {
        "configuration_table"
    }
    fn grid(&self, ctx: &RunContext) -> StudyGrid {
        StudyGrid::new(vec![
            ("nodes", Self::sizes(ctx).len()),
            ("design", TopologyKind::ALL.len()),
        ])
    }
    fn run(&self, ctx: &RunContext) -> SfResult<Table> {
        let rows = configuration_table_with_ctx(ctx, &TopologyKind::ALL, &Self::sizes(ctx), 1)?;
        Ok(Table::from_records(&rows))
    }
    fn print_extras(&self, _table: &Table) {
        println!();
        eprintln!("# Table II: topology features and requirements");
        let rows: Vec<Vec<String>> = TopologyKind::ALL
            .iter()
            .map(|k| {
                let yes_no = |b: bool| if b { "yes" } else { "no" }.to_string();
                vec![
                    k.to_string(),
                    yes_no(k.requires_high_radix()),
                    yes_no(k.requires_high_radix()),
                    yes_no(k.supports_reconfiguration()),
                ]
            })
            .collect();
        print_table(
            &[
                "design",
                "high-radix routers",
                "port scaling",
                "reconfigurable scaling",
            ],
            &rows,
        );
    }
}

/// Figure 9(a): average routed hop counts per design and scale.
#[derive(Debug, Clone, Copy)]
pub struct Fig09aHopCounts;

impl Fig09aHopCounts {
    fn params(ctx: &RunContext) -> (Vec<usize>, usize) {
        if ctx.is_quick() {
            (vec![16, 64, 128], 500)
        } else {
            (vec![16, 32, 64, 128, 256, 512, 1024, 1296], 2_000)
        }
    }
}

impl Study for Fig09aHopCounts {
    fn name(&self) -> &'static str {
        "fig09a"
    }
    fn aliases(&self) -> &'static [&'static str] {
        &["fig09a_hop_counts"]
    }
    fn artefact(&self) -> &'static str {
        "Figure 9(a)"
    }
    fn description(&self) -> &'static str {
        "average hop counts taken by each design's routing protocol as the network grows"
    }
    fn driver(&self) -> &'static str {
        "hop_count_study"
    }
    fn grid(&self, ctx: &RunContext) -> StudyGrid {
        StudyGrid::new(vec![
            ("nodes", Self::params(ctx).0.len()),
            ("design", TopologyKind::ALL.len()),
        ])
    }
    fn run(&self, ctx: &RunContext) -> SfResult<Table> {
        let (sizes, samples) = Self::params(ctx);
        let rows = hop_count_study_with_ctx(ctx, &TopologyKind::ALL, &sizes, samples, 7)?;
        Ok(Table::from_records(&rows))
    }
}

/// Figure 9(b): normalised EDP of String Figure under power gating.
#[derive(Debug, Clone, Copy)]
pub struct Fig09bPowerGating;

impl Fig09bPowerGating {
    const FRACTIONS: [f64; 6] = [0.0, 0.1, 0.2, 0.3, 0.4, 0.5];

    fn params(ctx: &RunContext) -> (usize, Vec<ApplicationModel>, ExperimentScale) {
        let nodes = if ctx.is_quick() { 64 } else { 324 };
        let workloads: Vec<ApplicationModel> = if ctx.is_quick() {
            vec![ApplicationModel::SparkWordcount, ApplicationModel::Redis]
        } else {
            ApplicationModel::ALL.to_vec()
        };
        let scale = ctx.scale(ExperimentScale {
            max_cycles: 8_000,
            warmup_cycles: 1_000,
            ..ExperimentScale::paper()
        });
        (nodes, workloads, scale)
    }
}

impl Study for Fig09bPowerGating {
    fn name(&self) -> &'static str {
        "fig09b"
    }
    fn aliases(&self) -> &'static [&'static str] {
        &["fig09b_powergate_edp"]
    }
    fn artefact(&self) -> &'static str {
        "Figure 9(b)"
    }
    fn description(&self) -> &'static str {
        "normalised energy-delay product while power-gating increasing fractions of the memory network"
    }
    fn driver(&self) -> &'static str {
        "power_gating_study"
    }
    fn grid(&self, ctx: &RunContext) -> StudyGrid {
        StudyGrid::new(vec![
            ("workload", Self::params(ctx).1.len()),
            ("gated fraction", Self::FRACTIONS.len()),
        ])
    }
    fn run(&self, ctx: &RunContext) -> SfResult<Table> {
        let (nodes, workloads, scale) = Self::params(ctx);
        // PowerGateRow doesn't carry its workload, so the artifact table
        // prepends that column to the Record's own.
        let mut table =
            Table::with_columns(&[&["workload"], PowerGateRow::columns().as_slice()].concat());
        for &workload in &workloads {
            let rows = power_gating_study_with_ctx(
                ctx,
                nodes,
                &Self::FRACTIONS,
                workload,
                4,
                scale,
                2019,
            )?;
            for row in rows {
                let mut cells = vec![workload.name().into()];
                cells.extend(row.values());
                table.push_row(cells);
            }
        }
        Ok(table)
    }
    fn print_extras(&self, table: &Table) {
        // The formatted view the old binary printed: gated fraction as a
        // percentage, normalised EDP, and round-trip latency per workload.
        eprintln!("\n# normalised EDP vs fraction of nodes power-gated (lower is better)");
        let rows: Vec<Vec<String>> = table
            .rows
            .iter()
            .map(|row| {
                let cell = |i: usize| render_cell(&row[i]);
                let fraction = match &row[1] {
                    Value::Float(f) => format!("{:.0}%", f * 100.0),
                    other => other.render(),
                };
                vec![cell(0), fraction, cell(2), cell(4), cell(5)]
            })
            .collect();
        print_table(
            &[
                "workload",
                "gated",
                "gated nodes",
                "normalised EDP",
                "avg round trip (cycles)",
            ],
            &rows,
        );
    }
}

/// Figure 10: saturation injection rates per design, size, and pattern.
#[derive(Debug, Clone, Copy)]
pub struct Fig10Saturation;

impl Fig10Saturation {
    const PATTERNS: [SyntheticPattern; 3] = [
        SyntheticPattern::UniformRandom,
        SyntheticPattern::Hotspot,
        SyntheticPattern::Tornado,
    ];

    fn params(ctx: &RunContext) -> (Vec<usize>, Vec<f64>, ExperimentScale) {
        let (sizes, rates) = if ctx.is_quick() {
            (vec![16, 64], vec![0.05, 0.2, 0.4, 0.7])
        } else {
            (
                vec![16, 64, 128, 256, 512],
                vec![0.05, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9],
            )
        };
        let scale = ctx.scale(ExperimentScale {
            max_cycles: 6_000,
            warmup_cycles: 800,
            ..ExperimentScale::paper()
        });
        (sizes, rates, scale)
    }
}

impl Study for Fig10Saturation {
    fn name(&self) -> &'static str {
        "fig10"
    }
    fn aliases(&self) -> &'static [&'static str] {
        &["fig10_saturation"]
    }
    fn artefact(&self) -> &'static str {
        "Figure 10"
    }
    fn description(&self) -> &'static str {
        "highest non-saturating injection rate per design, size, and traffic pattern"
    }
    fn driver(&self) -> &'static str {
        "saturation_study"
    }
    fn grid(&self, ctx: &RunContext) -> StudyGrid {
        StudyGrid::new(vec![
            ("pattern", Self::PATTERNS.len()),
            ("nodes", Self::params(ctx).0.len()),
            ("design", TopologyKind::ALL.len()),
        ])
    }
    fn run(&self, ctx: &RunContext) -> SfResult<Table> {
        let (sizes, rates, scale) = Self::params(ctx);
        let mut all_rows = Vec::new();
        for pattern in Self::PATTERNS {
            for &nodes in &sizes {
                all_rows.extend(saturation_study_with_ctx(
                    ctx,
                    &TopologyKind::ALL,
                    nodes,
                    pattern,
                    &rates,
                    scale,
                    3,
                )?);
            }
        }
        Ok(Table::from_records(&all_rows))
    }
}

/// Figure 11: latency versus injection rate curves.
#[derive(Debug, Clone, Copy)]
pub struct Fig11LatencyCurves;

impl Fig11LatencyCurves {
    #[allow(clippy::type_complexity)]
    fn params(
        ctx: &RunContext,
    ) -> (
        usize,
        Vec<f64>,
        Vec<TopologyKind>,
        Vec<SyntheticPattern>,
        ExperimentScale,
    ) {
        let quick = ctx.is_quick();
        let nodes = if quick { 64 } else { 256 };
        let rates: Vec<f64> = if quick {
            vec![0.05, 0.2, 0.5]
        } else {
            vec![0.02, 0.05, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8]
        };
        let kinds = if quick {
            vec![TopologyKind::DistributedMesh, TopologyKind::StringFigure]
        } else {
            TopologyKind::ALL.to_vec()
        };
        let patterns = if quick {
            vec![SyntheticPattern::UniformRandom, SyntheticPattern::Tornado]
        } else {
            SyntheticPattern::ALL.to_vec()
        };
        let scale = ctx.scale(ExperimentScale {
            max_cycles: 6_000,
            warmup_cycles: 800,
            ..ExperimentScale::paper()
        });
        (nodes, rates, kinds, patterns, scale)
    }
}

impl Study for Fig11LatencyCurves {
    fn name(&self) -> &'static str {
        "fig11"
    }
    fn aliases(&self) -> &'static [&'static str] {
        &["fig11_latency_curves"]
    }
    fn artefact(&self) -> &'static str {
        "Figure 11"
    }
    fn description(&self) -> &'static str {
        "average packet latency versus injection rate for every design and traffic pattern"
    }
    fn driver(&self) -> &'static str {
        "latency_curve"
    }
    fn grid(&self, ctx: &RunContext) -> StudyGrid {
        let (_, rates, kinds, patterns, _) = Self::params(ctx);
        StudyGrid::new(vec![
            ("pattern", patterns.len()),
            ("design", kinds.len()),
            ("injection rate", rates.len()),
        ])
    }
    fn run(&self, ctx: &RunContext) -> SfResult<Table> {
        let (nodes, rates, kinds, patterns, scale) = Self::params(ctx);
        // LatencyPoint rows don't carry their (pattern, design) context, so
        // the artifact table prepends those two columns to the Record's own.
        let mut table = Table::with_columns(
            &[&["pattern", "design"], LatencyPoint::columns().as_slice()].concat(),
        );
        for &pattern in &patterns {
            for &kind in &kinds {
                let points = latency_curve_with_ctx(ctx, kind, nodes, pattern, &rates, scale, 5)?;
                for p in points {
                    let mut cells = vec![pattern.to_string().into(), kind.name().into()];
                    cells.extend(p.values());
                    table.push_row(cells);
                }
            }
        }
        Ok(table)
    }
}

/// Figure 12: real-workload throughput and dynamic memory energy.
#[derive(Debug, Clone, Copy)]
pub struct Fig12Workloads;

impl Fig12Workloads {
    // The paper normalises throughput to DM and energy to AFB; ODM,
    // S2-ideal, and SF are the compared designs.
    const KINDS: [TopologyKind; 5] = [
        TopologyKind::DistributedMesh,
        TopologyKind::OptimizedMesh,
        TopologyKind::AdaptedFlattenedButterfly,
        TopologyKind::SpaceShuffle,
        TopologyKind::StringFigure,
    ];

    fn params(ctx: &RunContext) -> (usize, Vec<ApplicationModel>, ExperimentScale) {
        let nodes = if ctx.is_quick() { 64 } else { 256 };
        let workloads: Vec<ApplicationModel> = if ctx.is_quick() {
            vec![ApplicationModel::SparkWordcount, ApplicationModel::Redis]
        } else {
            ApplicationModel::ALL.to_vec()
        };
        let scale = ctx.scale(ExperimentScale {
            max_cycles: 8_000,
            warmup_cycles: 1_000,
            ..ExperimentScale::paper()
        });
        (nodes, workloads, scale)
    }

    /// Looks the (kind, workload) row's column up in the result table.
    fn lookup(table: &Table, kind: TopologyKind, workload: &str, column: &str) -> Option<f64> {
        let col = table.columns.iter().position(|c| c == column)?;
        table
            .rows
            .iter()
            .find(|row| {
                matches!(&row[0], Value::Str(k) if k == kind.name())
                    && matches!(&row[1], Value::Str(w) if w == workload)
            })
            .and_then(|row| cell_f64(&row[col]))
    }
}

impl Study for Fig12Workloads {
    fn name(&self) -> &'static str {
        "fig12"
    }
    fn aliases(&self) -> &'static [&'static str] {
        &["fig12_workloads"]
    }
    fn artefact(&self) -> &'static str {
        "Figure 12"
    }
    fn description(&self) -> &'static str {
        "application throughput and dynamic memory energy per design (normalised in the extras)"
    }
    fn driver(&self) -> &'static str {
        "workload_study"
    }
    fn grid(&self, ctx: &RunContext) -> StudyGrid {
        StudyGrid::new(vec![
            ("design", Self::KINDS.len()),
            ("workload", Self::params(ctx).1.len()),
        ])
    }
    fn run(&self, ctx: &RunContext) -> SfResult<Table> {
        let (nodes, workloads, scale) = Self::params(ctx);
        let rows = workload_study_with_ctx(ctx, &Self::KINDS, &workloads, nodes, 4, scale, 2019)?;
        Ok(Table::from_records(&rows))
    }
    fn print_extras(&self, table: &Table) {
        let workloads: Vec<String> = {
            let mut seen = Vec::new();
            for row in &table.rows {
                if let Value::Str(w) = &row[1] {
                    if !seen.contains(w) {
                        seen.push(w.clone());
                    }
                }
            }
            seen
        };
        let get = |kind, workload: &str, column| {
            Self::lookup(table, kind, workload, column).unwrap_or(f64::NAN)
        };

        eprintln!("\n# Figure 12(a): throughput normalised to DM (higher is better)");
        let mut thr = Vec::new();
        let mut geo: Vec<(TopologyKind, f64)> = Vec::new();
        for &kind in &[
            TopologyKind::OptimizedMesh,
            TopologyKind::AdaptedFlattenedButterfly,
            TopologyKind::SpaceShuffle,
            TopologyKind::StringFigure,
        ] {
            let mut log_sum = 0.0;
            for w in &workloads {
                let base = get(TopologyKind::DistributedMesh, w, "requests_per_cycle");
                let val = get(kind, w, "requests_per_cycle") / base.max(f64::MIN_POSITIVE);
                log_sum += val.ln();
                thr.push(vec![w.clone(), kind.to_string(), fmt_f(val)]);
            }
            geo.push((kind, (log_sum / workloads.len() as f64).exp()));
        }
        for (kind, g) in &geo {
            thr.push(vec!["geomean".to_string(), kind.to_string(), fmt_f(*g)]);
        }
        print_table(&["workload", "design", "normalised throughput"], &thr);

        eprintln!(
            "\n# Figure 12(b): dynamic memory energy per request normalised to AFB (lower is better)"
        );
        let mut energy = Vec::new();
        for &kind in &[
            TopologyKind::OptimizedMesh,
            TopologyKind::SpaceShuffle,
            TopologyKind::StringFigure,
        ] {
            let mut log_sum = 0.0;
            for w in &workloads {
                let base = get(
                    TopologyKind::AdaptedFlattenedButterfly,
                    w,
                    "energy_per_request_pj",
                );
                let val = get(kind, w, "energy_per_request_pj") / base.max(f64::MIN_POSITIVE);
                log_sum += val.ln();
                energy.push(vec![w.clone(), kind.to_string(), fmt_f(val)]);
            }
            energy.push(vec![
                "geomean".to_string(),
                kind.to_string(),
                fmt_f((log_sum / workloads.len() as f64).exp()),
            ]);
        }
        print_table(&["workload", "design", "normalised energy"], &energy);
    }
}

/// Section V methodology: empirical minimum bisection bandwidth.
#[derive(Debug, Clone, Copy)]
pub struct BisectionStudy;

impl BisectionStudy {
    fn params(ctx: &RunContext) -> (Vec<usize>, usize, u64) {
        if ctx.is_quick() {
            (vec![64], 10, 3)
        } else {
            (vec![64, 128, 256], 50, 20)
        }
    }
}

impl Study for BisectionStudy {
    fn name(&self) -> &'static str {
        "bisection"
    }
    fn aliases(&self) -> &'static [&'static str] {
        &["bisection_bandwidth"]
    }
    fn artefact(&self) -> &'static str {
        "Section V bisection methodology"
    }
    fn description(&self) -> &'static str {
        "empirical minimum bisection bandwidth over random cuts and generated topologies"
    }
    fn driver(&self) -> &'static str {
        "bisection_study"
    }
    fn grid(&self, ctx: &RunContext) -> StudyGrid {
        let (sizes, _, topologies) = Self::params(ctx);
        StudyGrid::new(vec![
            ("nodes", sizes.len()),
            ("design", TopologyKind::ALL.len()),
            ("topology", topologies as usize),
        ])
    }
    fn run(&self, ctx: &RunContext) -> SfResult<Table> {
        let (sizes, cuts, topologies) = Self::params(ctx);
        let mut all_rows = Vec::new();
        for &nodes in &sizes {
            all_rows.extend(bisection_study_with_ctx(
                ctx,
                &TopologyKind::ALL,
                nodes,
                cuts,
                topologies,
            )?);
        }
        Ok(Table::from_records(&all_rows))
    }
}

// ---------------------------------------------------------------------------
// The extended scenario studies (beyond the paper's evaluation)
// ---------------------------------------------------------------------------

/// Scenario: delivery ratio, drops, and latency under deterministic waves of
/// link failures and router power-gate events.
#[derive(Debug, Clone, Copy)]
pub struct FaultResilience;

impl FaultResilience {
    const RATE: f64 = 0.05;

    #[allow(clippy::type_complexity)]
    fn params(
        ctx: &RunContext,
    ) -> (
        Vec<TopologyKind>,
        usize,
        Vec<(usize, usize)>,
        ExperimentScale,
    ) {
        let (kinds, nodes, severities) = if ctx.is_quick() {
            (
                vec![TopologyKind::DistributedMesh, TopologyKind::StringFigure],
                48,
                vec![(0, 0), (2, 1)],
            )
        } else {
            (
                vec![
                    TopologyKind::DistributedMesh,
                    TopologyKind::SpaceShuffle,
                    TopologyKind::StringFigure,
                ],
                256,
                vec![(0, 0), (1, 0), (2, 1), (4, 2)],
            )
        };
        let scale = ctx.scale(ExperimentScale {
            max_cycles: 6_000,
            warmup_cycles: 800,
            ..ExperimentScale::paper()
        });
        (kinds, nodes, severities, scale)
    }
}

impl Study for FaultResilience {
    fn name(&self) -> &'static str {
        "fault_resilience"
    }
    fn artefact(&self) -> &'static str {
        "Scenario: fault injection"
    }
    fn description(&self) -> &'static str {
        "delivery ratio, drops, and latency under deterministic link-failure and router power-gate waves"
    }
    fn driver(&self) -> &'static str {
        "fault_resilience_study"
    }
    fn grid(&self, ctx: &RunContext) -> StudyGrid {
        let (kinds, _, severities, _) = Self::params(ctx);
        StudyGrid::new(vec![
            ("design", kinds.len()),
            ("fault severity", severities.len()),
        ])
    }
    fn run(&self, ctx: &RunContext) -> SfResult<Table> {
        let (kinds, nodes, severities, scale) = Self::params(ctx);
        let rows = fault_resilience_study_with_ctx(
            ctx,
            &kinds,
            nodes,
            &severities,
            Self::RATE,
            scale,
            19,
        )?;
        Ok(Table::from_records(&rows))
    }
}

/// Scenario: the saturation methodology under adversarial traffic (hotspot
/// storm, bursty on/off, bit-reversal permutation).
#[derive(Debug, Clone, Copy)]
pub struct AdversarialSaturation;

impl AdversarialSaturation {
    fn params(ctx: &RunContext) -> (Vec<TopologyKind>, usize, Vec<f64>, ExperimentScale) {
        let (nodes, rates) = if ctx.is_quick() {
            (36, vec![0.05, 0.2, 0.4, 0.7])
        } else {
            (128, vec![0.05, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9])
        };
        let scale = ctx.scale(ExperimentScale {
            max_cycles: 6_000,
            warmup_cycles: 800,
            ..ExperimentScale::paper()
        });
        (TopologyKind::ALL.to_vec(), nodes, rates, scale)
    }
}

impl Study for AdversarialSaturation {
    fn name(&self) -> &'static str {
        "adversarial_saturation"
    }
    fn artefact(&self) -> &'static str {
        "Scenario: adversarial traffic"
    }
    fn description(&self) -> &'static str {
        "highest non-saturating injection rate per design under hotspot-storm, bursty, and bit-reversal traffic"
    }
    fn driver(&self) -> &'static str {
        "adversarial_saturation_study"
    }
    fn grid(&self, ctx: &RunContext) -> StudyGrid {
        let (kinds, _, _, _) = Self::params(ctx);
        StudyGrid::new(vec![
            ("pattern", SyntheticPattern::ADVERSARIAL.len()),
            ("design", kinds.len()),
        ])
    }
    fn run(&self, ctx: &RunContext) -> SfResult<Table> {
        let (kinds, nodes, rates, scale) = Self::params(ctx);
        let rows = adversarial_saturation_study_with_ctx(ctx, &kinds, nodes, &rates, scale, 3)?;
        Ok(Table::from_records(&rows))
    }
}

/// Scenario: hop-count scaling of the fixed-radix designs beyond the paper's
/// 1296-node maximum, up to 2048 nodes.
#[derive(Debug, Clone, Copy)]
pub struct Scaleout2048;

impl Scaleout2048 {
    const KINDS: [TopologyKind; 3] = [
        TopologyKind::SpaceShuffle,
        TopologyKind::StringFigure,
        TopologyKind::Jellyfish,
    ];

    fn params(ctx: &RunContext) -> (Vec<usize>, usize) {
        if ctx.is_quick() {
            (vec![128, 256], 200)
        } else {
            (vec![512, 1024, 2048], 1_000)
        }
    }
}

impl Study for Scaleout2048 {
    fn name(&self) -> &'static str {
        "scaleout_2048"
    }
    fn aliases(&self) -> &'static [&'static str] {
        &["scaleout"]
    }
    fn artefact(&self) -> &'static str {
        "Scenario: scale-out beyond 1296 nodes"
    }
    fn description(&self) -> &'static str {
        "path-length and routed hop-count scaling of the fixed-radix designs up to 2048 nodes"
    }
    fn driver(&self) -> &'static str {
        "scaleout_study"
    }
    fn grid(&self, ctx: &RunContext) -> StudyGrid {
        StudyGrid::new(vec![
            ("nodes", Self::params(ctx).0.len()),
            ("design", Self::KINDS.len()),
        ])
    }
    fn run(&self, ctx: &RunContext) -> SfResult<Table> {
        let (sizes, samples) = Self::params(ctx);
        let rows = scaleout_study_with_ctx(ctx, &Self::KINDS, &sizes, samples, 7)?;
        Ok(Table::from_records(&rows))
    }
}

/// Scenario: the streaming mega-sweep — design × size × injection rate ×
/// topology seed at ~10⁵ quick-capped points full-scale. The only study
/// that exists *because of* the bounded-memory pipeline: its grid streams
/// through the lazy cross product, its rows stream to the emitters, and its
/// `run` returns only a per-design summary.
#[derive(Debug, Clone, Copy)]
pub struct Megasweep;

impl Megasweep {
    #[allow(clippy::type_complexity)]
    fn params(
        ctx: &RunContext,
    ) -> (
        Vec<TopologyKind>,
        Vec<usize>,
        Vec<f64>,
        u64,
        ExperimentScale,
    ) {
        let (kinds, sizes, rates, seeds) = if ctx.is_quick() {
            (
                vec![TopologyKind::DistributedMesh, TopologyKind::StringFigure],
                vec![16, 32],
                vec![0.05, 0.2, 0.4],
                2,
            )
        } else {
            (
                TopologyKind::ALL.to_vec(),
                vec![16, 32, 48, 64, 96, 128],
                (1..=20).map(|i| f64::from(i) * 0.045).collect(),
                150,
            )
        };
        // Every point is quick-capped: the sweep's scale comes from its
        // breadth (~10^5 points full-scale), not from long simulations.
        let scale = ctx.scale(ExperimentScale::quick());
        (kinds, sizes, rates, seeds, scale)
    }
}

impl Study for Megasweep {
    fn name(&self) -> &'static str {
        "megasweep"
    }
    fn artefact(&self) -> &'static str {
        "Scenario: streaming mega-sweep"
    }
    fn description(&self) -> &'static str {
        "bounded-memory design-space sweep over design x size x injection rate x seed; rows stream to the emitters"
    }
    fn driver(&self) -> &'static str {
        "megasweep_study"
    }
    fn grid(&self, ctx: &RunContext) -> StudyGrid {
        let (kinds, sizes, rates, seeds, _) = Self::params(ctx);
        StudyGrid::new(vec![
            ("design", kinds.len()),
            ("nodes", sizes.len()),
            ("injection rate", rates.len()),
            ("topology seed", seeds as usize),
        ])
    }
    fn streams_rows(&self) -> bool {
        true
    }
    fn run(&self, ctx: &RunContext) -> SfResult<Table> {
        let (kinds, sizes, rates, seeds, scale) = Self::params(ctx);
        let summary = megasweep_study_with_ctx(ctx, &kinds, &sizes, &rates, seeds, scale)?;
        Ok(Table::from_records(&summary))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    fn temp_journal(name: &str) -> PathBuf {
        let mut path = std::env::temp_dir();
        path.push(format!(
            "sf-study-test-{}-{name}.journal",
            std::process::id()
        ));
        path
    }

    #[test]
    fn registry_has_all_eight_paper_artefacts() {
        let registry = StudyRegistry::paper();
        assert_eq!(registry.len(), 8);
        for study in registry.iter() {
            assert!(!study.description().is_empty(), "{}", study.name());
            assert!(!study.artefact().is_empty(), "{}", study.name());
            assert!(registry.get(study.name()).is_some());
            for alias in study.aliases() {
                assert_eq!(registry.get(alias).unwrap().name(), study.name());
            }
        }
        assert!(registry.get("fig99").is_none());
    }

    #[test]
    fn extended_registry_holds_the_scenario_studies() {
        let extended = StudyRegistry::extended();
        assert_eq!(
            extended.names(),
            vec![
                "fault_resilience",
                "adversarial_saturation",
                "scaleout_2048",
                "megasweep"
            ]
        );
        for study in extended.iter() {
            assert!(
                study.artefact().starts_with("Scenario:"),
                "{}",
                study.name()
            );
            assert!(!study.description().is_empty(), "{}", study.name());
        }
        // The combined registry is paper + extended, and names never clash.
        let all = StudyRegistry::all();
        assert_eq!(all.len(), StudyRegistry::paper().len() + extended.len());
        let mut names = all.names();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), all.len(), "duplicate study names");
        assert_eq!(all.get("scaleout").unwrap().name(), "scaleout_2048");
        assert!(all.get("fig10").is_some());
        assert!(all.get("fault_resilience").is_some());
        // The paper registry deliberately does NOT expose the scenarios.
        assert!(StudyRegistry::paper().get("fault_resilience").is_none());
    }

    #[test]
    fn grids_report_their_job_counts() {
        let registry = StudyRegistry::all();
        let quick = RunContext::new().quick(true);
        let full = RunContext::new();
        for study in registry.iter() {
            let grid = study.grid(&quick);
            assert!(grid.jobs() > 0, "{}", study.name());
            assert!(
                grid.jobs() <= study.grid(&full).jobs(),
                "{} quick grid must not exceed full",
                study.name()
            );
            // The streaming enumeration visits every point exactly once.
            let points: Vec<Vec<usize>> = grid.points().collect();
            assert_eq!(points.len(), grid.jobs());
            assert_eq!(points.first().unwrap(), &vec![0; grid.axes.len()]);
            let report = grid.lazy_sweep().run(&PoolConfig::serial(), |_, p| {
                Ok::<usize, std::convert::Infallible>(p.len())
            });
            assert_eq!(report.outcomes.len(), grid.jobs());
        }
    }

    #[test]
    fn row_taps_observe_rows_in_order_without_changing_artifacts() {
        let dir = std::env::temp_dir();
        let tapped = dir.join(format!("sf-study-tap-{}.csv", std::process::id()));
        let plain = dir.join(format!("sf-study-plain-{}.csv", std::process::id()));
        let rows: Vec<Vec<Value>> = (0..3u64)
            .map(|i| vec![Value::UInt(i), Value::Float(i as f64 * 0.5 + 0.1)])
            .collect();
        let seen = Arc::new(std::sync::Mutex::new(Vec::new()));
        let observer = Arc::clone(&seen);
        let ctx = RunContext::new()
            .with_csv(&tapped)
            .with_row_tap(RowTap::new(move |cells| {
                observer.lock().unwrap().push(cells.to_vec());
            }));
        let mut stream = ctx.open_row_stream(&["idx", "metric"]).unwrap();
        for row in &rows {
            stream.push(row).unwrap();
        }
        stream.finish().unwrap();
        let plain_ctx = RunContext::new().with_csv(&plain);
        let mut stream = plain_ctx.open_row_stream(&["idx", "metric"]).unwrap();
        for row in &rows {
            stream.push(row).unwrap();
        }
        stream.finish().unwrap();
        // The tap saw every row in push order, and the artifact bytes are
        // identical to an untapped run's.
        assert_eq!(*seen.lock().unwrap(), rows);
        assert_eq!(
            std::fs::read(&tapped).unwrap(),
            std::fs::read(&plain).unwrap()
        );
        let _ = std::fs::remove_file(&tapped);
        let _ = std::fs::remove_file(&plain);
    }

    #[test]
    fn run_jobs_checkpoints_and_resumes_bit_identically() {
        let path = temp_journal("resume");
        let _ = std::fs::remove_file(&path);
        let points: Vec<u64> = (0..12).collect();
        let job = |_: JobCtx, &n: &u64| Ok(n as f64 * 0.1 + 0.7);

        // Reference: uninterrupted, no checkpointing.
        let reference: Vec<f64> = RunContext::new()
            .with_pool(PoolConfig::serial())
            .run_jobs(points.clone(), job)
            .unwrap();

        // Interrupted run: fails after 5 jobs (serial pool → deterministic).
        let interrupted = RunContext::new()
            .with_pool(PoolConfig::serial())
            .with_checkpoint(&path);
        interrupted.resume_checkpoint(99).unwrap();
        let done = AtomicUsize::new(0);
        let result: SfResult<Vec<f64>> = interrupted.run_jobs(points.clone(), |ctx, n| {
            if done.fetch_add(1, Ordering::SeqCst) >= 5 {
                return Err(SfError::Simulation {
                    reason: "killed".into(),
                });
            }
            job(ctx, n)
        });
        assert!(result.is_err());
        assert!(path.exists(), "journal must survive the failed run");

        // Resumed run: restores the first 5 jobs, computes the rest.
        let resumed_ctx = RunContext::new()
            .with_pool(PoolConfig::serial())
            .with_checkpoint(&path);
        assert_eq!(resumed_ctx.resume_checkpoint(99).unwrap(), 5);
        let executed = AtomicUsize::new(0);
        let resumed: Vec<f64> = resumed_ctx
            .run_jobs(points.clone(), |ctx, n| {
                assert!(ctx.index >= 5, "restored job {} recomputed", ctx.index);
                executed.fetch_add(1, Ordering::SeqCst);
                job(ctx, n)
            })
            .unwrap();
        assert_eq!(executed.load(Ordering::SeqCst), points.len() - 5);
        assert_eq!(resumed, reference);
        resumed_ctx.journal().unwrap().finish().unwrap();
    }

    #[test]
    fn mismatched_fingerprint_starts_fresh() {
        let path = temp_journal("fingerprint");
        let _ = std::fs::remove_file(&path);
        let ctx = RunContext::new()
            .with_pool(PoolConfig::serial())
            .with_checkpoint(&path);
        ctx.resume_checkpoint(1).unwrap();
        let _rows: Vec<f64> = ctx
            .run_jobs(vec![1u64, 2, 3], |_, &n| Ok(n as f64))
            .unwrap();

        let other = RunContext::new()
            .with_pool(PoolConfig::serial())
            .with_checkpoint(&path);
        assert_eq!(other.resume_checkpoint(2).unwrap(), 0);
        other.journal().unwrap().finish().unwrap();
    }

    #[test]
    fn sweep_sequences_keep_multi_sweep_studies_apart() {
        let path = temp_journal("multi-sweep");
        let _ = std::fs::remove_file(&path);
        let ctx = RunContext::new()
            .with_pool(PoolConfig::serial())
            .with_checkpoint(&path);
        ctx.resume_checkpoint(7).unwrap();
        let a: Vec<f64> = ctx.run_jobs(vec![0u64, 1], |_, &n| Ok(n as f64)).unwrap();
        let b: Vec<f64> = ctx
            .run_jobs(vec![0u64, 1], |_, &n| Ok(n as f64 + 10.0))
            .unwrap();

        // A resumed context replays both sweeps from the journal without
        // running a single job.
        let resumed = RunContext::new()
            .with_pool(PoolConfig::serial())
            .with_checkpoint(&path);
        assert_eq!(resumed.resume_checkpoint(7).unwrap(), 4);
        let a2: Vec<f64> = resumed
            .run_jobs(vec![0u64, 1], |_, _| {
                panic!("first sweep should be fully restored")
            })
            .unwrap();
        let b2: Vec<f64> = resumed
            .run_jobs(vec![0u64, 1], |_, _| {
                panic!("second sweep should be fully restored")
            })
            .unwrap();
        assert_eq!(a2, a);
        assert_eq!(b2, b);
        resumed.journal().unwrap().finish().unwrap();
    }

    #[test]
    fn checkpoint_rows_round_trip_through_cells() {
        let hop = HopCountRow {
            kind: TopologyKind::StringFigure,
            nodes: 128,
            average_shortest_path: 3.25,
            average_routed_hops: 0.1 + 0.2,
            router_ports: 8,
        };
        assert_eq!(HopCountRow::from_cells(&hop.to_cells()).unwrap(), hop);

        let sat = SaturationRow {
            kind: TopologyKind::DistributedMesh,
            nodes: 64,
            pattern: SyntheticPattern::Tornado,
            saturation_percent: None,
        };
        assert_eq!(SaturationRow::from_cells(&sat.to_cells()).unwrap(), sat);

        let gate = PowerGateRow {
            gated_fraction: 0.3,
            gated_nodes: 19,
            energy_delay_product: 1.5e9,
            normalized_edp: 0.0,
            average_round_trip_cycles: 24.5,
        };
        assert_eq!(PowerGateRow::from_cells(&gate.to_cells()).unwrap(), gate);

        let bb = BisectionBandwidth {
            minimum: 50,
            average: 59.333,
            samples: 10,
        };
        assert_eq!(BisectionBandwidth::from_cells(&bb.to_cells()).unwrap(), bb);
        assert!(HopCountRow::from_cells(&[Value::Null]).is_none());

        let fault = FaultResilienceRow {
            kind: TopologyKind::StringFigure,
            nodes: 256,
            links_per_wave: 2,
            routers_per_wave: 1,
            link_down_events: 7,
            router_down_events: 3,
            injected: 12_345,
            completed_requests: 12_001,
            dropped_packets: 98,
            completion_ratio: 12_001.0 / 12_345.0,
            average_round_trip_cycles: 0.1 + 0.2,
        };
        assert_eq!(
            FaultResilienceRow::from_cells(&fault.to_cells()).unwrap(),
            fault
        );
        assert!(FaultResilienceRow::from_cells(&[Value::Null]).is_none());

        let adversarial = SaturationRow {
            kind: TopologyKind::StringFigure,
            nodes: 128,
            pattern: SyntheticPattern::HotspotStorm,
            saturation_percent: Some(20.0),
        };
        assert_eq!(
            SaturationRow::from_cells(&adversarial.to_cells()).unwrap(),
            adversarial
        );

        let mega = MegasweepRow {
            kind: TopologyKind::SpaceShuffle,
            nodes: 96,
            injection_rate: 0.315,
            seed: 149,
            average_latency_cycles: 0.1 + 0.2,
            accepted_throughput: 0.0425,
            saturated: true,
        };
        assert_eq!(MegasweepRow::from_cells(&mega.to_cells()).unwrap(), mega);
        assert!(MegasweepRow::from_cells(&[Value::Null]).is_none());
    }

    #[test]
    fn run_jobs_streaming_delivers_ordered_rows_without_collecting() {
        // The bounded-memory acceptance check at the study layer: a
        // 10^5+-point sweep runs through a sink that counts rows but never
        // stores them (no Vec<P> or Vec<R> of grid size anywhere).
        const POINTS: usize = 110_000;
        let ctx = RunContext::new().with_pool(PoolConfig::threads(4).with_chunk(64));
        let mut rows = 0usize;
        let mut last_index = None;
        let delivered = ctx
            .run_jobs_streaming(
                (0..POINTS).map(|i| i as u64),
                |_, &n| Ok(n as f64 * 0.5),
                |index, row| {
                    assert_eq!(
                        Some(index),
                        last_index.map_or(Some(0), |i: usize| Some(i + 1))
                    );
                    assert!((row - index as f64 * 0.5).abs() < 1e-12);
                    last_index = Some(index);
                    rows += 1;
                    Ok(())
                },
            )
            .unwrap();
        assert_eq!(delivered, POINTS);
        assert_eq!(rows, POINTS);
    }

    #[test]
    fn streaming_sink_errors_abort_the_run() {
        let ctx = RunContext::new().with_pool(PoolConfig::serial());
        let result = ctx.run_jobs_streaming(
            vec![1u64, 2, 3],
            |_, &n| Ok(n as f64),
            |index, _row| {
                if index == 1 {
                    Err(SfError::Simulation {
                        reason: "sink full".into(),
                    })
                } else {
                    Ok(())
                }
            },
        );
        match result {
            Err(SfError::Simulation { reason }) => assert_eq!(reason, "sink full"),
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn megasweep_streams_rows_and_resumes_bit_identically() {
        let pid = std::process::id();
        let dir = std::env::temp_dir();
        let clean_csv = dir.join(format!("sf-megasweep-clean-{pid}.csv"));
        let resumed_csv = dir.join(format!("sf-megasweep-resumed-{pid}.csv"));
        let journal = dir.join(format!("sf-megasweep-{pid}.journal"));
        for p in [&clean_csv, &resumed_csv, &journal] {
            let _ = std::fs::remove_file(p);
        }
        let registry = StudyRegistry::extended();
        let study = registry.get("megasweep").unwrap();
        assert!(study.streams_rows());

        // Reference: uninterrupted streaming run.
        let clean_ctx = RunContext::new()
            .quick(true)
            .with_pool(PoolConfig::serial())
            .with_csv(&clean_csv);
        let summary = execute(study, &clean_ctx).unwrap();
        // The returned table is the per-design summary, NOT the row stream:
        // the CSV has one line per sweep point (plus header).
        let clean = std::fs::read_to_string(&clean_csv).unwrap();
        assert_eq!(clean.lines().count(), study.grid(&clean_ctx).jobs() + 1);
        assert_eq!(summary.len(), 2, "one summary row per quick design");

        // Interrupted run with a tiny journal cap: dies mid-sweep, leaving a
        // (compacted) journal and no finished artifact.
        let first = RunContext::new()
            .quick(true)
            .with_pool(PoolConfig::serial())
            .with_csv(&resumed_csv)
            .with_checkpoint(&journal)
            .with_max_journal_bytes(160);
        first
            .resume_checkpoint(study_fingerprint(study, &first))
            .unwrap();
        let killed = AtomicUsize::new(0);
        let result = first.run_jobs_streaming(
            vec![0usize; study.grid(&first).jobs()],
            |jctx, _| {
                if killed.fetch_add(1, Ordering::SeqCst) >= 7 {
                    return Err(SfError::Simulation {
                        reason: "killed".into(),
                    });
                }
                // Mirror the megasweep job exactly so the journal entries
                // it leaves behind are valid for the real resumed run.
                let (kinds, sizes, rates, seeds, scale) = Megasweep::params(&first);
                let per_kind = sizes.len() * rates.len() * seeds as usize;
                let kind = kinds[jctx.index / per_kind];
                let rest = jctx.index % per_kind;
                let nodes = sizes[rest / (rates.len() * seeds as usize)];
                let rest = rest % (rates.len() * seeds as usize);
                let rate = rates[rest / seeds as usize];
                let seed = (rest % seeds as usize) as u64;
                let instance = first.instance(kind, nodes, seed + 1).unwrap();
                let stats = crate::experiments::run_pattern_on(
                    &instance,
                    SyntheticPattern::UniformRandom,
                    rate,
                    scale,
                    seed,
                )
                .unwrap();
                let measured = (scale.max_cycles - scale.warmup_cycles).max(1);
                Ok(MegasweepRow {
                    kind,
                    nodes,
                    injection_rate: rate,
                    seed,
                    average_latency_cycles: stats.average_latency_cycles(),
                    accepted_throughput: stats.accepted_throughput(measured),
                    saturated: stats.is_saturated(),
                })
            },
            |_, _| Ok(()),
        );
        assert!(result.is_err());
        assert!(journal.exists(), "journal must survive the killed run");
        assert!(
            first.journal().unwrap().compactions() >= 1,
            "the tiny cap must have forced a compaction mid-run"
        );
        assert!(
            !resumed_csv.exists(),
            "no artifact may appear before a run finishes"
        );

        // Resume through the real execute path: restores the journalled
        // jobs (from a compacted snapshot), computes the rest, and the CSV
        // bytes must equal the uninterrupted run's.
        let resumed_ctx = RunContext::new()
            .quick(true)
            .with_pool(PoolConfig::threads(3).with_chunk(2))
            .with_csv(&resumed_csv)
            .with_checkpoint(&journal)
            .with_max_journal_bytes(160);
        let resumed_summary = execute(study, &resumed_ctx).unwrap();
        assert_eq!(resumed_summary, summary);
        assert_eq!(std::fs::read_to_string(&resumed_csv).unwrap(), clean);
        assert!(!journal.exists(), "journal must be removed after success");
        for p in [&clean_csv, &resumed_csv] {
            std::fs::remove_file(p).unwrap();
        }
    }

    #[test]
    fn partitioned_megasweep_shards_merge_to_the_serial_bytes() {
        let pid = std::process::id();
        let dir = std::env::temp_dir();
        let serial_csv = dir.join(format!("sf-partition-serial-{pid}.csv"));
        let base_csv = dir.join(format!("sf-partition-out-{pid}.csv"));
        let merged_csv = dir.join(format!("sf-partition-merged-{pid}.csv"));
        let _ = std::fs::remove_file(&serial_csv);
        let registry = StudyRegistry::extended();
        let study = registry.get("megasweep").unwrap();
        let serial_ctx = RunContext::new()
            .quick(true)
            .with_pool(PoolConfig::serial())
            .with_csv(&serial_csv);
        execute(study, &serial_ctx).unwrap();
        let serial_fp = study_fingerprint(study, &serial_ctx);

        let mut shards = Vec::new();
        for index in 1..=3u32 {
            let p = Partition::new(index, 3).unwrap();
            let shard = fabric::shard_path(&base_csv, p);
            let _ = std::fs::remove_file(&shard);
            // Mixed pools on purpose: partition output must not depend on
            // worker count any more than serial output does.
            let ctx = RunContext::new()
                .quick(true)
                .with_pool(if index == 2 {
                    PoolConfig::threads(3).with_chunk(2)
                } else {
                    PoolConfig::serial()
                })
                .with_csv(&shard)
                .with_partition(p);
            // A partition journal is keyed to its own coordinate, never the
            // serial run's (or a sibling partition's).
            assert_ne!(study_fingerprint(study, &ctx), serial_fp);
            assert_eq!(study_fingerprint_serial(study, &ctx), serial_fp);
            execute(study, &ctx).unwrap();
            let meta = ShardMeta::read_for(&shard).unwrap();
            assert_eq!(meta.fingerprint, serial_fp);
            assert_eq!(meta.total, study.grid(&ctx).jobs());
            assert_eq!(meta.range, fabric::partition_range(meta.total, p));
            shards.push((shard, meta));
        }
        let plan = fabric::plan_merge(&shards).unwrap();
        assert!(plan.missing.is_empty());
        let rows = fabric::merge_csv(&shards, &merged_csv).unwrap();
        assert_eq!(rows, plan.total);
        assert_eq!(
            std::fs::read(&merged_csv).unwrap(),
            std::fs::read(&serial_csv).unwrap(),
            "3-partition merge must be byte-identical to the serial run"
        );
        for (shard, _) in &shards {
            std::fs::remove_file(shard).unwrap();
            std::fs::remove_file(ShardMeta::path_for(shard)).unwrap();
        }
        std::fs::remove_file(&serial_csv).unwrap();
        std::fs::remove_file(&merged_csv).unwrap();
    }

    #[test]
    fn fingerprint_separates_studies_and_scales() {
        let registry = StudyRegistry::paper();
        let fig05 = registry.get("fig05").unwrap();
        let fig10 = registry.get("fig10").unwrap();
        let quick = RunContext::new().quick(true);
        let full = RunContext::new();
        assert_ne!(
            study_fingerprint(fig05, &quick),
            study_fingerprint(fig10, &quick)
        );
        assert_ne!(
            study_fingerprint(fig05, &quick),
            study_fingerprint(fig05, &full)
        );
    }

    #[test]
    fn execute_emits_and_removes_the_journal() {
        let dir = std::env::temp_dir();
        let csv = dir.join(format!("sf-study-exec-{}.csv", std::process::id()));
        let journal = dir.join(format!("sf-study-exec-{}.csv.journal", std::process::id()));
        let _ = std::fs::remove_file(&csv);
        let _ = std::fs::remove_file(&journal);
        let registry = StudyRegistry::paper();
        let study = registry.get("fig08").unwrap();
        let ctx = RunContext::new()
            .with_pool(PoolConfig::serial())
            .quick(true)
            .with_csv(&csv)
            .with_checkpoint(&journal);
        let table = execute(study, &ctx).unwrap();
        assert_eq!(table.len(), 3 * TopologyKind::ALL.len());
        let written = std::fs::read_to_string(&csv).unwrap();
        assert_eq!(written, table.to_csv());
        assert!(!journal.exists(), "journal must be removed after success");
        std::fs::remove_file(&csv).unwrap();
    }

    #[test]
    fn render_helpers_format_cells() {
        assert_eq!(fmt_f(1.23456), "1.235");
        assert_eq!(fmt_percent(Some(62.0)), "62%");
        assert_eq!(fmt_percent(None), "saturated");
        assert_eq!(render_cell(&Value::Float(2.0)), "2.000");
        assert_eq!(render_cell(&Value::Null), "-");
        assert_eq!(render_cell(&Value::Str("SF".into())), "SF");
        print_result_table(&Table::with_columns(&["a"]));
    }
}
