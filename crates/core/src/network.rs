//! The top-level String Figure memory network: topology, routing, placement,
//! and simulation glued behind one API.
//!
//! [`StringFigureNetwork`] is what a downstream user of this library creates:
//! it owns a generated [`StringFigureTopology`], keeps a [`GreediestRouting`]
//! instance in sync with it, places the nodes on a 2D grid, and exposes
//! routing, analysis, reconfiguration, and cycle-level simulation without the
//! caller having to wire the underlying crates together.

use sf_netsim::{NetworkSimulator, SimulationStats, TrafficModel};
use sf_routing::{trace_route, GreediestOptions, GreediestRouting, RouteTrace, RoutingProtocol};
use sf_topology::analysis::{self, PathLengthStats};
use sf_topology::{GridPlacement, ReconfigurationDelta, StringFigureTopology};
use sf_types::{
    DeterministicRng, NetworkConfig, NodeId, SfError, SfResult, SimulationConfig, SystemConfig,
};
use sf_workloads::{ApplicationModel, PatternTraffic, SyntheticPattern, WorkloadTraffic};

/// Builder for a [`StringFigureNetwork`].
///
/// # Examples
///
/// ```
/// use stringfigure::StringFigureBuilder;
///
/// let network = StringFigureBuilder::new(64)
///     .ports(4)
///     .seed(7)
///     .build()?;
/// assert_eq!(network.num_nodes(), 64);
/// # Ok::<(), sf_types::SfError>(())
/// ```
#[derive(Debug, Clone)]
pub struct StringFigureBuilder {
    network: NetworkConfig,
    system: SystemConfig,
    routing: GreediestOptions,
    simulation: SimulationConfig,
}

impl StringFigureBuilder {
    /// Starts a builder for a network of `nodes` memory nodes, using
    /// Figure 8's port policy (4 ports up to 128 nodes, 8 above).
    #[must_use]
    pub fn new(nodes: usize) -> Self {
        Self {
            network: NetworkConfig::figure8_string_figure(nodes),
            system: SystemConfig::default(),
            routing: GreediestOptions::default(),
            simulation: SimulationConfig::default(),
        }
    }

    /// Sets the number of router ports per node.
    #[must_use]
    pub fn ports(mut self, ports: usize) -> Self {
        self.network.ports = ports;
        self
    }

    /// Sets the topology generation seed.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.network.seed = seed;
        self
    }

    /// Enables or disables shortcut fabrication.
    #[must_use]
    pub fn shortcuts(mut self, enabled: bool) -> Self {
        self.network.shortcuts = enabled;
        self
    }

    /// Overrides the system (timing/energy) configuration.
    #[must_use]
    pub fn system(mut self, system: SystemConfig) -> Self {
        self.system = system;
        self
    }

    /// Overrides the greediest-routing options.
    #[must_use]
    pub fn routing_options(mut self, options: GreediestOptions) -> Self {
        self.routing = options;
        self
    }

    /// Overrides the default simulation configuration used by the
    /// convenience `run_*` methods.
    #[must_use]
    pub fn simulation(mut self, simulation: SimulationConfig) -> Self {
        self.simulation = simulation;
        self
    }

    /// Builds the network.
    ///
    /// # Errors
    ///
    /// Returns [`SfError::InvalidConfiguration`] if the network or simulation
    /// configuration is invalid.
    pub fn build(self) -> SfResult<StringFigureNetwork> {
        self.simulation.validate()?;
        let topology = StringFigureTopology::generate(&self.network)?;
        let routing = GreediestRouting::with_options(&topology, self.routing);
        let placement = GridPlacement::row_major(self.network.nodes);
        Ok(StringFigureNetwork {
            topology,
            routing,
            placement,
            system: self.system,
            simulation: self.simulation,
            routing_options: self.routing,
        })
    }
}

/// A complete String Figure memory network.
#[derive(Debug)]
pub struct StringFigureNetwork {
    topology: StringFigureTopology,
    routing: GreediestRouting,
    placement: GridPlacement,
    system: SystemConfig,
    simulation: SimulationConfig,
    routing_options: GreediestOptions,
}

impl StringFigureNetwork {
    /// Generates a network with default parameters for `nodes` memory nodes.
    ///
    /// # Errors
    ///
    /// Propagates configuration errors from the builder.
    pub fn generate(nodes: usize) -> SfResult<Self> {
        StringFigureBuilder::new(nodes).build()
    }

    /// Starts a builder.
    #[must_use]
    pub fn builder(nodes: usize) -> StringFigureBuilder {
        StringFigureBuilder::new(nodes)
    }

    /// Number of memory nodes (mounted or not).
    #[must_use]
    pub fn num_nodes(&self) -> usize {
        self.topology.graph().num_nodes()
    }

    /// Number of currently active (powered, mounted) memory nodes.
    #[must_use]
    pub fn num_active_nodes(&self) -> usize {
        self.topology.graph().num_active_nodes()
    }

    /// Total memory capacity of the active nodes, in GiB.
    #[must_use]
    pub fn active_capacity_gib(&self) -> usize {
        self.system.total_capacity_gib(self.num_active_nodes())
    }

    /// The underlying topology.
    #[must_use]
    pub fn topology(&self) -> &StringFigureTopology {
        &self.topology
    }

    /// The greediest-routing state (tables and options).
    #[must_use]
    pub fn routing(&self) -> &GreediestRouting {
        &self.routing
    }

    /// The 2D-grid placement used for wire-length modelling.
    #[must_use]
    pub fn placement(&self) -> &GridPlacement {
        &self.placement
    }

    /// The system (timing/energy) configuration.
    #[must_use]
    pub fn system(&self) -> &SystemConfig {
        &self.system
    }

    /// The default simulation configuration.
    #[must_use]
    pub fn simulation_config(&self) -> &SimulationConfig {
        &self.simulation
    }

    /// Routes a packet from `from` to `to` on an idle network and returns the
    /// hop-by-hop trace.
    ///
    /// # Errors
    ///
    /// Returns routing errors (unknown/offline nodes, stuck routes).
    pub fn route(&self, from: NodeId, to: NodeId) -> SfResult<RouteTrace> {
        trace_route(&self.routing, from, to, self.num_nodes())
    }

    /// Shortest-path statistics of the active topology (graph distance, not
    /// routed distance).
    #[must_use]
    pub fn path_stats(&self) -> PathLengthStats {
        analysis::path_length_stats(self.topology.graph())
    }

    /// Average number of hops taken by greediest routing over a random sample
    /// of source/destination pairs.
    ///
    /// # Errors
    ///
    /// Propagates routing errors.
    pub fn average_routed_hops(&self, samples: usize, seed: u64) -> SfResult<f64> {
        let mut rng = DeterministicRng::new(seed);
        let active: Vec<NodeId> = self.topology.graph().active_nodes().collect();
        if active.len() < 2 {
            return Ok(0.0);
        }
        let mut total = 0usize;
        let mut count = 0usize;
        for _ in 0..samples.max(1) {
            let a = active[rng.next_index(active.len())];
            let b = active[rng.next_index(active.len())];
            if a == b {
                continue;
            }
            total += self.route(a, b)?.hops();
            count += 1;
        }
        Ok(if count == 0 {
            0.0
        } else {
            total as f64 / count as f64
        })
    }

    /// Total routing-table storage across all routers, in bits.
    #[must_use]
    pub fn routing_storage_bits(&self) -> u64 {
        let ports = self.topology.config().ports;
        self.routing
            .tables()
            .iter()
            .map(|t| t.storage_bits(self.num_nodes(), ports))
            .sum()
    }

    /// Gates a memory node off (power gating / unmounting) and re-synchronises
    /// the routing tables.
    ///
    /// # Errors
    ///
    /// Propagates topology reconfiguration errors (unknown node, already
    /// gated, would disconnect the network).
    pub fn gate_node(&mut self, node: NodeId) -> SfResult<ReconfigurationDelta> {
        let delta = self.topology.gate_node(node)?;
        self.routing
            .resync(self.topology.graph(), self.topology.spaces());
        Ok(delta)
    }

    /// Brings a gated node back online and re-synchronises routing tables.
    ///
    /// # Errors
    ///
    /// Propagates topology reconfiguration errors.
    pub fn ungate_node(&mut self, node: NodeId) -> SfResult<ReconfigurationDelta> {
        let delta = self.topology.ungate_node(node)?;
        self.routing
            .resync(self.topology.graph(), self.topology.spaces());
        Ok(delta)
    }

    /// Builds a fresh routing-protocol instance reflecting the current
    /// topology (simulators own their protocol, so they need their own copy).
    #[must_use]
    pub fn fresh_routing(&self) -> GreediestRouting {
        GreediestRouting::from_parts(
            self.topology.graph(),
            self.topology.spaces(),
            self.routing_options,
        )
    }

    /// Creates a cycle-level simulator over the current network state.
    ///
    /// # Errors
    ///
    /// Propagates simulator configuration errors.
    pub fn simulator(&self, config: SimulationConfig) -> SfResult<NetworkSimulator> {
        let sim = NetworkSimulator::new(
            self.topology.graph().clone(),
            Box::new(self.fresh_routing()) as Box<dyn RoutingProtocol>,
            self.system.clone(),
            config,
        )?;
        Ok(sim.with_placement(self.placement.clone()))
    }

    /// Runs a synthetic traffic pattern at the given injection rate with the
    /// network's default simulation configuration.
    ///
    /// Only currently active (mounted, powered) nodes inject traffic and are
    /// chosen as destinations, so the same call works on a full network and
    /// on a down-scaled one.
    ///
    /// # Errors
    ///
    /// Propagates simulation errors.
    pub fn run_pattern(
        &self,
        pattern: SyntheticPattern,
        injection_rate: f64,
        seed: u64,
    ) -> SfResult<SimulationStats> {
        let mut sim = self.simulator(self.simulation.clone())?;
        let active: Vec<NodeId> = self.topology.graph().active_nodes().collect();
        let mut traffic = ActiveNodePattern {
            inner: PatternTraffic::new(pattern, active.len(), injection_rate, seed),
            dense_of: active
                .iter()
                .enumerate()
                .map(|(dense, node)| (node.index(), dense))
                .collect(),
            active,
        };
        sim.run(&mut traffic)
    }

    /// Runs an application workload injected from the given processor-attached
    /// nodes, in request–reply mode.
    ///
    /// # Errors
    ///
    /// Propagates workload and simulation configuration errors.
    pub fn run_workload(
        &self,
        model: ApplicationModel,
        injector_nodes: &[NodeId],
        seed: u64,
    ) -> SfResult<SimulationStats> {
        let mapper = sf_workloads::AddressMapper::paper_default(self.num_nodes())?;
        let mut traffic = WorkloadTraffic::new(model, mapper, injector_nodes, seed)?;
        let mut sim = self
            .simulator(self.simulation.clone())?
            .with_request_reply(true);
        sim.run(&mut traffic)
    }

    /// Runs an arbitrary traffic model with an explicit simulation
    /// configuration.
    ///
    /// # Errors
    ///
    /// Propagates simulation errors.
    pub fn run_traffic(
        &self,
        traffic: &mut dyn TrafficModel,
        config: SimulationConfig,
        request_reply: bool,
    ) -> SfResult<SimulationStats> {
        let mut sim = self.simulator(config)?.with_request_reply(request_reply);
        sim.run(traffic)
    }

    /// Validates internal consistency: the live graph is connected, no node
    /// exceeds its port budget, and routing tables cover every active node.
    ///
    /// # Errors
    ///
    /// Returns [`SfError::InvalidConfiguration`] describing the first violated
    /// invariant.
    pub fn check_invariants(&self) -> SfResult<()> {
        if !self.topology.graph().is_connected() {
            return Err(SfError::InvalidConfiguration {
                reason: "active network is disconnected".to_string(),
            });
        }
        let ports = self.topology.config().ports;
        for node in self.topology.graph().active_nodes() {
            if self.topology.ports_in_use(node) > ports {
                return Err(SfError::InvalidConfiguration {
                    reason: format!("node {node} uses more than {ports} ports"),
                });
            }
        }
        Ok(())
    }
}

/// Wraps a [`PatternTraffic`] defined over the dense index space of active
/// nodes and translates sources/destinations to the physical node ids of a
/// possibly down-scaled network.
#[derive(Debug)]
struct ActiveNodePattern {
    inner: PatternTraffic,
    active: Vec<NodeId>,
    dense_of: std::collections::HashMap<usize, usize>,
}

impl TrafficModel for ActiveNodePattern {
    fn maybe_inject(&mut self, cycle: u64, source: NodeId) -> Option<sf_netsim::TrafficRequest> {
        let dense = *self.dense_of.get(&source.index())?;
        let request = self.inner.maybe_inject(cycle, NodeId::new(dense))?;
        Some(sf_netsim::TrafficRequest {
            destination: self.active[request.destination.index()],
            write: request.write,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_produces_consistent_network() {
        let network = StringFigureBuilder::new(64)
            .ports(4)
            .seed(3)
            .build()
            .unwrap();
        assert_eq!(network.num_nodes(), 64);
        assert_eq!(network.num_active_nodes(), 64);
        assert_eq!(network.active_capacity_gib(), 64 * 8);
        network.check_invariants().unwrap();
        assert!(network.routing_storage_bits() > 0);
        assert_eq!(network.placement().num_nodes(), 64);
    }

    #[test]
    fn figure8_port_policy() {
        assert_eq!(
            StringFigureNetwork::generate(128)
                .unwrap()
                .topology()
                .config()
                .ports,
            4
        );
        assert_eq!(
            StringFigureBuilder::new(256)
                .build()
                .unwrap()
                .topology()
                .config()
                .ports,
            8
        );
    }

    #[test]
    fn routing_and_path_stats() {
        let network = StringFigureNetwork::generate(100).unwrap();
        let route = network.route(NodeId::new(0), NodeId::new(73)).unwrap();
        assert!(!route.has_loop());
        let stats = network.path_stats();
        assert!(stats.average > 1.0 && stats.average < 7.0);
        let routed = network.average_routed_hops(200, 1).unwrap();
        assert!(routed >= stats.average - 0.5);
        assert!(routed < stats.average + 4.0);
    }

    #[test]
    fn gate_and_ungate_keep_invariants() {
        let mut network = StringFigureNetwork::generate(64).unwrap();
        let delta = network.gate_node(NodeId::new(9)).unwrap();
        assert!(delta.gated);
        network.check_invariants().unwrap();
        assert_eq!(network.num_active_nodes(), 63);
        // Routing avoids the gated node.
        let route = network.route(NodeId::new(0), NodeId::new(40)).unwrap();
        assert!(!route.path.contains(&NodeId::new(9)));
        network.ungate_node(NodeId::new(9)).unwrap();
        network.check_invariants().unwrap();
        assert_eq!(network.num_active_nodes(), 64);
    }

    #[test]
    fn pattern_simulation_through_the_facade() {
        let network = StringFigureNetwork::builder(32)
            .simulation(SimulationConfig {
                max_cycles: 1_500,
                warmup_cycles: 200,
                ..SimulationConfig::default()
            })
            .build()
            .unwrap();
        let stats = network
            .run_pattern(SyntheticPattern::UniformRandom, 0.05, 11)
            .unwrap();
        assert!(stats.delivered > 0);
        assert!(stats.delivery_ratio() > 0.9);
    }

    #[test]
    fn workload_simulation_through_the_facade() {
        let network = StringFigureNetwork::builder(24)
            .simulation(SimulationConfig {
                max_cycles: 1_200,
                warmup_cycles: 100,
                ..SimulationConfig::default()
            })
            .build()
            .unwrap();
        let stats = network
            .run_workload(
                ApplicationModel::Memcached,
                &[NodeId::new(0), NodeId::new(12)],
                5,
            )
            .unwrap();
        assert!(stats.injected > 0);
        assert!(stats.completed_requests > 0);
        assert!(stats.dram_energy_pj > 0.0);
    }

    #[test]
    fn pattern_simulation_works_on_a_downscaled_network() {
        let mut network = StringFigureNetwork::builder(40)
            .simulation(SimulationConfig {
                max_cycles: 1_000,
                warmup_cycles: 100,
                ..SimulationConfig::default()
            })
            .build()
            .unwrap();
        for i in [3usize, 11, 25, 33] {
            network.gate_node(NodeId::new(i)).unwrap();
        }
        let stats = network
            .run_pattern(SyntheticPattern::Tornado, 0.05, 3)
            .unwrap();
        assert!(stats.injected > 0);
        assert!(stats.delivery_ratio() > 0.9);
    }

    #[test]
    fn invalid_builder_configuration_rejected() {
        assert!(StringFigureBuilder::new(1).build().is_err());
        assert!(StringFigureBuilder::new(16).ports(1).build().is_err());
        let bad_sim = StringFigureBuilder::new(16).simulation(SimulationConfig {
            warmup_cycles: 100,
            max_cycles: 50,
            ..SimulationConfig::default()
        });
        assert!(bad_sim.build().is_err());
    }
}
