//! Memory-network power management (Section III-C and Figure 9b).
//!
//! String Figure supports dynamically scaling the network down (power gating
//! under-utilised memory nodes and their links) and back up. The paper's
//! four-step atomic reconfiguration — block the affected routing-table
//! entries, enable/disable links, (in)validate entries, unblock — is modelled
//! by [`PowerManager`], which also accounts the sleep/wake latencies and
//! enforces the minimum reconfiguration interval of Table I.

use crate::network::StringFigureNetwork;
use serde::{Deserialize, Serialize};
use sf_types::{DeterministicRng, NodeId, SfError, SfResult};

/// One executed reconfiguration step with its modelled overhead.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReconfigurationEvent {
    /// The node gated or un-gated.
    pub node: NodeId,
    /// `true` when the node was switched off.
    pub gated: bool,
    /// Time at which the reconfiguration was applied, in nanoseconds of
    /// the power manager's logical clock.
    pub applied_at_ns: f64,
    /// Latency of the link state change (sleep or wake), in nanoseconds.
    pub latency_ns: f64,
    /// Number of neighbouring routers whose tables were updated.
    pub routers_updated: usize,
    /// Number of shortcut links switched on by this event.
    pub shortcuts_enabled: usize,
    /// Number of shortcut links switched off by this event.
    pub shortcuts_disabled: usize,
}

/// Summary of a power-management session.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct PowerReport {
    /// All reconfiguration events in order.
    pub events: Vec<ReconfigurationEvent>,
    /// Total reconfiguration latency paid, in nanoseconds.
    pub total_latency_ns: f64,
    /// Number of gating requests rejected because they would disconnect the
    /// network.
    pub rejected: usize,
}

impl PowerReport {
    /// Number of nodes currently gated according to this report (gates minus
    /// un-gates).
    #[must_use]
    pub fn net_gated(&self) -> i64 {
        self.events
            .iter()
            .map(|e| if e.gated { 1 } else { -1 })
            .sum()
    }
}

/// Drives dynamic scale-down / scale-up of a [`StringFigureNetwork`].
#[derive(Debug)]
pub struct PowerManager<'a> {
    network: &'a mut StringFigureNetwork,
    clock_ns: f64,
    last_reconfiguration_ns: Option<f64>,
    report: PowerReport,
}

impl<'a> PowerManager<'a> {
    /// Creates a power manager over a network.
    #[must_use]
    pub fn new(network: &'a mut StringFigureNetwork) -> Self {
        Self {
            network,
            clock_ns: 0.0,
            last_reconfiguration_ns: None,
            report: PowerReport::default(),
        }
    }

    /// Advances the logical clock (e.g. to model the time between epochs of
    /// the power-management policy).
    pub fn advance_time(&mut self, ns: f64) {
        self.clock_ns += ns.max(0.0);
    }

    /// The logical time in nanoseconds.
    #[must_use]
    pub fn now_ns(&self) -> f64 {
        self.clock_ns
    }

    /// The accumulated report.
    #[must_use]
    pub fn report(&self) -> &PowerReport {
        &self.report
    }

    fn enforce_granularity(&mut self) -> SfResult<()> {
        let granularity = self.network.system().reconfiguration_granularity_ns;
        if let Some(last) = self.last_reconfiguration_ns {
            if self.clock_ns - last < granularity {
                // The policy asked for a reconfiguration too soon; model the
                // paper's granularity limit by waiting until the window opens.
                self.clock_ns = last + granularity;
            }
        }
        Ok(())
    }

    /// Gates one node off, paying the sleep latency.
    ///
    /// # Errors
    ///
    /// Propagates reconfiguration errors (already gated, disconnection, ...).
    pub fn gate(&mut self, node: NodeId) -> SfResult<ReconfigurationEvent> {
        self.enforce_granularity()?;
        let latency = self.network.system().link_sleep_ns;
        match self.network.gate_node(node) {
            Ok(delta) => {
                let event = ReconfigurationEvent {
                    node,
                    gated: true,
                    applied_at_ns: self.clock_ns,
                    latency_ns: latency,
                    routers_updated: delta.affected_neighbors.len(),
                    shortcuts_enabled: delta.shortcuts_enabled.len(),
                    shortcuts_disabled: delta.shortcuts_disabled.len(),
                };
                self.clock_ns += latency;
                self.last_reconfiguration_ns = Some(self.clock_ns);
                self.report.total_latency_ns += latency;
                self.report.events.push(event.clone());
                Ok(event)
            }
            Err(e) => {
                if matches!(e, SfError::InvalidReconfiguration { .. }) {
                    self.report.rejected += 1;
                }
                Err(e)
            }
        }
    }

    /// Brings a gated node back, paying the wake latency.
    ///
    /// # Errors
    ///
    /// Propagates reconfiguration errors.
    pub fn ungate(&mut self, node: NodeId) -> SfResult<ReconfigurationEvent> {
        self.enforce_granularity()?;
        let latency = self.network.system().link_wake_ns;
        let delta = self.network.ungate_node(node)?;
        let event = ReconfigurationEvent {
            node,
            gated: false,
            applied_at_ns: self.clock_ns,
            latency_ns: latency,
            routers_updated: delta.affected_neighbors.len(),
            shortcuts_enabled: delta.shortcuts_enabled.len(),
            shortcuts_disabled: delta.shortcuts_disabled.len(),
        };
        self.clock_ns += latency;
        self.last_reconfiguration_ns = Some(self.clock_ns);
        self.report.total_latency_ns += latency;
        self.report.events.push(event.clone());
        Ok(event)
    }

    /// Gates off approximately `fraction` of the currently active nodes,
    /// chosen pseudo-randomly, skipping nodes whose removal would disconnect
    /// the network. Returns the nodes actually gated.
    ///
    /// # Errors
    ///
    /// Returns [`SfError::InvalidReconfiguration`] if `fraction` is not in
    /// `[0, 1)`.
    pub fn gate_fraction(&mut self, fraction: f64, seed: u64) -> SfResult<Vec<NodeId>> {
        if !(0.0..1.0).contains(&fraction) {
            return Err(SfError::InvalidReconfiguration {
                reason: format!("gating fraction must be in [0, 1), got {fraction}"),
            });
        }
        let mut rng = DeterministicRng::new(seed);
        let mut candidates: Vec<NodeId> = self.network.topology().graph().active_nodes().collect();
        rng.shuffle(&mut candidates);
        let target = (candidates.len() as f64 * fraction).round() as usize;
        let mut gated = Vec::new();
        for node in candidates {
            if gated.len() >= target {
                break;
            }
            if self.gate(node).is_ok() {
                gated.push(node);
            }
        }
        Ok(gated)
    }

    /// Un-gates every node gated through this manager, in reverse order.
    ///
    /// # Errors
    ///
    /// Propagates reconfiguration errors.
    pub fn restore_all(&mut self) -> SfResult<usize> {
        let gated: Vec<NodeId> = self
            .report
            .events
            .iter()
            .filter(|e| e.gated)
            .map(|e| e.node)
            .filter(|&n| self.network.topology().is_gated(n))
            .collect();
        let mut restored = 0;
        for node in gated.into_iter().rev() {
            self.ungate(node)?;
            restored += 1;
        }
        Ok(restored)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::StringFigureNetwork;

    fn network(nodes: usize) -> StringFigureNetwork {
        StringFigureNetwork::generate(nodes).unwrap()
    }

    #[test]
    fn gate_and_restore_roundtrip() {
        let mut net = network(64);
        let mut pm = PowerManager::new(&mut net);
        let gated = pm.gate_fraction(0.25, 1).unwrap();
        assert!(gated.len() >= 12, "gated only {}", gated.len());
        assert_eq!(pm.report().net_gated(), gated.len() as i64);
        let restored = pm.restore_all().unwrap();
        assert_eq!(restored, gated.len());
        assert_eq!(pm.report().net_gated(), 0);
        drop(pm);
        assert_eq!(net.num_active_nodes(), 64);
        net.check_invariants().unwrap();
    }

    #[test]
    fn latencies_follow_table1() {
        let mut net = network(32);
        let mut pm = PowerManager::new(&mut net);
        let gate_event = pm.gate(NodeId::new(4)).unwrap();
        assert_eq!(gate_event.latency_ns, 680.0);
        assert!(gate_event.routers_updated > 0);
        let ungate_event = pm.ungate(NodeId::new(4)).unwrap();
        assert_eq!(ungate_event.latency_ns, 5_000.0);
        assert!(pm.report().total_latency_ns >= 5_680.0);
    }

    #[test]
    fn granularity_is_enforced() {
        let mut net = network(32);
        let granularity = net.system().reconfiguration_granularity_ns;
        let mut pm = PowerManager::new(&mut net);
        pm.gate(NodeId::new(1)).unwrap();
        let first_done = pm.now_ns();
        pm.gate(NodeId::new(2)).unwrap();
        let second = pm.report().events[1].applied_at_ns;
        assert!(
            second - first_done >= granularity - 1e-9,
            "second reconfiguration at {second} violates the {granularity} ns granularity"
        );
    }

    #[test]
    fn invalid_fraction_rejected() {
        let mut net = network(16);
        let mut pm = PowerManager::new(&mut net);
        assert!(pm.gate_fraction(1.0, 1).is_err());
        assert!(pm.gate_fraction(-0.1, 1).is_err());
        assert!(pm.gate_fraction(0.0, 1).unwrap().is_empty());
    }

    #[test]
    fn double_gate_is_rejected_and_counted() {
        let mut net = network(16);
        let mut pm = PowerManager::new(&mut net);
        pm.gate(NodeId::new(3)).unwrap();
        assert!(pm.gate(NodeId::new(3)).is_err());
        assert_eq!(pm.report().rejected, 1);
    }

    #[test]
    fn clock_advances() {
        let mut net = network(16);
        let mut pm = PowerManager::new(&mut net);
        assert_eq!(pm.now_ns(), 0.0);
        pm.advance_time(500.0);
        assert_eq!(pm.now_ns(), 500.0);
        pm.advance_time(-10.0);
        assert_eq!(pm.now_ns(), 500.0);
    }
}
