//! Experiment drivers that regenerate the paper's tables and figures.
//!
//! Each function corresponds to one evaluation artefact and returns plain
//! serialisable rows; the `sf-bench` binaries call these with the paper's
//! parameters and print the resulting tables, while the integration tests run
//! them at reduced scale to check the qualitative trends (who wins, and by
//! roughly how much).
//!
//! | function | paper artefact |
//! |----------|----------------|
//! | [`surg_path_length_study`]     | Figure 5 |
//! | [`hop_count_study`]            | Figure 9(a) |
//! | [`power_gating_study`]         | Figure 9(b) |
//! | [`saturation_study`]           | Figure 10 |
//! | [`latency_curve`]              | Figure 11 |
//! | [`workload_study`]             | Figure 12(a) and 12(b) |
//! | [`bisection_study`]            | Section V bisection methodology |
//! | [`configuration_table`]        | Figure 8 / Table II |

use crate::comparison::{NetworkInstance, TopologyKind};
use crate::network::StringFigureNetwork;
use crate::power::PowerManager;
use serde::{Deserialize, Serialize};
use sf_netsim::SimulationStats;
use sf_topology::analysis;
use sf_types::{NodeId, SfResult, SimulationConfig, SystemConfig};
use sf_workloads::{
    AddressMapper, ApplicationModel, CacheHierarchy, PatternTraffic, SyntheticPattern,
    WorkloadTraffic,
};

/// Controls how long the cycle-level simulations of an experiment run.
///
/// The paper's RTL runs use 100,000 operations; integration tests use the
/// `quick` scale so the whole suite stays fast, while the bench harness uses
/// `paper` scale.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ExperimentScale {
    /// Simulated cycles per run.
    pub max_cycles: u64,
    /// Warm-up cycles excluded from the statistics.
    pub warmup_cycles: u64,
}

impl ExperimentScale {
    /// Small scale for tests (about a thousand cycles).
    #[must_use]
    pub fn quick() -> Self {
        Self {
            max_cycles: 1_200,
            warmup_cycles: 200,
        }
    }

    /// Full scale used by the benchmark harness.
    #[must_use]
    pub fn paper() -> Self {
        Self {
            max_cycles: 20_000,
            warmup_cycles: 2_000,
        }
    }

    /// The corresponding simulator configuration.
    #[must_use]
    pub fn simulation_config(&self) -> SimulationConfig {
        SimulationConfig {
            max_cycles: self.max_cycles,
            warmup_cycles: self.warmup_cycles,
            ..SimulationConfig::default()
        }
    }
}

// ---------------------------------------------------------------------------
// Figure 5: sufficiently-uniform-random-graph path-length comparison
// ---------------------------------------------------------------------------

/// One row of the Figure 5 comparison.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SurgRow {
    /// Network size.
    pub nodes: usize,
    /// Average shortest path length of Jellyfish.
    pub jellyfish: f64,
    /// Average shortest path length of S2.
    pub s2: f64,
    /// Average shortest path length of String Figure.
    pub string_figure: f64,
}

/// Reproduces Figure 5: average shortest path lengths of Jellyfish, S2, and
/// String Figure across network sizes, averaged over `seeds` generated
/// topologies each.
///
/// # Errors
///
/// Propagates topology construction errors.
pub fn surg_path_length_study(sizes: &[usize], seeds: u64) -> SfResult<Vec<SurgRow>> {
    let mut rows = Vec::new();
    for &nodes in sizes {
        let mut sums = [0.0f64; 3];
        for seed in 0..seeds.max(1) {
            let kinds = [
                TopologyKind::Jellyfish,
                TopologyKind::SpaceShuffle,
                TopologyKind::StringFigure,
            ];
            for (i, kind) in kinds.into_iter().enumerate() {
                let instance = NetworkInstance::build(kind, nodes, seed + 1)?;
                sums[i] += instance.average_shortest_path();
            }
        }
        let denom = seeds.max(1) as f64;
        rows.push(SurgRow {
            nodes,
            jellyfish: sums[0] / denom,
            s2: sums[1] / denom,
            string_figure: sums[2] / denom,
        });
    }
    Ok(rows)
}

// ---------------------------------------------------------------------------
// Figure 9(a): average hop counts across designs and scales
// ---------------------------------------------------------------------------

/// One row of the Figure 9(a) hop-count study.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HopCountRow {
    /// Network design.
    pub kind: TopologyKind,
    /// Network size.
    pub nodes: usize,
    /// Average shortest-path length (graph metric).
    pub average_shortest_path: f64,
    /// Average hop count actually taken by the design's routing protocol.
    pub average_routed_hops: f64,
    /// Router ports this design needs at this scale.
    pub router_ports: usize,
}

/// Reproduces Figure 9(a): average hop counts of every design across network
/// sizes, using each design's own routing protocol over `samples` random
/// source/destination pairs.
///
/// # Errors
///
/// Propagates topology construction and routing errors.
pub fn hop_count_study(
    kinds: &[TopologyKind],
    sizes: &[usize],
    samples: usize,
    seed: u64,
) -> SfResult<Vec<HopCountRow>> {
    let mut rows = Vec::new();
    for &nodes in sizes {
        for &kind in kinds {
            let instance = NetworkInstance::build(kind, nodes, seed)?;
            rows.push(HopCountRow {
                kind,
                nodes,
                average_shortest_path: instance.average_shortest_path(),
                average_routed_hops: instance.average_routed_hops(samples)?,
                router_ports: instance.router_ports(),
            });
        }
    }
    Ok(rows)
}

// ---------------------------------------------------------------------------
// Figure 10: network saturation points
// ---------------------------------------------------------------------------

/// One saturation measurement.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SaturationRow {
    /// Network design.
    pub kind: TopologyKind,
    /// Network size.
    pub nodes: usize,
    /// Traffic pattern evaluated.
    pub pattern: SyntheticPattern,
    /// Highest injection rate (as a percentage) that did not saturate the
    /// network; `None` when even the lowest rate saturated.
    pub saturation_percent: Option<f64>,
}

/// Reproduces Figure 10: sweeps injection rates and reports the saturation
/// point of each design/size/pattern combination.
///
/// A rate counts as saturated when the simulator's backlog heuristic triggers
/// or the average latency exceeds four times the latency at the lowest rate.
///
/// # Errors
///
/// Propagates construction and simulation errors.
pub fn saturation_study(
    kinds: &[TopologyKind],
    nodes: usize,
    pattern: SyntheticPattern,
    rates: &[f64],
    scale: ExperimentScale,
    seed: u64,
) -> SfResult<Vec<SaturationRow>> {
    let mut rows = Vec::new();
    for &kind in kinds {
        let instance = NetworkInstance::build(kind, nodes, seed)?;
        let mut best: Option<f64> = None;
        let mut base_latency: Option<f64> = None;
        for &rate in rates {
            let stats = run_pattern_on(&instance, pattern, rate, scale, seed)?;
            let latency = stats.average_latency_cycles();
            let base = *base_latency.get_or_insert(latency.max(1.0));
            let saturated = stats.is_saturated() || latency > 4.0 * base;
            if saturated {
                break;
            }
            best = Some(rate);
        }
        rows.push(SaturationRow {
            kind,
            nodes,
            pattern,
            saturation_percent: best.map(|r| r * 100.0),
        });
    }
    Ok(rows)
}

/// Runs one synthetic-pattern simulation on a pre-built instance.
///
/// # Errors
///
/// Propagates simulation errors.
pub fn run_pattern_on(
    instance: &NetworkInstance,
    pattern: SyntheticPattern,
    injection_rate: f64,
    scale: ExperimentScale,
    seed: u64,
) -> SfResult<SimulationStats> {
    let mut sim = instance.make_simulator(SystemConfig::default(), scale.simulation_config())?;
    let mut traffic = PatternTraffic::new(pattern, instance.num_nodes(), injection_rate, seed);
    sim.run(&mut traffic)
}

// ---------------------------------------------------------------------------
// Figure 11: latency versus injection rate curves
// ---------------------------------------------------------------------------

/// One point of a latency-versus-injection-rate curve.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LatencyPoint {
    /// Injection rate (packets per node per cycle).
    pub injection_rate: f64,
    /// Average packet latency in cycles.
    pub average_latency_cycles: f64,
    /// Accepted throughput (delivered packets per node per cycle).
    pub accepted_throughput: f64,
    /// Whether the run saturated.
    pub saturated: bool,
}

/// Reproduces one curve of Figure 11: average packet latency of `kind` under
/// `pattern` across the given injection rates.
///
/// # Errors
///
/// Propagates construction and simulation errors.
pub fn latency_curve(
    kind: TopologyKind,
    nodes: usize,
    pattern: SyntheticPattern,
    rates: &[f64],
    scale: ExperimentScale,
    seed: u64,
) -> SfResult<Vec<LatencyPoint>> {
    let instance = NetworkInstance::build(kind, nodes, seed)?;
    let mut points = Vec::new();
    for &rate in rates {
        let stats = run_pattern_on(&instance, pattern, rate, scale, seed)?;
        let measured = scale.max_cycles - scale.warmup_cycles;
        points.push(LatencyPoint {
            injection_rate: rate,
            average_latency_cycles: stats.average_latency_cycles(),
            accepted_throughput: stats.accepted_throughput(measured),
            saturated: stats.is_saturated(),
        });
    }
    Ok(points)
}

// ---------------------------------------------------------------------------
// Figure 12: real-workload throughput and energy
// ---------------------------------------------------------------------------

/// Result of one design running one application workload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadRow {
    /// Network design.
    pub kind: TopologyKind,
    /// Application evaluated.
    pub workload: ApplicationModel,
    /// Completed memory requests per cycle (the throughput proxy the
    /// normalised Figure 12(a) bars are derived from).
    pub requests_per_cycle: f64,
    /// Average memory-request round-trip latency in cycles.
    pub average_round_trip_cycles: f64,
    /// Dynamic memory energy per completed request, in picojoules.
    pub energy_per_request_pj: f64,
    /// Total dynamic energy, in picojoules.
    pub total_energy_pj: f64,
}

/// Reproduces Figure 12: runs each application on each design in
/// request–reply mode from `socket_count` processor-attached nodes and
/// reports throughput and dynamic energy.
///
/// # Errors
///
/// Propagates construction, workload, and simulation errors.
pub fn workload_study(
    kinds: &[TopologyKind],
    workloads: &[ApplicationModel],
    nodes: usize,
    socket_count: usize,
    scale: ExperimentScale,
    seed: u64,
) -> SfResult<Vec<WorkloadRow>> {
    let mut rows = Vec::new();
    let injectors = socket_nodes(nodes, socket_count);
    for &kind in kinds {
        let instance = NetworkInstance::build(kind, nodes, seed)?;
        for &workload in workloads {
            let stats = run_workload_on(&instance, workload, &injectors, scale, seed)?;
            let measured = scale.max_cycles - scale.warmup_cycles;
            let completed = stats.completed_requests.max(1);
            rows.push(WorkloadRow {
                kind,
                workload,
                requests_per_cycle: stats.completed_requests as f64 / measured as f64,
                average_round_trip_cycles: stats.average_round_trip_cycles(),
                energy_per_request_pj: stats.total_energy_pj() / completed as f64,
                total_energy_pj: stats.total_energy_pj(),
            });
        }
    }
    Ok(rows)
}

/// Runs one application workload on a pre-built instance.
///
/// # Errors
///
/// Propagates workload and simulation errors.
pub fn run_workload_on(
    instance: &NetworkInstance,
    workload: ApplicationModel,
    injectors: &[NodeId],
    scale: ExperimentScale,
    seed: u64,
) -> SfResult<SimulationStats> {
    let mapper = AddressMapper::paper_default(instance.num_nodes())?;
    // A reduced cache keeps the miss stream dense enough to exercise the
    // network within the simulated window (the paper's traces are likewise
    // collected post-initialisation, when caches are already thrashing).
    let cache = CacheHierarchy::tiny()?;
    let mut traffic =
        WorkloadTraffic::with_cache(workload, mapper, injectors, seed, &cache)?;
    let mut sim = instance
        .make_simulator(SystemConfig::default(), scale.simulation_config())?
        .with_request_reply(true);
    sim.run(&mut traffic)
}

/// Evenly spreads `count` processor sockets over the memory nodes (processors
/// can attach to any node in String Figure; the evaluation attaches them to a
/// spread-out subset).
#[must_use]
pub fn socket_nodes(nodes: usize, count: usize) -> Vec<NodeId> {
    let count = count.clamp(1, nodes);
    (0..count)
        .map(|i| NodeId::new(i * nodes / count))
        .collect()
}

// ---------------------------------------------------------------------------
// Figure 9(b): power-gating energy-delay product
// ---------------------------------------------------------------------------

/// One point of the Figure 9(b) power-management study.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PowerGateRow {
    /// Fraction of memory nodes gated off.
    pub gated_fraction: f64,
    /// Number of nodes actually gated.
    pub gated_nodes: usize,
    /// Energy-delay product of the run (pJ · cycles).
    pub energy_delay_product: f64,
    /// EDP normalised to the un-gated run (lower is better).
    pub normalized_edp: f64,
    /// Average request round-trip latency in cycles.
    pub average_round_trip_cycles: f64,
}

/// Reproduces Figure 9(b): runs `workload` on a String Figure network while
/// power gating increasing fractions of the memory nodes, reporting the
/// normalised energy-delay product.
///
/// # Errors
///
/// Propagates construction, reconfiguration, and simulation errors.
pub fn power_gating_study(
    nodes: usize,
    fractions: &[f64],
    workload: ApplicationModel,
    socket_count: usize,
    scale: ExperimentScale,
    seed: u64,
) -> SfResult<Vec<PowerGateRow>> {
    let mut rows = Vec::new();
    let mut baseline_edp: Option<f64> = None;
    for &fraction in fractions {
        let mut network = StringFigureNetwork::builder(nodes)
            .seed(seed)
            .simulation(scale.simulation_config())
            .build()?;
        let gated = if fraction > 0.0 {
            let mut pm = PowerManager::new(&mut network);
            pm.gate_fraction(fraction, seed)?
        } else {
            Vec::new()
        };
        // Processor sockets attach to nodes that remain powered.
        let active: Vec<NodeId> = network.topology().graph().active_nodes().collect();
        let injectors: Vec<NodeId> = socket_nodes(active.len(), socket_count)
            .iter()
            .map(|i| active[i.index()])
            .collect();
        // Data is redistributed over the remaining nodes.
        let mapper = AddressMapper::paper_default(active.len())?;
        let cache = CacheHierarchy::tiny()?;
        let mut traffic = RemappedWorkload {
            inner: WorkloadTraffic::with_cache(workload, mapper, &remap_injectors(&injectors, &active), seed, &cache)?,
            active: active.clone(),
        };
        let stats = network.run_traffic(&mut traffic, scale.simulation_config(), true)?;
        let edp = stats.energy_delay_product();
        let base = *baseline_edp.get_or_insert(edp.max(f64::MIN_POSITIVE));
        rows.push(PowerGateRow {
            gated_fraction: fraction,
            gated_nodes: gated.len(),
            energy_delay_product: edp,
            normalized_edp: edp / base,
            average_round_trip_cycles: stats.average_round_trip_cycles(),
        });
    }
    Ok(rows)
}

/// Maps injector node ids (positions within the active set) back to dense
/// indices for the shrunken address space.
fn remap_injectors(injectors: &[NodeId], active: &[NodeId]) -> Vec<NodeId> {
    injectors
        .iter()
        .map(|n| {
            let pos = active.iter().position(|a| a == n).unwrap_or(0);
            NodeId::new(pos)
        })
        .collect()
}

/// Wraps a [`WorkloadTraffic`] built over the dense active-node index space
/// and translates its sources/destinations back to the real node ids of a
/// partially gated network.
#[derive(Debug)]
struct RemappedWorkload {
    inner: WorkloadTraffic,
    active: Vec<NodeId>,
}

impl sf_netsim::TrafficModel for RemappedWorkload {
    fn maybe_inject(
        &mut self,
        cycle: u64,
        source: NodeId,
    ) -> Option<sf_netsim::TrafficRequest> {
        // Translate the physical source id to its dense index; silent when the
        // source is not an active node.
        let dense = NodeId::new(self.active.iter().position(|a| *a == source)?);
        let request = self.inner.maybe_inject(cycle, dense)?;
        Some(sf_netsim::TrafficRequest {
            destination: self.active[request.destination.index()],
            write: request.write,
        })
    }

    fn is_exhausted(&self) -> bool {
        self.inner.is_exhausted()
    }
}

// ---------------------------------------------------------------------------
// Bisection bandwidth and configuration tables
// ---------------------------------------------------------------------------

/// One row of the bisection-bandwidth study.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BisectionRow {
    /// Network design.
    pub kind: TopologyKind,
    /// Network size.
    pub nodes: usize,
    /// Empirical minimum bisection bandwidth (links across the cut).
    pub minimum: u64,
    /// Mean bisection bandwidth over the sampled cuts.
    pub average: f64,
}

/// Reproduces the bisection-bandwidth methodology of Section V (50 random
/// bisections, averaged over generated topologies).
///
/// # Errors
///
/// Propagates construction errors.
pub fn bisection_study(
    kinds: &[TopologyKind],
    nodes: usize,
    cuts: usize,
    topologies: u64,
) -> SfResult<Vec<BisectionRow>> {
    let mut rows = Vec::new();
    for &kind in kinds {
        let mut min_sum = 0u64;
        let mut avg_sum = 0.0;
        for seed in 0..topologies.max(1) {
            let instance = NetworkInstance::build(kind, nodes, seed + 1)?;
            let bb = instance.bisection_bandwidth(cuts, seed + 100);
            min_sum += bb.minimum;
            avg_sum += bb.average;
        }
        let denom = topologies.max(1);
        rows.push(BisectionRow {
            kind,
            nodes,
            minimum: min_sum / denom,
            average: avg_sum / denom as f64,
        });
    }
    Ok(rows)
}

/// One row of the Figure 8 / Table II configuration summary.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ConfigurationRow {
    /// Network design.
    pub kind: TopologyKind,
    /// Network size.
    pub nodes: usize,
    /// Router ports required.
    pub router_ports: usize,
    /// Total links in the network.
    pub links: usize,
    /// Whether the design needs high-radix routers (Table II).
    pub requires_high_radix: bool,
    /// Whether the design supports reconfigurable scaling (Table II).
    pub supports_reconfiguration: bool,
}

/// Reproduces the Figure 8 configuration table plus Table II's feature
/// matrix for the given sizes.
///
/// # Errors
///
/// Propagates construction errors.
pub fn configuration_table(
    kinds: &[TopologyKind],
    sizes: &[usize],
    seed: u64,
) -> SfResult<Vec<ConfigurationRow>> {
    let mut rows = Vec::new();
    for &nodes in sizes {
        for &kind in kinds {
            let instance = NetworkInstance::build(kind, nodes, seed)?;
            rows.push(ConfigurationRow {
                kind,
                nodes,
                router_ports: instance.router_ports(),
                links: instance.graph().num_edges(),
                requires_high_radix: kind.requires_high_radix(),
                supports_reconfiguration: kind.supports_reconfiguration(),
            });
        }
    }
    Ok(rows)
}

/// Average-path-length summary of a partially gated String Figure network,
/// used by the reconfiguration examples and tests.
///
/// # Errors
///
/// Propagates construction and reconfiguration errors.
pub fn gated_path_length(nodes: usize, fraction: f64, seed: u64) -> SfResult<analysis::PathLengthStats> {
    let mut network = StringFigureNetwork::builder(nodes).seed(seed).build()?;
    let mut pm = PowerManager::new(&mut network);
    pm.gate_fraction(fraction, seed)?;
    Ok(network.path_stats())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn surg_rows_show_flat_scaling() {
        let rows = surg_path_length_study(&[64, 200], 2).unwrap();
        assert_eq!(rows.len(), 2);
        for row in &rows {
            assert!(row.string_figure < 6.0);
            assert!((row.string_figure - row.s2).abs() < 1.0);
            assert!((row.string_figure - row.jellyfish).abs() < 1.5);
        }
        // Tripling the size should cost well under one extra hop.
        assert!(rows[1].string_figure - rows[0].string_figure < 1.0);
    }

    #[test]
    fn hop_count_study_orders_designs() {
        let rows = hop_count_study(
            &[TopologyKind::DistributedMesh, TopologyKind::StringFigure],
            &[144],
            200,
            1,
        )
        .unwrap();
        let mesh = rows.iter().find(|r| r.kind == TopologyKind::DistributedMesh).unwrap();
        let sf = rows.iter().find(|r| r.kind == TopologyKind::StringFigure).unwrap();
        assert!(mesh.average_routed_hops > sf.average_routed_hops);
        assert!(sf.average_routed_hops < 8.0);
        assert_eq!(sf.router_ports, 8);
    }

    #[test]
    fn saturation_study_runs_and_mesh_saturates_first() {
        let rates = [0.02, 0.10, 0.30, 0.60];
        let rows = saturation_study(
            &[TopologyKind::DistributedMesh, TopologyKind::StringFigure],
            36,
            SyntheticPattern::UniformRandom,
            &rates,
            ExperimentScale::quick(),
            3,
        )
        .unwrap();
        let mesh = &rows[0];
        let sf = &rows[1];
        let mesh_sat = mesh.saturation_percent.unwrap_or(0.0);
        let sf_sat = sf.saturation_percent.unwrap_or(0.0);
        assert!(sf_sat >= mesh_sat, "SF {sf_sat} should beat mesh {mesh_sat}");
    }

    #[test]
    fn latency_curve_is_monotonic_until_saturation() {
        let points = latency_curve(
            TopologyKind::StringFigure,
            32,
            SyntheticPattern::UniformRandom,
            &[0.02, 0.20],
            ExperimentScale::quick(),
            5,
        )
        .unwrap();
        assert_eq!(points.len(), 2);
        assert!(points[1].average_latency_cycles >= points[0].average_latency_cycles * 0.8);
        assert!(points[0].accepted_throughput > 0.0);
    }

    #[test]
    fn workload_study_produces_rows_for_each_pair() {
        let rows = workload_study(
            &[TopologyKind::DistributedMesh, TopologyKind::StringFigure],
            &[ApplicationModel::Memcached],
            32,
            4,
            ExperimentScale::quick(),
            7,
        )
        .unwrap();
        assert_eq!(rows.len(), 2);
        for row in &rows {
            assert!(row.requests_per_cycle > 0.0, "{}", row.kind);
            assert!(row.total_energy_pj > 0.0);
            assert!(row.average_round_trip_cycles > 0.0);
        }
    }

    #[test]
    fn power_gating_study_produces_normalized_rows() {
        let rows = power_gating_study(
            48,
            &[0.0, 0.25],
            ApplicationModel::SparkGrep,
            4,
            ExperimentScale::quick(),
            9,
        )
        .unwrap();
        assert_eq!(rows.len(), 2);
        assert!((rows[0].normalized_edp - 1.0).abs() < 1e-9);
        assert_eq!(rows[0].gated_nodes, 0);
        assert!(rows[1].gated_nodes >= 8);
        assert!(rows[1].normalized_edp > 0.0);
    }

    #[test]
    fn bisection_and_configuration_tables() {
        let bisection = bisection_study(
            &[TopologyKind::DistributedMesh, TopologyKind::StringFigure],
            36,
            5,
            2,
        )
        .unwrap();
        let mesh = &bisection[0];
        let sf = &bisection[1];
        assert!(sf.minimum >= mesh.minimum, "SF {} vs mesh {}", sf.minimum, mesh.minimum);

        let config = configuration_table(&TopologyKind::ALL, &[64], 1).unwrap();
        assert_eq!(config.len(), 6);
        let fb = config
            .iter()
            .find(|r| r.kind == TopologyKind::FlattenedButterfly)
            .unwrap();
        let sf_row = config
            .iter()
            .find(|r| r.kind == TopologyKind::StringFigure)
            .unwrap();
        assert!(fb.router_ports > sf_row.router_ports);
        assert!(fb.links > sf_row.links);
        assert!(sf_row.supports_reconfiguration);
    }

    #[test]
    fn socket_nodes_spread_evenly() {
        let sockets = socket_nodes(16, 4);
        assert_eq!(sockets, vec![NodeId::new(0), NodeId::new(4), NodeId::new(8), NodeId::new(12)]);
        assert_eq!(socket_nodes(4, 10).len(), 4);
        assert_eq!(socket_nodes(100, 1), vec![NodeId::new(0)]);
    }

    #[test]
    fn gated_path_length_stays_bounded() {
        let full = gated_path_length(64, 0.0, 1).unwrap();
        let gated = gated_path_length(64, 0.3, 1).unwrap();
        assert!(gated.average < full.average + 2.0);
        assert_eq!(gated.unreachable_pairs, 0);
    }

    #[test]
    fn experiment_scales() {
        assert!(ExperimentScale::paper().max_cycles > ExperimentScale::quick().max_cycles);
        assert!(ExperimentScale::quick().simulation_config().validate().is_ok());
    }
}
