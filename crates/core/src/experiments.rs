//! Experiment drivers that regenerate the paper's tables and figures.
//!
//! Each function corresponds to one evaluation artefact and returns plain
//! serialisable rows. The canonical entry points are the `*_with_ctx`
//! variants running inside a [`crate::study::RunContext`] (worker pool,
//! topology cache, checkpoint/resume) — the registered [`crate::study`]
//! studies and the `sfbench` CLI call those with the paper's parameters —
//! while the historical `*_study` / `*_with_pool` signatures remain as thin
//! wrappers for the integration tests, which run them at reduced scale to
//! check the qualitative trends (who wins, and by roughly how much).
//!
//! | function | paper artefact |
//! |----------|----------------|
//! | [`surg_path_length_study`]     | Figure 5 |
//! | [`hop_count_study`]            | Figure 9(a) |
//! | [`power_gating_study`]         | Figure 9(b) |
//! | [`saturation_study`]           | Figure 10 |
//! | [`latency_curve`]              | Figure 11 |
//! | [`workload_study`]             | Figure 12(a) and 12(b) |
//! | [`bisection_study`]            | Section V bisection methodology |
//! | [`configuration_table`]        | Figure 8 / Table II |
//! | [`fault_resilience_study`]     | Scenario: fault injection |
//! | [`adversarial_saturation_study`] | Scenario: adversarial traffic |
//! | [`scaleout_study`]             | Scenario: scale-out beyond 1296 nodes |
//! | [`megasweep_study`]            | Scenario: streaming mega-sweep |

use crate::comparison::{NetworkInstance, TopologyKind};
use crate::network::StringFigureNetwork;
use crate::power::PowerManager;
use crate::study::RunContext;
use serde::{Deserialize, Serialize};
use sf_harness::pool::PoolConfig;
use sf_harness::sweep::{cross2, cross2_lazy, cross3_lazy};
use sf_harness::table::{Record, Value};
use sf_harness::BuildCache;
use sf_netsim::SimulationStats;
use sf_topology::analysis;
use sf_types::{FaultPlan, NodeId, SfResult, SimulationConfig, SystemConfig};
use sf_workloads::{
    AddressMapper, ApplicationModel, CacheHierarchy, PatternTraffic, SyntheticPattern,
    WorkloadTraffic,
};
use std::sync::{Arc, OnceLock};

// ---------------------------------------------------------------------------
// Harness plumbing: worker pool, topology cache, outcome collection
// ---------------------------------------------------------------------------

/// The worker pool every study runs on by default: one worker per CPU,
/// overridable with the `SF_HARNESS_THREADS` environment variable. Results
/// are collected by job index, so any worker count produces bit-identical
/// rows (see the `*_with_pool` variants and the determinism test below).
#[must_use]
pub fn default_pool() -> PoolConfig {
    PoolConfig::auto()
}

/// A context wrapping an explicit worker pool — the adapter that collapses
/// the historical `*_study` / `*_with_pool` entry points onto the single
/// [`RunContext`] code path.
fn pool_ctx(pool: &PoolConfig) -> RunContext {
    RunContext::new().with_pool(*pool)
}

/// Process-wide cache of generated [`NetworkInstance`]s keyed by
/// `(kind, nodes, seed)`. Construction is a pure function of the key, so
/// sharing instances across jobs (and across studies) never changes results
/// — it only removes redundant topology generation from sweeps that revisit
/// the same network point.
fn topology_cache() -> &'static BuildCache<(TopologyKind, usize, u64), NetworkInstance> {
    static CACHE: OnceLock<BuildCache<(TopologyKind, usize, u64), NetworkInstance>> =
        OnceLock::new();
    CACHE.get_or_init(BuildCache::new)
}

/// Builds or reuses the network design `kind` at scale `nodes` with `seed`.
///
/// # Errors
///
/// Propagates topology construction errors.
pub fn cached_instance(
    kind: TopologyKind,
    nodes: usize,
    seed: u64,
) -> SfResult<Arc<NetworkInstance>> {
    topology_cache().get_or_build((kind, nodes, seed), || {
        NetworkInstance::build(kind, nodes, seed)
    })
}

/// Controls how long the cycle-level simulations of an experiment run.
///
/// The paper's RTL runs use 100,000 operations; integration tests use the
/// `quick` scale so the whole suite stays fast, while the bench harness uses
/// `paper` scale.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ExperimentScale {
    /// Simulated cycles per run.
    pub max_cycles: u64,
    /// Warm-up cycles excluded from the statistics.
    pub warmup_cycles: u64,
    /// Router shards the cycle loop of each simulation is split across
    /// (`0` = auto from the shared core budget). Any value produces
    /// bit-identical rows; the knob only trades wall-clock time.
    pub shards: usize,
    /// Telemetry sampling stride in cycles (`0` = off). Strictly
    /// out-of-band: like `shards`, it never changes a row.
    pub telemetry_every: u64,
}

impl ExperimentScale {
    /// Small scale for tests (about a thousand cycles).
    #[must_use]
    pub fn quick() -> Self {
        Self {
            max_cycles: 1_200,
            warmup_cycles: 200,
            shards: 0,
            telemetry_every: 0,
        }
    }

    /// Full scale used by the benchmark harness.
    #[must_use]
    pub fn paper() -> Self {
        Self {
            max_cycles: 20_000,
            warmup_cycles: 2_000,
            shards: 0,
            telemetry_every: 0,
        }
    }

    /// Returns a copy with an explicit intra-simulation shard count
    /// (`0` restores automatic selection).
    #[must_use]
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.shards = shards;
        self
    }

    /// Returns a copy with a telemetry sampling stride in cycles
    /// (`0` disables recording).
    #[must_use]
    pub fn with_telemetry_every(mut self, every: u64) -> Self {
        self.telemetry_every = every;
        self
    }

    /// The corresponding simulator configuration.
    #[must_use]
    pub fn simulation_config(&self) -> SimulationConfig {
        SimulationConfig {
            max_cycles: self.max_cycles,
            warmup_cycles: self.warmup_cycles,
            shards: self.shards,
            telemetry_every: self.telemetry_every,
            ..SimulationConfig::default()
        }
    }
}

// ---------------------------------------------------------------------------
// Figure 5: sufficiently-uniform-random-graph path-length comparison
// ---------------------------------------------------------------------------

/// One row of the Figure 5 comparison.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SurgRow {
    /// Network size.
    pub nodes: usize,
    /// Average shortest path length of Jellyfish.
    pub jellyfish: f64,
    /// Average shortest path length of S2.
    pub s2: f64,
    /// Average shortest path length of String Figure.
    pub string_figure: f64,
}

/// Reproduces Figure 5: average shortest path lengths of Jellyfish, S2, and
/// String Figure across network sizes, averaged over `seeds` generated
/// topologies each.
///
/// # Errors
///
/// Propagates topology construction errors.
pub fn surg_path_length_study(sizes: &[usize], seeds: u64) -> SfResult<Vec<SurgRow>> {
    surg_path_length_study_with_ctx(&RunContext::new(), sizes, seeds)
}

/// [`surg_path_length_study`] on an explicit worker pool.
///
/// # Errors
///
/// Propagates topology construction errors.
pub fn surg_path_length_study_with_pool(
    pool: &PoolConfig,
    sizes: &[usize],
    seeds: u64,
) -> SfResult<Vec<SurgRow>> {
    surg_path_length_study_with_ctx(&pool_ctx(pool), sizes, seeds)
}

/// [`surg_path_length_study`] inside an explicit [`RunContext`] — the single
/// code path behind both wrappers (and the `fig05` study).
///
/// # Errors
///
/// Propagates topology construction errors.
pub fn surg_path_length_study_with_ctx(
    ctx: &RunContext,
    sizes: &[usize],
    seeds: u64,
) -> SfResult<Vec<SurgRow>> {
    const KINDS: [TopologyKind; 3] = [
        TopologyKind::Jellyfish,
        TopologyKind::SpaceShuffle,
        TopologyKind::StringFigure,
    ];
    // One job per (size, topology seed, design), streamed lazily in
    // row-major order — the same enumeration the eager product built;
    // aggregation back into one row per size happens serially below, in
    // enumeration order, so the float accumulation order matches the old
    // nested loops exactly.
    let seed_list: Vec<u64> = (0..seeds.max(1)).collect();
    let points = cross3_lazy(sizes.to_vec(), seed_list.clone(), KINDS.to_vec());
    let lengths = ctx.run_jobs(points, |_, &(nodes, seed, kind)| {
        Ok(ctx.instance(kind, nodes, seed + 1)?.average_shortest_path())
    })?;

    let denom = seeds.max(1) as f64;
    let per_size = seed_list.len() * KINDS.len();
    let mut rows = Vec::with_capacity(sizes.len());
    for (si, &nodes) in sizes.iter().enumerate() {
        let mut sums = [0.0f64; 3];
        for (pi, length) in lengths[si * per_size..(si + 1) * per_size]
            .iter()
            .enumerate()
        {
            sums[pi % KINDS.len()] += length;
        }
        rows.push(SurgRow {
            nodes,
            jellyfish: sums[0] / denom,
            s2: sums[1] / denom,
            string_figure: sums[2] / denom,
        });
    }
    Ok(rows)
}

// ---------------------------------------------------------------------------
// Figure 9(a): average hop counts across designs and scales
// ---------------------------------------------------------------------------

/// One row of the Figure 9(a) hop-count study.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HopCountRow {
    /// Network design.
    pub kind: TopologyKind,
    /// Network size.
    pub nodes: usize,
    /// Average shortest-path length (graph metric).
    pub average_shortest_path: f64,
    /// Average hop count actually taken by the design's routing protocol.
    pub average_routed_hops: f64,
    /// Router ports this design needs at this scale.
    pub router_ports: usize,
}

/// Reproduces Figure 9(a): average hop counts of every design across network
/// sizes, using each design's own routing protocol over `samples` random
/// source/destination pairs.
///
/// # Errors
///
/// Propagates topology construction and routing errors.
pub fn hop_count_study(
    kinds: &[TopologyKind],
    sizes: &[usize],
    samples: usize,
    seed: u64,
) -> SfResult<Vec<HopCountRow>> {
    hop_count_study_with_ctx(&RunContext::new(), kinds, sizes, samples, seed)
}

/// [`hop_count_study`] on an explicit worker pool.
///
/// # Errors
///
/// Propagates topology construction and routing errors.
pub fn hop_count_study_with_pool(
    pool: &PoolConfig,
    kinds: &[TopologyKind],
    sizes: &[usize],
    samples: usize,
    seed: u64,
) -> SfResult<Vec<HopCountRow>> {
    hop_count_study_with_ctx(&pool_ctx(pool), kinds, sizes, samples, seed)
}

/// [`hop_count_study`] inside an explicit [`RunContext`] — the single code
/// path behind both wrappers (and the `fig09a` study).
///
/// # Errors
///
/// Propagates topology construction and routing errors.
pub fn hop_count_study_with_ctx(
    ctx: &RunContext,
    kinds: &[TopologyKind],
    sizes: &[usize],
    samples: usize,
    seed: u64,
) -> SfResult<Vec<HopCountRow>> {
    ctx.run_jobs(
        cross2_lazy(sizes.to_vec(), kinds.to_vec()),
        |_, &(nodes, kind)| {
            let instance = ctx.instance(kind, nodes, seed)?;
            Ok(HopCountRow {
                kind,
                nodes,
                average_shortest_path: instance.average_shortest_path(),
                average_routed_hops: instance.average_routed_hops(samples)?,
                router_ports: instance.router_ports(),
            })
        },
    )
}

// ---------------------------------------------------------------------------
// Figure 10: network saturation points
// ---------------------------------------------------------------------------

/// One saturation measurement.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SaturationRow {
    /// Network design.
    pub kind: TopologyKind,
    /// Network size.
    pub nodes: usize,
    /// Traffic pattern evaluated.
    pub pattern: SyntheticPattern,
    /// Highest injection rate (as a percentage) that did not saturate the
    /// network; `None` when even the lowest rate saturated.
    pub saturation_percent: Option<f64>,
}

/// Reproduces Figure 10: sweeps injection rates and reports the saturation
/// point of each design/size/pattern combination.
///
/// A rate counts as saturated when the simulator's backlog heuristic triggers
/// or the average latency exceeds four times the latency at the lowest rate.
///
/// # Errors
///
/// Propagates construction and simulation errors.
pub fn saturation_study(
    kinds: &[TopologyKind],
    nodes: usize,
    pattern: SyntheticPattern,
    rates: &[f64],
    scale: ExperimentScale,
    seed: u64,
) -> SfResult<Vec<SaturationRow>> {
    saturation_study_with_ctx(
        &RunContext::new(),
        kinds,
        nodes,
        pattern,
        rates,
        scale,
        seed,
    )
}

/// [`saturation_study`] on an explicit worker pool.
///
/// # Errors
///
/// Propagates construction and simulation errors.
#[allow(clippy::too_many_arguments)]
pub fn saturation_study_with_pool(
    pool: &PoolConfig,
    kinds: &[TopologyKind],
    nodes: usize,
    pattern: SyntheticPattern,
    rates: &[f64],
    scale: ExperimentScale,
    seed: u64,
) -> SfResult<Vec<SaturationRow>> {
    saturation_study_with_ctx(&pool_ctx(pool), kinds, nodes, pattern, rates, scale, seed)
}

/// [`saturation_study`] inside an explicit [`RunContext`] — the single code
/// path behind both wrappers (and the `fig10` study).
///
/// One job per design; the injection-rate ladder inside a job stays serial
/// because each rung's early exit depends on the previous one.
///
/// # Errors
///
/// Propagates construction and simulation errors.
#[allow(clippy::too_many_arguments)]
pub fn saturation_study_with_ctx(
    ctx: &RunContext,
    kinds: &[TopologyKind],
    nodes: usize,
    pattern: SyntheticPattern,
    rates: &[f64],
    scale: ExperimentScale,
    seed: u64,
) -> SfResult<Vec<SaturationRow>> {
    ctx.run_jobs(kinds.to_vec(), |_, &kind| {
        let instance = ctx.instance(kind, nodes, seed)?;
        let mut best: Option<f64> = None;
        let mut base_latency: Option<f64> = None;
        for &rate in rates {
            let stats = run_pattern_on(&instance, pattern, rate, scale, seed)?;
            let latency = stats.average_latency_cycles();
            let base = *base_latency.get_or_insert(latency.max(1.0));
            let saturated = stats.is_saturated() || latency > 4.0 * base;
            if saturated {
                break;
            }
            best = Some(rate);
        }
        Ok(SaturationRow {
            kind,
            nodes,
            pattern,
            saturation_percent: best.map(|r| r * 100.0),
        })
    })
}

/// Runs one synthetic-pattern simulation on a pre-built instance.
///
/// # Errors
///
/// Propagates simulation errors.
pub fn run_pattern_on(
    instance: &NetworkInstance,
    pattern: SyntheticPattern,
    injection_rate: f64,
    scale: ExperimentScale,
    seed: u64,
) -> SfResult<SimulationStats> {
    let mut sim = instance.make_simulator(SystemConfig::default(), scale.simulation_config())?;
    let mut traffic = PatternTraffic::new(pattern, instance.num_nodes(), injection_rate, seed);
    sim.run(&mut traffic)
}

// ---------------------------------------------------------------------------
// Figure 11: latency versus injection rate curves
// ---------------------------------------------------------------------------

/// One point of a latency-versus-injection-rate curve.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LatencyPoint {
    /// Injection rate (packets per node per cycle).
    pub injection_rate: f64,
    /// Average packet latency in cycles.
    pub average_latency_cycles: f64,
    /// Accepted throughput (delivered packets per node per cycle).
    pub accepted_throughput: f64,
    /// Whether the run saturated.
    pub saturated: bool,
}

/// Reproduces one curve of Figure 11: average packet latency of `kind` under
/// `pattern` across the given injection rates.
///
/// # Errors
///
/// Propagates construction and simulation errors.
pub fn latency_curve(
    kind: TopologyKind,
    nodes: usize,
    pattern: SyntheticPattern,
    rates: &[f64],
    scale: ExperimentScale,
    seed: u64,
) -> SfResult<Vec<LatencyPoint>> {
    latency_curve_with_ctx(&RunContext::new(), kind, nodes, pattern, rates, scale, seed)
}

/// [`latency_curve`] on an explicit worker pool.
///
/// # Errors
///
/// Propagates construction and simulation errors.
#[allow(clippy::too_many_arguments)]
pub fn latency_curve_with_pool(
    pool: &PoolConfig,
    kind: TopologyKind,
    nodes: usize,
    pattern: SyntheticPattern,
    rates: &[f64],
    scale: ExperimentScale,
    seed: u64,
) -> SfResult<Vec<LatencyPoint>> {
    latency_curve_with_ctx(&pool_ctx(pool), kind, nodes, pattern, rates, scale, seed)
}

/// [`latency_curve`] inside an explicit [`RunContext`] — the single code
/// path behind both wrappers (and the `fig11` study): one job per injection
/// rate, all sharing the cached network instance.
///
/// # Errors
///
/// Propagates construction and simulation errors.
#[allow(clippy::too_many_arguments)]
pub fn latency_curve_with_ctx(
    ctx: &RunContext,
    kind: TopologyKind,
    nodes: usize,
    pattern: SyntheticPattern,
    rates: &[f64],
    scale: ExperimentScale,
    seed: u64,
) -> SfResult<Vec<LatencyPoint>> {
    let instance = ctx.instance(kind, nodes, seed)?;
    ctx.run_jobs(rates.to_vec(), |_, &rate| {
        let stats = run_pattern_on(&instance, pattern, rate, scale, seed)?;
        let measured = scale.max_cycles - scale.warmup_cycles;
        Ok(LatencyPoint {
            injection_rate: rate,
            average_latency_cycles: stats.average_latency_cycles(),
            accepted_throughput: stats.accepted_throughput(measured),
            saturated: stats.is_saturated(),
        })
    })
}

// ---------------------------------------------------------------------------
// Figure 12: real-workload throughput and energy
// ---------------------------------------------------------------------------

/// Result of one design running one application workload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadRow {
    /// Network design.
    pub kind: TopologyKind,
    /// Application evaluated.
    pub workload: ApplicationModel,
    /// Completed memory requests per cycle (the throughput proxy the
    /// normalised Figure 12(a) bars are derived from).
    pub requests_per_cycle: f64,
    /// Average memory-request round-trip latency in cycles.
    pub average_round_trip_cycles: f64,
    /// Dynamic memory energy per completed request, in picojoules.
    pub energy_per_request_pj: f64,
    /// Total dynamic energy, in picojoules.
    pub total_energy_pj: f64,
}

/// Reproduces Figure 12: runs each application on each design in
/// request–reply mode from `socket_count` processor-attached nodes and
/// reports throughput and dynamic energy.
///
/// # Errors
///
/// Propagates construction, workload, and simulation errors.
pub fn workload_study(
    kinds: &[TopologyKind],
    workloads: &[ApplicationModel],
    nodes: usize,
    socket_count: usize,
    scale: ExperimentScale,
    seed: u64,
) -> SfResult<Vec<WorkloadRow>> {
    workload_study_with_ctx(
        &RunContext::new(),
        kinds,
        workloads,
        nodes,
        socket_count,
        scale,
        seed,
    )
}

/// [`workload_study`] on an explicit worker pool.
///
/// # Errors
///
/// Propagates construction, workload, and simulation errors.
#[allow(clippy::too_many_arguments)]
pub fn workload_study_with_pool(
    pool: &PoolConfig,
    kinds: &[TopologyKind],
    workloads: &[ApplicationModel],
    nodes: usize,
    socket_count: usize,
    scale: ExperimentScale,
    seed: u64,
) -> SfResult<Vec<WorkloadRow>> {
    workload_study_with_ctx(
        &pool_ctx(pool),
        kinds,
        workloads,
        nodes,
        socket_count,
        scale,
        seed,
    )
}

/// [`workload_study`] inside an explicit [`RunContext`] — the single code
/// path behind both wrappers (and the `fig12` study): one job per
/// (design, application) pair.
///
/// # Errors
///
/// Propagates construction, workload, and simulation errors.
#[allow(clippy::too_many_arguments)]
pub fn workload_study_with_ctx(
    ctx: &RunContext,
    kinds: &[TopologyKind],
    workloads: &[ApplicationModel],
    nodes: usize,
    socket_count: usize,
    scale: ExperimentScale,
    seed: u64,
) -> SfResult<Vec<WorkloadRow>> {
    let injectors = socket_nodes(nodes, socket_count);
    ctx.run_jobs(
        cross2_lazy(kinds.to_vec(), workloads.to_vec()),
        |_, &(kind, workload)| {
            let instance = ctx.instance(kind, nodes, seed)?;
            let stats = run_workload_on(&instance, workload, &injectors, scale, seed)?;
            let measured = scale.max_cycles - scale.warmup_cycles;
            let completed = stats.completed_requests.max(1);
            Ok(WorkloadRow {
                kind,
                workload,
                requests_per_cycle: stats.completed_requests as f64 / measured as f64,
                average_round_trip_cycles: stats.average_round_trip_cycles(),
                energy_per_request_pj: stats.total_energy_pj() / completed as f64,
                total_energy_pj: stats.total_energy_pj(),
            })
        },
    )
}

/// Runs one application workload on a pre-built instance.
///
/// # Errors
///
/// Propagates workload and simulation errors.
pub fn run_workload_on(
    instance: &NetworkInstance,
    workload: ApplicationModel,
    injectors: &[NodeId],
    scale: ExperimentScale,
    seed: u64,
) -> SfResult<SimulationStats> {
    let mapper = AddressMapper::paper_default(instance.num_nodes())?;
    // A reduced cache keeps the miss stream dense enough to exercise the
    // network within the simulated window (the paper's traces are likewise
    // collected post-initialisation, when caches are already thrashing).
    let cache = CacheHierarchy::tiny()?;
    let mut traffic = WorkloadTraffic::with_cache(workload, mapper, injectors, seed, &cache)?;
    let mut sim = instance
        .make_simulator(SystemConfig::default(), scale.simulation_config())?
        .with_request_reply(true);
    sim.run(&mut traffic)
}

/// Evenly spreads `count` processor sockets over the memory nodes (processors
/// can attach to any node in String Figure; the evaluation attaches them to a
/// spread-out subset).
#[must_use]
pub fn socket_nodes(nodes: usize, count: usize) -> Vec<NodeId> {
    let count = count.clamp(1, nodes);
    (0..count).map(|i| NodeId::new(i * nodes / count)).collect()
}

// ---------------------------------------------------------------------------
// Figure 9(b): power-gating energy-delay product
// ---------------------------------------------------------------------------

/// One point of the Figure 9(b) power-management study.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PowerGateRow {
    /// Fraction of memory nodes gated off.
    pub gated_fraction: f64,
    /// Number of nodes actually gated.
    pub gated_nodes: usize,
    /// Energy-delay product of the run (pJ · cycles).
    pub energy_delay_product: f64,
    /// EDP normalised to the un-gated run (lower is better).
    pub normalized_edp: f64,
    /// Average request round-trip latency in cycles.
    pub average_round_trip_cycles: f64,
}

/// Reproduces Figure 9(b): runs `workload` on a String Figure network while
/// power gating increasing fractions of the memory nodes, reporting the
/// normalised energy-delay product.
///
/// # Errors
///
/// Propagates construction, reconfiguration, and simulation errors.
pub fn power_gating_study(
    nodes: usize,
    fractions: &[f64],
    workload: ApplicationModel,
    socket_count: usize,
    scale: ExperimentScale,
    seed: u64,
) -> SfResult<Vec<PowerGateRow>> {
    power_gating_study_with_ctx(
        &RunContext::new(),
        nodes,
        fractions,
        workload,
        socket_count,
        scale,
        seed,
    )
}

/// [`power_gating_study`] on an explicit worker pool.
///
/// # Errors
///
/// Propagates construction, reconfiguration, and simulation errors.
#[allow(clippy::too_many_arguments)]
pub fn power_gating_study_with_pool(
    pool: &PoolConfig,
    nodes: usize,
    fractions: &[f64],
    workload: ApplicationModel,
    socket_count: usize,
    scale: ExperimentScale,
    seed: u64,
) -> SfResult<Vec<PowerGateRow>> {
    power_gating_study_with_ctx(
        &pool_ctx(pool),
        nodes,
        fractions,
        workload,
        socket_count,
        scale,
        seed,
    )
}

/// [`power_gating_study`] inside an explicit [`RunContext`] — the single
/// code path behind both wrappers (and the `fig09b` study).
///
/// Every fraction is an independent job (each builds and gates its own
/// network, so nothing is shared); normalisation against the first
/// fraction's EDP happens serially once all jobs are in, which keeps the
/// output identical to the old strictly-serial loop.
///
/// # Errors
///
/// Propagates construction, reconfiguration, and simulation errors.
#[allow(clippy::too_many_arguments)]
pub fn power_gating_study_with_ctx(
    ctx: &RunContext,
    nodes: usize,
    fractions: &[f64],
    workload: ApplicationModel,
    socket_count: usize,
    scale: ExperimentScale,
    seed: u64,
) -> SfResult<Vec<PowerGateRow>> {
    let mut rows = ctx.run_jobs(fractions.to_vec(), |_, &fraction| {
        let mut network = StringFigureNetwork::builder(nodes)
            .seed(seed)
            .simulation(scale.simulation_config())
            .build()?;
        let gated = if fraction > 0.0 {
            let mut pm = PowerManager::new(&mut network);
            pm.gate_fraction(fraction, seed)?
        } else {
            Vec::new()
        };
        // Processor sockets attach to nodes that remain powered.
        let active: Vec<NodeId> = network.topology().graph().active_nodes().collect();
        let injectors: Vec<NodeId> = socket_nodes(active.len(), socket_count)
            .iter()
            .map(|i| active[i.index()])
            .collect();
        // Data is redistributed over the remaining nodes.
        let mapper = AddressMapper::paper_default(active.len())?;
        let cache = CacheHierarchy::tiny()?;
        let mut traffic = RemappedWorkload {
            inner: WorkloadTraffic::with_cache(
                workload,
                mapper,
                &remap_injectors(&injectors, &active),
                seed,
                &cache,
            )?,
            active: active.clone(),
        };
        let stats = network.run_traffic(&mut traffic, scale.simulation_config(), true)?;
        Ok(PowerGateRow {
            gated_fraction: fraction,
            gated_nodes: gated.len(),
            energy_delay_product: stats.energy_delay_product(),
            // Filled in below once the baseline (first fraction) is known.
            normalized_edp: 0.0,
            average_round_trip_cycles: stats.average_round_trip_cycles(),
        })
    })?;
    let base = rows
        .first()
        .map_or(1.0, |r| r.energy_delay_product.max(f64::MIN_POSITIVE));
    for row in &mut rows {
        row.normalized_edp = row.energy_delay_product / base;
    }
    Ok(rows)
}

/// Maps injector node ids (positions within the active set) back to dense
/// indices for the shrunken address space.
fn remap_injectors(injectors: &[NodeId], active: &[NodeId]) -> Vec<NodeId> {
    injectors
        .iter()
        .map(|n| {
            let pos = active.iter().position(|a| a == n).unwrap_or(0);
            NodeId::new(pos)
        })
        .collect()
}

/// Wraps a [`WorkloadTraffic`] built over the dense active-node index space
/// and translates its sources/destinations back to the real node ids of a
/// partially gated network.
#[derive(Debug)]
struct RemappedWorkload {
    inner: WorkloadTraffic,
    active: Vec<NodeId>,
}

impl sf_netsim::TrafficModel for RemappedWorkload {
    fn maybe_inject(&mut self, cycle: u64, source: NodeId) -> Option<sf_netsim::TrafficRequest> {
        // Translate the physical source id to its dense index; silent when the
        // source is not an active node.
        let dense = NodeId::new(self.active.iter().position(|a| *a == source)?);
        let request = self.inner.maybe_inject(cycle, dense)?;
        Some(sf_netsim::TrafficRequest {
            destination: self.active[request.destination.index()],
            write: request.write,
        })
    }

    fn is_exhausted(&self) -> bool {
        self.inner.is_exhausted()
    }
}

// ---------------------------------------------------------------------------
// Bisection bandwidth and configuration tables
// ---------------------------------------------------------------------------

/// One row of the bisection-bandwidth study.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BisectionRow {
    /// Network design.
    pub kind: TopologyKind,
    /// Network size.
    pub nodes: usize,
    /// Empirical minimum bisection bandwidth (links across the cut).
    pub minimum: u64,
    /// Mean bisection bandwidth over the sampled cuts.
    pub average: f64,
}

/// Reproduces the bisection-bandwidth methodology of Section V (50 random
/// bisections, averaged over generated topologies).
///
/// # Errors
///
/// Propagates construction errors.
pub fn bisection_study(
    kinds: &[TopologyKind],
    nodes: usize,
    cuts: usize,
    topologies: u64,
) -> SfResult<Vec<BisectionRow>> {
    bisection_study_with_ctx(&RunContext::new(), kinds, nodes, cuts, topologies)
}

/// [`bisection_study`] on an explicit worker pool.
///
/// # Errors
///
/// Propagates construction errors.
pub fn bisection_study_with_pool(
    pool: &PoolConfig,
    kinds: &[TopologyKind],
    nodes: usize,
    cuts: usize,
    topologies: u64,
) -> SfResult<Vec<BisectionRow>> {
    bisection_study_with_ctx(&pool_ctx(pool), kinds, nodes, cuts, topologies)
}

/// [`bisection_study`] inside an explicit [`RunContext`] — the single code
/// path behind both wrappers (and the `bisection` study): one job per
/// (design, generated topology), averaged per design afterwards in
/// enumeration order.
///
/// # Errors
///
/// Propagates construction errors.
pub fn bisection_study_with_ctx(
    ctx: &RunContext,
    kinds: &[TopologyKind],
    nodes: usize,
    cuts: usize,
    topologies: u64,
) -> SfResult<Vec<BisectionRow>> {
    let seed_list: Vec<u64> = (0..topologies.max(1)).collect();
    let samples = ctx.run_jobs(
        cross2_lazy(kinds.to_vec(), seed_list.clone()),
        |_, &(kind, seed)| {
            let instance = ctx.instance(kind, nodes, seed + 1)?;
            Ok(instance.bisection_bandwidth(cuts, seed + 100))
        },
    )?;

    let denom = topologies.max(1);
    let per_kind = seed_list.len();
    let mut rows = Vec::with_capacity(kinds.len());
    for (ki, &kind) in kinds.iter().enumerate() {
        let mut min_sum = 0u64;
        let mut avg_sum = 0.0;
        for bb in &samples[ki * per_kind..(ki + 1) * per_kind] {
            min_sum += bb.minimum;
            avg_sum += bb.average;
        }
        rows.push(BisectionRow {
            kind,
            nodes,
            minimum: min_sum / denom,
            average: avg_sum / denom as f64,
        });
    }
    Ok(rows)
}

/// One row of the Figure 8 / Table II configuration summary.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ConfigurationRow {
    /// Network design.
    pub kind: TopologyKind,
    /// Network size.
    pub nodes: usize,
    /// Router ports required.
    pub router_ports: usize,
    /// Total links in the network.
    pub links: usize,
    /// Whether the design needs high-radix routers (Table II).
    pub requires_high_radix: bool,
    /// Whether the design supports reconfigurable scaling (Table II).
    pub supports_reconfiguration: bool,
}

/// Reproduces the Figure 8 configuration table plus Table II's feature
/// matrix for the given sizes.
///
/// # Errors
///
/// Propagates construction errors.
pub fn configuration_table(
    kinds: &[TopologyKind],
    sizes: &[usize],
    seed: u64,
) -> SfResult<Vec<ConfigurationRow>> {
    configuration_table_with_ctx(&RunContext::new(), kinds, sizes, seed)
}

/// [`configuration_table`] on an explicit worker pool.
///
/// # Errors
///
/// Propagates construction errors.
pub fn configuration_table_with_pool(
    pool: &PoolConfig,
    kinds: &[TopologyKind],
    sizes: &[usize],
    seed: u64,
) -> SfResult<Vec<ConfigurationRow>> {
    configuration_table_with_ctx(&pool_ctx(pool), kinds, sizes, seed)
}

/// [`configuration_table`] inside an explicit [`RunContext`] — the single
/// code path behind both wrappers (and the `fig08` study).
///
/// # Errors
///
/// Propagates construction errors.
pub fn configuration_table_with_ctx(
    ctx: &RunContext,
    kinds: &[TopologyKind],
    sizes: &[usize],
    seed: u64,
) -> SfResult<Vec<ConfigurationRow>> {
    ctx.run_jobs(
        cross2_lazy(sizes.to_vec(), kinds.to_vec()),
        |_, &(nodes, kind)| {
            let instance = ctx.instance(kind, nodes, seed)?;
            Ok(ConfigurationRow {
                kind,
                nodes,
                router_ports: instance.router_ports(),
                links: instance.graph().num_edges(),
                requires_high_radix: kind.requires_high_radix(),
                supports_reconfiguration: kind.supports_reconfiguration(),
            })
        },
    )
}

// ---------------------------------------------------------------------------
// Scenario: fault injection, adversarial traffic, scale-out
// ---------------------------------------------------------------------------

/// One row of the fault-resilience scenario study: one design under one
/// fault severity.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultResilienceRow {
    /// Network design.
    pub kind: TopologyKind,
    /// Network size.
    pub nodes: usize,
    /// Undirected links taken down per fault wave.
    pub links_per_wave: usize,
    /// Routers power-gated per fault wave.
    pub routers_per_wave: usize,
    /// Link-down fault events the run applied.
    pub link_down_events: u64,
    /// Router power-gate fault events the run applied.
    pub router_down_events: u64,
    /// Memory requests injected during the measured phase.
    pub injected: u64,
    /// Requests whose reply made it back during the measured phase — the
    /// end-to-end survivors.
    pub completed_requests: u64,
    /// Packets lost to fault injection over the whole run.
    pub dropped_packets: u64,
    /// Completed requests / injected requests (the survival metric of the
    /// scenario; can slightly exceed 1 on a healthy network because warm-up
    /// requests complete inside the measured window).
    pub completion_ratio: f64,
    /// Average request round-trip latency in cycles.
    pub average_round_trip_cycles: f64,
}

impl FaultResilienceRow {
    /// Total fault events (link-down plus router power-gate) the run applied.
    #[must_use]
    pub fn fault_events(&self) -> u64 {
        self.link_down_events + self.router_down_events
    }
}

/// Scenario study: how each design degrades (delivery ratio, drops, latency)
/// under deterministic waves of link failures and router power-gate events,
/// at increasing severity. Severity `(0, 0)` is the healthy baseline row,
/// run without any fault plan — pinning the zero-cost-off contract.
///
/// # Errors
///
/// Propagates construction and simulation errors.
pub fn fault_resilience_study(
    kinds: &[TopologyKind],
    nodes: usize,
    severities: &[(usize, usize)],
    injection_rate: f64,
    scale: ExperimentScale,
    seed: u64,
) -> SfResult<Vec<FaultResilienceRow>> {
    fault_resilience_study_with_ctx(
        &RunContext::new(),
        kinds,
        nodes,
        severities,
        injection_rate,
        scale,
        seed,
    )
}

/// [`fault_resilience_study`] inside an explicit [`RunContext`] — the single
/// code path behind the `fault_resilience` study: one job per
/// (design, severity) pair.
///
/// # Errors
///
/// Propagates construction and simulation errors.
#[allow(clippy::too_many_arguments)]
pub fn fault_resilience_study_with_ctx(
    ctx: &RunContext,
    kinds: &[TopologyKind],
    nodes: usize,
    severities: &[(usize, usize)],
    injection_rate: f64,
    scale: ExperimentScale,
    seed: u64,
) -> SfResult<Vec<FaultResilienceRow>> {
    let measured = (scale.max_cycles - scale.warmup_cycles).max(1);
    let points = cross2_lazy(kinds.to_vec(), severities.to_vec());
    ctx.run_jobs(points, |_, &(kind, (links, routers))| {
        let instance = ctx.instance(kind, nodes, seed)?;
        let plan = (links > 0 || routers > 0).then(|| {
            FaultPlan::new(seed ^ 0x00fa_0175)
                .starting_at(scale.warmup_cycles)
                .with_period((measured / 8).max(1))
                .with_severity(links, routers)
                .with_repair_cycles((measured / 16).max(1))
        });
        let config = scale.simulation_config().with_fault(plan);
        let mut sim = instance
            .make_simulator(SystemConfig::default(), config)?
            .with_request_reply(true);
        let mut traffic =
            PatternTraffic::new(SyntheticPattern::UniformRandom, nodes, injection_rate, seed);
        let stats = sim.run(&mut traffic)?;
        Ok(FaultResilienceRow {
            kind,
            nodes,
            links_per_wave: links,
            routers_per_wave: routers,
            link_down_events: stats.link_down_events,
            router_down_events: stats.router_down_events,
            injected: stats.injected,
            completed_requests: stats.completed_requests,
            dropped_packets: stats.dropped_packets,
            completion_ratio: stats.completed_requests as f64 / stats.injected.max(1) as f64,
            average_round_trip_cycles: stats.average_round_trip_cycles(),
        })
    })
}

/// Scenario study: the Figure 10 saturation methodology driven by the three
/// adversarial traffic patterns ([`SyntheticPattern::ADVERSARIAL`]) instead
/// of the paper's well-behaved Table III patterns.
///
/// # Errors
///
/// Propagates construction and simulation errors.
pub fn adversarial_saturation_study(
    kinds: &[TopologyKind],
    nodes: usize,
    rates: &[f64],
    scale: ExperimentScale,
    seed: u64,
) -> SfResult<Vec<SaturationRow>> {
    adversarial_saturation_study_with_ctx(&RunContext::new(), kinds, nodes, rates, scale, seed)
}

/// [`adversarial_saturation_study`] inside an explicit [`RunContext`] — the
/// single code path behind the `adversarial_saturation` study.
///
/// # Errors
///
/// Propagates construction and simulation errors.
pub fn adversarial_saturation_study_with_ctx(
    ctx: &RunContext,
    kinds: &[TopologyKind],
    nodes: usize,
    rates: &[f64],
    scale: ExperimentScale,
    seed: u64,
) -> SfResult<Vec<SaturationRow>> {
    let mut rows = Vec::with_capacity(SyntheticPattern::ADVERSARIAL.len() * kinds.len());
    for pattern in SyntheticPattern::ADVERSARIAL {
        rows.extend(saturation_study_with_ctx(
            ctx, kinds, nodes, pattern, rates, scale, seed,
        )?);
    }
    Ok(rows)
}

/// Scenario study: the Figure 9(a) hop-count methodology pushed beyond the
/// paper's 1296-node maximum, for the designs whose radix does not grow with
/// scale.
///
/// # Errors
///
/// Propagates topology construction and routing errors.
pub fn scaleout_study(
    kinds: &[TopologyKind],
    sizes: &[usize],
    samples: usize,
    seed: u64,
) -> SfResult<Vec<HopCountRow>> {
    scaleout_study_with_ctx(&RunContext::new(), kinds, sizes, samples, seed)
}

/// [`scaleout_study`] inside an explicit [`RunContext`] — the single code
/// path behind the `scaleout_2048` study.
///
/// # Errors
///
/// Propagates topology construction and routing errors.
pub fn scaleout_study_with_ctx(
    ctx: &RunContext,
    kinds: &[TopologyKind],
    sizes: &[usize],
    samples: usize,
    seed: u64,
) -> SfResult<Vec<HopCountRow>> {
    hop_count_study_with_ctx(ctx, kinds, sizes, samples, seed)
}

/// One point of the streaming mega-sweep: one design at one size, driven at
/// one injection rate with one topology seed, at a quick-capped simulation
/// scale. These rows are never collected — they stream straight from the
/// sweep to the artifact sinks.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MegasweepRow {
    /// Network design.
    pub kind: TopologyKind,
    /// Network size.
    pub nodes: usize,
    /// Injection rate (packets per node per cycle).
    pub injection_rate: f64,
    /// Topology seed of this point.
    pub seed: u64,
    /// Average packet latency in cycles.
    pub average_latency_cycles: f64,
    /// Accepted throughput (delivered packets per node per cycle).
    pub accepted_throughput: f64,
    /// Whether the run saturated.
    pub saturated: bool,
}

/// Per-design aggregate of a mega-sweep — the only thing the streaming run
/// holds in memory (one slot per design, not per point).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MegasweepSummaryRow {
    /// Network design.
    pub kind: TopologyKind,
    /// Points swept for this design.
    pub points: u64,
    /// Points whose run saturated.
    pub saturated_points: u64,
    /// Mean average latency over the design's points, in cycles.
    pub mean_latency_cycles: f64,
    /// Mean accepted throughput over the design's points.
    pub mean_throughput: f64,
}

/// Scenario study: the streaming mega-sweep over design × size × injection
/// rate × topology seed. Unlike every other study, the full-scale grid
/// (~10⁵ points) is never materialised and the rows are never collected:
/// points stream in through the lazy cross product, each completed row is
/// journalled and written to the context's emitters in enumeration order,
/// and only the per-design [`MegasweepSummaryRow`] aggregate comes back —
/// the whole pipeline runs in `O(workers)` memory.
///
/// # Errors
///
/// Propagates construction, simulation, and artifact-sink errors.
pub fn megasweep_study(
    kinds: &[TopologyKind],
    sizes: &[usize],
    rates: &[f64],
    seeds: u64,
    scale: ExperimentScale,
) -> SfResult<Vec<MegasweepSummaryRow>> {
    megasweep_study_with_ctx(&RunContext::new(), kinds, sizes, rates, seeds, scale)
}

/// [`megasweep_study`] inside an explicit [`RunContext`] — the single code
/// path behind the `megasweep` study, and the only driver that **requires**
/// the streaming pipeline: it refuses to exist as a collect-then-emit loop.
///
/// # Errors
///
/// Propagates construction, simulation, and artifact-sink errors.
pub fn megasweep_study_with_ctx(
    ctx: &RunContext,
    kinds: &[TopologyKind],
    sizes: &[usize],
    rates: &[f64],
    seeds: u64,
    scale: ExperimentScale,
) -> SfResult<Vec<MegasweepSummaryRow>> {
    let mut stream = ctx.open_row_stream(&MegasweepRow::columns())?;
    let seed_list: Vec<u64> = (0..seeds.max(1)).collect();
    // Row-major over (kind, nodes) × (rate, seed): the outer product is tiny
    // and the inner product is one design-point's rate ladder, so the
    // composition streams the 4-axis grid with O(rates × seeds) transient
    // state — never O(grid).
    let points = cross2_lazy(cross2(kinds, sizes), cross2(rates, &seed_list));
    let mut aggregates = vec![(0u64, 0u64, 0.0f64, 0.0f64); kinds.len()];
    ctx.run_jobs_streaming(
        points,
        |_, &((kind, nodes), (rate, seed))| {
            let instance = ctx.instance(kind, nodes, seed + 1)?;
            let stats = run_pattern_on(
                &instance,
                SyntheticPattern::UniformRandom,
                rate,
                scale,
                seed,
            )?;
            let measured = (scale.max_cycles - scale.warmup_cycles).max(1);
            Ok(MegasweepRow {
                kind,
                nodes,
                injection_rate: rate,
                seed,
                average_latency_cycles: stats.average_latency_cycles(),
                accepted_throughput: stats.accepted_throughput(measured),
                saturated: stats.is_saturated(),
            })
        },
        |_, row| {
            let slot = kinds.iter().position(|k| *k == row.kind).unwrap_or(0);
            let (points, saturated, latency, throughput) = &mut aggregates[slot];
            *points += 1;
            *saturated += u64::from(row.saturated);
            *latency += row.average_latency_cycles;
            *throughput += row.accepted_throughput;
            stream.push(&row.values())
        },
    )?;
    stream.finish()?;
    Ok(kinds
        .iter()
        .zip(aggregates)
        .map(
            |(&kind, (points, saturated, latency, throughput))| MegasweepSummaryRow {
                kind,
                points,
                saturated_points: saturated,
                mean_latency_cycles: latency / points.max(1) as f64,
                mean_throughput: throughput / points.max(1) as f64,
            },
        )
        .collect())
}

/// Average-path-length summary of a partially gated String Figure network,
/// used by the reconfiguration examples and tests.
///
/// # Errors
///
/// Propagates construction and reconfiguration errors.
pub fn gated_path_length(
    nodes: usize,
    fraction: f64,
    seed: u64,
) -> SfResult<analysis::PathLengthStats> {
    let mut network = StringFigureNetwork::builder(nodes).seed(seed).build()?;
    let mut pm = PowerManager::new(&mut network);
    pm.gate_fraction(fraction, seed)?;
    Ok(network.path_stats())
}

// ---------------------------------------------------------------------------
// Machine-readable artifacts: every row type is an sf-harness Record
// ---------------------------------------------------------------------------

impl Record for SurgRow {
    fn columns() -> Vec<&'static str> {
        vec!["nodes", "jellyfish", "s2", "string_figure"]
    }
    fn values(&self) -> Vec<Value> {
        vec![
            self.nodes.into(),
            self.jellyfish.into(),
            self.s2.into(),
            self.string_figure.into(),
        ]
    }
}

impl Record for HopCountRow {
    fn columns() -> Vec<&'static str> {
        vec![
            "kind",
            "nodes",
            "average_shortest_path",
            "average_routed_hops",
            "router_ports",
        ]
    }
    fn values(&self) -> Vec<Value> {
        vec![
            self.kind.name().into(),
            self.nodes.into(),
            self.average_shortest_path.into(),
            self.average_routed_hops.into(),
            self.router_ports.into(),
        ]
    }
}

impl Record for SaturationRow {
    fn columns() -> Vec<&'static str> {
        vec!["kind", "nodes", "pattern", "saturation_percent"]
    }
    fn values(&self) -> Vec<Value> {
        vec![
            self.kind.name().into(),
            self.nodes.into(),
            self.pattern.to_string().into(),
            self.saturation_percent.into(),
        ]
    }
}

impl Record for LatencyPoint {
    fn columns() -> Vec<&'static str> {
        vec![
            "injection_rate",
            "average_latency_cycles",
            "accepted_throughput",
            "saturated",
        ]
    }
    fn values(&self) -> Vec<Value> {
        vec![
            self.injection_rate.into(),
            self.average_latency_cycles.into(),
            self.accepted_throughput.into(),
            self.saturated.into(),
        ]
    }
}

impl Record for WorkloadRow {
    fn columns() -> Vec<&'static str> {
        vec![
            "kind",
            "workload",
            "requests_per_cycle",
            "average_round_trip_cycles",
            "energy_per_request_pj",
            "total_energy_pj",
        ]
    }
    fn values(&self) -> Vec<Value> {
        vec![
            self.kind.name().into(),
            self.workload.name().into(),
            self.requests_per_cycle.into(),
            self.average_round_trip_cycles.into(),
            self.energy_per_request_pj.into(),
            self.total_energy_pj.into(),
        ]
    }
}

impl Record for PowerGateRow {
    fn columns() -> Vec<&'static str> {
        vec![
            "gated_fraction",
            "gated_nodes",
            "energy_delay_product",
            "normalized_edp",
            "average_round_trip_cycles",
        ]
    }
    fn values(&self) -> Vec<Value> {
        vec![
            self.gated_fraction.into(),
            self.gated_nodes.into(),
            self.energy_delay_product.into(),
            self.normalized_edp.into(),
            self.average_round_trip_cycles.into(),
        ]
    }
}

impl Record for BisectionRow {
    fn columns() -> Vec<&'static str> {
        vec!["kind", "nodes", "minimum", "average"]
    }
    fn values(&self) -> Vec<Value> {
        vec![
            self.kind.name().into(),
            self.nodes.into(),
            self.minimum.into(),
            self.average.into(),
        ]
    }
}

impl Record for FaultResilienceRow {
    fn columns() -> Vec<&'static str> {
        vec![
            "kind",
            "nodes",
            "links_per_wave",
            "routers_per_wave",
            "link_down_events",
            "router_down_events",
            "injected",
            "completed_requests",
            "dropped_packets",
            "completion_ratio",
            "average_round_trip_cycles",
        ]
    }
    fn values(&self) -> Vec<Value> {
        vec![
            self.kind.name().into(),
            self.nodes.into(),
            self.links_per_wave.into(),
            self.routers_per_wave.into(),
            self.link_down_events.into(),
            self.router_down_events.into(),
            self.injected.into(),
            self.completed_requests.into(),
            self.dropped_packets.into(),
            self.completion_ratio.into(),
            self.average_round_trip_cycles.into(),
        ]
    }
}

impl Record for MegasweepRow {
    fn columns() -> Vec<&'static str> {
        vec![
            "kind",
            "nodes",
            "injection_rate",
            "seed",
            "average_latency_cycles",
            "accepted_throughput",
            "saturated",
        ]
    }
    fn values(&self) -> Vec<Value> {
        vec![
            self.kind.name().into(),
            self.nodes.into(),
            self.injection_rate.into(),
            self.seed.into(),
            self.average_latency_cycles.into(),
            self.accepted_throughput.into(),
            self.saturated.into(),
        ]
    }
}

impl Record for MegasweepSummaryRow {
    fn columns() -> Vec<&'static str> {
        vec![
            "kind",
            "points",
            "saturated_points",
            "mean_latency_cycles",
            "mean_throughput",
        ]
    }
    fn values(&self) -> Vec<Value> {
        vec![
            self.kind.name().into(),
            self.points.into(),
            self.saturated_points.into(),
            self.mean_latency_cycles.into(),
            self.mean_throughput.into(),
        ]
    }
}

impl Record for ConfigurationRow {
    fn columns() -> Vec<&'static str> {
        vec![
            "kind",
            "nodes",
            "router_ports",
            "links",
            "requires_high_radix",
            "supports_reconfiguration",
        ]
    }
    fn values(&self) -> Vec<Value> {
        vec![
            self.kind.name().into(),
            self.nodes.into(),
            self.router_ports.into(),
            self.links.into(),
            self.requires_high_radix.into(),
            self.supports_reconfiguration.into(),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn surg_rows_show_flat_scaling() {
        let rows = surg_path_length_study(&[64, 200], 2).unwrap();
        assert_eq!(rows.len(), 2);
        for row in &rows {
            assert!(row.string_figure < 6.0);
            assert!((row.string_figure - row.s2).abs() < 1.0);
            assert!((row.string_figure - row.jellyfish).abs() < 1.5);
        }
        // Tripling the size should cost well under one extra hop.
        assert!(rows[1].string_figure - rows[0].string_figure < 1.0);
    }

    #[test]
    fn hop_count_study_orders_designs() {
        let rows = hop_count_study(
            &[TopologyKind::DistributedMesh, TopologyKind::StringFigure],
            &[144],
            200,
            1,
        )
        .unwrap();
        let mesh = rows
            .iter()
            .find(|r| r.kind == TopologyKind::DistributedMesh)
            .unwrap();
        let sf = rows
            .iter()
            .find(|r| r.kind == TopologyKind::StringFigure)
            .unwrap();
        assert!(mesh.average_routed_hops > sf.average_routed_hops);
        assert!(sf.average_routed_hops < 8.0);
        assert_eq!(sf.router_ports, 8);
    }

    #[test]
    fn saturation_study_runs_and_mesh_saturates_first() {
        let rates = [0.02, 0.10, 0.30, 0.60];
        let rows = saturation_study(
            &[TopologyKind::DistributedMesh, TopologyKind::StringFigure],
            36,
            SyntheticPattern::UniformRandom,
            &rates,
            ExperimentScale::quick(),
            3,
        )
        .unwrap();
        let mesh = &rows[0];
        let sf = &rows[1];
        let mesh_sat = mesh.saturation_percent.unwrap_or(0.0);
        let sf_sat = sf.saturation_percent.unwrap_or(0.0);
        assert!(
            sf_sat >= mesh_sat,
            "SF {sf_sat} should beat mesh {mesh_sat}"
        );
    }

    #[test]
    fn latency_curve_is_monotonic_until_saturation() {
        let points = latency_curve(
            TopologyKind::StringFigure,
            32,
            SyntheticPattern::UniformRandom,
            &[0.02, 0.20],
            ExperimentScale::quick(),
            5,
        )
        .unwrap();
        assert_eq!(points.len(), 2);
        assert!(points[1].average_latency_cycles >= points[0].average_latency_cycles * 0.8);
        assert!(points[0].accepted_throughput > 0.0);
    }

    #[test]
    fn workload_study_produces_rows_for_each_pair() {
        let rows = workload_study(
            &[TopologyKind::DistributedMesh, TopologyKind::StringFigure],
            &[ApplicationModel::Memcached],
            32,
            4,
            ExperimentScale::quick(),
            7,
        )
        .unwrap();
        assert_eq!(rows.len(), 2);
        for row in &rows {
            assert!(row.requests_per_cycle > 0.0, "{}", row.kind);
            assert!(row.total_energy_pj > 0.0);
            assert!(row.average_round_trip_cycles > 0.0);
        }
    }

    #[test]
    fn power_gating_study_produces_normalized_rows() {
        let rows = power_gating_study(
            48,
            &[0.0, 0.25],
            ApplicationModel::SparkGrep,
            4,
            ExperimentScale::quick(),
            9,
        )
        .unwrap();
        assert_eq!(rows.len(), 2);
        assert!((rows[0].normalized_edp - 1.0).abs() < 1e-9);
        assert_eq!(rows[0].gated_nodes, 0);
        assert!(rows[1].gated_nodes >= 8);
        assert!(rows[1].normalized_edp > 0.0);
    }

    #[test]
    fn bisection_and_configuration_tables() {
        let bisection = bisection_study(
            &[TopologyKind::DistributedMesh, TopologyKind::StringFigure],
            36,
            5,
            2,
        )
        .unwrap();
        let mesh = &bisection[0];
        let sf = &bisection[1];
        assert!(
            sf.minimum >= mesh.minimum,
            "SF {} vs mesh {}",
            sf.minimum,
            mesh.minimum
        );

        let config = configuration_table(&TopologyKind::ALL, &[64], 1).unwrap();
        assert_eq!(config.len(), 6);
        let fb = config
            .iter()
            .find(|r| r.kind == TopologyKind::FlattenedButterfly)
            .unwrap();
        let sf_row = config
            .iter()
            .find(|r| r.kind == TopologyKind::StringFigure)
            .unwrap();
        assert!(fb.router_ports > sf_row.router_ports);
        assert!(fb.links > sf_row.links);
        assert!(sf_row.supports_reconfiguration);
    }

    #[test]
    fn fault_resilience_study_degrades_with_severity() {
        let rows = fault_resilience_study(
            &[TopologyKind::StringFigure],
            36,
            &[(0, 0), (3, 2)],
            0.05,
            ExperimentScale::quick(),
            11,
        )
        .unwrap();
        assert_eq!(rows.len(), 2);
        let healthy = &rows[0];
        let stormy = &rows[1];
        assert_eq!(healthy.link_down_events, 0);
        assert_eq!(healthy.router_down_events, 0);
        assert_eq!(healthy.dropped_packets, 0);
        assert!(healthy.completion_ratio > 0.95, "{healthy:?}");
        assert!(stormy.fault_events() > 0);
        assert!(stormy.dropped_packets > 0);
        assert!(
            stormy.completed_requests > 0,
            "network must survive the storm"
        );
        assert!(stormy.completion_ratio <= healthy.completion_ratio + 1e-9);
    }

    #[test]
    fn adversarial_saturation_covers_every_adversarial_pattern() {
        let rows = adversarial_saturation_study(
            &[TopologyKind::StringFigure],
            36,
            &[0.05, 0.30],
            ExperimentScale::quick(),
            3,
        )
        .unwrap();
        assert_eq!(rows.len(), SyntheticPattern::ADVERSARIAL.len());
        for (row, pattern) in rows.iter().zip(SyntheticPattern::ADVERSARIAL) {
            assert_eq!(row.pattern, pattern);
        }
    }

    #[test]
    fn scaleout_study_reaches_beyond_small_scales() {
        let rows = scaleout_study(
            &[TopologyKind::SpaceShuffle, TopologyKind::StringFigure],
            &[64, 128],
            50,
            7,
        )
        .unwrap();
        assert_eq!(rows.len(), 4);
        for row in &rows {
            assert!(row.average_routed_hops >= 1.0, "{row:?}");
        }
    }

    #[test]
    fn socket_nodes_spread_evenly() {
        let sockets = socket_nodes(16, 4);
        assert_eq!(
            sockets,
            vec![
                NodeId::new(0),
                NodeId::new(4),
                NodeId::new(8),
                NodeId::new(12)
            ]
        );
        assert_eq!(socket_nodes(4, 10).len(), 4);
        assert_eq!(socket_nodes(100, 1), vec![NodeId::new(0)]);
    }

    #[test]
    fn gated_path_length_stays_bounded() {
        let full = gated_path_length(64, 0.0, 1).unwrap();
        let gated = gated_path_length(64, 0.3, 1).unwrap();
        assert!(gated.average < full.average + 2.0);
        assert_eq!(gated.unreachable_pairs, 0);
    }

    #[test]
    fn experiment_scales() {
        assert!(ExperimentScale::paper().max_cycles > ExperimentScale::quick().max_cycles);
        assert!(ExperimentScale::quick()
            .simulation_config()
            .validate()
            .is_ok());
    }

    /// The acceptance criterion of the harness refactor: running a study on
    /// one worker and on many workers yields byte-for-byte identical rows.
    #[test]
    fn studies_are_bit_identical_serial_vs_parallel() {
        let serial = PoolConfig::serial();
        let parallel = PoolConfig::threads(4).with_chunk(2);

        let surg_a = surg_path_length_study_with_pool(&serial, &[64, 100], 3).unwrap();
        let surg_b = surg_path_length_study_with_pool(&parallel, &[64, 100], 3).unwrap();
        assert_eq!(surg_a, surg_b);

        let hops_a = hop_count_study_with_pool(
            &serial,
            &[TopologyKind::DistributedMesh, TopologyKind::StringFigure],
            &[64, 100],
            50,
            1,
        )
        .unwrap();
        let hops_b = hop_count_study_with_pool(
            &parallel,
            &[TopologyKind::DistributedMesh, TopologyKind::StringFigure],
            &[64, 100],
            50,
            1,
        )
        .unwrap();
        assert_eq!(hops_a, hops_b);

        let curve_a = latency_curve_with_pool(
            &serial,
            TopologyKind::StringFigure,
            32,
            SyntheticPattern::UniformRandom,
            &[0.02, 0.1, 0.2],
            ExperimentScale::quick(),
            5,
        )
        .unwrap();
        let curve_b = latency_curve_with_pool(
            &parallel,
            TopologyKind::StringFigure,
            32,
            SyntheticPattern::UniformRandom,
            &[0.02, 0.1, 0.2],
            ExperimentScale::quick(),
            5,
        )
        .unwrap();
        assert_eq!(curve_a, curve_b);

        let gate_a = power_gating_study_with_pool(
            &serial,
            48,
            &[0.0, 0.25],
            ApplicationModel::SparkGrep,
            4,
            ExperimentScale::quick(),
            9,
        )
        .unwrap();
        let gate_b = power_gating_study_with_pool(
            &parallel,
            48,
            &[0.0, 0.25],
            ApplicationModel::SparkGrep,
            4,
            ExperimentScale::quick(),
            9,
        )
        .unwrap();
        assert_eq!(gate_a, gate_b);

        let sat_a = saturation_study_with_pool(
            &serial,
            &[TopologyKind::DistributedMesh, TopologyKind::StringFigure],
            36,
            SyntheticPattern::UniformRandom,
            &[0.02, 0.10, 0.30],
            ExperimentScale::quick(),
            3,
        )
        .unwrap();
        let sat_b = saturation_study_with_pool(
            &parallel,
            &[TopologyKind::DistributedMesh, TopologyKind::StringFigure],
            36,
            SyntheticPattern::UniformRandom,
            &[0.02, 0.10, 0.30],
            ExperimentScale::quick(),
            3,
        )
        .unwrap();
        assert_eq!(sat_a, sat_b);

        let work_a = workload_study_with_pool(
            &serial,
            &[TopologyKind::StringFigure],
            &[ApplicationModel::Memcached],
            32,
            4,
            ExperimentScale::quick(),
            7,
        )
        .unwrap();
        let work_b = workload_study_with_pool(
            &parallel,
            &[TopologyKind::StringFigure],
            &[ApplicationModel::Memcached],
            32,
            4,
            ExperimentScale::quick(),
            7,
        )
        .unwrap();
        assert_eq!(work_a, work_b);

        let bisect_a = bisection_study_with_pool(
            &serial,
            &[TopologyKind::DistributedMesh, TopologyKind::StringFigure],
            36,
            5,
            2,
        )
        .unwrap();
        let bisect_b = bisection_study_with_pool(
            &parallel,
            &[TopologyKind::DistributedMesh, TopologyKind::StringFigure],
            36,
            5,
            2,
        )
        .unwrap();
        assert_eq!(bisect_a, bisect_b);
    }

    #[test]
    fn cached_instances_are_shared_and_consistent() {
        let first = cached_instance(TopologyKind::StringFigure, 40, 11).unwrap();
        let second = cached_instance(TopologyKind::StringFigure, 40, 11).unwrap();
        assert!(Arc::ptr_eq(&first, &second));
        let fresh = NetworkInstance::build(TopologyKind::StringFigure, 40, 11).unwrap();
        assert_eq!(first.graph().edges(), fresh.graph().edges());
    }

    #[test]
    fn rows_serialise_through_the_harness_table() {
        let rows = configuration_table(&[TopologyKind::StringFigure], &[64], 1).unwrap();
        let table = sf_harness::Table::from_records(&rows);
        assert_eq!(table.columns[0], "kind");
        let csv = table.to_csv();
        assert!(csv.starts_with("kind,nodes,router_ports"));
        assert_eq!(sf_harness::Table::from_csv(&csv).unwrap(), table);
        assert_eq!(
            sf_harness::Table::from_json(&table.to_json()).unwrap(),
            table
        );
    }
}
