//! Property tests for the table layer's CSV / JSON parsers against
//! adversarial input (the ROADMAP's PR-4 debt): quoting and escaping
//! round-trip for arbitrary field contents — commas, quotes, newlines,
//! carriage returns, non-ASCII, and strings that masquerade as other types —
//! `decode_csv_line(encode_csv_line(x)) == x` holds exactly, and truncated
//! or garbage input is rejected (or partially ignored) without ever
//! panicking.

use proptest::prelude::*;
use sf_harness::table::{decode_csv_line, encode_csv_line, Table, Value};

/// Characters chosen to stress the CSV/JSON escaping rules: separators,
/// quotes, newlines, digits (type-inference bait), exponents, and
/// multi-byte UTF-8.
const PALETTE: &[char] = &[
    'a', 'Z', '7', '0', ',', '"', '\n', '\r', '\t', ' ', '.', '-', '+', 'e', 'E', '\\', '{', '}',
    '[', ']', ':', 'é', '中', '\u{1}',
];

/// Deterministically unfolds one `u64` into an adversarial string (0–8
/// palette chars), so every case is reproducible from its sampled seed.
fn adversarial_string(mut bits: u64) -> String {
    let len = (bits % 9) as usize;
    bits /= 9;
    let mut out = String::new();
    for _ in 0..len {
        out.push(PALETTE[(bits % PALETTE.len() as u64) as usize]);
        bits = bits / PALETTE.len() as u64 + 0x9e37;
    }
    out
}

/// Unfolds `(selector, payload)` into one cell value covering every `Value`
/// variant in its canonical emitted form (non-negative integers are `UInt`,
/// `Int` is reserved for negatives — exactly what the emitter produces, and
/// the only form whose round trip can be exact).
fn cell_from(selector: u8, payload: u64) -> Value {
    match selector % 6 {
        0 => Value::Str(adversarial_string(payload)),
        1 => Value::UInt(payload),
        2 => Value::Int(-((payload % (i64::MAX as u64)) as i64) - 1),
        3 => {
            let x = f64::from_bits(payload);
            // Arbitrary bit patterns include NaN/inf; those round-trip too
            // (covered deterministically below) but break `==` comparisons,
            // so the property sticks to finite floats.
            Value::Float(if x.is_finite() {
                x
            } else {
                payload as f64 / 3.0
            })
        }
        4 => Value::Bool(payload & 1 == 1),
        _ => Value::Null,
    }
}

/// Clamps `cut` to a char boundary so truncation never lands inside a
/// multi-byte sequence (a torn file read as a string).
fn char_floor(text: &str, mut cut: usize) -> usize {
    cut = cut.min(text.len());
    while cut > 0 && !text.is_char_boundary(cut) {
        cut -= 1;
    }
    cut
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// `decode_csv_line(encode_csv_line(x)) == x` for arbitrary cells,
    /// including strings full of separators, quotes, and newlines.
    #[test]
    fn prop_csv_line_round_trips_arbitrary_cells(
        specs in proptest::collection::vec((any::<u8>(), any::<u64>()), 1..8),
    ) {
        let cells: Vec<Value> = specs
            .iter()
            .map(|&(selector, payload)| cell_from(selector, payload))
            .collect();
        let line = encode_csv_line(&cells);
        let decoded = decode_csv_line(&line).expect("emitter output must decode");
        prop_assert_eq!(decoded, cells);
    }

    /// Whole tables round-trip through both emitters for arbitrary cell
    /// contents (JSON first-object key ordering included).
    #[test]
    fn prop_tables_round_trip_csv_and_json(
        rows in 1usize..6,
        columns in 1usize..5,
        entropy in any::<u64>(),
    ) {
        let names: Vec<String> = (0..columns).map(|c| format!("c{c}")).collect();
        let name_refs: Vec<&str> = names.iter().map(String::as_str).collect();
        let mut table = Table::with_columns(&name_refs);
        let mut bits = entropy;
        for r in 0..rows {
            let row: Vec<Value> = (0..columns)
                .map(|c| {
                    bits = bits
                        .wrapping_mul(6_364_136_223_846_793_005)
                        .wrapping_add(r as u64 ^ (c as u64) << 7);
                    cell_from((bits >> 56) as u8, bits)
                })
                .collect();
            table.push_row(row);
        }
        prop_assert_eq!(Table::from_csv(&table.to_csv()).unwrap(), table.clone());
        prop_assert_eq!(Table::from_json(&table.to_json()).unwrap(), table);
    }

    /// Arbitrary garbage must never panic any parser — every outcome is a
    /// clean `Ok` or `Err`.
    #[test]
    fn prop_garbage_never_panics_any_parser(
        bytes in proptest::collection::vec(any::<u8>(), 0..96),
    ) {
        let text = String::from_utf8_lossy(&bytes).into_owned();
        let _ = Table::from_csv(&text);
        let _ = Table::from_json(&text);
        let _ = decode_csv_line(&text);
    }

    /// A valid artifact truncated at any offset (a torn read) must never
    /// panic, and when it still parses, every surviving row **before the
    /// final one** matches the original (the final parsed row may itself be
    /// torn — e.g. a float cut down to a bare integer — which is exactly why
    /// the journal only trusts newline-terminated lines).
    #[test]
    fn prop_truncated_artifacts_never_panic(
        rows in 1usize..6,
        entropy in any::<u64>(),
        cut_sel in any::<u32>(),
    ) {
        let mut table = Table::with_columns(&["label", "metric"]);
        let mut bits = entropy;
        for r in 0..rows {
            bits = bits.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(r as u64);
            table.push_row(vec![
                Value::Str(adversarial_string(bits)),
                Value::Float((bits >> 12) as f64 * 0.125),
            ]);
        }
        for text in [table.to_csv(), table.to_json()] {
            let cut = char_floor(&text, cut_sel as usize % (text.len() + 1));
            let torn = &text[..cut];
            if let Ok(parsed) = Table::from_csv(torn) {
                if parsed.columns == table.columns && !parsed.rows.is_empty() {
                    let intact = parsed.rows.len() - 1;
                    for (row, original) in parsed.rows[..intact].iter().zip(&table.rows) {
                        prop_assert_eq!(row, original);
                    }
                }
            }
            let _ = Table::from_json(torn);
        }
    }
}

/// The non-finite floats the CSV path preserves exactly (JSON stringifies
/// them — documented) round-trip bit-for-bit.
#[test]
fn non_finite_floats_round_trip_through_csv_lines() {
    for x in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
        let line = encode_csv_line(&[Value::Float(x)]);
        let decoded = decode_csv_line(&line).unwrap();
        let [Value::Float(back)] = decoded.as_slice() else {
            panic!("expected one float, got {decoded:?}");
        };
        assert_eq!(back.to_bits(), x.to_bits(), "{x}");
    }
}

/// Non-negative `Int` cells canonicalise to `UInt` on decode (the emitters
/// never produce a non-negative `Int`), and strings that *look* like other
/// types survive as strings because the emitter force-quotes them.
#[test]
fn ambiguous_cells_have_documented_canonical_forms() {
    let decoded = decode_csv_line(&encode_csv_line(&[Value::Int(5)])).unwrap();
    assert_eq!(decoded, vec![Value::UInt(5)]);
    for text in ["17", "-3", "true", "false", "2.0", "NaN", "inf", "", "null"] {
        let cells = vec![Value::Str(text.to_string())];
        let decoded = decode_csv_line(&encode_csv_line(&cells)).unwrap();
        assert_eq!(decoded, cells, "{text:?}");
    }
}

/// Structurally broken CSV is rejected with an error, not a panic or a
/// silent partial parse.
#[test]
fn malformed_csv_is_rejected() {
    assert!(Table::from_csv("a,b\n\"unterminated\n").is_err());
    assert!(Table::from_csv("a,b\n1\n").is_err());
    assert!(Table::from_csv("").is_err());
    assert!(decode_csv_line("\"torn").is_err());
    assert!(Table::from_json("[{\"a\": 1}, {\"b\": 2}]").is_err());
    assert!(Table::from_json("[{\"a\": 1}] trailing").is_err());
    assert!(Table::from_json("{\"not\": \"array\"}").is_err());
}
