//! Contract tests for `sf-harness`: a parallel sweep is bit-identical to a
//! serial one, one panicking job never poisons the rest of the sweep, and the
//! CSV/JSON emitters round-trip exactly.

use sf_harness::pool::PoolConfig;
use sf_harness::sweep::{cross3, Sweep, SweepError};
use sf_harness::table::{Record, Table, Value};
use sf_harness::BuildCache;
use std::sync::Arc;

/// A miniature "experiment": deterministic pseudo-simulation whose result
/// depends on the point and the derived seed, with enough arithmetic that
/// reordered floating-point accumulation would be detectable.
fn fake_experiment(nodes: usize, rate_millis: usize, seed: u64) -> f64 {
    let mut accumulator = 0.0f64;
    let mut state = seed ^ (nodes as u64) << 3 ^ rate_millis as u64;
    for _ in 0..200 {
        state = state
            .wrapping_mul(6_364_136_223_846_793_005)
            .wrapping_add(1_442_695_040_888_963_407);
        accumulator += (state >> 11) as f64 / (1u64 << 53) as f64;
    }
    accumulator * rate_millis as f64 / nodes as f64
}

#[test]
fn parallel_sweep_is_bit_identical_to_serial() {
    let points = cross3(&[16usize, 32, 64], &[20usize, 50, 100, 200], &[1u64, 2, 3]);
    let sweep = Sweep::new(points).with_base_seed(2019);

    let serial = sweep
        .run(&PoolConfig::serial(), |ctx, &(nodes, rate, seed)| {
            Ok::<(usize, u64, f64), SweepError<()>>((
                ctx.index,
                ctx.seed,
                fake_experiment(nodes, rate, seed ^ ctx.seed),
            ))
        })
        .into_results()
        .unwrap();

    for threads in [2, 4, 8] {
        let parallel = sweep
            .run(
                &PoolConfig::threads(threads).with_chunk(2),
                |ctx, &(nodes, rate, seed)| {
                    Ok::<(usize, u64, f64), SweepError<()>>((
                        ctx.index,
                        ctx.seed,
                        fake_experiment(nodes, rate, seed ^ ctx.seed),
                    ))
                },
            )
            .into_results()
            .unwrap();
        // Bit-identical: same rows, same order, same derived seeds — compare
        // float bits, not approximate values.
        assert_eq!(serial.len(), parallel.len());
        for (s, p) in serial.iter().zip(&parallel) {
            assert_eq!(s.0, p.0);
            assert_eq!(s.1, p.1);
            assert_eq!(s.2.to_bits(), p.2.to_bits(), "threads={threads}");
        }
    }
}

#[test]
fn one_panicking_job_does_not_poison_the_sweep() {
    let sweep = Sweep::new((0..50u32).collect::<Vec<_>>());
    let report = sweep.run(&PoolConfig::threads(4), |_, &n| {
        assert!(n != 13, "unlucky point");
        Ok::<u32, SweepError<()>>(n * n)
    });

    assert_eq!(report.succeeded(), 49);
    assert_eq!(report.failed(), 1);
    for outcome in &report.outcomes {
        if outcome.index == 13 {
            match &outcome.result {
                Err(SweepError::Panic(msg)) => assert!(msg.contains("unlucky point")),
                other => panic!("expected a panic outcome, got {other:?}"),
            }
        } else {
            assert_eq!(
                *outcome.result.as_ref().unwrap(),
                (outcome.index * outcome.index) as u32
            );
        }
    }
}

struct SweepRow {
    design: String,
    nodes: usize,
    latency: f64,
    saturation: Option<f64>,
}

impl Record for SweepRow {
    fn columns() -> Vec<&'static str> {
        vec!["design", "nodes", "latency_cycles", "saturation_percent"]
    }
    fn values(&self) -> Vec<Value> {
        vec![
            self.design.clone().into(),
            self.nodes.into(),
            self.latency.into(),
            self.saturation.into(),
        ]
    }
}

#[test]
fn emitters_round_trip_sweep_results() {
    let sweep = Sweep::new(cross3(&["SF", "DM"], &[64usize, 256], &[0u64]));
    let rows: Vec<SweepRow> = sweep
        .run(&PoolConfig::threads(3), |ctx, &(design, nodes, seed)| {
            Ok::<SweepRow, SweepError<()>>(SweepRow {
                design: design.to_string(),
                nodes,
                latency: fake_experiment(nodes, 50, seed ^ ctx.seed),
                saturation: if design == "SF" { Some(62.5) } else { None },
            })
        })
        .into_results()
        .unwrap();

    let table = Table::from_records(&rows);
    assert_eq!(table.len(), 4);
    assert_eq!(Table::from_csv(&table.to_csv()).unwrap(), table);
    assert_eq!(Table::from_json(&table.to_json()).unwrap(), table);
}

#[test]
fn cache_shares_builds_across_parallel_jobs() {
    let cache: Arc<BuildCache<(usize, u64), Vec<u64>>> = Arc::new(BuildCache::new());
    // Ten distinct keys revisited by sixty jobs: every job must observe the
    // same artefact contents no matter which worker built it.
    let sweep = Sweep::new((0..60usize).collect::<Vec<_>>());
    let report = sweep.run(&PoolConfig::threads(6), |_, &i| {
        let key = (i % 10, (i % 10) as u64);
        let artefact = cache
            .get_or_build::<()>(key, || Ok((0..key.0 as u64).map(|x| x * key.1).collect()))
            .expect("infallible build");
        Ok::<u64, SweepError<()>>(artefact.iter().sum())
    });
    let sums = report.into_results().unwrap();
    for (i, sum) in sums.iter().enumerate() {
        let k = (i % 10) as u64;
        let expected: u64 = (0..k).map(|x| x * k).sum();
        assert_eq!(*sum, expected);
    }
    assert_eq!(cache.len(), 10);
}
