//! Property tests for the checkpoint journal's kill-safety contract: a
//! process death at **any byte offset** of the journal file — including the
//! middle of the header, the middle of a data line, or a torn final write —
//! must never panic on reopen, and a resume driven by the surviving journal
//! must emit a CSV **byte-identical** to an uninterrupted run. The same
//! contract extends through compaction: kill → compact → resume is
//! byte-identical too, and a snapshot torn by a later kill degrades
//! line by line exactly like the append log.

use proptest::prelude::*;
use sf_harness::journal::{fingerprint, Journal};
use sf_harness::table::{Table, Value};
use std::path::PathBuf;

fn temp_path(tag: &str) -> PathBuf {
    let mut path = std::env::temp_dir();
    path.push(format!("sf-journal-prop-{}-{tag}", std::process::id()));
    path
}

/// The deterministic "result" of job `i`: mixed cell types, floats chosen so
/// shortest-roundtrip formatting is non-trivial.
fn job_cells(i: u64) -> Vec<Value> {
    vec![
        Value::UInt(i),
        Value::Float((i as f64).mul_add(0.3, 0.1) / 7.0),
        Value::Str(format!("job-{i}")),
        Value::Bool(i.is_multiple_of(3)),
    ]
}

/// Assembles the final artifact a run over `jobs` jobs would emit.
fn artifact(jobs: u64, row: impl Fn(u64) -> Vec<Value>) -> String {
    let mut table = Table::with_columns(&["id", "metric", "label", "flag"]);
    for i in 0..jobs {
        table.push_row(row(i));
    }
    table.to_csv()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Kill the journal at an arbitrary byte offset, resume, and demand the
    /// final CSV bytes of an uninterrupted run.
    #[test]
    fn prop_truncation_at_any_offset_resumes_byte_identically(
        jobs in 3u64..24,
        cut_sel in any::<u32>(),
    ) {
        let path = temp_path(&format!("cut-{jobs}-{cut_sel}"));
        let _ = std::fs::remove_file(&path);
        let fp = fingerprint(["prop-study", "quick"]);
        let reference = artifact(jobs, job_cells);

        // A complete run's journal...
        {
            let journal = Journal::open(&path, fp).unwrap();
            for i in 0..jobs {
                journal.record(0, i, &job_cells(i)).unwrap();
            }
        }
        // ...killed at an arbitrary byte offset (0 = everything lost,
        // len = nothing lost, anything between may tear the header or a
        // data line in half).
        let bytes = std::fs::read(&path).unwrap();
        let cut = (cut_sel as usize) % (bytes.len() + 1);
        std::fs::write(&path, &bytes[..cut]).unwrap();

        // Reopen must never panic, and every surviving entry must decode to
        // exactly what the original job produced.
        let journal = Journal::open(&path, fp).unwrap();
        prop_assert!(journal.restored_count() <= jobs as usize);
        for i in 0..jobs {
            if let Some(cells) = journal.restored(0, i) {
                prop_assert_eq!(cells, job_cells(i).as_slice(), "job {}", i);
            }
        }

        // Resume: restored jobs come from the journal, the rest recompute
        // (and are re-recorded, like RunContext::run_jobs does).
        let resumed = artifact(jobs, |i| match journal.restored(0, i) {
            Some(cells) => cells.to_vec(),
            None => {
                let cells = job_cells(i);
                journal.record(0, i, &cells).unwrap();
                cells
            }
        });
        prop_assert_eq!(&resumed, &reference);

        // A second resume finds every job journalled and still agrees.
        drop(journal);
        let reopened = Journal::open(&path, fp).unwrap();
        prop_assert_eq!(reopened.restored_count(), jobs as usize);
        let replay = artifact(jobs, |i| reopened.restored(0, i).unwrap().to_vec());
        prop_assert_eq!(&replay, &reference);
        reopened.finish().unwrap();
    }

    /// Kill at an arbitrary offset, **compact the survivors to a snapshot**,
    /// resume on top of the snapshot, and demand the final CSV bytes of an
    /// uninterrupted run — the journal fingerprint scheme must accept a
    /// compacted snapshot as fully equivalent to the append log it replaced.
    #[test]
    fn prop_compaction_after_truncation_resumes_byte_identically(
        jobs in 3u64..24,
        cut_sel in any::<u32>(),
        auto_limit in any::<bool>(),
    ) {
        let path = temp_path(&format!("compact-cut-{jobs}-{cut_sel}-{auto_limit}"));
        let _ = std::fs::remove_file(&path);
        let fp = fingerprint(["prop-study", "compacted"]);
        let reference = artifact(jobs, job_cells);

        {
            let journal = Journal::open(&path, fp).unwrap();
            for i in 0..jobs {
                journal.record(0, i, &job_cells(i)).unwrap();
            }
        }
        let bytes = std::fs::read(&path).unwrap();
        let cut = (cut_sel as usize) % (bytes.len() + 1);
        std::fs::write(&path, &bytes[..cut]).unwrap();

        // Reopen the torn log — with a tiny auto-compaction cap on one arm,
        // so compaction also fires *during* the resumed appends — and
        // snapshot the survivors immediately.
        let limit = if auto_limit { Some(64) } else { None };
        let journal = Journal::open_with_limit(&path, fp, limit).unwrap();
        let survivors: Vec<u64> = (0..jobs).filter(|&i| journal.restored(0, i).is_some()).collect();
        journal.compact().unwrap();
        prop_assert!(journal.compactions() >= 1);

        // The snapshot must hold exactly the surviving entries, unchanged.
        drop(journal);
        let journal = Journal::open_with_limit(&path, fp, limit).unwrap();
        prop_assert_eq!(journal.restored_count(), survivors.len());
        for &i in &survivors {
            prop_assert_eq!(journal.restored(0, i).unwrap(), job_cells(i).as_slice());
        }

        // Resume on top of the snapshot: restored jobs come from it, the
        // rest recompute and append (possibly auto-compacting again).
        let resumed = artifact(jobs, |i| match journal.restored(0, i) {
            Some(cells) => cells.to_vec(),
            None => {
                let cells = job_cells(i);
                journal.record(0, i, &cells).unwrap();
                cells
            }
        });
        prop_assert_eq!(&resumed, &reference);

        // A third run (post-compaction, post-append) still replays fully.
        drop(journal);
        let reopened = Journal::open(&path, fp).unwrap();
        prop_assert_eq!(reopened.restored_count(), jobs as usize);
        let replay = artifact(jobs, |i| reopened.restored(0, i).unwrap().to_vec());
        prop_assert_eq!(&replay, &reference);
        reopened.finish().unwrap();
    }

    /// A snapshot torn by a second kill obeys the same kill-safety contract
    /// as the append log: reopening never panics and surviving entries are
    /// exact.
    #[test]
    fn prop_truncated_snapshot_never_panics_or_corrupts(
        jobs in 2u64..16,
        cut_sel in any::<u32>(),
    ) {
        let path = temp_path(&format!("snap-cut-{jobs}-{cut_sel}"));
        let _ = std::fs::remove_file(&path);
        let fp = fingerprint(["prop-study", "snap"]);
        {
            let journal = Journal::open(&path, fp).unwrap();
            for i in 0..jobs {
                journal.record(0, i, &job_cells(i)).unwrap();
            }
            journal.compact().unwrap();
        }
        let bytes = std::fs::read(&path).unwrap();
        let cut = (cut_sel as usize) % (bytes.len() + 1);
        std::fs::write(&path, &bytes[..cut]).unwrap();

        let journal = Journal::open(&path, fp).unwrap();
        prop_assert!(journal.restored_count() <= jobs as usize);
        for i in 0..jobs {
            if let Some(cells) = journal.restored(0, i) {
                prop_assert_eq!(cells, job_cells(i).as_slice(), "job {}", i);
            }
        }
        journal.finish().unwrap();
    }

    /// Garbage appended after a kill (torn multi-line writes, partial UTF-8
    /// from a crashing writer) must be ignored line by line, never panic,
    /// and never corrupt the surviving entries.
    #[test]
    fn prop_trailing_garbage_never_panics_or_corrupts(
        jobs in 1u64..10,
        garbage in proptest::collection::vec(any::<u8>(), 0..64),
    ) {
        // Keep the garbage valid UTF-8-ish by masking to ASCII; the loader
        // reads the file as a string, so raw bytes are exercised through
        // lossy decoding of realistic torn writes.
        let garbage: Vec<u8> = garbage.iter().map(|b| b & 0x7f).collect();
        let tag = format!("garbage-{jobs}-{}", garbage.len());
        let path = temp_path(&tag);
        let _ = std::fs::remove_file(&path);
        let fp = fingerprint(["prop-study", "garbage"]);
        {
            let journal = Journal::open(&path, fp).unwrap();
            for i in 0..jobs {
                journal.record(0, i, &job_cells(i)).unwrap();
            }
        }
        let mut bytes = std::fs::read(&path).unwrap();
        bytes.extend_from_slice(&garbage);
        std::fs::write(&path, &bytes).unwrap();

        let journal = Journal::open(&path, fp).unwrap();
        // Every original job must survive regardless of the garbage tail.
        for i in 0..jobs {
            prop_assert_eq!(
                journal.restored(0, i).map(<[Value]>::to_vec),
                Some(job_cells(i)),
                "job {}",
                i
            );
        }
        journal.finish().unwrap();
    }
}
