//! Sharded, thread-safe build-once cache for expensive sweep artefacts.
//!
//! A parameter sweep frequently revisits the same topology: a saturation grid
//! evaluates ten injection rates against one `(kind, nodes, seed)` graph, a
//! latency curve reuses its instance per rate, and multi-pattern studies
//! rebuild identical networks per pattern. [`BuildCache`] memoises those
//! builds behind `Arc`s so concurrent jobs share one generated instance.
//!
//! The cache is sharded by key hash to keep lock contention off the worker
//! pool's hot path, and each shard is bounded by a **cost-aware LRU** policy:
//! when a shard is full, the entry that is *cheapest to rebuild* is evicted
//! first, ties broken by least-recent use. Build cost is measured as the wall
//! time the builder took, so a 1296-node paper-scale topology (seconds to
//! generate) stays resident while 16-node smoke instances (microseconds)
//! churn through the shard. Correctness never depends on a hit — builders are
//! pure functions of the key — so the policy only shapes rebuild time.

use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::{Arc, Mutex};
use std::time::Instant;

const DEFAULT_SHARDS: usize = 16;
const DEFAULT_PER_SHARD_CAPACITY: usize = 64;

/// One cached artefact plus the metadata the eviction policy ranks it by.
#[derive(Debug)]
struct CacheEntry<V> {
    value: Arc<V>,
    /// Wall-clock nanoseconds the builder took; the rebuild-cost estimate.
    cost_ns: u128,
    /// Shard-local logical timestamp of the last hit (or the insert).
    last_used: u64,
}

#[derive(Debug, Default)]
struct Shard<K, V> {
    entries: HashMap<K, CacheEntry<V>>,
    /// Monotonic per-shard clock driving `last_used` stamps.
    clock: u64,
}

impl<K: Eq + Hash, V> Shard<K, V> {
    fn tick(&mut self) -> u64 {
        self.clock += 1;
        self.clock
    }

    /// Drops entries until the shard is below `capacity`, cheapest rebuild
    /// first, least-recently-used among equal costs.
    fn evict_to(&mut self, capacity: usize)
    where
        K: Clone,
    {
        while self.entries.len() >= capacity.max(1) {
            let victim = self
                .entries
                .iter()
                .min_by_key(|(_, e)| (e.cost_ns, e.last_used))
                .map(|(k, _)| k.clone());
            match victim {
                Some(key) => self.entries.remove(&key),
                None => break,
            };
        }
    }
}

/// A sharded map from sweep keys to shared build artefacts with cost-aware
/// LRU eviction.
#[derive(Debug)]
pub struct BuildCache<K, V> {
    shards: Vec<Mutex<Shard<K, V>>>,
    per_shard_capacity: usize,
}

impl<K: Eq + Hash, V> Default for BuildCache<K, V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K: Eq + Hash, V> BuildCache<K, V> {
    /// A cache with the default shard count and capacity.
    #[must_use]
    pub fn new() -> Self {
        Self::with_shape(DEFAULT_SHARDS, DEFAULT_PER_SHARD_CAPACITY)
    }

    /// A cache with `shards` shards of at most `per_shard_capacity` entries.
    #[must_use]
    pub fn with_shape(shards: usize, per_shard_capacity: usize) -> Self {
        let shards = shards.max(1);
        Self {
            shards: (0..shards)
                .map(|_| {
                    Mutex::new(Shard {
                        entries: HashMap::new(),
                        clock: 0,
                    })
                })
                .collect(),
            per_shard_capacity: per_shard_capacity.max(1),
        }
    }

    fn shard(&self, key: &K) -> &Mutex<Shard<K, V>> {
        let mut hasher = DefaultHasher::new();
        key.hash(&mut hasher);
        let index = (hasher.finish() as usize) % self.shards.len();
        &self.shards[index]
    }

    /// Returns the cached artefact for `key`, building it with `build` on a
    /// miss.
    ///
    /// The build runs *outside* the shard lock, so a slow topology generation
    /// never blocks other workers' lookups; if two workers race on the same
    /// missing key, the first insert wins and the loser's build is dropped.
    /// `build` must be a pure function of `key` for that to be sound — which
    /// is exactly the determinism contract sweeps already obey.
    ///
    /// # Errors
    ///
    /// Propagates the builder's error; errors are not cached.
    pub fn get_or_build<E>(&self, key: K, build: impl FnOnce() -> Result<V, E>) -> Result<Arc<V>, E>
    where
        K: Clone,
    {
        self.get_or_build_ranked(key, None, build)
    }

    /// [`Self::get_or_build`] with an explicit rebuild-cost estimate instead
    /// of the measured build time. Higher costs are evicted later.
    ///
    /// Costs are compared directly against other entries of the same cache,
    /// and entries inserted through [`Self::get_or_build`] carry their
    /// measured build time in **nanoseconds** — so either use one insertion
    /// method consistently per cache, or supply explicit costs on a
    /// nanosecond scale. Mixing, say, a node count (`1296`) with measured
    /// microsecond builds (`20_000` ns) would rank the big topology as the
    /// cheapest entry and evict it first.
    ///
    /// # Errors
    ///
    /// Propagates the builder's error; errors are not cached.
    pub fn get_or_build_with_cost<E>(
        &self,
        key: K,
        cost: u64,
        build: impl FnOnce() -> Result<V, E>,
    ) -> Result<Arc<V>, E>
    where
        K: Clone,
    {
        self.get_or_build_ranked(key, Some(u128::from(cost)), build)
    }

    fn get_or_build_ranked<E>(
        &self,
        key: K,
        cost: Option<u128>,
        build: impl FnOnce() -> Result<V, E>,
    ) -> Result<Arc<V>, E>
    where
        K: Clone,
    {
        let shard = self.shard(&key);
        {
            let mut guard = shard.lock().expect("cache shard poisoned");
            let stamp = guard.tick();
            if let Some(hit) = guard.entries.get_mut(&key) {
                hit.last_used = stamp;
                // Hit/miss counts depend on which worker reaches a key first,
                // hence the nondeterministic `sched.` namespace.
                sf_obs::metrics::global().counter_add("sched.cache_hits", 1);
                return Ok(Arc::clone(&hit.value));
            }
        }
        sf_obs::metrics::global().counter_add("sched.cache_misses", 1);
        let started = Instant::now();
        let built = Arc::new(build()?);
        let cost_ns = cost.unwrap_or_else(|| started.elapsed().as_nanos());
        let mut guard = shard.lock().expect("cache shard poisoned");
        let stamp = guard.tick();
        if let Some(winner) = guard.entries.get_mut(&key) {
            winner.last_used = stamp;
            return Ok(Arc::clone(&winner.value));
        }
        guard.evict_to(self.per_shard_capacity);
        guard.entries.insert(
            key,
            CacheEntry {
                value: Arc::clone(&built),
                cost_ns,
                last_used: stamp,
            },
        );
        Ok(built)
    }

    /// Total entries across all shards.
    #[must_use]
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("cache shard poisoned").entries.len())
            .sum()
    }

    /// Whether the cache holds no entries.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether `key` is currently resident (does not refresh its LRU stamp).
    #[must_use]
    pub fn contains(&self, key: &K) -> bool {
        self.shard(key)
            .lock()
            .expect("cache shard poisoned")
            .entries
            .contains_key(key)
    }

    /// Drops every cached entry.
    pub fn clear(&self) {
        for shard in &self.shards {
            shard.lock().expect("cache shard poisoned").entries.clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn second_lookup_reuses_the_first_build() {
        let cache: BuildCache<(u32, u32), String> = BuildCache::new();
        let builds = AtomicUsize::new(0);
        let build = || -> Result<String, ()> {
            builds.fetch_add(1, Ordering::SeqCst);
            Ok("artefact".to_string())
        };
        let a = cache.get_or_build((1, 2), build).unwrap();
        let b = cache.get_or_build((1, 2), build).unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(builds.load(Ordering::SeqCst), 1);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn errors_are_not_cached() {
        let cache: BuildCache<u32, u32> = BuildCache::new();
        let result: Result<_, &str> = cache.get_or_build(7, || Err("nope"));
        assert!(result.is_err());
        assert!(cache.is_empty());
        let ok: Result<_, &str> = cache.get_or_build(7, || Ok(49));
        assert_eq!(*ok.unwrap(), 49);
    }

    #[test]
    fn capacity_bound_evicts_rather_than_grows() {
        let cache: BuildCache<u32, u32> = BuildCache::with_shape(1, 4);
        for key in 0..40 {
            let _ = cache.get_or_build::<()>(key, || Ok(key));
        }
        assert!(cache.len() <= 4);
        cache.clear();
        assert!(cache.is_empty());
    }

    #[test]
    fn expensive_entries_survive_cheap_churn() {
        let cache: BuildCache<u32, u32> = BuildCache::with_shape(1, 4);
        // One expensive build (simulated by sleeping) followed by a stream of
        // cheap ones: the expensive entry must still be resident afterwards.
        let _ = cache.get_or_build::<()>(999, || {
            std::thread::sleep(std::time::Duration::from_millis(30));
            Ok(999)
        });
        for key in 0..32 {
            let _ = cache.get_or_build::<()>(key, || Ok(key));
        }
        assert!(cache.contains(&999), "expensive entry was evicted");
        assert!(cache.len() <= 4);
    }

    #[test]
    fn least_recently_used_breaks_cost_ties() {
        let cache: BuildCache<u32, u32> = BuildCache::with_shape(1, 3);
        // Three entries with identical explicit costs fill the shard.
        for key in [1u32, 2, 3] {
            let _ = cache.get_or_build_with_cost::<()>(key, 100, || Ok(key));
        }
        // Touch 1 so 2 becomes the least recently used; the next insert must
        // evict 2, not the freshly touched 1.
        let _ = cache.get_or_build_with_cost::<()>(1, 100, || Ok(1));
        let _ = cache.get_or_build_with_cost::<()>(4, 100, || Ok(4));
        assert!(cache.contains(&1), "recently used entry was evicted");
        assert!(!cache.contains(&2), "LRU tie-break failed to evict 2");
        assert!(cache.contains(&3));
        assert!(cache.contains(&4));
    }

    #[test]
    fn explicit_costs_rank_eviction() {
        let cache: BuildCache<u32, u32> = BuildCache::with_shape(1, 3);
        let _ = cache.get_or_build_with_cost::<()>(10, 1_000_000, || Ok(10));
        let _ = cache.get_or_build_with_cost::<()>(11, 5, || Ok(11));
        let _ = cache.get_or_build_with_cost::<()>(12, 10, || Ok(12));
        // Shard is full; the cheapest entry (11) must be evicted first.
        let _ = cache.get_or_build_with_cost::<()>(13, 500, || Ok(13));
        assert!(cache.contains(&10));
        assert!(!cache.contains(&11));
        assert!(cache.contains(&12));
        assert!(cache.contains(&13));
    }

    #[test]
    fn concurrent_lookups_agree() {
        let cache: BuildCache<u32, u32> = BuildCache::new();
        std::thread::scope(|scope| {
            for _ in 0..8 {
                scope.spawn(|| {
                    for key in 0..32 {
                        let value = cache.get_or_build::<()>(key, || Ok(key * 3)).unwrap();
                        assert_eq!(*value, key * 3);
                    }
                });
            }
        });
    }
}
