//! Sharded, thread-safe build-once cache for expensive sweep artefacts.
//!
//! A parameter sweep frequently revisits the same topology: a saturation grid
//! evaluates ten injection rates against one `(kind, nodes, seed)` graph, a
//! latency curve reuses its instance per rate, and multi-pattern studies
//! rebuild identical networks per pattern. [`BuildCache`] memoises those
//! builds behind `Arc`s so concurrent jobs share one generated instance.
//!
//! The cache is sharded by key hash to keep lock contention off the worker
//! pool's hot path, and each shard is bounded: when a shard exceeds its
//! capacity it evicts *all* of its entries. That crude policy is deliberate —
//! correctness never depends on a hit (builders are pure functions of the
//! key), so eviction only costs a rebuild, and the all-at-once flush needs no
//! per-entry bookkeeping.

use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::{Arc, Mutex};

const DEFAULT_SHARDS: usize = 16;
const DEFAULT_PER_SHARD_CAPACITY: usize = 64;

/// A sharded map from sweep keys to shared build artefacts.
#[derive(Debug)]
pub struct BuildCache<K, V> {
    shards: Vec<Mutex<HashMap<K, Arc<V>>>>,
    per_shard_capacity: usize,
}

impl<K: Eq + Hash, V> Default for BuildCache<K, V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K: Eq + Hash, V> BuildCache<K, V> {
    /// A cache with the default shard count and capacity.
    #[must_use]
    pub fn new() -> Self {
        Self::with_shape(DEFAULT_SHARDS, DEFAULT_PER_SHARD_CAPACITY)
    }

    /// A cache with `shards` shards of at most `per_shard_capacity` entries.
    #[must_use]
    pub fn with_shape(shards: usize, per_shard_capacity: usize) -> Self {
        let shards = shards.max(1);
        Self {
            shards: (0..shards).map(|_| Mutex::new(HashMap::new())).collect(),
            per_shard_capacity: per_shard_capacity.max(1),
        }
    }

    fn shard(&self, key: &K) -> &Mutex<HashMap<K, Arc<V>>> {
        let mut hasher = DefaultHasher::new();
        key.hash(&mut hasher);
        let index = (hasher.finish() as usize) % self.shards.len();
        &self.shards[index]
    }

    /// Returns the cached artefact for `key`, building it with `build` on a
    /// miss.
    ///
    /// The build runs *outside* the shard lock, so a slow topology generation
    /// never blocks other workers' lookups; if two workers race on the same
    /// missing key, the first insert wins and the loser's build is dropped.
    /// `build` must be a pure function of `key` for that to be sound — which
    /// is exactly the determinism contract sweeps already obey.
    ///
    /// # Errors
    ///
    /// Propagates the builder's error; errors are not cached.
    pub fn get_or_build<E>(&self, key: K, build: impl FnOnce() -> Result<V, E>) -> Result<Arc<V>, E>
    where
        K: Clone,
    {
        let shard = self.shard(&key);
        if let Some(hit) = shard.lock().expect("cache shard poisoned").get(&key) {
            return Ok(Arc::clone(hit));
        }
        let built = Arc::new(build()?);
        let mut guard = shard.lock().expect("cache shard poisoned");
        if let Some(winner) = guard.get(&key) {
            return Ok(Arc::clone(winner));
        }
        if guard.len() >= self.per_shard_capacity {
            guard.clear();
        }
        guard.insert(key, Arc::clone(&built));
        Ok(built)
    }

    /// Total entries across all shards.
    #[must_use]
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("cache shard poisoned").len())
            .sum()
    }

    /// Whether the cache holds no entries.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops every cached entry.
    pub fn clear(&self) {
        for shard in &self.shards {
            shard.lock().expect("cache shard poisoned").clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn second_lookup_reuses_the_first_build() {
        let cache: BuildCache<(u32, u32), String> = BuildCache::new();
        let builds = AtomicUsize::new(0);
        let build = || -> Result<String, ()> {
            builds.fetch_add(1, Ordering::SeqCst);
            Ok("artefact".to_string())
        };
        let a = cache.get_or_build((1, 2), build).unwrap();
        let b = cache.get_or_build((1, 2), build).unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(builds.load(Ordering::SeqCst), 1);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn errors_are_not_cached() {
        let cache: BuildCache<u32, u32> = BuildCache::new();
        let result: Result<_, &str> = cache.get_or_build(7, || Err("nope"));
        assert!(result.is_err());
        assert!(cache.is_empty());
        let ok: Result<_, &str> = cache.get_or_build(7, || Ok(49));
        assert_eq!(*ok.unwrap(), 49);
    }

    #[test]
    fn capacity_bound_evicts_rather_than_grows() {
        let cache: BuildCache<u32, u32> = BuildCache::with_shape(1, 4);
        for key in 0..40 {
            let _ = cache.get_or_build::<()>(key, || Ok(key));
        }
        assert!(cache.len() <= 4);
        cache.clear();
        assert!(cache.is_empty());
    }

    #[test]
    fn concurrent_lookups_agree() {
        let cache: BuildCache<u32, u32> = BuildCache::new();
        std::thread::scope(|scope| {
            for _ in 0..8 {
                scope.spawn(|| {
                    for key in 0..32 {
                        let value = cache.get_or_build::<()>(key, || Ok(key * 3)).unwrap();
                        assert_eq!(*value, key * 3);
                    }
                });
            }
        });
    }
}
