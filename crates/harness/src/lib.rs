//! # `sf-harness`
//!
//! Deterministic parallel experiment-execution engine for the String Figure
//! reproduction.
//!
//! The paper's evaluation is a pile of parameter sweeps — path-length studies
//! over 64–1296 nodes × many seeds, saturation grids over injection rates,
//! workload × design matrices. Every point is an independent simulation, so
//! the sweep is embarrassingly parallel *as long as nothing couples the
//! points through shared mutable state*. This crate supplies the pieces that
//! make that safe and reproducible:
//!
//! * [`sweep`] — the [`Sweep`](sweep::Sweep) / [`LazySweep`](sweep::LazySweep)
//!   job abstraction: stream points from an iterator (or a materialised
//!   `Vec`), derive a per-job seed from the job's index (never from
//!   execution order), and run the closure over every point. The streaming
//!   engine delivers results to an ordered callback
//!   ([`run_streaming`](sweep::LazySweep::run_streaming)), so a sweep's peak
//!   memory is bounded by the worker count, not the grid size.
//! * [`pool`] — a `std::thread`-based worker pool with chunked work
//!   distribution and per-job panic isolation. Results are collected by job
//!   index, so a run with 16 workers is **bit-identical** to a run with one.
//! * [`table`] — typed result rows ([`Record`](table::Record)) collected into
//!   a [`Table`](table::Table) with hand-rolled CSV and JSON emitters (and
//!   matching parsers for round-trip tests), so bench binaries produce
//!   machine-readable artifacts without external dependencies.
//! * [`cache`] — a sharded, thread-safe build-once cache so repeated points
//!   at the same (kind, size, seed) reuse the generated topology instead of
//!   regenerating it per job. Eviction is cost-aware LRU: cheap-to-rebuild
//!   entries go first, so paper-scale topologies stay resident.
//! * [`journal`] — an append-only checkpoint journal of completed job
//!   results, so interrupted mega-sweeps resume with bit-identical final
//!   output instead of starting over; oversized logs compact in place to a
//!   kill-safe snapshot.
//! * [`sink`] — streaming CSV/JSON row emitters ([`RowSink`](sink::RowSink))
//!   that write each row as it arrives and finalise atomically on close,
//!   byte-identical to serialising the equivalent [`Table`](table::Table)
//!   in one shot.
//! * [`budget`] — the process-wide core budget shared between sweep-level
//!   workers and the intra-job simulation shards of `sf-simcore`, so the two
//!   parallelism layers never oversubscribe the machine together.
//! * [`fabric`] — the distributed-sweep fabric: deterministic contiguous
//!   partitioning of the point stream (`i/N` → a global index range),
//!   fingerprint-guarded shard metadata, and merge routines that stitch
//!   CSV/JSON/telemetry shards back into artifacts byte-identical to the
//!   serial run.
//!
//! ## Example
//!
//! ```
//! use sf_harness::pool::PoolConfig;
//! use sf_harness::sweep::Sweep;
//!
//! // Square every point of a sweep in parallel; output order matches the
//! // enumeration order, not the completion order.
//! let sweep = Sweep::new((0u64..100).collect::<Vec<_>>());
//! let report = sweep.run(&PoolConfig::threads(4), |ctx, &n| {
//!     Ok::<u64, std::convert::Infallible>(n * n + ctx.seed % 1)
//! });
//! let squares = report.into_results().unwrap();
//! assert_eq!(squares[9], 81);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod budget;
pub mod cache;
pub mod fabric;
pub mod journal;
pub mod pool;
pub mod sink;
pub mod sweep;
pub mod table;

pub use budget::CoreBudget;
pub use cache::BuildCache;
pub use journal::Journal;
pub use pool::{JobError, PoolConfig};
pub use sink::RowSink;
pub use sweep::{derive_seed, JobCtx, JobOutcome, LazySweep, Sweep, SweepReport};
pub use table::{Record, Table, Value};
