//! Typed result rows and hand-rolled CSV / JSON emitters.
//!
//! Experiment rows implement [`Record`] (column names + cell values); a
//! [`Table`] collects homogeneous records and serialises them without any
//! external dependency:
//!
//! * [`Table::to_csv`] — RFC-4180-style CSV with quoting, plus
//!   [`Table::from_csv`] for round-trip tests and downstream tooling.
//! * [`Table::to_json`] — an array of flat objects, plus [`Table::from_json`]
//!   covering the same flat subset.
//!
//! Floats are emitted via Rust's shortest-roundtrip formatting, so
//! `from_csv(to_csv(t)) == t` holds exactly — the property the emitter
//! round-trip test pins down.

use std::fmt::Write as _;

/// One table cell.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// A string cell.
    Str(String),
    /// A signed integer cell.
    Int(i64),
    /// An unsigned integer cell.
    UInt(u64),
    /// A float cell (must be finite to survive JSON round-trips).
    Float(f64),
    /// A boolean cell.
    Bool(bool),
    /// An absent value (e.g. a saturation point that never materialised).
    Null,
}

impl Value {
    /// The cell rendered the way it appears in a CSV field (unquoted).
    #[must_use]
    pub fn render(&self) -> String {
        match self {
            Self::Str(s) => s.clone(),
            Self::Int(i) => i.to_string(),
            Self::UInt(u) => u.to_string(),
            Self::Float(x) => format_float(*x),
            Self::Bool(b) => b.to_string(),
            Self::Null => String::new(),
        }
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Self::Str(s.to_string())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Self::Str(s)
    }
}

impl From<usize> for Value {
    fn from(u: usize) -> Self {
        Self::UInt(u as u64)
    }
}

impl From<u64> for Value {
    fn from(u: u64) -> Self {
        Self::UInt(u)
    }
}

impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Self::Int(i)
    }
}

impl From<f64> for Value {
    fn from(x: f64) -> Self {
        Self::Float(x)
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Self::Bool(b)
    }
}

impl From<Option<f64>> for Value {
    fn from(x: Option<f64>) -> Self {
        x.map_or(Self::Null, Self::Float)
    }
}

/// A typed experiment row that knows its column names and cell values.
pub trait Record {
    /// Column names, in emission order.
    fn columns() -> Vec<&'static str>;
    /// This row's cells, matching [`Record::columns`] positionally.
    fn values(&self) -> Vec<Value>;
}

/// A homogeneous collection of rows with named columns.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Table {
    /// Column names.
    pub columns: Vec<String>,
    /// Row-major cells; every row has `columns.len()` entries.
    pub rows: Vec<Vec<Value>>,
}

/// Parse failures from [`Table::from_csv`] / [`Table::from_json`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// What went wrong, with enough context to locate it.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "table parse error: {}", self.message)
    }
}

impl std::error::Error for ParseError {}

fn parse_err<T>(message: impl Into<String>) -> Result<T, ParseError> {
    Err(ParseError {
        message: message.into(),
    })
}

/// Formats a float so that parsing the text recovers the exact bits
/// (Rust's default `Display` is shortest-roundtrip), with an explicit
/// decimal point so integers-valued floats stay recognisable as floats.
fn format_float(x: f64) -> String {
    if x.is_nan() {
        return "NaN".to_string();
    }
    if x.is_infinite() {
        return if x > 0.0 { "inf" } else { "-inf" }.to_string();
    }
    let s = x.to_string();
    if s.contains('.') || s.contains('e') || s.contains('E') {
        s
    } else {
        format!("{s}.0")
    }
}

impl Table {
    /// An empty table with the given columns.
    #[must_use]
    pub fn with_columns(columns: &[&str]) -> Self {
        Self {
            columns: columns.iter().map(|c| (*c).to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Builds a table from typed records.
    pub fn from_records<R: Record>(records: &[R]) -> Self {
        Self {
            columns: R::columns().into_iter().map(str::to_string).collect(),
            rows: records.iter().map(Record::values).collect(),
        }
    }

    /// Appends a row; panics if the cell count does not match the columns.
    pub fn push_row(&mut self, row: Vec<Value>) {
        assert_eq!(
            row.len(),
            self.columns.len(),
            "row width {} != column count {}",
            row.len(),
            self.columns.len()
        );
        self.rows.push(row);
    }

    /// Number of data rows.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    // -- CSV ---------------------------------------------------------------

    /// Serialises to CSV: a header row, then one line per data row.
    #[must_use]
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let header: Vec<String> = self.columns.iter().map(|c| csv_escape(c)).collect();
        out.push_str(&header.join(","));
        out.push('\n');
        for row in &self.rows {
            let cells: Vec<String> = row.iter().map(csv_cell).collect();
            out.push_str(&cells.join(","));
            out.push('\n');
        }
        out
    }

    /// Parses CSV produced by [`Table::to_csv`].
    ///
    /// Unquoted cells are re-typed by inference: unsigned / signed integers,
    /// floats, booleans, empty = [`Value::Null`], anything else a string.
    /// Quoted cells are always strings — the emitter quotes every `Str` cell
    /// whose text would otherwise be mistaken for another type, which is what
    /// makes `from_csv(to_csv(t)) == t` hold exactly.
    ///
    /// # Errors
    ///
    /// Fails on ragged rows or malformed quoting.
    pub fn from_csv(text: &str) -> Result<Self, ParseError> {
        let mut lines = split_csv_records(text)?.into_iter();
        let Some(header) = lines.next() else {
            return parse_err("empty CSV input");
        };
        let mut table = Self {
            columns: header.into_iter().map(|c| c.text).collect(),
            rows: Vec::new(),
        };
        for (line_no, cells) in lines.enumerate() {
            if cells.len() != table.columns.len() {
                return parse_err(format!(
                    "row {} has {} cells, expected {}",
                    line_no + 2,
                    cells.len(),
                    table.columns.len()
                ));
            }
            table.rows.push(
                cells
                    .into_iter()
                    .map(|c| {
                        if c.quoted {
                            Value::Str(c.text)
                        } else {
                            infer_value(&c.text)
                        }
                    })
                    .collect(),
            );
        }
        Ok(table)
    }

    // -- JSON --------------------------------------------------------------

    /// Serialises to a JSON array of flat objects (one per row).
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::from("[");
        for (i, row) in self.rows.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n  {");
            for (j, (column, value)) in self.columns.iter().zip(row).enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                let _ = write!(out, "{}: ", json_string(column));
                out.push_str(&json_value(value));
            }
            out.push('}');
        }
        if !self.rows.is_empty() {
            out.push('\n');
        }
        out.push(']');
        out.push('\n');
        out
    }

    /// Parses the flat array-of-objects JSON produced by [`Table::to_json`].
    ///
    /// Column order is taken from the first object; later objects must use
    /// the same keys.
    ///
    /// # Errors
    ///
    /// Fails on anything that is not a flat array of scalar-valued objects
    /// with a consistent key set.
    pub fn from_json(text: &str) -> Result<Self, ParseError> {
        let mut parser = JsonParser::new(text);
        parser.skip_ws();
        let objects = parser.parse_array()?;
        parser.skip_ws();
        if !parser.at_end() {
            return parse_err("trailing characters after JSON array");
        }
        let mut table = Self::default();
        for (i, object) in objects.iter().enumerate() {
            if i == 0 {
                table.columns = object.iter().map(|(k, _)| k.clone()).collect();
            }
            let keys: Vec<&String> = object.iter().map(|(k, _)| k).collect();
            if keys.len() != table.columns.len()
                || keys.iter().zip(&table.columns).any(|(a, b)| *a != b)
            {
                return parse_err(format!("object {i} has a different key set"));
            }
            table
                .rows
                .push(object.iter().map(|(_, v)| v.clone()).collect());
        }
        Ok(table)
    }
}

// -- CSV helpers -----------------------------------------------------------

/// Encodes one row of cells as a single CSV record (no trailing newline),
/// using the same quoting rules as [`Table::to_csv`] — so
/// [`decode_csv_line`] recovers the exact typed cells.
#[must_use]
pub fn encode_csv_line(cells: &[Value]) -> String {
    let rendered: Vec<String> = cells.iter().map(csv_cell).collect();
    rendered.join(",")
}

/// Decodes one CSV record produced by [`encode_csv_line`] back into typed
/// cells (quoted cells stay strings, everything else is re-typed by the same
/// inference the table parser uses).
///
/// # Errors
///
/// Fails on malformed quoting or an empty line.
pub fn decode_csv_line(line: &str) -> Result<Vec<Value>, ParseError> {
    let mut records = split_csv_records(&format!("{line}\n"))?;
    if records.len() != 1 {
        return parse_err("expected exactly one CSV record");
    }
    Ok(records
        .remove(0)
        .into_iter()
        .map(|c| {
            if c.quoted {
                Value::Str(c.text)
            } else {
                infer_value(&c.text)
            }
        })
        .collect())
}

pub(crate) fn csv_escape(cell: &str) -> String {
    if cell.contains(',') || cell.contains('"') || cell.contains('\n') || cell.contains('\r') {
        format!("\"{}\"", cell.replace('"', "\"\""))
    } else {
        cell.to_string()
    }
}

/// Renders one data cell. `Str` cells whose text would be re-typed by
/// [`infer_value`] (e.g. "17", "true", "2.0", "") are force-quoted so the
/// parser can tell a string apart from the value it resembles.
pub(crate) fn csv_cell(value: &Value) -> String {
    let rendered = value.render();
    if let Value::Str(_) = value {
        let ambiguous = !matches!(infer_value(&rendered), Value::Str(_));
        if ambiguous {
            return format!("\"{}\"", rendered.replace('"', "\"\""));
        }
    }
    csv_escape(&rendered)
}

/// One parsed CSV cell plus whether it was quoted in the source (quoted
/// cells bypass type inference).
struct CsvCell {
    text: String,
    quoted: bool,
}

/// Splits CSV text into records of unescaped cells, honouring quotes.
fn split_csv_records(text: &str) -> Result<Vec<Vec<CsvCell>>, ParseError> {
    let mut records = Vec::new();
    let mut cells = Vec::new();
    let mut cell = String::new();
    let mut cell_quoted = false;
    let mut in_quotes = false;
    let mut chars = text.chars().peekable();
    let mut saw_any = false;
    while let Some(c) = chars.next() {
        saw_any = true;
        if in_quotes {
            match c {
                '"' if chars.peek() == Some(&'"') => {
                    chars.next();
                    cell.push('"');
                }
                '"' => in_quotes = false,
                other => cell.push(other),
            }
        } else {
            match c {
                '"' => {
                    in_quotes = true;
                    cell_quoted = true;
                }
                ',' => cells.push(CsvCell {
                    text: std::mem::take(&mut cell),
                    quoted: std::mem::take(&mut cell_quoted),
                }),
                '\r' => {}
                '\n' => {
                    cells.push(CsvCell {
                        text: std::mem::take(&mut cell),
                        quoted: std::mem::take(&mut cell_quoted),
                    });
                    records.push(std::mem::take(&mut cells));
                }
                other => cell.push(other),
            }
        }
    }
    if in_quotes {
        return parse_err("unterminated quoted CSV cell");
    }
    if !cell.is_empty() || cell_quoted || !cells.is_empty() {
        cells.push(CsvCell {
            text: cell,
            quoted: cell_quoted,
        });
        records.push(cells);
    }
    if !saw_any {
        return parse_err("empty CSV input");
    }
    Ok(records)
}

/// Re-types a CSV cell the way the emitter would have rendered it.
fn infer_value(cell: &str) -> Value {
    if cell.is_empty() {
        return Value::Null;
    }
    if cell == "true" {
        return Value::Bool(true);
    }
    if cell == "false" {
        return Value::Bool(false);
    }
    // Unsigned before signed so non-negative integers round-trip as UInt.
    if !cell.starts_with('+') {
        if let Ok(u) = cell.parse::<u64>() {
            return Value::UInt(u);
        }
    }
    if cell.starts_with('-') {
        if let Ok(i) = cell.parse::<i64>() {
            return Value::Int(i);
        }
    }
    if looks_like_float(cell) {
        if let Ok(x) = cell.parse::<f64>() {
            return Value::Float(x);
        }
    }
    match cell {
        "NaN" => Value::Float(f64::NAN),
        "inf" => Value::Float(f64::INFINITY),
        "-inf" => Value::Float(f64::NEG_INFINITY),
        other => Value::Str(other.to_string()),
    }
}

/// Only cells shaped like the float emitter's output ("1.5", "-2e-3") are
/// parsed as floats; free-form strings such as "1996 flood" are not.
fn looks_like_float(cell: &str) -> bool {
    let body = cell.strip_prefix('-').unwrap_or(cell);
    !body.is_empty()
        && body
            .chars()
            .all(|c| c.is_ascii_digit() || matches!(c, '.' | 'e' | 'E' | '-' | '+'))
        && body.chars().next().is_some_and(|c| c.is_ascii_digit())
}

// -- JSON helpers ----------------------------------------------------------

pub(crate) fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

pub(crate) fn json_value(value: &Value) -> String {
    match value {
        Value::Str(s) => json_string(s),
        Value::Int(i) => i.to_string(),
        Value::UInt(u) => u.to_string(),
        // JSON has no NaN/inf literals; emit them as strings so output stays
        // valid JSON (the CSV path preserves them exactly).
        Value::Float(x) if !x.is_finite() => json_string(&format_float(*x)),
        Value::Float(x) => format_float(*x),
        Value::Bool(b) => b.to_string(),
        Value::Null => "null".to_string(),
    }
}

/// Minimal recursive-descent parser for the flat JSON `Table::to_json` emits.
struct JsonParser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> JsonParser<'a> {
    fn new(text: &'a str) -> Self {
        Self {
            bytes: text.as_bytes(),
            pos: 0,
        }
    }

    fn at_end(&self) -> bool {
        self.pos >= self.bytes.len()
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), ParseError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            parse_err(format!("expected '{}' at byte {}", byte as char, self.pos))
        }
    }

    fn parse_array(&mut self) -> Result<Vec<Vec<(String, Value)>>, ParseError> {
        self.expect(b'[')?;
        let mut objects = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(objects);
        }
        loop {
            self.skip_ws();
            objects.push(self.parse_object()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(objects);
                }
                _ => return parse_err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Vec<(String, Value)>, ParseError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(fields);
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_scalar()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(fields);
                }
                _ => return parse_err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return parse_err("unterminated JSON string");
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return parse_err("dangling escape in JSON string");
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            if self.pos + 4 > self.bytes.len() {
                                return parse_err("truncated \\u escape");
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
                                .map_err(|_| ParseError {
                                    message: "non-UTF8 \\u escape".to_string(),
                                })?;
                            let code = u32::from_str_radix(hex, 16).map_err(|_| ParseError {
                                message: format!("bad \\u escape '{hex}'"),
                            })?;
                            self.pos += 4;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        other => return parse_err(format!("unknown escape '\\{}'", other as char)),
                    }
                }
                _ => {
                    // Re-decode the UTF-8 sequence starting at pos - 1.
                    let start = self.pos - 1;
                    let text =
                        std::str::from_utf8(&self.bytes[start..]).map_err(|_| ParseError {
                            message: "invalid UTF-8 in JSON string".to_string(),
                        })?;
                    let c = text.chars().next().expect("non-empty string slice");
                    out.push(c);
                    self.pos = start + c.len_utf8();
                }
            }
        }
    }

    fn parse_scalar(&mut self) -> Result<Value, ParseError> {
        match self.peek() {
            Some(b'"') => Ok(Value::Str(self.parse_string()?)),
            Some(b't') => self.parse_keyword("true", Value::Bool(true)),
            Some(b'f') => self.parse_keyword("false", Value::Bool(false)),
            Some(b'n') => self.parse_keyword("null", Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            _ => parse_err(format!("unexpected scalar at byte {}", self.pos)),
        }
    }

    fn parse_keyword(&mut self, word: &str, value: Value) -> Result<Value, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            parse_err(format!("expected '{word}' at byte {}", self.pos))
        }
    }

    fn parse_number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ASCII number");
        if is_float {
            match text.parse::<f64>() {
                Ok(x) => Ok(Value::Float(x)),
                Err(_) => parse_err(format!("bad number '{text}'")),
            }
        } else if text.starts_with('-') {
            match text.parse::<i64>() {
                Ok(i) => Ok(Value::Int(i)),
                Err(_) => parse_err(format!("bad integer '{text}'")),
            }
        } else {
            match text.parse::<u64>() {
                Ok(u) => Ok(Value::UInt(u)),
                Err(_) => parse_err(format!("bad integer '{text}'")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct DemoRow {
        name: &'static str,
        nodes: usize,
        latency: f64,
        saturated: bool,
        point: Option<f64>,
    }

    impl Record for DemoRow {
        fn columns() -> Vec<&'static str> {
            vec!["name", "nodes", "latency", "saturated", "point"]
        }
        fn values(&self) -> Vec<Value> {
            vec![
                self.name.into(),
                self.nodes.into(),
                self.latency.into(),
                self.saturated.into(),
                self.point.into(),
            ]
        }
    }

    fn demo_table() -> Table {
        Table::from_records(&[
            DemoRow {
                name: "SF, \"quoted\"",
                nodes: 64,
                latency: 3.25,
                saturated: false,
                point: Some(62.5),
            },
            DemoRow {
                name: "mesh\nline2",
                nodes: 1296,
                latency: 11.0,
                saturated: true,
                point: None,
            },
        ])
    }

    #[test]
    fn csv_round_trip_is_exact() {
        let table = demo_table();
        let parsed = Table::from_csv(&table.to_csv()).unwrap();
        assert_eq!(parsed, table);
    }

    #[test]
    fn csv_round_trip_keeps_ambiguous_strings_as_strings() {
        // Str cells whose text looks like another type must come back as Str
        // (the emitter quotes them), while real typed cells stay typed.
        let mut table = Table::with_columns(&["label", "count"]);
        for text in ["17", "true", "2.0", "", "-3", "NaN"] {
            table.push_row(vec![Value::Str(text.to_string()), Value::UInt(1)]);
        }
        table.push_row(vec![Value::Null, Value::UInt(2)]);
        let parsed = Table::from_csv(&table.to_csv()).unwrap();
        assert_eq!(parsed, table);
    }

    #[test]
    fn json_round_trip_is_exact() {
        let table = demo_table();
        let parsed = Table::from_json(&table.to_json()).unwrap();
        assert_eq!(parsed, table);
    }

    #[test]
    fn csv_quotes_special_cells() {
        let csv = demo_table().to_csv();
        assert!(csv.contains("\"SF, \"\"quoted\"\"\""));
        assert!(csv.lines().next().unwrap().starts_with("name,nodes"));
    }

    #[test]
    fn json_emits_null_for_missing_values() {
        let json = demo_table().to_json();
        assert!(json.contains("\"point\": null"));
        assert!(json.contains("\"nodes\": 64"));
    }

    #[test]
    fn ragged_csv_is_rejected() {
        assert!(Table::from_csv("a,b\n1\n").is_err());
        assert!(Table::from_csv("").is_err());
    }

    #[test]
    fn float_formatting_keeps_a_decimal_marker() {
        assert_eq!(format_float(2.0), "2.0");
        assert_eq!(format_float(0.1), "0.1");
        assert!(matches!(infer_value("2.0"), Value::Float(x) if x == 2.0));
        assert!(matches!(infer_value("17"), Value::UInt(17)));
        assert!(matches!(infer_value("-3"), Value::Int(-3)));
        assert!(matches!(infer_value("1996 flood"), Value::Str(_)));
    }
}
