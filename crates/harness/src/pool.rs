//! `std::thread`-based worker pool with chunked distribution and per-job
//! panic isolation.
//!
//! The pool executes `n` indexed jobs by handing out contiguous chunks of the
//! index space through a shared atomic cursor: a worker grabs
//! `[cursor, cursor + chunk)`, runs those jobs, and comes back for more.
//! Chunking keeps the atomic traffic negligible for cheap jobs while the
//! work-stealing-ish dynamic assignment keeps long jobs (large topologies)
//! from serialising behind a static partition.
//!
//! Every job runs under `catch_unwind`, so a panicking job is reported as a
//! [`JobError::Panic`] for *that index only* — the rest of the sweep
//! completes. Results land in a slot vector indexed by job id, which is what
//! makes a parallel run bit-identical to a serial one: output order is
//! enumeration order, never completion order.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// How a sweep is executed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoolConfig {
    /// Number of worker threads; `1` runs inline on the caller thread.
    pub threads: usize,
    /// Jobs handed to a worker per grab of the shared cursor.
    pub chunk: usize,
}

impl PoolConfig {
    /// Environment variable overriding the worker count (`0`/unset = auto).
    pub const THREADS_ENV: &'static str = "SF_HARNESS_THREADS";

    /// A pool with exactly `threads` workers.
    #[must_use]
    pub fn threads(threads: usize) -> Self {
        Self {
            threads: threads.max(1),
            chunk: 1,
        }
    }

    /// Serial execution on the caller thread.
    #[must_use]
    pub fn serial() -> Self {
        Self::threads(1)
    }

    /// One worker per available CPU, overridable via
    /// [`SF_HARNESS_THREADS`](Self::THREADS_ENV).
    #[must_use]
    pub fn auto() -> Self {
        let from_env = std::env::var(Self::THREADS_ENV)
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&n| n > 0);
        let threads = from_env.unwrap_or_else(|| {
            std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
        });
        Self::threads(threads)
    }

    /// Sets the chunk size (clamped to at least 1).
    #[must_use]
    pub fn with_chunk(mut self, chunk: usize) -> Self {
        self.chunk = chunk.max(1);
        self
    }
}

impl Default for PoolConfig {
    fn default() -> Self {
        Self::auto()
    }
}

/// Why a job produced no result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobError {
    /// The job panicked; the payload is the panic message when it was a
    /// string, or a placeholder otherwise.
    Panic(String),
}

impl std::fmt::Display for JobError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Panic(msg) => write!(f, "job panicked: {msg}"),
        }
    }
}

impl std::error::Error for JobError {}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Runs `count` indexed jobs through `run`, returning one slot per index.
///
/// `run(i)` is called exactly once for every `i in 0..count`; the returned
/// vector holds index `i`'s result at position `i` regardless of which worker
/// executed it or when it finished. Panics inside `run` are captured as
/// [`JobError::Panic`] in that job's slot.
pub fn run_indexed<T, F>(config: &PoolConfig, count: usize, run: F) -> Vec<Result<T, JobError>>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let execute = |index: usize| -> Result<T, JobError> {
        catch_unwind(AssertUnwindSafe(|| run(index)))
            .map_err(|payload| JobError::Panic(panic_message(payload.as_ref())))
    };

    if config.threads <= 1 || count <= 1 {
        return (0..count).map(execute).collect();
    }

    let mut slots: Vec<Option<Result<T, JobError>>> = Vec::with_capacity(count);
    slots.resize_with(count, || None);
    let slots = Mutex::new(&mut slots);
    let cursor = AtomicUsize::new(0);
    let chunk = config.chunk.max(1);
    let workers = config.threads.min(count);

    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let start = cursor.fetch_add(chunk, Ordering::Relaxed);
                if start >= count {
                    break;
                }
                let end = (start + chunk).min(count);
                // Run the chunk without holding any lock, then publish the
                // finished results into their slots in one short critical
                // section.
                let results: Vec<(usize, Result<T, JobError>)> =
                    (start..end).map(|i| (i, execute(i))).collect();
                let mut guard = slots.lock().expect("result mutex poisoned");
                for (i, result) in results {
                    guard[i] = Some(result);
                }
            });
        }
    });

    slots
        .into_inner()
        .expect("result mutex poisoned")
        .drain(..)
        .map(|slot| slot.expect("worker pool left a job slot empty"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn auto_pool_has_at_least_one_thread() {
        assert!(PoolConfig::auto().threads >= 1);
        assert_eq!(PoolConfig::serial().threads, 1);
        assert_eq!(PoolConfig::threads(0).threads, 1);
        assert_eq!(PoolConfig::threads(4).with_chunk(0).chunk, 1);
    }

    #[test]
    fn parallel_results_are_in_index_order() {
        let config = PoolConfig::threads(8).with_chunk(3);
        let results = run_indexed(&config, 100, |i| i * 2);
        for (i, r) in results.iter().enumerate() {
            assert_eq!(*r.as_ref().unwrap(), i * 2);
        }
    }

    #[test]
    fn panics_are_isolated_to_their_slot() {
        let config = PoolConfig::threads(4);
        let results = run_indexed(&config, 10, |i| {
            assert!(i != 7, "job seven exploded");
            i
        });
        for (i, r) in results.iter().enumerate() {
            if i == 7 {
                let err = r.as_ref().unwrap_err();
                let JobError::Panic(msg) = err;
                assert!(msg.contains("job seven exploded"), "{msg}");
            } else {
                assert_eq!(*r.as_ref().unwrap(), i);
            }
        }
    }

    #[test]
    fn zero_jobs_is_fine() {
        let results = run_indexed(&PoolConfig::threads(4), 0, |i| i);
        assert!(results.is_empty());
    }
}
