//! `std::thread`-based worker pool with chunked distribution and per-job
//! panic isolation.
//!
//! The pool executes `n` indexed jobs by handing out contiguous chunks of the
//! index space through a shared atomic cursor: a worker grabs
//! `[cursor, cursor + chunk)`, runs those jobs, and comes back for more.
//! Chunking keeps the atomic traffic negligible for cheap jobs while the
//! work-stealing-ish dynamic assignment keeps long jobs (large topologies)
//! from serialising behind a static partition.
//!
//! Every job runs under `catch_unwind`, so a panicking job is reported as a
//! [`JobError::Panic`] for *that index only* — the rest of the sweep
//! completes. Results land in a slot vector indexed by job id, which is what
//! makes a parallel run bit-identical to a serial one: output order is
//! enumeration order, never completion order.

use std::collections::BTreeMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Condvar, Mutex};

/// How a sweep is executed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoolConfig {
    /// Number of worker threads; `1` runs inline on the caller thread.
    pub threads: usize,
    /// Jobs handed to a worker per grab of the shared cursor.
    pub chunk: usize,
}

impl PoolConfig {
    /// Environment variable overriding the worker count (`0`/unset = auto).
    pub const THREADS_ENV: &'static str = "SF_HARNESS_THREADS";

    /// A pool with exactly `threads` workers.
    #[must_use]
    pub fn threads(threads: usize) -> Self {
        Self {
            threads: threads.max(1),
            chunk: 1,
        }
    }

    /// Serial execution on the caller thread.
    #[must_use]
    pub fn serial() -> Self {
        Self::threads(1)
    }

    /// One worker per core of the shared budget (`SF_CORES`, default: the
    /// number of available CPUs), overridable via
    /// [`SF_HARNESS_THREADS`](Self::THREADS_ENV). Respecting the budget here
    /// keeps the pool consistent with what `budget::total_cores` declares to
    /// the intra-simulation shard layer.
    #[must_use]
    pub fn auto() -> Self {
        let threads = crate::budget::env_positive_usize(Self::THREADS_ENV)
            .unwrap_or_else(crate::budget::total_cores);
        Self::threads(threads)
    }

    /// Sets the chunk size (clamped to at least 1).
    #[must_use]
    pub fn with_chunk(mut self, chunk: usize) -> Self {
        self.chunk = chunk.max(1);
        self
    }
}

impl Default for PoolConfig {
    fn default() -> Self {
        Self::auto()
    }
}

/// Why a job produced no result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobError {
    /// The job panicked; the payload is the panic message when it was a
    /// string, or a placeholder otherwise.
    Panic(String),
}

impl std::fmt::Display for JobError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Panic(msg) => write!(f, "job panicked: {msg}"),
        }
    }
}

impl std::error::Error for JobError {}

pub(crate) fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// The reorder buffer behind [`run_stream_emit`]'s ordered delivery: results
/// completed out of order park in `pending` until every smaller index has
/// been emitted. The emit callback lives inside the same mutex, so calls are
/// serialised *and* ordered without a dedicated consumer thread. `stop`
/// latches when the callback cancels the run — workers observe it before
/// pulling more points, so a failed mega-sweep does not burn through the
/// rest of its grid.
struct EmitState<T, S> {
    pending: BTreeMap<usize, T>,
    next_emit: usize,
    emit: S,
    stop: bool,
}

/// Wakes every condvar waiter when dropped — unwind-safe notification, so a
/// panic inside the emit callback cannot strand backpressure-parked workers.
struct NotifyOnDrop<'a>(&'a Condvar);

impl Drop for NotifyOnDrop<'_> {
    fn drop(&mut self) {
        self.0.notify_all();
    }
}

/// The one chunk-pulling scheduler behind [`run_indexed`] and the sweep
/// engines (`Sweep`/`LazySweep` in [`crate::sweep`]).
///
/// Pulls `(index, item)` pairs from `stream` under a lock, runs `execute` on
/// worker threads, and hands each result to `emit` **in pull (= enumeration)
/// order** — regardless of which worker ran what, which is the determinism
/// contract. Results are never collected: a completed result is buffered only
/// while some smaller index is still in flight, so the peak memory of a
/// mega-sweep is `O(workers × chunk)`, not `O(points)`. Workers that race too
/// far ahead of the slowest in-flight index park on a condvar until the
/// buffer drains (backpressure), which bounds the buffer even for wildly
/// uneven job costs.
///
/// When the iterator reports an exact size, the worker count (and its
/// reservation against the shared core budget) is clamped to it, so a
/// two-point sweep on a 16-core host claims two workers, not sixteen —
/// leaving the rest of the budget to intra-job simulation shards.
///
/// `execute` must not panic; per-job panic isolation is the caller's
/// responsibility (the sweep engines wrap jobs in `catch_unwind`). `emit` is
/// called at most once per item, with strictly increasing indices; returning
/// `false` cancels the run — no further points are pulled, in-flight chunks
/// finish computing but their results are discarded unemitted. A sweep whose
/// sink fails therefore stops in `O(workers × chunk)` jobs instead of
/// grinding through the rest of a mega-grid.
pub(crate) fn run_stream_emit<P, T, I, F, S>(config: &PoolConfig, stream: I, execute: F, emit: S)
where
    I: Iterator<Item = P> + Send,
    P: Send,
    T: Send,
    F: Fn(usize, P) -> T + Sync,
    S: FnMut(usize, T) -> bool + Send,
{
    let exact_len = match stream.size_hint() {
        (lower, Some(upper)) if lower == upper => Some(upper),
        _ => None,
    };
    if config.threads <= 1 || exact_len.is_some_and(|n| n <= 1) {
        let mut emit = emit;
        let mut completed = 0u64;
        for (index, item) in stream.enumerate() {
            let result = execute(index, item);
            completed += 1;
            if !emit(index, result) {
                break;
            }
        }
        sf_obs::metrics::global().counter_add("pool.jobs_completed", completed);
        return;
    }

    let workers = exact_len
        .map_or(config.threads, |n| config.threads.min(n))
        .max(1);
    let chunk = config.chunk.max(1);
    // If the reorder buffer grows past this, workers pause before pulling
    // more points; the worker computing the lowest in-flight index never
    // pauses (it only waits *before* pulling new work), so the drain that
    // wakes everyone is always coming.
    let high_water = workers.saturating_mul(chunk).saturating_mul(4).max(16);
    // Claim this sweep's workers from the shared core budget so intra-job
    // simulation shards (sf-simcore) size themselves to the leftover cores
    // instead of oversubscribing the machine. Released on drop, even if a
    // worker's job panics.
    let _reservation = crate::budget::reserve_workers(workers);
    let source = Mutex::new(stream.enumerate());
    let sink = Mutex::new(EmitState {
        pending: BTreeMap::new(),
        next_emit: 0,
        emit,
        stop: false,
    });
    let drained = Condvar::new();

    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                // Backpressure: wait until the reorder buffer has room (or
                // the run is cancelled) before claiming more points.
                {
                    let wait_timer = sf_obs::span::timing_start();
                    let mut state = sink.lock().expect("emit state poisoned");
                    let mut waited = false;
                    while state.pending.len() >= high_water && !state.stop {
                        waited = true;
                        state = drained.wait(state).expect("emit state poisoned");
                    }
                    let stop = state.stop;
                    drop(state);
                    if waited {
                        sf_obs::span::timing_add("pool_backpressure_wait", wait_timer, 1);
                    }
                    if stop {
                        break;
                    }
                }
                // Pull the next chunk of (index, item) pairs; indices come
                // from the shared enumeration, never from this worker. Run
                // the chunk without holding any lock, then publish the
                // finished results in one short critical section.
                let pulled: Vec<(usize, P)> = {
                    let mut stream = source.lock().expect("job stream poisoned");
                    stream.by_ref().take(chunk).collect()
                };
                if pulled.is_empty() {
                    break;
                }
                let results: Vec<(usize, T)> = pulled
                    .into_iter()
                    .map(|(index, item)| (index, execute(index, item)))
                    .collect();
                // On a run that completes (no cancellation) every index runs
                // exactly once, so the summed count is worker-independent.
                sf_obs::metrics::global().counter_add("pool.jobs_completed", results.len() as u64);
                // Notify on every exit from the critical section — including
                // an unwind out of a panicking emit callback. Without this, a
                // panic would poison the mutex and leave backpressure-parked
                // workers waiting on the condvar forever instead of waking
                // (and propagating the poison panic through the scope).
                // Declared before `guard` so the guard drops first.
                let notify = NotifyOnDrop(&drained);
                let mut guard = sink.lock().expect("emit state poisoned");
                let state = &mut *guard;
                if !state.stop {
                    for (index, result) in results {
                        state.pending.insert(index, result);
                    }
                    // Drain the contiguous prefix: whichever worker completes
                    // the missing index emits everything waiting on it.
                    loop {
                        let next = state.next_emit;
                        let Some(result) = state.pending.remove(&next) else {
                            break;
                        };
                        if !(state.emit)(next, result) {
                            state.stop = true;
                        }
                        state.next_emit = next + 1;
                        if state.stop {
                            break;
                        }
                    }
                }
                let stopped = state.stop;
                drop(guard);
                drop(notify);
                if stopped {
                    break;
                }
            });
        }
    });
}

/// [`run_stream_emit`] collecting the ordered results into a `Vec` — the
/// eager convenience used by [`run_indexed`] and small sweeps (never
/// cancels).
pub(crate) fn run_stream<P, T, I, F>(config: &PoolConfig, stream: I, execute: F) -> Vec<T>
where
    I: Iterator<Item = P> + Send,
    P: Send,
    T: Send,
    F: Fn(usize, P) -> T + Sync,
{
    let mut results = Vec::new();
    run_stream_emit(config, stream, execute, |_, result| {
        results.push(result);
        true
    });
    results
}

/// Runs `count` indexed jobs through `run`, returning one slot per index.
///
/// `run(i)` is called exactly once for every `i in 0..count`; the returned
/// vector holds index `i`'s result at position `i` regardless of which worker
/// executed it or when it finished. Panics inside `run` are captured as
/// [`JobError::Panic`] in that job's slot.
pub fn run_indexed<T, F>(config: &PoolConfig, count: usize, run: F) -> Vec<Result<T, JobError>>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    run_stream(config, 0..count, |index, _| {
        catch_unwind(AssertUnwindSafe(|| run(index)))
            .map_err(|payload| JobError::Panic(panic_message(payload.as_ref())))
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn auto_pool_has_at_least_one_thread() {
        assert!(PoolConfig::auto().threads >= 1);
        assert_eq!(PoolConfig::serial().threads, 1);
        assert_eq!(PoolConfig::threads(0).threads, 1);
        assert_eq!(PoolConfig::threads(4).with_chunk(0).chunk, 1);
    }

    #[test]
    fn parallel_results_are_in_index_order() {
        let config = PoolConfig::threads(8).with_chunk(3);
        let results = run_indexed(&config, 100, |i| i * 2);
        for (i, r) in results.iter().enumerate() {
            assert_eq!(*r.as_ref().unwrap(), i * 2);
        }
    }

    #[test]
    fn panics_are_isolated_to_their_slot() {
        let config = PoolConfig::threads(4);
        let results = run_indexed(&config, 10, |i| {
            assert!(i != 7, "job seven exploded");
            i
        });
        for (i, r) in results.iter().enumerate() {
            if i == 7 {
                let err = r.as_ref().unwrap_err();
                let JobError::Panic(msg) = err;
                assert!(msg.contains("job seven exploded"), "{msg}");
            } else {
                assert_eq!(*r.as_ref().unwrap(), i);
            }
        }
    }

    #[test]
    fn zero_jobs_is_fine() {
        let results = run_indexed(&PoolConfig::threads(4), 0, |i| i);
        assert!(results.is_empty());
    }
}
