//! Distributed sweep fabric: deterministic partitioning and shard merging.
//!
//! A streaming sweep enumerates its points as an `ExactSizeIterator`, so the
//! grid can be sliced by **contiguous index range** into `N` partitions whose
//! union is the serial run by construction: partition `i/N` runs exactly the
//! jobs with global indices in [`partition_range`], each job keeps its global
//! index (and therefore its derived seed, journal key, and telemetry scope),
//! and the rows it emits land in a shard artifact named by [`shard_path`].
//! Concatenating the shards in partition order is then *byte-identical* to
//! the unpartitioned artifact — no sorting, no re-keying, no tolerance.
//!
//! Every shard is accompanied by a [`ShardMeta`] sidecar (`<shard>.meta`)
//! recording the study, mode, serial config fingerprint, partition
//! coordinates, and covered index range. [`plan_merge`] cross-checks the
//! sidecars — same study/config/partition count, no duplicate or out-of-range
//! partitions, ranges tiling exactly `0..total` — so shards from mismatched
//! configurations are rejected with both the expected and found fingerprints
//! instead of silently producing a franken-artifact.
//!
//! For an incomplete shard set, [`partial_journal`] converts the present CSV
//! shards into a resumable checkpoint [`Journal`] under the **serial**
//! fingerprint: a plain `sfbench run` against that journal restores every
//! merged row and computes only the missing ranges.

use crate::journal::Journal;
use crate::table::decode_csv_line;
use std::fmt;
use std::io::{self, Read, Write};
use std::ops::Range;
use std::path::{Path, PathBuf};

/// Suffix of the metadata sidecar written next to every shard artifact.
pub const META_SUFFIX: &str = ".meta";

/// Header line of the metadata sidecar format.
const META_HEADER: &str = "#sf-shard v1";

/// One partition coordinate `i/N` (1-based index `i` out of `N` total).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct Partition {
    /// 1-based partition index, `1..=count`.
    pub index: u32,
    /// Total number of partitions.
    pub count: u32,
}

impl Partition {
    /// Builds a partition coordinate, validating `1 <= index <= count`.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message for out-of-range coordinates.
    pub fn new(index: u32, count: u32) -> Result<Self, String> {
        if count == 0 {
            return Err("partition count must be at least 1".into());
        }
        if index == 0 || index > count {
            return Err(format!("partition index {index} out of range 1..={count}"));
        }
        Ok(Self { index, count })
    }

    /// Parses the CLI form `i/N` (e.g. `2/3`).
    ///
    /// # Errors
    ///
    /// Returns a human-readable message for anything that is not a valid
    /// `i/N` with `1 <= i <= N`.
    pub fn parse(text: &str) -> Result<Self, String> {
        let (index, count) = text
            .split_once('/')
            .ok_or_else(|| format!("expected i/N (e.g. 2/3), got {text:?}"))?;
        let index: u32 = index
            .trim()
            .parse()
            .map_err(|_| format!("bad partition index in {text:?}"))?;
        let count: u32 = count
            .trim()
            .parse()
            .map_err(|_| format!("bad partition count in {text:?}"))?;
        Self::new(index, count)
    }
}

impl fmt::Display for Partition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.index, self.count)
    }
}

/// The contiguous global index range partition `p` covers in a sweep of
/// `len` points: ranges are balanced (sizes differ by at most one, earlier
/// partitions take the remainder) and concatenate to exactly `0..len`.
#[must_use]
pub fn partition_range(len: usize, p: Partition) -> Range<usize> {
    let n = p.count as usize;
    let i = (p.index - 1) as usize;
    let base = len / n;
    let extra = len % n;
    let start = i * base + i.min(extra);
    let size = base + usize::from(i < extra);
    start..start + size
}

/// The shard artifact path for partition `p` of base artifact `base`:
/// `<base>.p<i>of<N>`. The full base file name is kept (never replaced via
/// extension surgery) so sibling artifacts cannot collide.
#[must_use]
pub fn shard_path(base: &Path, p: Partition) -> PathBuf {
    let mut name = base.as_os_str().to_os_string();
    name.push(format!(".p{}of{}", p.index, p.count));
    PathBuf::from(name)
}

/// Parses the `<i>of<N>` coordinate part of a shard suffix, digits-only.
/// `u32`'s own parser accepts a leading `+`, so routing the fields straight
/// through `.parse()` would let a sibling named `rows.csv.p+1of2` — which
/// [`shard_path`] can never produce — masquerade as a shard. Both fields
/// must be non-empty ASCII digits.
fn parse_coords(coords: &str) -> Option<Partition> {
    let (index, count) = coords.split_once("of")?;
    let digits = |s: &str| !s.is_empty() && s.bytes().all(|b| b.is_ascii_digit());
    if !digits(index) || !digits(count) {
        return None;
    }
    Partition::new(index.parse().ok()?, count.parse().ok()?).ok()
}

/// Recovers the partition coordinate from a shard file name produced by
/// [`shard_path`], or `None` for a non-shard path — including look-alikes
/// such as `rows.csv.p+1of2` that `shard_path` cannot emit.
#[must_use]
pub fn parse_shard_suffix(path: &Path) -> Option<Partition> {
    let name = path.file_name()?.to_str()?;
    let (_, suffix) = name.rsplit_once(".p")?;
    parse_coords(suffix)
}

/// Finds every shard of `base` (`<base>.p<i>of<N>` files) in its directory,
/// sorted by partition index. Shards disagreeing on the partition count are
/// rejected here, before any metadata is read.
///
/// # Errors
///
/// I/O errors reading the directory, or a mixed-count shard set.
pub fn discover_shards(base: &Path) -> Result<Vec<(Partition, PathBuf)>, MergeError> {
    let dir = if base.parent().is_none_or(|p| p.as_os_str().is_empty()) {
        Path::new(".")
    } else {
        base.parent().expect("non-empty parent")
    };
    let base_name = base
        .file_name()
        .and_then(|n| n.to_str())
        .ok_or_else(|| MergeError::Shard(format!("bad base path {}", base.display())))?;
    let mut shards = Vec::new();
    let entries = std::fs::read_dir(dir)
        .map_err(|e| MergeError::Io(format!("reading {}: {e}", dir.display())))?;
    for entry in entries {
        let entry = entry.map_err(|e| MergeError::Io(e.to_string()))?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        let Some(suffix) = name.strip_prefix(base_name) else {
            continue;
        };
        // Only the shard artifacts themselves — never the base artifact
        // (empty suffix), its .meta/.journal siblings, or any other
        // non-shard neighbour whose name merely starts with the base name.
        // The coordinate parse is shared with `parse_shard_suffix`, so the
        // same digits-only rule rejects look-alikes like `.p+1of2` here too.
        let Some(coords) = suffix.strip_prefix(".p") else {
            continue;
        };
        let Some(p) = parse_coords(coords) else {
            continue;
        };
        shards.push((p, entry.path()));
    }
    shards.sort();
    if let Some(first) = shards.first().map(|(p, _)| p.count) {
        if let Some((bad, path)) = shards.iter().find(|(p, _)| p.count != first) {
            return Err(MergeError::Shard(format!(
                "mixed partition counts under {}: found both /{} and {} ({})",
                base.display(),
                first,
                bad,
                path.display()
            )));
        }
    }
    Ok(shards)
}

/// The artifact format a shard holds, recorded in its [`ShardMeta`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardFormat {
    /// CSV rows from a `RowSink::csv`.
    Csv,
    /// A JSON array of row objects from a `RowSink::json`.
    Json,
    /// An `sf-telemetry/v1` binary stream.
    Telemetry,
}

impl ShardFormat {
    fn as_str(self) -> &'static str {
        match self {
            Self::Csv => "csv",
            Self::Json => "json",
            Self::Telemetry => "telemetry",
        }
    }

    fn parse(text: &str) -> Option<Self> {
        match text {
            "csv" => Some(Self::Csv),
            "json" => Some(Self::Json),
            "telemetry" => Some(Self::Telemetry),
            _ => None,
        }
    }
}

/// The metadata sidecar written next to every shard artifact: everything a
/// merge needs to validate compatibility without re-deriving the run
/// configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardMeta {
    /// Study name the shard belongs to.
    pub study: String,
    /// Scale mode (`quick` / `full`, plus any scale override summary).
    pub mode: String,
    /// The **serial** (unpartitioned) config fingerprint — identical across
    /// all shards of one run, and equal to the fingerprint a serial resume
    /// journal would carry.
    pub fingerprint: u64,
    /// This shard's partition coordinate.
    pub partition: Partition,
    /// Global point-index range the shard covers.
    pub range: Range<usize>,
    /// Total number of points in the unpartitioned sweep.
    pub total: usize,
    /// Artifact format of the shard.
    pub format: ShardFormat,
}

impl ShardMeta {
    /// The sidecar path for a shard artifact.
    #[must_use]
    pub fn path_for(artifact: &Path) -> PathBuf {
        let mut name = artifact.as_os_str().to_os_string();
        name.push(META_SUFFIX);
        PathBuf::from(name)
    }

    /// A one-line human summary of the configuration the shard came from,
    /// used in mismatch diagnostics.
    #[must_use]
    pub fn config_summary(&self) -> String {
        format!(
            "study={} mode={} fp={:016x} partition={} range={}..{} of {}",
            self.study,
            self.mode,
            self.fingerprint,
            self.partition,
            self.range.start,
            self.range.end,
            self.total
        )
    }

    /// Serialises the sidecar text.
    #[must_use]
    pub fn render(&self) -> String {
        format!(
            "{META_HEADER}\nstudy={}\nmode={}\nfingerprint={:016x}\npartition={}\nrange={}..{}\ntotal={}\nformat={}\n",
            self.study,
            self.mode,
            self.fingerprint,
            self.partition,
            self.range.start,
            self.range.end,
            self.total,
            self.format.as_str()
        )
    }

    /// Writes the sidecar next to `artifact`.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn write_for(&self, artifact: &Path) -> io::Result<()> {
        std::fs::write(Self::path_for(artifact), self.render())
    }

    /// Reads and parses the sidecar of `artifact`.
    ///
    /// # Errors
    ///
    /// [`MergeError::Meta`] for a missing or malformed sidecar.
    pub fn read_for(artifact: &Path) -> Result<Self, MergeError> {
        let path = Self::path_for(artifact);
        let text = std::fs::read_to_string(&path).map_err(|e| {
            MergeError::Meta(format!(
                "shard {} has no readable metadata sidecar {}: {e}",
                artifact.display(),
                path.display()
            ))
        })?;
        Self::parse(&text)
            .map_err(|why| MergeError::Meta(format!("bad sidecar {}: {why}", path.display())))
    }

    /// Parses sidecar text.
    ///
    /// # Errors
    ///
    /// A human-readable description of the first malformed field.
    pub fn parse(text: &str) -> Result<Self, String> {
        let mut lines = text.lines();
        if lines.next() != Some(META_HEADER) {
            return Err(format!("missing {META_HEADER:?} header"));
        }
        let mut study = None;
        let mut mode = None;
        let mut fingerprint = None;
        let mut partition = None;
        let mut range = None;
        let mut total = None;
        let mut format = None;
        for line in lines {
            let Some((key, value)) = line.split_once('=') else {
                continue;
            };
            match key {
                "study" => study = Some(value.to_string()),
                "mode" => mode = Some(value.to_string()),
                "fingerprint" => {
                    fingerprint = Some(
                        u64::from_str_radix(value, 16)
                            .map_err(|_| format!("bad fingerprint {value:?}"))?,
                    );
                }
                "partition" => partition = Some(Partition::parse(value)?),
                "range" => {
                    let (start, end) = value
                        .split_once("..")
                        .ok_or_else(|| format!("bad range {value:?}"))?;
                    let start = start.parse().map_err(|_| format!("bad range {value:?}"))?;
                    let end = end.parse().map_err(|_| format!("bad range {value:?}"))?;
                    range = Some(start..end);
                }
                "total" => {
                    total = Some(value.parse().map_err(|_| format!("bad total {value:?}"))?);
                }
                "format" => {
                    format =
                        Some(ShardFormat::parse(value).ok_or(format!("bad format {value:?}"))?);
                }
                _ => {}
            }
        }
        Ok(Self {
            study: study.ok_or("missing study")?,
            mode: mode.ok_or("missing mode")?,
            fingerprint: fingerprint.ok_or("missing fingerprint")?,
            partition: partition.ok_or("missing partition")?,
            range: range.ok_or("missing range")?,
            total: total.ok_or("missing total")?,
            format: format.ok_or("missing format")?,
        })
    }
}

/// Everything that can go wrong stitching shards back together. Variants
/// carry enough context (expected *and* found values, originating config
/// summaries) that the CLI can print an actionable message and exit 2 instead
/// of panicking.
#[derive(Debug)]
pub enum MergeError {
    /// Filesystem trouble.
    Io(String),
    /// A shard's metadata sidecar is missing or malformed.
    Meta(String),
    /// Two shards (or a shard and the expectation) disagree on the run
    /// configuration.
    FingerprintMismatch {
        /// Fingerprint (and config) the merge expected.
        expected: u64,
        /// Summary of the configuration the expectation came from.
        expected_config: String,
        /// Fingerprint actually found.
        found: u64,
        /// Summary of the configuration the mismatching shard claims.
        found_config: String,
        /// The offending shard.
        path: PathBuf,
    },
    /// Shards disagree on study, mode, partition count, or total points.
    Incompatible(String),
    /// The shard set has gaps (and `--allow-partial` was not requested).
    Missing(Vec<Partition>),
    /// A structural problem with one shard's contents.
    Shard(String),
}

impl fmt::Display for MergeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Io(msg) => write!(f, "merge I/O error: {msg}"),
            Self::Meta(msg) => write!(f, "{msg}"),
            Self::FingerprintMismatch {
                expected,
                expected_config,
                found,
                found_config,
                path,
            } => write!(
                f,
                "config fingerprint mismatch for {}: expected {expected:016x} ({expected_config}), found {found:016x} ({found_config})",
                path.display()
            ),
            Self::Incompatible(msg) => write!(f, "incompatible shards: {msg}"),
            Self::Missing(parts) => {
                let list: Vec<String> = parts.iter().map(ToString::to_string).collect();
                write!(
                    f,
                    "missing partition(s) {} — rerun them, or pass --allow-partial to emit a resumable journal",
                    list.join(", ")
                )
            }
            Self::Shard(msg) => write!(f, "bad shard: {msg}"),
        }
    }
}

/// The validated outcome of cross-checking a shard set's metadata.
#[derive(Debug)]
pub struct MergePlan {
    /// Total points of the unpartitioned sweep.
    pub total: usize,
    /// Partition count all shards agree on.
    pub count: u32,
    /// Partitions absent from the shard set, in index order.
    pub missing: Vec<Partition>,
}

/// Cross-checks shard metadata: every shard must agree on study, mode,
/// serial fingerprint, partition count, and total; partition indices must be
/// unique and their recorded ranges must be exactly what [`partition_range`]
/// assigns them (so present ranges tile `0..total` with no gap or overlap
/// once the missing partitions are accounted for).
///
/// # Errors
///
/// The first incompatibility found, with both sides' configuration summaries.
pub fn plan_merge(shards: &[(PathBuf, ShardMeta)]) -> Result<MergePlan, MergeError> {
    let Some((first_path, first)) = shards.first() else {
        return Err(MergeError::Shard("no shards to merge".into()));
    };
    let mut seen = vec![false; first.partition.count as usize];
    for (path, meta) in shards {
        if meta.fingerprint != first.fingerprint {
            return Err(MergeError::FingerprintMismatch {
                expected: first.fingerprint,
                expected_config: format!(
                    "{} from {}",
                    first.config_summary(),
                    first_path.display()
                ),
                found: meta.fingerprint,
                found_config: meta.config_summary(),
                path: path.clone(),
            });
        }
        if meta.study != first.study
            || meta.mode != first.mode
            || meta.partition.count != first.partition.count
            || meta.total != first.total
            || meta.format != first.format
        {
            return Err(MergeError::Incompatible(format!(
                "{} ({}) vs {} ({})",
                path.display(),
                meta.config_summary(),
                first_path.display(),
                first.config_summary()
            )));
        }
        let slot = (meta.partition.index - 1) as usize;
        if seen[slot] {
            return Err(MergeError::Incompatible(format!(
                "duplicate partition {} ({})",
                meta.partition,
                path.display()
            )));
        }
        seen[slot] = true;
        let expected_range = partition_range(meta.total, meta.partition);
        if meta.range != expected_range {
            return Err(MergeError::Incompatible(format!(
                "{} covers {}..{} but partition {} of {} points must cover {}..{}",
                path.display(),
                meta.range.start,
                meta.range.end,
                meta.partition,
                meta.total,
                expected_range.start,
                expected_range.end
            )));
        }
    }
    let missing = seen
        .iter()
        .enumerate()
        .filter(|(_, present)| !**present)
        .map(|(slot, _)| {
            Partition::new(
                u32::try_from(slot).expect("slot fits u32") + 1,
                first.partition.count,
            )
            .expect("slot in range")
        })
        .collect();
    Ok(MergePlan {
        total: first.total,
        count: first.partition.count,
        missing,
    })
}

/// Writes `content` to `out` atomically (temp sibling + rename), so a merge
/// killed mid-write never leaves a truncated artifact under the final name.
fn write_atomic(out: &Path, content: &[u8]) -> Result<(), MergeError> {
    let mut tmp = out.as_os_str().to_os_string();
    tmp.push(".merge-tmp");
    let tmp = PathBuf::from(tmp);
    let write = || -> io::Result<()> {
        let mut file = std::fs::File::create(&tmp)?;
        file.write_all(content)?;
        file.sync_all()?;
        std::fs::rename(&tmp, out)
    };
    write().map_err(|e| MergeError::Io(format!("writing {}: {e}", out.display())))
}

/// Stitches CSV shards (pre-sorted by partition index, as
/// [`discover_shards`] returns them) into `out`: the shared header once,
/// then every shard's data lines in partition order — byte-identical to the
/// serial artifact because each shard's rows are already in global index
/// order. Returns the merged row count.
///
/// Each shard must hold exactly one row per covered point (`range` length),
/// the contract of row-streaming studies.
///
/// # Errors
///
/// Header disagreements, row-count mismatches, and I/O failures.
pub fn merge_csv(shards: &[(PathBuf, ShardMeta)], out: &Path) -> Result<usize, MergeError> {
    let mut merged = String::new();
    let mut header: Option<String> = None;
    let mut rows = 0usize;
    for (path, meta) in shards {
        let text = std::fs::read_to_string(path)
            .map_err(|e| MergeError::Io(format!("reading {}: {e}", path.display())))?;
        let mut lines = text.split_inclusive('\n');
        let shard_header = lines
            .next()
            .ok_or_else(|| MergeError::Shard(format!("{} is empty", path.display())))?;
        match &header {
            None => {
                header = Some(shard_header.to_string());
                merged.push_str(shard_header);
            }
            Some(expected) if expected != shard_header => {
                return Err(MergeError::Incompatible(format!(
                    "{} header {:?} differs from {:?}",
                    path.display(),
                    shard_header.trim_end(),
                    expected.trim_end()
                )));
            }
            Some(_) => {}
        }
        let mut shard_rows = 0usize;
        for line in lines {
            merged.push_str(line);
            shard_rows += 1;
        }
        let want = meta.range.len();
        if shard_rows != want {
            return Err(MergeError::Shard(format!(
                "{} holds {shard_rows} rows but covers {want} points ({})",
                path.display(),
                meta.config_summary()
            )));
        }
        rows += shard_rows;
    }
    write_atomic(out, merged.as_bytes())?;
    Ok(rows)
}

/// Stitches JSON array shards into `out`, byte-identical to the serial
/// `RowSink::json` artifact: shard bodies (the rows between `[` and `]`) are
/// concatenated with `,` between non-empty bodies. Returns the merged row
/// count.
///
/// # Errors
///
/// Structurally invalid shards, row-count mismatches, and I/O failures.
pub fn merge_json(shards: &[(PathBuf, ShardMeta)], out: &Path) -> Result<usize, MergeError> {
    let mut bodies = Vec::new();
    let mut rows = 0usize;
    for (path, meta) in shards {
        let text = std::fs::read_to_string(path)
            .map_err(|e| MergeError::Io(format!("reading {}: {e}", path.display())))?;
        let body = text
            .strip_prefix('[')
            .and_then(|t| t.strip_suffix("]\n").or_else(|| t.strip_suffix(']')))
            .ok_or_else(|| {
                MergeError::Shard(format!("{} is not a JSON array artifact", path.display()))
            })?;
        // A non-empty sink closes with "\n]"; strip that final newline so
        // bodies join cleanly and the merged close re-adds exactly one.
        let body = body.strip_suffix('\n').unwrap_or(body);
        let shard_rows = body.matches("\n  {").count();
        let want = meta.range.len();
        if shard_rows != want {
            return Err(MergeError::Shard(format!(
                "{} holds {shard_rows} rows but covers {want} points ({})",
                path.display(),
                meta.config_summary()
            )));
        }
        rows += shard_rows;
        if !body.is_empty() {
            bodies.push(body.to_string());
        }
    }
    let mut merged = String::from("[");
    merged.push_str(&bodies.join(","));
    if rows > 0 {
        merged.push('\n');
    }
    merged.push_str("]\n");
    write_atomic(out, merged.as_bytes())?;
    Ok(rows)
}

/// Stitches `sf-telemetry/v1` binary shards into `out`: one magic header,
/// then every shard's block section in partition order — byte-identical to
/// the serial stream because blocks are published in job enumeration order
/// within each shard. The actual byte surgery lives in
/// `sf_obs::telemetry::merge_streams`; this wrapper adds shard I/O and the
/// metadata-validated ordering.
///
/// # Errors
///
/// Invalid streams and I/O failures.
pub fn merge_telemetry(shards: &[(PathBuf, ShardMeta)], out: &Path) -> Result<(), MergeError> {
    let mut parts = Vec::new();
    for (path, _) in shards {
        let mut bytes = Vec::new();
        std::fs::File::open(path)
            .and_then(|mut f| f.read_to_end(&mut bytes))
            .map_err(|e| MergeError::Io(format!("reading {}: {e}", path.display())))?;
        parts.push(bytes);
    }
    let merged = sf_obs::telemetry::merge_streams(&parts)
        .map_err(|why| MergeError::Shard(format!("telemetry merge: {why}")))?;
    write_atomic(out, &merged)
}

/// Converts the present CSV shards of an incomplete set into a resumable
/// checkpoint journal at `journal_path`, stamped with the **serial**
/// fingerprint: every shard row becomes a journal entry keyed by
/// `(sweep 0, global index)`, exactly what the unpartitioned run records. A
/// subsequent plain `sfbench run` restores those rows and computes only the
/// missing ranges. (Sweep sequence 0 is sound because partitioning is gated
/// to single-sweep row-streaming studies.) Returns the journalled row count.
///
/// # Errors
///
/// Undecodable shard rows and I/O failures.
pub fn partial_journal(
    shards: &[(PathBuf, ShardMeta)],
    journal_path: &Path,
) -> Result<usize, MergeError> {
    let Some((_, first)) = shards.first() else {
        return Err(MergeError::Shard("no shards to journal".into()));
    };
    if first.format != ShardFormat::Csv {
        return Err(MergeError::Shard(
            "--allow-partial needs CSV shards (rows must round-trip into journal cells)".into(),
        ));
    }
    let journal = Journal::open(journal_path, first.fingerprint)
        .map_err(|e| MergeError::Io(format!("opening {}: {e}", journal_path.display())))?;
    let mut rows = 0usize;
    for (path, meta) in shards {
        let text = std::fs::read_to_string(path)
            .map_err(|e| MergeError::Io(format!("reading {}: {e}", path.display())))?;
        for (offset, line) in text.lines().skip(1).enumerate() {
            let cells = decode_csv_line(line).map_err(|e| {
                MergeError::Shard(format!("{} row {offset}: {e:?}", path.display()))
            })?;
            let global = meta.range.start + offset;
            journal
                .record(0, global as u64, &cells)
                .map_err(|e| MergeError::Io(format!("journalling: {e}")))?;
            rows += 1;
        }
    }
    Ok(rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::RowSink;
    use crate::table::Value;
    use proptest::prelude::*;

    fn temp_dir(name: &str) -> PathBuf {
        let mut path = std::env::temp_dir();
        path.push(format!("sf-fabric-test-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&path);
        std::fs::create_dir_all(&path).unwrap();
        path
    }

    fn meta(p: Partition, total: usize, format: ShardFormat) -> ShardMeta {
        ShardMeta {
            study: "megasweep".into(),
            mode: "quick".into(),
            fingerprint: 0xdead_beef_cafe_f00d,
            partition: p,
            range: partition_range(total, p),
            total,
            format,
        }
    }

    fn row(i: usize) -> Vec<Value> {
        Vec::from([
            Value::Str(format!("design-{}", i % 3)),
            Value::UInt(i as u64),
            Value::Float(i as f64 * 0.25 + 0.1),
            Value::Bool(i.is_multiple_of(2)),
        ])
    }

    const COLS: [&str; 4] = ["kind", "idx", "metric", "flag"];

    /// Writes `base` serially and as `n` shards (with sidecars); returns the
    /// serial artifact path and the shard list.
    fn build_set(
        dir: &Path,
        n: u32,
        total: usize,
        json: bool,
    ) -> (PathBuf, Vec<(PathBuf, ShardMeta)>) {
        let serial = dir.join(if json { "serial.json" } else { "serial.csv" });
        let open = |path: &Path| {
            if json {
                RowSink::json(path, &COLS).unwrap()
            } else {
                RowSink::csv(path, &COLS).unwrap()
            }
        };
        let mut sink = open(&serial);
        for i in 0..total {
            sink.push(&row(i)).unwrap();
        }
        sink.finish().unwrap();
        let base = dir.join(if json { "out.json" } else { "out.csv" });
        let mut shards = Vec::new();
        for index in 1..=n {
            let p = Partition::new(index, n).unwrap();
            let path = shard_path(&base, p);
            let mut sink = open(&path);
            for i in partition_range(total, p) {
                sink.push(&row(i)).unwrap();
            }
            sink.finish().unwrap();
            let m = meta(
                p,
                total,
                if json {
                    ShardFormat::Json
                } else {
                    ShardFormat::Csv
                },
            );
            m.write_for(&path).unwrap();
            shards.push((path, m));
        }
        (serial, shards)
    }

    #[test]
    fn partition_parse_round_trips_and_rejects_nonsense() {
        let p = Partition::parse("2/3").unwrap();
        assert_eq!((p.index, p.count), (2, 3));
        assert_eq!(p.to_string(), "2/3");
        for bad in ["", "3", "0/3", "4/3", "a/3", "1/0", "1/b", "1/3/5"] {
            assert!(Partition::parse(bad).is_err(), "{bad:?} should be rejected");
        }
    }

    #[test]
    fn shard_paths_round_trip_and_keep_sibling_names_apart() {
        let p = Partition::new(2, 3).unwrap();
        let path = shard_path(Path::new("out/rows.csv"), p);
        assert_eq!(path, Path::new("out/rows.csv.p2of3"));
        assert_eq!(parse_shard_suffix(&path), Some(p));
        assert_eq!(parse_shard_suffix(Path::new("rows.csv")), None);
        // Sibling artifacts `rows.a` / `rows.b` must not collide.
        assert_ne!(
            shard_path(Path::new("rows.a"), p),
            shard_path(Path::new("rows.b"), p)
        );
    }

    #[test]
    fn shard_suffix_rejects_names_shard_path_cannot_produce() {
        // u32's parser accepts a leading '+', so these used to parse as
        // shards of `rows.csv` and could be swept into a merge.
        for bad in [
            "rows.csv.p+1of2",
            "rows.csv.p1of+2",
            "rows.csv.pof2",
            "rows.csv.p1of",
            "rows.csv.p1of2x",
            "rows.csv.p1of2.meta",
            "rows.csv.p1of2.journal",
        ] {
            assert_eq!(parse_shard_suffix(Path::new(bad)), None, "{bad}");
        }
        // A base whose own name ends in `.p<i>of<N>` still round-trips: the
        // *last* `.p` suffix is the shard coordinate.
        let p = Partition::new(2, 3).unwrap();
        let nested = shard_path(Path::new("out.p1of2.csv"), p);
        assert_eq!(nested, Path::new("out.p1of2.csv.p2of3"));
        assert_eq!(parse_shard_suffix(&nested), Some(p));
    }

    #[test]
    fn discovery_skips_lookalike_siblings_and_handles_shardlike_base_names() {
        let dir = temp_dir("discover-lookalike");
        // The base artifact itself is named like a shard (`out.p1of2.csv`,
        // say because a user kept a partial artifact around); its own shards
        // must be discovered by the full base name, not by the embedded
        // coordinate.
        let base = dir.join("out.p1of2.csv");
        std::fs::write(&base, "kind\n").unwrap();
        for index in 1..=2u32 {
            let p = Partition::new(index, 2).unwrap();
            std::fs::write(shard_path(&base, p), "kind\n").unwrap();
        }
        // Hostile/look-alike siblings that must all be ignored.
        for junk in [
            "out.p1of2.csv.p+1of2",
            "out.p1of2.csv.p1of+2",
            "out.p1of2.csv.p1of2.meta",
            "out.p1of2.csv.p1of2.journal",
            "out.p1of2.csv.partial",
        ] {
            std::fs::write(dir.join(junk), "junk").unwrap();
        }
        let found = discover_shards(&base).unwrap();
        let coords: Vec<Partition> = found.iter().map(|(p, _)| *p).collect();
        assert_eq!(
            coords,
            [Partition::new(1, 2).unwrap(), Partition::new(2, 2).unwrap()]
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn meta_round_trips_exactly() {
        let m = meta(Partition::new(2, 3).unwrap(), 24, ShardFormat::Csv);
        assert_eq!(ShardMeta::parse(&m.render()).unwrap(), m);
        assert!(ShardMeta::parse("not a sidecar").is_err());
    }

    #[test]
    fn csv_merge_is_byte_identical_to_the_serial_sink() {
        let dir = temp_dir("csv-merge");
        for n in [1u32, 2, 3, 5, 8] {
            let (serial, shards) = build_set(&dir, n, 17, false);
            let plan = plan_merge(&shards).unwrap();
            assert!(plan.missing.is_empty());
            let out = dir.join(format!("merged-{n}.csv"));
            let rows = merge_csv(&shards, &out).unwrap();
            assert_eq!(rows, 17);
            assert_eq!(
                std::fs::read(&out).unwrap(),
                std::fs::read(&serial).unwrap(),
                "n={n}"
            );
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn csv_merge_accepts_empty_partitions_when_n_exceeds_len() {
        // 3 points over 5 partitions: partitions 4 and 5 cover empty ranges.
        // Their shards must still be valid artifacts (header-only CSV plus a
        // sidecar recording the empty range) and the merge must accept them
        // and reproduce the serial bytes.
        let dir = temp_dir("csv-empty");
        let (serial, shards) = build_set(&dir, 5, 3, false);
        for (path, m) in &shards[3..] {
            assert!(m.range.is_empty(), "{}", m.config_summary());
            let text = std::fs::read_to_string(path).unwrap();
            assert_eq!(text, "kind,idx,metric,flag\n", "{}", path.display());
            assert_eq!(ShardMeta::read_for(path).unwrap(), *m);
        }
        let plan = plan_merge(&shards).unwrap();
        assert!(plan.missing.is_empty());
        let out = dir.join("merged.csv");
        assert_eq!(merge_csv(&shards, &out).unwrap(), 3);
        assert_eq!(
            std::fs::read(&out).unwrap(),
            std::fs::read(&serial).unwrap()
        );
        // Zero-point sweep: every partition is empty, merge is header-only.
        let (serial0, shards0) = build_set(&dir, 2, 0, false);
        let out0 = dir.join("merged-0.csv");
        assert_eq!(merge_csv(&shards0, &out0).unwrap(), 0);
        assert_eq!(
            std::fs::read(&out0).unwrap(),
            std::fs::read(&serial0).unwrap()
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn json_merge_is_byte_identical_even_with_empty_shards() {
        let dir = temp_dir("json-merge");
        // total 2 < n 4 leaves some partitions empty.
        for (n, total) in [(3u32, 17usize), (4, 2), (2, 0)] {
            let (serial, shards) = build_set(&dir, n, total, true);
            let out = dir.join(format!("merged-{n}-{total}.json"));
            let rows = merge_json(&shards, &out).unwrap();
            assert_eq!(rows, total);
            assert_eq!(
                std::fs::read(&out).unwrap(),
                std::fs::read(&serial).unwrap(),
                "n={n} total={total}"
            );
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn discovery_finds_shards_and_ignores_sidecars() {
        let dir = temp_dir("discover");
        let (_, shards) = build_set(&dir, 3, 9, false);
        let base = dir.join("out.csv");
        let found = discover_shards(&base).unwrap();
        assert_eq!(found.len(), 3);
        for ((p, path), (want_path, want_meta)) in found.iter().zip(&shards) {
            assert_eq!(p, &want_meta.partition);
            assert_eq!(path, want_path);
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn fingerprint_mismatch_reports_both_sides() {
        let dir = temp_dir("fp-mismatch");
        let (_, mut shards) = build_set(&dir, 2, 8, false);
        shards[1].1.fingerprint ^= 0xff;
        let err = plan_merge(&shards).unwrap_err();
        let msg = err.to_string();
        assert!(
            matches!(err, MergeError::FingerprintMismatch { .. }),
            "{msg}"
        );
        assert!(msg.contains("deadbeefcafef00d"), "{msg}");
        assert!(
            msg.contains("deadbeefcafeff0d") || msg.contains("found"),
            "{msg}"
        );
        assert!(msg.contains("study=megasweep"), "{msg}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn plan_rejects_duplicates_bad_ranges_and_reports_missing() {
        let dir = temp_dir("plan");
        let (_, shards) = build_set(&dir, 3, 9, false);
        // Duplicate partition index.
        let mut dup = Vec::from([shards[0].clone(), shards[0].clone()]);
        dup[1].1.partition = shards[0].1.partition;
        assert!(matches!(
            plan_merge(&dup).unwrap_err(),
            MergeError::Incompatible(_)
        ));
        // A range that is not what the partitioner assigns.
        let mut skewed = shards.clone();
        skewed[1].1.range = 0..3;
        assert!(matches!(
            plan_merge(&skewed).unwrap_err(),
            MergeError::Incompatible(_)
        ));
        // A missing partition shows up in the plan.
        let partial = Vec::from([shards[0].clone(), shards[2].clone()]);
        let plan = plan_merge(&partial).unwrap();
        assert_eq!(plan.missing, [Partition::new(2, 3).unwrap()]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn partial_journal_restores_under_the_serial_fingerprint() {
        let dir = temp_dir("partial");
        let (_, shards) = build_set(&dir, 3, 9, false);
        let partial = Vec::from([shards[0].clone(), shards[2].clone()]);
        let journal_path = dir.join("out.csv.journal");
        let rows = partial_journal(&partial, &journal_path).unwrap();
        assert_eq!(
            rows,
            9 - partition_range(9, Partition::new(2, 3).unwrap()).len()
        );
        let journal = Journal::open(&journal_path, shards[0].1.fingerprint).unwrap();
        assert_eq!(journal.restored_count(), rows);
        // Spot-check a restored global index from the third partition.
        let idx = partition_range(9, Partition::new(3, 3).unwrap()).start;
        assert_eq!(
            journal.restored(0, idx as u64).unwrap(),
            row(idx).as_slice()
        );
        assert!(journal
            .restored(
                0,
                partition_range(9, Partition::new(2, 3).unwrap()).start as u64
            )
            .is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// The tentpole invariant: for any grid size and any N in 1..=8, the
        /// partition ranges concatenate to exactly 0..len — no gap, no
        /// overlap, balanced within one point.
        #[test]
        fn prop_partition_ranges_tile_exactly(len in 0usize..5000, n in 1u32..9) {
            let mut next = 0usize;
            let mut min_size = usize::MAX;
            let mut max_size = 0usize;
            for index in 1..=n {
                let p = Partition::new(index, n).unwrap();
                let range = partition_range(len, p);
                prop_assert_eq!(range.start, next, "gap/overlap before partition {}", p);
                prop_assert!(range.end >= range.start);
                min_size = min_size.min(range.len());
                max_size = max_size.max(range.len());
                next = range.end;
            }
            prop_assert_eq!(next, len, "partitions must cover the whole grid");
            prop_assert!(max_size - min_size <= 1, "balanced within one point");
        }
    }
}
