//! Process-wide core budget shared by the two parallelism layers.
//!
//! The workspace has two places that want threads: the sweep-level worker
//! pool ([`crate::pool`], one worker per experiment job) and the intra-job
//! simulation shards of `sf-simcore` (several workers inside *one* large
//! cycle-level simulation). Letting both layers independently grab "one
//! thread per CPU" would oversubscribe the machine quadratically — a sweep
//! with 16 workers, each opening a 16-shard simulator, would run 256 runnable
//! threads on 16 cores.
//!
//! This module is the arbiter: a single process-wide budget of cores
//! ([`total_cores`], overridable with the [`CORES_ENV`] environment
//! variable), from which the worker pool *reserves* its workers for the
//! duration of a sweep ([`reserve_workers`]). Whatever remains — at least one
//! core per job — is what an individual job may spend on simulation shards
//! ([`intra_job_share`]). Outside any sweep the full budget is available to a
//! single simulation.
//!
//! Reservations are RAII guards, so a panicking sweep never leaks budget.
//! None of this affects results: shard and worker counts only steer
//! wall-clock time, and both layers are bit-deterministic in their degree of
//! parallelism.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Environment variable overriding the total core budget (`0`/unset = the
/// number of available CPUs).
pub const CORES_ENV: &str = "SF_CORES";

/// A core-budget ledger: total capacity plus the sweep workers currently
/// reserved from it. The process-wide instance behind the free functions of
/// this module is what the pool and the simulation kernel share; separate
/// instances exist only for tests.
#[derive(Debug, Default)]
pub struct CoreBudget {
    reserved: AtomicUsize,
}

impl CoreBudget {
    /// A ledger with no outstanding reservations.
    #[must_use]
    pub const fn new() -> Self {
        Self {
            reserved: AtomicUsize::new(0),
        }
    }

    /// Sweep-level workers currently holding a reservation.
    #[must_use]
    pub fn reserved_workers(&self) -> usize {
        self.reserved.load(Ordering::Relaxed)
    }

    /// Cores an individual job may spend on intra-simulation shards: the
    /// total budget divided by the active sweep workers (each concurrent job
    /// gets an equal slice), and always at least one.
    #[must_use]
    pub fn intra_job_share(&self, total: usize) -> usize {
        (total.max(1) / self.reserved_workers().max(1)).max(1)
    }

    /// Reserves `workers` sweep-level workers; released when the guard drops.
    ///
    /// Reservations stack: nested sweeps add up, which is exactly right — the
    /// inner sweep's jobs share the machine with the outer sweep's other
    /// workers.
    #[must_use]
    pub fn reserve_workers(&self, workers: usize) -> WorkerReservation<'_> {
        self.reserved.fetch_add(workers, Ordering::Relaxed);
        WorkerReservation {
            budget: self,
            workers,
        }
    }
}

/// RAII reservation of sweep-level workers; created by the worker pool for
/// the duration of a parallel sweep and released on drop (including unwinds).
#[derive(Debug)]
pub struct WorkerReservation<'a> {
    budget: &'a CoreBudget,
    workers: usize,
}

impl Drop for WorkerReservation<'_> {
    fn drop(&mut self) {
        self.budget
            .reserved
            .fetch_sub(self.workers, Ordering::Relaxed);
    }
}

/// The process-wide ledger shared by the pool and the simulation kernel.
static GLOBAL: CoreBudget = CoreBudget::new();

/// Reads an environment variable as a positive integer; `0`, garbage, and
/// unset all mean "not configured". The one parser behind every knob of the
/// two parallelism layers (`SF_CORES`, `SF_HARNESS_THREADS`,
/// `SF_SIM_SHARDS`), so they cannot drift in how they treat bad input.
#[must_use]
pub fn env_positive_usize(name: &str) -> Option<usize> {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n > 0)
}

/// The process-wide core budget: [`CORES_ENV`] when set to a positive
/// integer, otherwise the number of available CPUs (at least 1).
#[must_use]
pub fn total_cores() -> usize {
    env_positive_usize(CORES_ENV)
        .unwrap_or_else(|| {
            std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
        })
        .max(1)
}

/// Sweep-level workers currently reserved from the process-wide ledger.
#[must_use]
pub fn reserved_workers() -> usize {
    GLOBAL.reserved_workers()
}

/// Reserves `workers` sweep-level workers from the process-wide ledger.
#[must_use]
pub fn reserve_workers(workers: usize) -> WorkerReservation<'static> {
    GLOBAL.reserve_workers(workers)
}

/// Intra-simulation shard share of the process-wide ledger, against the
/// [`total_cores`] budget.
#[must_use]
pub fn intra_job_share() -> usize {
    GLOBAL.intra_job_share(total_cores())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn budget_is_at_least_one_core() {
        assert!(total_cores() >= 1);
        assert!(intra_job_share() >= 1);
    }

    #[test]
    fn reservations_stack_and_release_on_drop() {
        let budget = CoreBudget::new();
        assert_eq!(budget.reserved_workers(), 0);
        {
            let _outer = budget.reserve_workers(3);
            assert_eq!(budget.reserved_workers(), 3);
            let _inner = budget.reserve_workers(2);
            assert_eq!(budget.reserved_workers(), 5);
        }
        assert_eq!(budget.reserved_workers(), 0);
    }

    #[test]
    fn share_divides_total_by_workers() {
        let budget = CoreBudget::new();
        assert_eq!(budget.intra_job_share(8), 8);
        let _four = budget.reserve_workers(4);
        assert_eq!(budget.intra_job_share(8), 2);
        let _more = budget.reserve_workers(12);
        assert_eq!(budget.intra_job_share(8), 1);
    }

    #[test]
    fn reservation_survives_a_panic() {
        let budget = CoreBudget::new();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _guard = budget.reserve_workers(2);
            panic!("job exploded");
        }));
        assert!(result.is_err());
        assert_eq!(budget.reserved_workers(), 0);
    }
}
