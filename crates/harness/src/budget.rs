//! Process-wide core budget shared by the two parallelism layers.
//!
//! The workspace has two places that want threads: the sweep-level worker
//! pool ([`crate::pool`], one worker per experiment job) and the intra-job
//! simulation shards of `sf-simcore` (several workers inside *one* large
//! cycle-level simulation). Letting both layers independently grab "one
//! thread per CPU" would oversubscribe the machine quadratically — a sweep
//! with 16 workers, each opening a 16-shard simulator, would run 256 runnable
//! threads on 16 cores.
//!
//! This module is the arbiter: a single process-wide budget of cores
//! ([`total_cores`], overridable with the [`CORES_ENV`] environment
//! variable), from which the worker pool *reserves* its workers for the
//! duration of a sweep ([`reserve_workers`]). Whatever remains — at least one
//! core per job — is what an individual job may spend on simulation shards
//! ([`intra_job_share`]). Outside any sweep the full budget is available to a
//! single simulation.
//!
//! Reservations are RAII guards, so a panicking sweep never leaks budget.
//! None of this affects results: shard and worker counts only steer
//! wall-clock time, and both layers are bit-deterministic in their degree of
//! parallelism.

//!
//! For the resident `sfbench serve` daemon, the same budget additionally has
//! to arbitrate between *jobs*: several submitted studies may want cores at
//! once, and simply letting each reserve the full machine would serialise
//! nothing and oversubscribe everything. [`TenantLedger`] is that layer — a
//! blocking multi-tenant ledger with FIFO admission, priority classes
//! ([`JobClass`]), and fair-share grants when oversubscribed. Leases are
//! RAII ([`CoreLease`]) and the outstanding total is observable
//! ([`TenantLedger::in_use`]), so a test can assert the ledger drains to
//! zero after a burst of jobs.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex, MutexGuard, PoisonError};

/// Environment variable overriding the total core budget (`0`/unset = the
/// number of available CPUs).
pub const CORES_ENV: &str = "SF_CORES";

/// A core-budget ledger: total capacity plus the sweep workers currently
/// reserved from it. The process-wide instance behind the free functions of
/// this module is what the pool and the simulation kernel share; separate
/// instances exist only for tests.
#[derive(Debug, Default)]
pub struct CoreBudget {
    reserved: AtomicUsize,
}

impl CoreBudget {
    /// A ledger with no outstanding reservations.
    #[must_use]
    pub const fn new() -> Self {
        Self {
            reserved: AtomicUsize::new(0),
        }
    }

    /// Sweep-level workers currently holding a reservation.
    #[must_use]
    pub fn reserved_workers(&self) -> usize {
        self.reserved.load(Ordering::Relaxed)
    }

    /// Cores an individual job may spend on intra-simulation shards: the
    /// total budget divided by the active sweep workers (each concurrent job
    /// gets an equal slice), and always at least one.
    #[must_use]
    pub fn intra_job_share(&self, total: usize) -> usize {
        (total.max(1) / self.reserved_workers().max(1)).max(1)
    }

    /// Reserves `workers` sweep-level workers; released when the guard drops.
    ///
    /// Reservations stack: nested sweeps add up, which is exactly right — the
    /// inner sweep's jobs share the machine with the outer sweep's other
    /// workers.
    #[must_use]
    pub fn reserve_workers(&self, workers: usize) -> WorkerReservation<'_> {
        self.reserved.fetch_add(workers, Ordering::Relaxed);
        WorkerReservation {
            budget: self,
            workers,
        }
    }
}

/// RAII reservation of sweep-level workers; created by the worker pool for
/// the duration of a parallel sweep and released on drop (including unwinds).
#[derive(Debug)]
pub struct WorkerReservation<'a> {
    budget: &'a CoreBudget,
    workers: usize,
}

impl Drop for WorkerReservation<'_> {
    fn drop(&mut self) {
        self.budget
            .reserved
            .fetch_sub(self.workers, Ordering::Relaxed);
    }
}

/// The process-wide ledger shared by the pool and the simulation kernel.
static GLOBAL: CoreBudget = CoreBudget::new();

/// Scheduling class of a multi-tenant job. Within a class admission is
/// strictly FIFO; across classes every waiting `Interactive` job is admitted
/// before any waiting `Batch` job, regardless of arrival order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum JobClass {
    /// Bulk/background work: admitted only when no interactive job waits.
    Batch,
    /// Latency-sensitive submissions: jump the batch queue.
    Interactive,
}

/// One waiting admission request: arrival sequence plus class.
type Waiter = (u64, JobClass);

/// `a` outranks `b` when `a` must be admitted first: higher class wins,
/// then earlier arrival.
fn outranks(a: Waiter, b: Waiter) -> bool {
    a.1 > b.1 || (a.1 == b.1 && a.0 < b.0)
}

#[derive(Debug, Default)]
struct TenantState {
    /// Cores currently granted to admitted jobs.
    in_use: usize,
    /// Jobs currently holding a lease.
    active: usize,
    /// Arrival counter for FIFO ordering.
    next_seq: u64,
    /// Requests blocked in [`TenantLedger::admit`].
    waiting: Vec<Waiter>,
}

/// A blocking multi-tenant core ledger for the `sfbench serve` daemon: each
/// submitted job [`admit`](Self::admit)s itself with the cores it wants and
/// a [`JobClass`], blocks until it is that class queue's turn and at least
/// one core is free, and receives a [`CoreLease`] for its granted share.
///
/// The grant is `min(want, free cores, fair share)` where the fair share is
/// `total / (active jobs + 1)` (at least one) — so a lone job gets the whole
/// machine, while under contention each job is cut back to roughly an equal
/// slice instead of the first arrival starving the rest. Dropping the lease
/// returns the cores and wakes the queue; a panicking job therefore never
/// leaks budget.
#[derive(Debug)]
pub struct TenantLedger {
    total: usize,
    state: Mutex<TenantState>,
    turnstile: Condvar,
}

impl TenantLedger {
    /// A ledger arbitrating `total` cores (clamped to at least 1).
    #[must_use]
    pub fn new(total: usize) -> Self {
        Self {
            total: total.max(1),
            state: Mutex::new(TenantState::default()),
            turnstile: Condvar::new(),
        }
    }

    /// A ledger over the process-wide [`total_cores`] budget.
    #[must_use]
    pub fn with_total_cores() -> Self {
        Self::new(total_cores())
    }

    fn lock(&self) -> MutexGuard<'_, TenantState> {
        // A panic while holding the lock (impossible in this module's own
        // critical sections, but cheap to be safe against) must not wedge
        // every later job.
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Total cores this ledger arbitrates.
    #[must_use]
    pub fn total(&self) -> usize {
        self.total
    }

    /// Cores currently granted to admitted jobs.
    #[must_use]
    pub fn in_use(&self) -> usize {
        self.lock().in_use
    }

    /// Jobs currently holding a lease.
    #[must_use]
    pub fn active_jobs(&self) -> usize {
        self.lock().active
    }

    /// Jobs currently blocked waiting for admission.
    #[must_use]
    pub fn waiting_jobs(&self) -> usize {
        self.lock().waiting.len()
    }

    /// Blocks until this request is at the head of the queue (FIFO within
    /// its class, interactive before batch) and at least one core is free,
    /// then admits it with a fair-share grant. `want` is clamped to
    /// `1..=total`.
    #[must_use]
    pub fn admit(&self, want: usize, class: JobClass) -> CoreLease<'_> {
        let want = want.clamp(1, self.total);
        let mut state = self.lock();
        let seq = state.next_seq;
        state.next_seq += 1;
        state.waiting.push((seq, class));
        let me = (seq, class);
        loop {
            let head = !state.waiting.iter().any(|&w| outranks(w, me));
            let free = self.total - state.in_use;
            if head && free >= 1 {
                let fair = (self.total / (state.active + 1)).max(1);
                let granted = want.min(free).min(fair);
                state.waiting.retain(|&(s, _)| s != seq);
                state.in_use += granted;
                state.active += 1;
                // More than one waiter can be admissible at once (the next
                // in line may fit in the remaining free cores): wake the
                // queue so it re-checks.
                self.turnstile.notify_all();
                return CoreLease {
                    ledger: self,
                    granted,
                };
            }
            state = self
                .turnstile
                .wait(state)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }
}

/// RAII grant from a [`TenantLedger`]: holds `granted` cores until dropped
/// (including on unwind), then returns them and wakes the admission queue.
#[derive(Debug)]
pub struct CoreLease<'a> {
    ledger: &'a TenantLedger,
    granted: usize,
}

impl CoreLease<'_> {
    /// Cores this lease actually received (≤ the requested amount).
    #[must_use]
    pub fn granted(&self) -> usize {
        self.granted
    }
}

impl Drop for CoreLease<'_> {
    fn drop(&mut self) {
        let mut state = self.ledger.lock();
        state.in_use = state.in_use.saturating_sub(self.granted);
        state.active = state.active.saturating_sub(1);
        self.ledger.turnstile.notify_all();
    }
}

/// Reads an environment variable as a positive integer; `0`, garbage, and
/// unset all mean "not configured". The one parser behind every knob of the
/// two parallelism layers (`SF_CORES`, `SF_HARNESS_THREADS`,
/// `SF_SIM_SHARDS`), so they cannot drift in how they treat bad input.
#[must_use]
pub fn env_positive_usize(name: &str) -> Option<usize> {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n > 0)
}

/// The process-wide core budget: [`CORES_ENV`] when set to a positive
/// integer, otherwise the number of available CPUs (at least 1).
#[must_use]
pub fn total_cores() -> usize {
    env_positive_usize(CORES_ENV)
        .unwrap_or_else(|| {
            std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
        })
        .max(1)
}

/// Sweep-level workers currently reserved from the process-wide ledger.
#[must_use]
pub fn reserved_workers() -> usize {
    GLOBAL.reserved_workers()
}

/// Reserves `workers` sweep-level workers from the process-wide ledger.
#[must_use]
pub fn reserve_workers(workers: usize) -> WorkerReservation<'static> {
    GLOBAL.reserve_workers(workers)
}

/// Intra-simulation shard share of the process-wide ledger, against the
/// [`total_cores`] budget.
#[must_use]
pub fn intra_job_share() -> usize {
    GLOBAL.intra_job_share(total_cores())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn budget_is_at_least_one_core() {
        assert!(total_cores() >= 1);
        assert!(intra_job_share() >= 1);
    }

    #[test]
    fn reservations_stack_and_release_on_drop() {
        let budget = CoreBudget::new();
        assert_eq!(budget.reserved_workers(), 0);
        {
            let _outer = budget.reserve_workers(3);
            assert_eq!(budget.reserved_workers(), 3);
            let _inner = budget.reserve_workers(2);
            assert_eq!(budget.reserved_workers(), 5);
        }
        assert_eq!(budget.reserved_workers(), 0);
    }

    #[test]
    fn share_divides_total_by_workers() {
        let budget = CoreBudget::new();
        assert_eq!(budget.intra_job_share(8), 8);
        let _four = budget.reserve_workers(4);
        assert_eq!(budget.intra_job_share(8), 2);
        let _more = budget.reserve_workers(12);
        assert_eq!(budget.intra_job_share(8), 1);
    }

    #[test]
    fn reservation_survives_a_panic() {
        let budget = CoreBudget::new();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _guard = budget.reserve_workers(2);
            panic!("job exploded");
        }));
        assert!(result.is_err());
        assert_eq!(budget.reserved_workers(), 0);
    }

    /// Spins until `ledger` has `n` blocked admissions (the only
    /// cross-thread ordering the tenant tests need).
    fn wait_for_waiters(ledger: &TenantLedger, n: usize) {
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
        while ledger.waiting_jobs() < n {
            assert!(std::time::Instant::now() < deadline, "waiters never queued");
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
    }

    #[test]
    fn tenant_grants_are_fair_shared_under_contention() {
        let ledger = TenantLedger::new(8);
        // A lone job gets what it asks for (fair share = whole machine).
        let first = ledger.admit(2, JobClass::Batch);
        assert_eq!(first.granted(), 2);
        // With one job active the next is cut to total/2 = 4...
        let second = ledger.admit(8, JobClass::Batch);
        assert_eq!(second.granted(), 4);
        // ...and the third to min(free = 2, total/3 = 2).
        let third = ledger.admit(8, JobClass::Batch);
        assert_eq!(third.granted(), 2);
        assert_eq!(ledger.in_use(), 8);
        assert_eq!(ledger.active_jobs(), 3);
        drop((first, second, third));
        assert_eq!(ledger.in_use(), 0);
        assert_eq!(ledger.active_jobs(), 0);
    }

    #[test]
    fn tenant_admission_is_fifo_within_a_class() {
        let ledger = std::sync::Arc::new(TenantLedger::new(1));
        let order = std::sync::Arc::new(Mutex::new(Vec::new()));
        let gate = ledger.admit(1, JobClass::Batch);
        let spawn = |tag: &'static str| {
            let (ledger, order) = (
                std::sync::Arc::clone(&ledger),
                std::sync::Arc::clone(&order),
            );
            std::thread::spawn(move || {
                let lease = ledger.admit(1, JobClass::Batch);
                order.lock().unwrap().push(tag);
                drop(lease);
            })
        };
        // Queue b1 strictly before b2 (waiting_jobs observes the queue).
        let b1 = spawn("b1");
        wait_for_waiters(&ledger, 1);
        let b2 = spawn("b2");
        wait_for_waiters(&ledger, 2);
        drop(gate);
        b1.join().unwrap();
        b2.join().unwrap();
        // Only one core exists, so admissions serialise: arrival order wins.
        assert_eq!(*order.lock().unwrap(), ["b1", "b2"]);
        assert_eq!(ledger.in_use(), 0);
    }

    #[test]
    fn tenant_interactive_jobs_jump_the_batch_queue() {
        let ledger = std::sync::Arc::new(TenantLedger::new(1));
        let order = std::sync::Arc::new(Mutex::new(Vec::new()));
        let gate = ledger.admit(1, JobClass::Batch);
        let spawn = |tag: &'static str, class: JobClass| {
            let (ledger, order) = (
                std::sync::Arc::clone(&ledger),
                std::sync::Arc::clone(&order),
            );
            std::thread::spawn(move || {
                let lease = ledger.admit(1, class);
                order.lock().unwrap().push(tag);
                drop(lease);
            })
        };
        let batch = spawn("batch", JobClass::Batch);
        wait_for_waiters(&ledger, 1);
        let interactive = spawn("interactive", JobClass::Interactive);
        wait_for_waiters(&ledger, 2);
        drop(gate);
        batch.join().unwrap();
        interactive.join().unwrap();
        // The batch job arrived first but the interactive one is admitted
        // first anyway.
        assert_eq!(*order.lock().unwrap(), ["interactive", "batch"]);
        assert_eq!(ledger.in_use(), 0);
    }

    #[test]
    fn tenant_ledger_drains_to_zero_even_when_a_job_panics() {
        let ledger = TenantLedger::new(4);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _lease = ledger.admit(4, JobClass::Interactive);
            panic!("job exploded");
        }));
        assert!(result.is_err());
        assert_eq!(ledger.in_use(), 0);
        assert_eq!(ledger.active_jobs(), 0);
        // The ledger still works afterwards, and zero-want is clamped up.
        let lease = ledger.admit(0, JobClass::Batch);
        assert_eq!(lease.granted(), 1);
    }
}
