//! Sweep enumeration: experiment points as independent, indexed jobs.
//!
//! A [`Sweep`] owns an eagerly enumerated list of points (e.g. topology kind
//! × node count × seed × injection rate × traffic pattern). Running it maps a
//! closure over every point; each invocation receives a [`JobCtx`] carrying
//! the job's index and a seed derived *from that index* via [`derive_seed`],
//! never from execution order or a shared RNG. That derivation is the
//! determinism contract: the result set of a sweep is a pure function of
//! (points, base seed, closure), independent of the worker count.

use crate::pool::{run_indexed, JobError, PoolConfig};

/// Derives the RNG seed for job `index` of a sweep with base seed `base`.
///
/// A splitmix64 finalizer mixes the two values so neighbouring indices get
/// statistically unrelated seeds while the mapping stays a pure function.
#[must_use]
pub fn derive_seed(base: u64, index: u64) -> u64 {
    let mut z = base
        .wrapping_add(0x9e37_79b9_7f4a_7c15)
        .wrapping_add(index.wrapping_mul(0xbf58_476d_1ce4_e5b9));
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Per-job context handed to the sweep closure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JobCtx {
    /// Position of this job in the sweep's enumeration order.
    pub index: usize,
    /// Seed derived from the sweep's base seed and this job's index.
    pub seed: u64,
}

/// The outcome of one job: its point index plus result, error, or panic.
#[derive(Debug, Clone, PartialEq)]
pub struct JobOutcome<R, E> {
    /// Position of the job in the sweep.
    pub index: usize,
    /// `Ok(row)` on success, `Err` when the closure returned an error or
    /// panicked.
    pub result: Result<R, SweepError<E>>,
}

/// Why a job failed.
#[derive(Debug, Clone, PartialEq)]
pub enum SweepError<E> {
    /// The job closure returned an error.
    Job(E),
    /// The job panicked; carries the panic message.
    Panic(String),
}

impl<E: std::fmt::Display> std::fmt::Display for SweepError<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Job(e) => write!(f, "{e}"),
            Self::Panic(msg) => write!(f, "job panicked: {msg}"),
        }
    }
}

impl<E: std::fmt::Display + std::fmt::Debug> std::error::Error for SweepError<E> {}

/// A fully enumerated parameter sweep.
#[derive(Debug, Clone)]
pub struct Sweep<P> {
    points: Vec<P>,
    base_seed: u64,
}

impl<P: Sync> Sweep<P> {
    /// A sweep over the given points with base seed 0.
    #[must_use]
    pub fn new(points: Vec<P>) -> Self {
        Self {
            points,
            base_seed: 0,
        }
    }

    /// Sets the base seed mixed into every job's derived seed.
    #[must_use]
    pub fn with_base_seed(mut self, base_seed: u64) -> Self {
        self.base_seed = base_seed;
        self
    }

    /// Number of points in the sweep.
    #[must_use]
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the sweep has no points.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The enumerated points, in order.
    #[must_use]
    pub fn points(&self) -> &[P] {
        &self.points
    }

    /// Runs `job` over every point on the given pool.
    ///
    /// The report's outcomes are ordered by point index; with the same points
    /// and base seed, any worker count produces the identical report.
    pub fn run<R, E, F>(&self, config: &PoolConfig, job: F) -> SweepReport<R, E>
    where
        R: Send,
        E: Send,
        F: Fn(JobCtx, &P) -> Result<R, E> + Sync,
    {
        let outcomes = run_indexed(config, self.points.len(), |index| {
            let ctx = JobCtx {
                index,
                seed: derive_seed(self.base_seed, index as u64),
            };
            job(ctx, &self.points[index])
        });
        SweepReport {
            outcomes: outcomes
                .into_iter()
                .enumerate()
                .map(|(index, slot)| JobOutcome {
                    index,
                    result: match slot {
                        Ok(Ok(row)) => Ok(row),
                        Ok(Err(e)) => Err(SweepError::Job(e)),
                        Err(JobError::Panic(msg)) => Err(SweepError::Panic(msg)),
                    },
                })
                .collect(),
        }
    }
}

/// All job outcomes of one sweep run, in enumeration order.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepReport<R, E> {
    /// One outcome per sweep point, ordered by index.
    pub outcomes: Vec<JobOutcome<R, E>>,
}

impl<R, E> SweepReport<R, E> {
    /// Number of jobs that produced a row.
    #[must_use]
    pub fn succeeded(&self) -> usize {
        self.outcomes.iter().filter(|o| o.result.is_ok()).count()
    }

    /// Number of jobs that failed or panicked.
    #[must_use]
    pub fn failed(&self) -> usize {
        self.outcomes.len() - self.succeeded()
    }

    /// All rows in sweep order, or the first failure (by index).
    ///
    /// # Errors
    ///
    /// Returns the lowest-indexed job error or panic.
    pub fn into_results(self) -> Result<Vec<R>, SweepError<E>> {
        self.outcomes.into_iter().map(|o| o.result).collect()
    }

    /// The successful rows in sweep order, discarding failures.
    #[must_use]
    pub fn successes(self) -> Vec<R> {
        self.outcomes
            .into_iter()
            .filter_map(|o| o.result.ok())
            .collect()
    }
}

/// Builds the cross product of parameter axes in row-major order — the same
/// order as the equivalent nested `for` loops, so a refactor from loops to a
/// sweep preserves row order exactly.
#[must_use]
pub fn cross2<A: Clone, B: Clone>(outer: &[A], inner: &[B]) -> Vec<(A, B)> {
    let mut points = Vec::with_capacity(outer.len() * inner.len());
    for a in outer {
        for b in inner {
            points.push((a.clone(), b.clone()));
        }
    }
    points
}

/// Three-axis cross product, row-major (outermost axis first).
#[must_use]
pub fn cross3<A: Clone, B: Clone, C: Clone>(a: &[A], b: &[B], c: &[C]) -> Vec<(A, B, C)> {
    let mut points = Vec::with_capacity(a.len() * b.len() * c.len());
    for x in a {
        for y in b {
            for z in c {
                points.push((x.clone(), y.clone(), z.clone()));
            }
        }
    }
    points
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeds_are_pure_and_distinct() {
        assert_eq!(derive_seed(42, 7), derive_seed(42, 7));
        assert_ne!(derive_seed(42, 7), derive_seed(42, 8));
        assert_ne!(derive_seed(42, 7), derive_seed(43, 7));
    }

    #[test]
    fn cross_products_are_row_major() {
        let points = cross2(&[1, 2], &['a', 'b']);
        assert_eq!(points, vec![(1, 'a'), (1, 'b'), (2, 'a'), (2, 'b')]);
        let triple = cross3(&[1], &[2, 3], &[4, 5]);
        assert_eq!(triple, vec![(1, 2, 4), (1, 2, 5), (1, 3, 4), (1, 3, 5)]);
    }

    #[test]
    fn report_separates_successes_from_failures() {
        let sweep = Sweep::new(vec![1u32, 2, 3, 4]).with_base_seed(9);
        let report = sweep.run(&PoolConfig::serial(), |_, &n| {
            if n % 2 == 0 {
                Ok(n * 10)
            } else {
                Err(format!("odd {n}"))
            }
        });
        assert_eq!(report.succeeded(), 2);
        assert_eq!(report.failed(), 2);
        assert_eq!(report.successes(), vec![20, 40]);
    }

    #[test]
    fn into_results_surfaces_first_error() {
        let sweep = Sweep::new(vec![1u32, 2, 3]);
        let report = sweep.run(&PoolConfig::serial(), |_, &n| {
            if n == 1 {
                Ok(n)
            } else {
                Err(format!("boom {n}"))
            }
        });
        match report.into_results() {
            Err(SweepError::Job(msg)) => assert_eq!(msg, "boom 2"),
            other => panic!("unexpected: {other:?}"),
        }
    }
}
