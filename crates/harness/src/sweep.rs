//! Sweep enumeration: experiment points as independent, indexed jobs.
//!
//! A [`Sweep`] owns an eagerly enumerated list of points (e.g. topology kind
//! × node count × seed × injection rate × traffic pattern). Running it maps a
//! closure over every point; each invocation receives a [`JobCtx`] carrying
//! the job's index and a seed derived *from that index* via [`derive_seed`],
//! never from execution order or a shared RNG. That derivation is the
//! determinism contract: the result set of a sweep is a pure function of
//! (points, base seed, closure), independent of the worker count.
//!
//! [`LazySweep`] is the streaming variant: points come from an iterator and
//! are materialised one chunk at a time, so a design-space exploration over
//! millions of points never holds the whole grid in memory. Indices are
//! assigned in iterator order behind a lock, so the same determinism contract
//! holds — a lazy run is bit-identical to the eager run over the collected
//! points, for any worker count.

use crate::pool::{panic_message, run_stream_emit, PoolConfig};
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Derives the RNG seed for job `index` of a sweep with base seed `base`.
///
/// A splitmix64 finalizer mixes the two values so neighbouring indices get
/// statistically unrelated seeds while the mapping stays a pure function.
#[must_use]
pub fn derive_seed(base: u64, index: u64) -> u64 {
    let mut z = base
        .wrapping_add(0x9e37_79b9_7f4a_7c15)
        .wrapping_add(index.wrapping_mul(0xbf58_476d_1ce4_e5b9));
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Per-job context handed to the sweep closure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JobCtx {
    /// Position of this job in the sweep's enumeration order.
    pub index: usize,
    /// Seed derived from the sweep's base seed and this job's index.
    pub seed: u64,
}

/// The outcome of one job: its point index plus result, error, or panic.
#[derive(Debug, Clone, PartialEq)]
pub struct JobOutcome<R, E> {
    /// Position of the job in the sweep.
    pub index: usize,
    /// `Ok(row)` on success, `Err` when the closure returned an error or
    /// panicked.
    pub result: Result<R, SweepError<E>>,
}

/// Why a job failed.
#[derive(Debug, Clone, PartialEq)]
pub enum SweepError<E> {
    /// The job closure returned an error.
    Job(E),
    /// The job panicked; carries the panic message.
    Panic(String),
}

impl<E: std::fmt::Display> std::fmt::Display for SweepError<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Job(e) => write!(f, "{e}"),
            Self::Panic(msg) => write!(f, "job panicked: {msg}"),
        }
    }
}

impl<E: std::fmt::Display + std::fmt::Debug> std::error::Error for SweepError<E> {}

/// A fully enumerated parameter sweep.
#[derive(Debug, Clone)]
pub struct Sweep<P> {
    points: Vec<P>,
    base_seed: u64,
}

impl<P: Sync> Sweep<P> {
    /// A sweep over the given points with base seed 0.
    #[must_use]
    pub fn new(points: Vec<P>) -> Self {
        Self {
            points,
            base_seed: 0,
        }
    }

    /// Sets the base seed mixed into every job's derived seed.
    #[must_use]
    pub fn with_base_seed(mut self, base_seed: u64) -> Self {
        self.base_seed = base_seed;
        self
    }

    /// Number of points in the sweep.
    #[must_use]
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the sweep has no points.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The enumerated points, in order.
    #[must_use]
    pub fn points(&self) -> &[P] {
        &self.points
    }

    /// Runs `job` over every point on the given pool.
    ///
    /// The report's outcomes are ordered by point index; with the same points
    /// and base seed, any worker count produces the identical report.
    ///
    /// Execution delegates to the streaming engine ([`LazySweep`]) over the
    /// materialised points, so there is exactly one sweep scheduler to keep
    /// correct — eager and lazy sweeps are the same machine.
    pub fn run<R, E, F>(&self, config: &PoolConfig, job: F) -> SweepReport<R, E>
    where
        R: Send,
        E: Send,
        F: Fn(JobCtx, &P) -> Result<R, E> + Sync,
    {
        LazySweep::new(self.points.iter())
            .with_base_seed(self.base_seed)
            .run(config, |ctx, point| job(ctx, point))
    }
}

/// All job outcomes of one sweep run, in enumeration order.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepReport<R, E> {
    /// One outcome per sweep point, ordered by index.
    pub outcomes: Vec<JobOutcome<R, E>>,
}

impl<R, E> SweepReport<R, E> {
    /// Number of jobs that produced a row.
    #[must_use]
    pub fn succeeded(&self) -> usize {
        self.outcomes.iter().filter(|o| o.result.is_ok()).count()
    }

    /// Number of jobs that failed or panicked.
    #[must_use]
    pub fn failed(&self) -> usize {
        self.outcomes.len() - self.succeeded()
    }

    /// All rows in sweep order, or the first failure (by index).
    ///
    /// # Errors
    ///
    /// Returns the lowest-indexed job error or panic.
    pub fn into_results(self) -> Result<Vec<R>, SweepError<E>> {
        self.outcomes.into_iter().map(|o| o.result).collect()
    }

    /// The successful rows in sweep order, discarding failures.
    #[must_use]
    pub fn successes(self) -> Vec<R> {
        self.outcomes
            .into_iter()
            .filter_map(|o| o.result.ok())
            .collect()
    }
}

/// A streaming parameter sweep: points come from an iterator and are pulled
/// one chunk at a time instead of being materialised up front.
///
/// This is the first step towards sharded mega-sweeps — a cross product over
/// millions of points costs `O(chunk)` memory per worker, not `O(points)`.
/// Job `i` always receives the `i`-th iterator item and the seed
/// [`derive_seed`]`(base, i)`, so the report is bit-identical to running the
/// eager [`Sweep`] over `points.collect()` with the same base seed, for any
/// worker count.
///
/// # Examples
///
/// ```
/// use sf_harness::pool::PoolConfig;
/// use sf_harness::sweep::{cross2_lazy, LazySweep};
///
/// let points = cross2_lazy(vec![1u64, 2, 3], vec![10u64, 20]);
/// let report = LazySweep::new(points).run(&PoolConfig::threads(4), |_, &(a, b)| {
///     Ok::<u64, std::convert::Infallible>(a * b)
/// });
/// let rows = report.into_results().unwrap();
/// assert_eq!(rows, vec![10, 20, 20, 40, 30, 60]);
/// ```
#[derive(Debug)]
pub struct LazySweep<I> {
    points: I,
    base_seed: u64,
    index_offset: usize,
}

impl<P, I> LazySweep<I>
where
    I: Iterator<Item = P>,
    P: Send,
{
    /// A lazy sweep over the given point stream with base seed 0.
    #[must_use]
    pub fn new(points: I) -> Self {
        Self {
            points,
            base_seed: 0,
            index_offset: 0,
        }
    }

    /// Sets the base seed mixed into every job's derived seed.
    #[must_use]
    pub fn with_base_seed(mut self, base_seed: u64) -> Self {
        self.base_seed = base_seed;
        self
    }

    /// Offsets every job's index (and therefore its derived seed) by
    /// `offset` — the partitioned-sweep contract: a sweep over points
    /// `[k, k+m)` of a larger grid with `with_index_offset(k)` hands each
    /// point exactly the `JobCtx` the full sweep would have, so the union of
    /// partition results is bit-identical to the unpartitioned run.
    #[must_use]
    pub fn with_index_offset(mut self, offset: usize) -> Self {
        self.index_offset = offset;
        self
    }

    /// Runs `job` over every streamed point on the given pool, delivering
    /// each [`JobOutcome`] to `on_result` **in index order** — the primary
    /// engine of the bounded-memory run pipeline.
    ///
    /// Workers pull `(index, point)` chunks from the shared iterator under a
    /// lock; which worker pulls a chunk never changes which index a point
    /// gets, so the outcome stream is independent of the worker count. A
    /// completed outcome is buffered only while a smaller index is still in
    /// flight (with backpressure on the buffer), so a million-point sweep
    /// whose sink does not store rows peaks at `O(workers × chunk)` memory —
    /// never `O(points)`. Returns the number of outcomes delivered.
    ///
    /// `on_result` returning `false` **cancels** the sweep: no further
    /// points are pulled from the iterator, in-flight chunks finish but
    /// their outcomes are discarded — so a mega-sweep whose sink fails
    /// stops within `O(workers × chunk)` jobs instead of running the rest
    /// of the grid.
    ///
    /// Scheduling (and the worker reservation against the shared core
    /// budget) is the pool's `run_stream_emit` engine — the same machine
    /// `run_indexed` and the eager [`Sweep`] use.
    pub fn run_streaming<R, E, F, S>(self, config: &PoolConfig, job: F, mut on_result: S) -> usize
    where
        R: Send,
        E: Send,
        I: Send,
        F: Fn(JobCtx, &P) -> Result<R, E> + Sync,
        S: FnMut(JobOutcome<R, E>) -> bool + Send,
    {
        let base_seed = self.base_seed;
        let index_offset = self.index_offset;
        let mut delivered = 0usize;
        run_stream_emit(
            config,
            self.points,
            |index, point| {
                // The engine numbers pulled points from 0; the offset lifts
                // them back to their global grid indices so a partitioned
                // sweep derives the exact seeds the full sweep would.
                let index = index + index_offset;
                let ctx = JobCtx {
                    index,
                    seed: derive_seed(base_seed, index as u64),
                };
                let result = match catch_unwind(AssertUnwindSafe(|| job(ctx, &point))) {
                    Ok(Ok(row)) => Ok(row),
                    Ok(Err(e)) => Err(SweepError::Job(e)),
                    Err(payload) => Err(SweepError::Panic(panic_message(payload.as_ref()))),
                };
                JobOutcome { index, result }
            },
            |_, outcome| {
                delivered += 1;
                on_result(outcome)
            },
        );
        delivered
    }

    /// Runs `job` over every streamed point and collects the full report —
    /// [`run_streaming`](Self::run_streaming) with a collecting,
    /// never-cancelling sink, for sweeps small enough to hold their
    /// outcomes.
    pub fn run<R, E, F>(self, config: &PoolConfig, job: F) -> SweepReport<R, E>
    where
        R: Send,
        E: Send,
        I: Send,
        F: Fn(JobCtx, &P) -> Result<R, E> + Sync,
    {
        let mut outcomes = Vec::new();
        self.run_streaming(config, job, |outcome| {
            outcomes.push(outcome);
            true
        });
        SweepReport { outcomes }
    }
}

/// Restores the exact length that `flat_map` destroys, so the pool's worker
/// clamp (and its core-budget reservation) still applies to lazy cross
/// products: a 2-point product claims 2 workers, not the whole pool.
#[derive(Debug)]
struct KnownLen<I> {
    inner: I,
    remaining: usize,
}

impl<I: Iterator> Iterator for KnownLen<I> {
    type Item = I::Item;

    fn next(&mut self) -> Option<Self::Item> {
        let item = self.inner.next();
        if item.is_some() {
            self.remaining = self.remaining.saturating_sub(1);
        }
        item
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.remaining, Some(self.remaining))
    }
}

impl<I: Iterator> ExactSizeIterator for KnownLen<I> {}

/// Lazily enumerates the cross product of two axes in row-major order —
/// identical order to [`cross2`], without materialising the grid. The
/// iterator reports its exact length.
pub fn cross2_lazy<A, B>(
    outer: Vec<A>,
    inner: Vec<B>,
) -> impl ExactSizeIterator<Item = (A, B)> + Send
where
    A: Clone + Send,
    B: Clone + Send,
{
    let remaining = outer.len() * inner.len();
    KnownLen {
        inner: outer
            .into_iter()
            .flat_map(move |a| inner.clone().into_iter().map(move |b| (a.clone(), b))),
        remaining,
    }
}

/// Lazily enumerates the cross product of three axes in row-major order —
/// identical order to [`cross3`], without materialising the grid. The
/// iterator reports its exact length.
pub fn cross3_lazy<A, B, C>(
    a: Vec<A>,
    b: Vec<B>,
    c: Vec<C>,
) -> impl ExactSizeIterator<Item = (A, B, C)> + Send
where
    A: Clone + Send,
    B: Clone + Send,
    C: Clone + Send,
{
    let remaining = a.len() * b.len() * c.len();
    KnownLen {
        inner: a.into_iter().flat_map(move |x| {
            let c = c.clone();
            b.clone().into_iter().flat_map(move |y| {
                let x = x.clone();
                c.clone()
                    .into_iter()
                    .map(move |z| (x.clone(), y.clone(), z))
            })
        }),
        remaining,
    }
}

/// Builds the cross product of parameter axes in row-major order — the same
/// order as the equivalent nested `for` loops, so a refactor from loops to a
/// sweep preserves row order exactly.
#[must_use]
pub fn cross2<A: Clone, B: Clone>(outer: &[A], inner: &[B]) -> Vec<(A, B)> {
    let mut points = Vec::with_capacity(outer.len() * inner.len());
    for a in outer {
        for b in inner {
            points.push((a.clone(), b.clone()));
        }
    }
    points
}

/// Three-axis cross product, row-major (outermost axis first).
#[must_use]
pub fn cross3<A: Clone, B: Clone, C: Clone>(a: &[A], b: &[B], c: &[C]) -> Vec<(A, B, C)> {
    let mut points = Vec::with_capacity(a.len() * b.len() * c.len());
    for x in a {
        for y in b {
            for z in c {
                points.push((x.clone(), y.clone(), z.clone()));
            }
        }
    }
    points
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeds_are_pure_and_distinct() {
        assert_eq!(derive_seed(42, 7), derive_seed(42, 7));
        assert_ne!(derive_seed(42, 7), derive_seed(42, 8));
        assert_ne!(derive_seed(42, 7), derive_seed(43, 7));
    }

    #[test]
    fn cross_products_are_row_major() {
        let points = cross2(&[1, 2], &['a', 'b']);
        assert_eq!(points, vec![(1, 'a'), (1, 'b'), (2, 'a'), (2, 'b')]);
        let triple = cross3(&[1], &[2, 3], &[4, 5]);
        assert_eq!(triple, vec![(1, 2, 4), (1, 2, 5), (1, 3, 4), (1, 3, 5)]);
    }

    #[test]
    fn report_separates_successes_from_failures() {
        let sweep = Sweep::new(vec![1u32, 2, 3, 4]).with_base_seed(9);
        let report = sweep.run(&PoolConfig::serial(), |_, &n| {
            if n % 2 == 0 {
                Ok(n * 10)
            } else {
                Err(format!("odd {n}"))
            }
        });
        assert_eq!(report.succeeded(), 2);
        assert_eq!(report.failed(), 2);
        assert_eq!(report.successes(), vec![20, 40]);
    }

    #[test]
    fn lazy_cross_products_match_eager_enumeration() {
        let eager = cross2(&[1, 2], &['a', 'b']);
        let lazy: Vec<_> = cross2_lazy(vec![1, 2], vec!['a', 'b']).collect();
        assert_eq!(eager, lazy);
        let eager3 = cross3(&[1, 2], &[3], &[4, 5]);
        let lazy3: Vec<_> = cross3_lazy(vec![1, 2], vec![3], vec![4, 5]).collect();
        assert_eq!(eager3, lazy3);
    }

    #[test]
    fn lazy_cross_products_report_their_exact_length() {
        // The exact size hint is what lets the pool clamp its workers (and
        // budget reservation) for small lazy sweeps.
        let mut points = cross2_lazy(vec![1, 2, 3], vec!['a', 'b']);
        assert_eq!(points.len(), 6);
        points.next();
        assert_eq!(points.size_hint(), (5, Some(5)));
        assert_eq!(cross3_lazy(vec![1, 2], vec![3, 4], vec![5]).len(), 4);
    }

    #[test]
    fn lazy_sweep_matches_eager_sweep_for_any_worker_count() {
        let points: Vec<u64> = (0..97).collect();
        let job = |ctx: JobCtx, &n: &u64| {
            if n % 13 == 5 {
                Err(format!("unlucky {n}"))
            } else {
                Ok(n.wrapping_mul(ctx.seed))
            }
        };
        let eager = Sweep::new(points.clone())
            .with_base_seed(77)
            .run(&PoolConfig::serial(), job);
        for threads in [1, 2, 4, 7] {
            let config = PoolConfig::threads(threads).with_chunk(3);
            let lazy = LazySweep::new(points.clone().into_iter())
                .with_base_seed(77)
                .run(&config, job);
            assert_eq!(lazy, eager, "threads={threads}");
        }
    }

    #[test]
    fn lazy_sweep_isolates_panics() {
        let report: SweepReport<u64, String> =
            LazySweep::new(0u64..20).run(&PoolConfig::threads(4), |_, &n| {
                assert!(n != 11, "eleven exploded");
                Ok(n)
            });
        assert_eq!(report.failed(), 1);
        match &report.outcomes[11].result {
            Err(SweepError::Panic(msg)) => assert!(msg.contains("eleven exploded")),
            other => panic!("unexpected: {other:?}"),
        }
        assert_eq!(report.succeeded(), 19);
    }

    #[test]
    fn lazy_sweep_reserves_its_workers_from_the_core_budget() {
        // Jobs observe at least this sweep's own reservation (other tests
        // may add to the global ledger concurrently, never subtract below
        // ours), so intra-job shard sizing sees the sweep's workers.
        let report = LazySweep::new(0u64..8).run(&PoolConfig::threads(3), |_, &n| {
            assert!(crate::budget::reserved_workers() >= 3);
            Ok::<u64, std::convert::Infallible>(n)
        });
        assert_eq!(report.succeeded(), 8);
    }

    #[test]
    fn lazy_sweep_streams_without_collecting_all_points() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        // A long stream: the sweep must finish even though collecting the
        // iterator up front would be absurd, and the pull counter proves the
        // points were produced on demand.
        let produced = AtomicUsize::new(0);
        let stream = (0u64..10_000).inspect(|_| {
            produced.fetch_add(1, Ordering::Relaxed);
        });
        let report = LazySweep::new(stream).run(&PoolConfig::threads(3).with_chunk(64), |_, &n| {
            Ok::<u64, std::convert::Infallible>(n + 1)
        });
        assert_eq!(report.succeeded(), 10_000);
        assert_eq!(produced.load(Ordering::Relaxed), 10_000);
        let rows = report.into_results().unwrap();
        assert_eq!(rows[4_321], 4_322);
    }

    #[test]
    fn index_offset_reproduces_the_full_sweep_slice() {
        // A partitioned sweep over points [k, k+m) with an index offset of k
        // must hand out exactly the (index, seed) pairs — and therefore the
        // results — of the full sweep's slice.
        let job = |ctx: JobCtx, &n: &u64| {
            Ok::<(usize, u64, u64), std::convert::Infallible>((ctx.index, ctx.seed, n))
        };
        let full: Vec<_> = LazySweep::new(0u64..40)
            .with_base_seed(9)
            .run(&PoolConfig::threads(3), job)
            .into_results()
            .unwrap();
        let (start, end) = (13usize, 29usize);
        let mut sliced = Vec::new();
        let delivered = LazySweep::new((start as u64)..(end as u64))
            .with_base_seed(9)
            .with_index_offset(start)
            .run_streaming(&PoolConfig::threads(2), job, |outcome| {
                sliced.push(outcome.result.unwrap());
                true
            });
        assert_eq!(delivered, end - start);
        assert_eq!(sliced.as_slice(), &full[start..end]);
    }

    #[test]
    fn run_streaming_delivers_outcomes_in_index_order() {
        // Jobs with wildly uneven costs (by index parity) still stream out
        // strictly ordered, for any worker count.
        for threads in [1, 3, 7] {
            let mut next = 0usize;
            let delivered = LazySweep::new(0u64..500).with_base_seed(5).run_streaming(
                &PoolConfig::threads(threads).with_chunk(4),
                |ctx, &n| {
                    if n % 2 == 0 {
                        std::thread::yield_now();
                    }
                    Ok::<u64, std::convert::Infallible>(n + ctx.seed % 2)
                },
                |outcome| {
                    assert_eq!(outcome.index, next, "threads={threads}");
                    let expected = outcome.index as u64 + derive_seed(5, outcome.index as u64) % 2;
                    assert_eq!(outcome.result.unwrap(), expected);
                    next += 1;
                    true
                },
            );
            assert_eq!(delivered, 500);
            assert_eq!(next, 500);
        }
    }

    #[test]
    fn cancelling_sink_stops_the_sweep_early() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        // The sink cancels at index 10; the engine must stop pulling points
        // long before the 100_000-point stream is exhausted.
        for threads in [1, 4] {
            let executed = AtomicUsize::new(0);
            let mut seen = 0usize;
            let delivered = LazySweep::new(0u64..100_000).run_streaming(
                &PoolConfig::threads(threads).with_chunk(4),
                |_, &n| {
                    executed.fetch_add(1, Ordering::Relaxed);
                    Ok::<u64, std::convert::Infallible>(n)
                },
                |outcome| {
                    seen += 1;
                    outcome.index < 10
                },
            );
            assert_eq!(seen, 11, "threads={threads}");
            assert_eq!(delivered, 11);
            let ran = executed.load(Ordering::Relaxed);
            assert!(
                ran < 1_000,
                "threads={threads}: {ran} jobs ran after cancel"
            );
        }
    }

    #[test]
    fn mega_sweep_streams_through_a_counting_sink_without_storing_rows() {
        // The bounded-memory acceptance check: a 10^5+-point sweep completes
        // through a sink that counts rows but never stores them. The engine
        // may only buffer the out-of-order window (backpressured at
        // O(workers x chunk)), never a full-grid Vec<R>.
        const POINTS: u64 = 120_000;
        let mut rows = 0u64;
        let mut checksum = 0u64;
        let delivered = LazySweep::new(0..POINTS).run_streaming(
            &PoolConfig::threads(4).with_chunk(64),
            |_, &n| Ok::<u64, std::convert::Infallible>(n.wrapping_mul(3)),
            |outcome| {
                rows += 1;
                checksum = checksum.wrapping_add(outcome.result.unwrap());
                true
            },
        );
        assert_eq!(delivered as u64, POINTS);
        assert_eq!(rows, POINTS);
        let expected = (0..POINTS).fold(0u64, |acc, n| acc.wrapping_add(n.wrapping_mul(3)));
        assert_eq!(checksum, expected);
    }

    #[test]
    fn into_results_surfaces_first_error() {
        let sweep = Sweep::new(vec![1u32, 2, 3]);
        let report = sweep.run(&PoolConfig::serial(), |_, &n| {
            if n == 1 {
                Ok(n)
            } else {
                Err(format!("boom {n}"))
            }
        });
        match report.into_results() {
            Err(SweepError::Job(msg)) => assert_eq!(msg, "boom 2"),
            other => panic!("unexpected: {other:?}"),
        }
    }
}
