//! Append-only checkpoint journal for resumable sweeps.
//!
//! A [`Journal`] persists the result cells of every completed sweep job next
//! to the artifact a run is producing, so an interrupted run can be resumed
//! with **bit-identical** final output: on restart, jobs whose results are
//! already journalled are restored instead of recomputed, and the remaining
//! jobs run as usual. Because cells round-trip exactly through the table
//! layer's CSV encoding (floats use shortest-roundtrip formatting), a
//! restored result is byte-for-byte the value the original job produced.
//!
//! ## File format
//!
//! ```text
//! #sf-journal v1 fp=<16 hex digits>
//! <sweep>,<index>,<cell>,<cell>,...
//! ```
//!
//! * The header carries a caller-supplied [`fingerprint`] of the run's
//!   identity (study name, scale, grid shape). A journal whose fingerprint
//!   does not match the resuming run is discarded, never misapplied.
//! * Each data line is one completed job: the sweep sequence number within
//!   the run, the job's index in that sweep, then the job's encoded result
//!   cells ([`encode_csv_line`]).
//! * Lines are appended and flushed one at a time, so after `kill -9` the
//!   file holds every fully recorded job plus at most one partial line. The
//!   loader only trusts newline-terminated lines, which makes a torn final
//!   write indistinguishable from "job never finished".
//!
//! ## Compaction
//!
//! A multi-gigabyte mega-sweep accumulates an append log far larger than its
//! live state (duplicate keys from resumed runs, undecodable torn lines).
//! [`Journal::compact`] rewrites the log as a **snapshot**: the same
//! fingerprint-guarded format with a ` snapshot` marker appended to the
//! header, holding exactly one line per live `(sweep, index)` key in sorted
//! key order. The rewrite is kill-safe — the snapshot is written to a
//! temporary sibling file, synced, then atomically renamed over the log, so
//! a death at any instant leaves either the old log or the complete
//! snapshot, never a torn hybrid. The loader accepts a snapshot anywhere it
//! accepts the append log it replaced (same fingerprint rules), and appends
//! continue after the snapshot lines. With a byte limit configured
//! ([`Journal::open_with_limit`]), [`Journal::record`] auto-compacts when
//! the log outgrows the limit (with a doubling guard so incompressible logs
//! are not rewritten per append).

use crate::table::{decode_csv_line, encode_csv_line, Value};
use std::collections::BTreeMap;
use std::fs::{File, OpenOptions};
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::Mutex;

/// Magic prefix of the journal header line.
const HEADER_PREFIX: &str = "#sf-journal v1 fp=";

/// Marker appended to the header of a compacted snapshot.
const SNAPSHOT_SUFFIX: &str = " snapshot";

/// FNV-1a hash over the given identity parts, separated by `\x1f` so part
/// boundaries cannot collide. Used to stamp a journal with the run
/// configuration it belongs to.
#[must_use]
pub fn fingerprint<I, S>(parts: I) -> u64
where
    I: IntoIterator<Item = S>,
    S: AsRef<str>,
{
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for part in parts {
        for byte in part.as_ref().bytes().chain(std::iter::once(0x1f)) {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    hash
}

/// Reads the fingerprint stamped in the journal header at `path` without
/// opening the journal for writing. `None` if the file is missing, empty, or
/// does not start with a journal header — callers use this to report *which*
/// configuration an incompatible journal belonged to before it is discarded.
#[must_use]
pub fn peek_fingerprint(path: &Path) -> Option<u64> {
    let text = std::fs::read_to_string(path).ok()?;
    let header = text.split_inclusive('\n').next()?.strip_suffix('\n')?;
    let stamp = header.strip_prefix(HEADER_PREFIX)?;
    let stamp = stamp.strip_suffix(SNAPSHOT_SUFFIX).unwrap_or(stamp);
    u64::from_str_radix(stamp, 16).ok()
}

/// The append handle plus the byte accounting auto-compaction needs; one
/// mutex so appends and compaction rewrites serialise.
#[derive(Debug)]
struct Writer {
    file: File,
    /// Bytes currently in the journal file (trusted prefix at open, plus
    /// every append since).
    bytes: u64,
    /// Size of the file right after the last compaction (0 = never
    /// compacted). Auto-compaction waits for the log to double past this,
    /// so a log that is already mostly live state is not rewritten on every
    /// append.
    compacted_bytes: u64,
    /// Number of compactions this handle has performed.
    compactions: u64,
}

/// An append-only record of completed sweep jobs, keyed by
/// `(sweep sequence, job index)`.
#[derive(Debug)]
pub struct Journal {
    path: PathBuf,
    fingerprint: u64,
    max_bytes: Option<u64>,
    restored: BTreeMap<(u64, u64), Vec<Value>>,
    writer: Mutex<Writer>,
}

impl Journal {
    /// Opens (or creates) the journal at `path` for a run identified by
    /// `fingerprint`, without an auto-compaction limit.
    ///
    /// An existing file with a matching fingerprint has its complete lines
    /// loaded as restorable results; a missing, empty, corrupt, or
    /// mismatching file is truncated and the run starts from scratch.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors from opening or creating the file.
    pub fn open(path: impl Into<PathBuf>, fingerprint: u64) -> io::Result<Self> {
        Self::open_with_limit(path, fingerprint, None)
    }

    /// [`open`](Self::open) with an auto-compaction byte limit: once the
    /// append log exceeds `max_bytes`, [`record`](Self::record) compacts it
    /// to a snapshot in place (see the module docs for the growth guard).
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors from opening or creating the file.
    pub fn open_with_limit(
        path: impl Into<PathBuf>,
        fingerprint: u64,
        max_bytes: Option<u64>,
    ) -> io::Result<Self> {
        let path = path.into();
        let mut restored = BTreeMap::new();
        let mut valid_len = 0u64;
        if let Ok(existing) = std::fs::read_to_string(&path) {
            if let Some(entries) = parse_existing(&existing, fingerprint) {
                restored = entries;
                // Only the newline-terminated prefix is trustworthy; a torn
                // final write must be cut off so the next append starts a
                // fresh line instead of fusing with the torn bytes.
                valid_len = existing.rfind('\n').map_or(0, |i| i + 1) as u64;
            }
        }
        let mut file = if restored.is_empty() {
            File::create(&path)?
        } else {
            let file = OpenOptions::new().append(true).open(&path)?;
            file.set_len(valid_len)?;
            file
        };
        if restored.is_empty() {
            let header = format!("{HEADER_PREFIX}{fingerprint:016x}\n");
            file.write_all(header.as_bytes())?;
            file.flush()?;
            valid_len = header.len() as u64;
        }
        if !restored.is_empty() {
            sf_obs::metrics::global()
                .counter_add("journal.restored_entries", restored.len() as u64);
        }
        Ok(Self {
            path,
            fingerprint,
            max_bytes,
            restored,
            writer: Mutex::new(Writer {
                file,
                bytes: valid_len,
                compacted_bytes: 0,
                compactions: 0,
            }),
        })
    }

    /// The journal file's location.
    #[must_use]
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Number of job results restored from a previous interrupted run.
    #[must_use]
    pub fn restored_count(&self) -> usize {
        self.restored.len()
    }

    /// The restored result cells for job `index` of sweep `sweep`, if that
    /// job completed in a previous run.
    #[must_use]
    pub fn restored(&self, sweep: u64, index: u64) -> Option<&[Value]> {
        self.restored.get(&(sweep, index)).map(Vec::as_slice)
    }

    /// Bytes currently in the journal file.
    #[must_use]
    pub fn len_bytes(&self) -> u64 {
        self.writer.lock().expect("journal writer poisoned").bytes
    }

    /// Number of compactions this journal has performed since open.
    #[must_use]
    pub fn compactions(&self) -> u64 {
        self.writer
            .lock()
            .expect("journal writer poisoned")
            .compactions
    }

    /// Appends one completed job's result cells and flushes, so the entry
    /// survives the process dying right after this call returns. With a
    /// byte limit configured, an oversized log is compacted before the call
    /// returns.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors from the append (or the compaction).
    pub fn record(&self, sweep: u64, index: u64, cells: &[Value]) -> io::Result<()> {
        let io_timer = sf_obs::span::timing_start();
        let line = format!("{sweep},{index},{}\n", encode_csv_line(cells));
        let mut writer = self.writer.lock().expect("journal writer poisoned");
        writer.file.write_all(line.as_bytes())?;
        writer.file.flush()?;
        writer.bytes += line.len() as u64;
        sf_obs::span::timing_add("journal_io", io_timer, 1);
        let metrics = sf_obs::metrics::global();
        metrics.counter_add("journal.appends", 1);
        metrics.counter_add("journal.bytes_appended", line.len() as u64);
        if let Some(limit) = self.max_bytes {
            // The doubling guard: a snapshot that is still over the limit
            // (all live state) must not trigger a rewrite per append.
            let threshold = limit.max(writer.compacted_bytes.saturating_mul(2));
            if writer.bytes > threshold {
                self.compact_locked(&mut writer)?;
            }
        }
        Ok(())
    }

    /// Rewrites the append log as a fingerprint-guarded snapshot holding one
    /// line per live `(sweep, index)` key, via write-temp + rename so a kill
    /// at any instant leaves a loadable journal. Returns the snapshot size
    /// in bytes.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors; on error the original log is intact.
    pub fn compact(&self) -> io::Result<u64> {
        let mut writer = self.writer.lock().expect("journal writer poisoned");
        self.compact_locked(&mut writer)
    }

    /// Compacts only when a configured byte limit is exceeded (the resume
    /// path's entry point). Returns whether a compaction ran.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors from the compaction.
    pub fn maybe_compact(&self) -> io::Result<bool> {
        let Some(limit) = self.max_bytes else {
            return Ok(false);
        };
        let mut writer = self.writer.lock().expect("journal writer poisoned");
        if writer.bytes <= limit {
            return Ok(false);
        }
        self.compact_locked(&mut writer)?;
        Ok(true)
    }

    /// The compaction body; the caller holds the writer lock, so no append
    /// can interleave with the rewrite.
    fn compact_locked(&self, writer: &mut Writer) -> io::Result<u64> {
        // Compaction count depends on append interleaving across workers, so
        // the counter lives in the nondeterministic `sched.` namespace.
        let compact_timer = sf_obs::span::timing_start();
        sf_obs::metrics::global().counter_add("sched.journal_compactions", 1);
        writer.file.flush()?;
        // The journal keeps no in-memory copy of entries recorded this run,
        // so the live state is re-read from the log itself: restored map
        // semantics (last duplicate wins, torn lines dropped) are exactly
        // the loader's.
        let text = std::fs::read_to_string(&self.path)?;
        let entries = parse_existing(&text, self.fingerprint).unwrap_or_default();
        let mut snapshot = format!(
            "{HEADER_PREFIX}{:016x}{SNAPSHOT_SUFFIX}\n",
            self.fingerprint
        );
        for ((sweep, index), cells) in &entries {
            snapshot.push_str(&format!("{sweep},{index},{}\n", encode_csv_line(cells)));
        }
        // Append to the full file name (never `with_extension`, which would
        // collapse `sweep.a` and `sweep.b` onto one temp file and let two
        // journals clobber each other's snapshots).
        let mut tmp = self.path.clone().into_os_string();
        tmp.push(".compact-tmp");
        let tmp = PathBuf::from(tmp);
        {
            let mut file = File::create(&tmp)?;
            file.write_all(snapshot.as_bytes())?;
            file.sync_all()?;
        }
        // The atomic cut-over: before the rename the old log is authoritative,
        // after it the snapshot is — there is no in-between state on disk.
        std::fs::rename(&tmp, &self.path)?;
        writer.file = OpenOptions::new().append(true).open(&self.path)?;
        writer.bytes = snapshot.len() as u64;
        writer.compacted_bytes = writer.bytes;
        writer.compactions += 1;
        sf_obs::span::timing_add("journal_compact", compact_timer, 1);
        Ok(writer.bytes)
    }

    /// Deletes the journal file — call once the run's final artifact has been
    /// written, so a completed run leaves nothing to resume.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors other than the file already being gone.
    pub fn finish(&self) -> io::Result<()> {
        match std::fs::remove_file(&self.path) {
            Err(e) if e.kind() != io::ErrorKind::NotFound => Err(e),
            _ => Ok(()),
        }
    }
}

/// Parses an existing journal file; `None` means "unusable, start fresh"
/// (wrong header or fingerprint). Undecodable or truncated data lines are
/// skipped individually — every line is self-contained. Accepts both the
/// append-log header and the ` snapshot`-marked header a compaction writes:
/// a snapshot is equivalent to the log it replaced.
fn parse_existing(text: &str, fingerprint: u64) -> Option<BTreeMap<(u64, u64), Vec<Value>>> {
    let mut lines = text.split_inclusive('\n');
    let header = lines.next()?.strip_suffix('\n')?;
    let stamp = header.strip_prefix(HEADER_PREFIX)?;
    let stamp = stamp.strip_suffix(SNAPSHOT_SUFFIX).unwrap_or(stamp);
    if u64::from_str_radix(stamp, 16) != Ok(fingerprint) {
        return None;
    }
    let mut restored = BTreeMap::new();
    for line in lines {
        // A line without a trailing newline is a torn final write: drop it.
        let Some(line) = line.strip_suffix('\n') else {
            continue;
        };
        let Ok(cells) = decode_csv_line(line) else {
            continue;
        };
        if cells.len() < 2 {
            continue;
        }
        let (Value::UInt(sweep), Value::UInt(index)) = (&cells[0], &cells[1]) else {
            continue;
        };
        restored.insert((*sweep, *index), cells[2..].to_vec());
    }
    Some(restored)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(name: &str) -> PathBuf {
        let mut path = std::env::temp_dir();
        path.push(format!("sf-journal-test-{}-{name}", std::process::id()));
        path
    }

    #[test]
    fn records_survive_reopen_and_round_trip_exactly() {
        let path = temp_path("round-trip");
        let fp = fingerprint(["fig10", "quick"]);
        {
            let journal = Journal::open(&path, fp).unwrap();
            assert_eq!(journal.restored_count(), 0);
            journal
                .record(0, 3, &[Value::Float(0.1 + 0.2), Value::Str("SF".into())])
                .unwrap();
            journal
                .record(1, 0, &[Value::Null, Value::UInt(7)])
                .unwrap();
        }
        let journal = Journal::open(&path, fp).unwrap();
        assert_eq!(journal.restored_count(), 2);
        assert_eq!(
            journal.restored(0, 3).unwrap(),
            &[Value::Float(0.1 + 0.2), Value::Str("SF".into())]
        );
        assert_eq!(
            journal.restored(1, 0).unwrap(),
            &[Value::Null, Value::UInt(7)]
        );
        assert!(journal.restored(0, 4).is_none());
        journal.finish().unwrap();
        assert!(!path.exists());
        journal.finish().unwrap(); // idempotent
    }

    #[test]
    fn mismatched_fingerprint_discards_the_file() {
        let path = temp_path("fingerprint");
        {
            let journal = Journal::open(&path, 1).unwrap();
            journal.record(0, 0, &[Value::UInt(42)]).unwrap();
        }
        let journal = Journal::open(&path, 2).unwrap();
        assert_eq!(journal.restored_count(), 0);
        journal.finish().unwrap();
    }

    #[test]
    fn torn_final_line_is_dropped_and_truncated_before_appending() {
        let path = temp_path("torn");
        let fp = fingerprint(["x"]);
        {
            let journal = Journal::open(&path, fp).unwrap();
            journal.record(0, 0, &[Value::UInt(1)]).unwrap();
        }
        // Simulate a kill mid-write: append half a line with no newline.
        {
            let mut file = OpenOptions::new().append(true).open(&path).unwrap();
            file.write_all(b"0,1,99").unwrap();
        }
        let journal = Journal::open(&path, fp).unwrap();
        assert_eq!(journal.restored_count(), 1);
        assert!(journal.restored(0, 1).is_none());
        // The torn bytes must not fuse with the next appended record.
        journal.record(0, 5, &[Value::UInt(7)]).unwrap();
        drop(journal);
        let journal = Journal::open(&path, fp).unwrap();
        assert_eq!(journal.restored_count(), 2);
        assert_eq!(journal.restored(0, 0).unwrap(), &[Value::UInt(1)]);
        assert_eq!(journal.restored(0, 5).unwrap(), &[Value::UInt(7)]);
        journal.finish().unwrap();
    }

    #[test]
    fn fingerprints_separate_parts() {
        assert_ne!(fingerprint(["ab", "c"]), fingerprint(["a", "bc"]));
        assert_eq!(fingerprint(["a", "b"]), fingerprint(["a", "b"]));
    }

    #[test]
    fn compaction_snapshot_is_equivalent_to_the_log_it_replaced() {
        let path = temp_path("compact");
        let _ = std::fs::remove_file(&path);
        let fp = fingerprint(["compact"]);
        {
            let journal = Journal::open(&path, fp).unwrap();
            for i in 0..10u64 {
                journal
                    .record(0, i, &[Value::Float(i as f64 * 0.3 + 0.1), Value::UInt(i)])
                    .unwrap();
            }
            // Duplicate keys (a rewritten entry): the snapshot keeps one.
            journal.record(0, 3, &[Value::Str("dup".into())]).unwrap();
            let before = journal.len_bytes();
            let after = journal.compact().unwrap();
            assert!(after < before, "snapshot {after} vs log {before}");
            assert_eq!(journal.compactions(), 1);
            // Appends continue after the snapshot.
            journal.record(1, 0, &[Value::Bool(true)]).unwrap();
        }
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.starts_with("#sf-journal v1 fp="));
        assert!(text.lines().next().unwrap().ends_with(" snapshot"));
        let journal = Journal::open(&path, fp).unwrap();
        assert_eq!(journal.restored_count(), 11);
        for i in 0..10u64 {
            if i == 3 {
                assert_eq!(journal.restored(0, i).unwrap(), &[Value::Str("dup".into())]);
            } else {
                assert_eq!(
                    journal.restored(0, i).unwrap(),
                    &[Value::Float(i as f64 * 0.3 + 0.1), Value::UInt(i)]
                );
            }
        }
        assert_eq!(journal.restored(1, 0).unwrap(), &[Value::Bool(true)]);
        // A snapshot from a different run's fingerprint is still discarded.
        let other = Journal::open(&path, fp ^ 1).unwrap();
        assert_eq!(other.restored_count(), 0);
        other.finish().unwrap();
    }

    #[test]
    fn records_auto_compact_past_the_byte_limit() {
        let path = temp_path("auto-compact");
        let _ = std::fs::remove_file(&path);
        let fp = fingerprint(["auto"]);
        let journal = Journal::open_with_limit(&path, fp, Some(128)).unwrap();
        for i in 0..40u64 {
            journal
                .record(0, i, &[Value::UInt(i), Value::Str(format!("row-{i}"))])
                .unwrap();
        }
        assert!(
            journal.compactions() >= 1,
            "a tiny limit must force at least one compaction"
        );
        // The doubling guard keeps the rewrite count far below one per
        // append even though every snapshot stays over the limit.
        assert!(journal.compactions() < 20, "{}", journal.compactions());
        drop(journal);
        let journal = Journal::open_with_limit(&path, fp, Some(128)).unwrap();
        assert_eq!(journal.restored_count(), 40);
        // maybe_compact on resume: the reopened log is over the limit.
        assert!(journal.maybe_compact().unwrap());
        assert!(!journal.maybe_compact().unwrap() || journal.len_bytes() > 128);
        journal.finish().unwrap();
    }

    #[test]
    fn sibling_journals_compact_without_clobbering_each_other() {
        // `sweep.a` and `sweep.b` share a stem; their compaction temp files
        // must not collide (the temp name appends to the full file name).
        let base = temp_path("siblings");
        let path_a = base.with_extension("a");
        let path_b = base.with_extension("b");
        let _ = std::fs::remove_file(&path_a);
        let _ = std::fs::remove_file(&path_b);
        let a = Journal::open(&path_a, 1).unwrap();
        let b = Journal::open(&path_b, 2).unwrap();
        a.record(0, 0, &[Value::UInt(10)]).unwrap();
        b.record(0, 0, &[Value::UInt(20)]).unwrap();
        // Interleave many compactions from two threads: with a shared temp
        // name one journal's snapshot could land under the other's path (or
        // a rename could fail on a stolen temp file).
        std::thread::scope(|scope| {
            scope.spawn(|| {
                for i in 1..40u64 {
                    a.record(0, i, &[Value::UInt(10 + i)]).unwrap();
                    a.compact().unwrap();
                }
            });
            scope.spawn(|| {
                for i in 1..40u64 {
                    b.record(0, i, &[Value::UInt(20 + i)]).unwrap();
                    b.compact().unwrap();
                }
            });
        });
        drop((a, b));
        let a = Journal::open(&path_a, 1).unwrap();
        let b = Journal::open(&path_b, 2).unwrap();
        assert_eq!(a.restored(0, 0).unwrap(), &[Value::UInt(10)]);
        assert_eq!(b.restored(0, 0).unwrap(), &[Value::UInt(20)]);
        a.finish().unwrap();
        b.finish().unwrap();
    }

    #[test]
    fn maybe_compact_is_a_no_op_without_a_limit() {
        let path = temp_path("no-limit");
        let _ = std::fs::remove_file(&path);
        let journal = Journal::open(&path, 9).unwrap();
        journal.record(0, 0, &[Value::UInt(1)]).unwrap();
        assert!(!journal.maybe_compact().unwrap());
        assert_eq!(journal.compactions(), 0);
        journal.finish().unwrap();
    }
}
