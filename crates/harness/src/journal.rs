//! Append-only checkpoint journal for resumable sweeps.
//!
//! A [`Journal`] persists the result cells of every completed sweep job next
//! to the artifact a run is producing, so an interrupted run can be resumed
//! with **bit-identical** final output: on restart, jobs whose results are
//! already journalled are restored instead of recomputed, and the remaining
//! jobs run as usual. Because cells round-trip exactly through the table
//! layer's CSV encoding (floats use shortest-roundtrip formatting), a
//! restored result is byte-for-byte the value the original job produced.
//!
//! ## File format
//!
//! ```text
//! #sf-journal v1 fp=<16 hex digits>
//! <sweep>,<index>,<cell>,<cell>,...
//! ```
//!
//! * The header carries a caller-supplied [`fingerprint`] of the run's
//!   identity (study name, scale, grid shape). A journal whose fingerprint
//!   does not match the resuming run is discarded, never misapplied.
//! * Each data line is one completed job: the sweep sequence number within
//!   the run, the job's index in that sweep, then the job's encoded result
//!   cells ([`encode_csv_line`]).
//! * Lines are appended and flushed one at a time, so after `kill -9` the
//!   file holds every fully recorded job plus at most one partial line. The
//!   loader only trusts newline-terminated lines, which makes a torn final
//!   write indistinguishable from "job never finished".

use crate::table::{decode_csv_line, encode_csv_line, Value};
use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::Mutex;

/// Magic prefix of the journal header line.
const HEADER_PREFIX: &str = "#sf-journal v1 fp=";

/// FNV-1a hash over the given identity parts, separated by `\x1f` so part
/// boundaries cannot collide. Used to stamp a journal with the run
/// configuration it belongs to.
#[must_use]
pub fn fingerprint<I, S>(parts: I) -> u64
where
    I: IntoIterator<Item = S>,
    S: AsRef<str>,
{
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for part in parts {
        for byte in part.as_ref().bytes().chain(std::iter::once(0x1f)) {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    hash
}

/// An append-only record of completed sweep jobs, keyed by
/// `(sweep sequence, job index)`.
#[derive(Debug)]
pub struct Journal {
    path: PathBuf,
    restored: HashMap<(u64, u64), Vec<Value>>,
    writer: Mutex<File>,
}

impl Journal {
    /// Opens (or creates) the journal at `path` for a run identified by
    /// `fingerprint`.
    ///
    /// An existing file with a matching fingerprint has its complete lines
    /// loaded as restorable results; a missing, empty, corrupt, or
    /// mismatching file is truncated and the run starts from scratch.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors from opening or creating the file.
    pub fn open(path: impl Into<PathBuf>, fingerprint: u64) -> io::Result<Self> {
        let path = path.into();
        let mut restored = HashMap::new();
        let mut valid_len = 0u64;
        if let Ok(existing) = std::fs::read_to_string(&path) {
            if let Some(entries) = parse_existing(&existing, fingerprint) {
                restored = entries;
                // Only the newline-terminated prefix is trustworthy; a torn
                // final write must be cut off so the next append starts a
                // fresh line instead of fusing with the torn bytes.
                valid_len = existing.rfind('\n').map_or(0, |i| i + 1) as u64;
            }
        }
        let mut file = if restored.is_empty() {
            File::create(&path)?
        } else {
            let file = OpenOptions::new().append(true).open(&path)?;
            file.set_len(valid_len)?;
            file
        };
        if restored.is_empty() {
            writeln!(file, "{HEADER_PREFIX}{fingerprint:016x}")?;
            file.flush()?;
        }
        Ok(Self {
            path,
            restored,
            writer: Mutex::new(file),
        })
    }

    /// The journal file's location.
    #[must_use]
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Number of job results restored from a previous interrupted run.
    #[must_use]
    pub fn restored_count(&self) -> usize {
        self.restored.len()
    }

    /// The restored result cells for job `index` of sweep `sweep`, if that
    /// job completed in a previous run.
    #[must_use]
    pub fn restored(&self, sweep: u64, index: u64) -> Option<&[Value]> {
        self.restored.get(&(sweep, index)).map(Vec::as_slice)
    }

    /// Appends one completed job's result cells and flushes, so the entry
    /// survives the process dying right after this call returns.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors from the append.
    pub fn record(&self, sweep: u64, index: u64, cells: &[Value]) -> io::Result<()> {
        let line = format!("{sweep},{index},{}\n", encode_csv_line(cells));
        let mut writer = self.writer.lock().expect("journal writer poisoned");
        writer.write_all(line.as_bytes())?;
        writer.flush()
    }

    /// Deletes the journal file — call once the run's final artifact has been
    /// written, so a completed run leaves nothing to resume.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors other than the file already being gone.
    pub fn finish(&self) -> io::Result<()> {
        match std::fs::remove_file(&self.path) {
            Err(e) if e.kind() != io::ErrorKind::NotFound => Err(e),
            _ => Ok(()),
        }
    }
}

/// Parses an existing journal file; `None` means "unusable, start fresh"
/// (wrong header or fingerprint). Undecodable or truncated data lines are
/// skipped individually — every line is self-contained.
fn parse_existing(text: &str, fingerprint: u64) -> Option<HashMap<(u64, u64), Vec<Value>>> {
    let mut lines = text.split_inclusive('\n');
    let header = lines.next()?.strip_suffix('\n')?;
    let stamp = header.strip_prefix(HEADER_PREFIX)?;
    if u64::from_str_radix(stamp, 16) != Ok(fingerprint) {
        return None;
    }
    let mut restored = HashMap::new();
    for line in lines {
        // A line without a trailing newline is a torn final write: drop it.
        let Some(line) = line.strip_suffix('\n') else {
            continue;
        };
        let Ok(cells) = decode_csv_line(line) else {
            continue;
        };
        if cells.len() < 2 {
            continue;
        }
        let (Value::UInt(sweep), Value::UInt(index)) = (&cells[0], &cells[1]) else {
            continue;
        };
        restored.insert((*sweep, *index), cells[2..].to_vec());
    }
    Some(restored)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(name: &str) -> PathBuf {
        let mut path = std::env::temp_dir();
        path.push(format!("sf-journal-test-{}-{name}", std::process::id()));
        path
    }

    #[test]
    fn records_survive_reopen_and_round_trip_exactly() {
        let path = temp_path("round-trip");
        let fp = fingerprint(["fig10", "quick"]);
        {
            let journal = Journal::open(&path, fp).unwrap();
            assert_eq!(journal.restored_count(), 0);
            journal
                .record(0, 3, &[Value::Float(0.1 + 0.2), Value::Str("SF".into())])
                .unwrap();
            journal
                .record(1, 0, &[Value::Null, Value::UInt(7)])
                .unwrap();
        }
        let journal = Journal::open(&path, fp).unwrap();
        assert_eq!(journal.restored_count(), 2);
        assert_eq!(
            journal.restored(0, 3).unwrap(),
            &[Value::Float(0.1 + 0.2), Value::Str("SF".into())]
        );
        assert_eq!(
            journal.restored(1, 0).unwrap(),
            &[Value::Null, Value::UInt(7)]
        );
        assert!(journal.restored(0, 4).is_none());
        journal.finish().unwrap();
        assert!(!path.exists());
        journal.finish().unwrap(); // idempotent
    }

    #[test]
    fn mismatched_fingerprint_discards_the_file() {
        let path = temp_path("fingerprint");
        {
            let journal = Journal::open(&path, 1).unwrap();
            journal.record(0, 0, &[Value::UInt(42)]).unwrap();
        }
        let journal = Journal::open(&path, 2).unwrap();
        assert_eq!(journal.restored_count(), 0);
        journal.finish().unwrap();
    }

    #[test]
    fn torn_final_line_is_dropped_and_truncated_before_appending() {
        let path = temp_path("torn");
        let fp = fingerprint(["x"]);
        {
            let journal = Journal::open(&path, fp).unwrap();
            journal.record(0, 0, &[Value::UInt(1)]).unwrap();
        }
        // Simulate a kill mid-write: append half a line with no newline.
        {
            let mut file = OpenOptions::new().append(true).open(&path).unwrap();
            file.write_all(b"0,1,99").unwrap();
        }
        let journal = Journal::open(&path, fp).unwrap();
        assert_eq!(journal.restored_count(), 1);
        assert!(journal.restored(0, 1).is_none());
        // The torn bytes must not fuse with the next appended record.
        journal.record(0, 5, &[Value::UInt(7)]).unwrap();
        drop(journal);
        let journal = Journal::open(&path, fp).unwrap();
        assert_eq!(journal.restored_count(), 2);
        assert_eq!(journal.restored(0, 0).unwrap(), &[Value::UInt(1)]);
        assert_eq!(journal.restored(0, 5).unwrap(), &[Value::UInt(7)]);
        journal.finish().unwrap();
    }

    #[test]
    fn fingerprints_separate_parts() {
        assert_ne!(fingerprint(["ab", "c"]), fingerprint(["a", "bc"]));
        assert_eq!(fingerprint(["a", "b"]), fingerprint(["a", "b"]));
    }
}
