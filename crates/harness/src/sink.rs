//! Streaming row emitters: incremental CSV / JSON artifact writers.
//!
//! A [`RowSink`] is the bounded-memory counterpart of
//! [`Table::to_csv`](crate::table::Table::to_csv) /
//! [`Table::to_json`](crate::table::Table::to_json): rows are written as they
//! arrive instead of being collected into a [`Table`](crate::table::Table)
//! first, so a million-row mega-sweep emits its artifact in `O(1)` memory.
//! The byte stream is **identical** to serialising the equivalent table in
//! one shot — both paths share the same cell renderers — which is what keeps
//! golden-artifact comparisons valid across the eager and streaming
//! pipelines.
//!
//! Rows go to a temporary sibling file (`<path>.part`) and the sink renames
//! it over the destination on [`finish`](RowSink::finish), so the final path
//! only ever holds complete artifacts — a run killed mid-stream leaves the
//! previous artifact (or nothing) in place, never a torn one.

use crate::table::{csv_cell, csv_escape, json_string, json_value, Value};
use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::{Path, PathBuf};

/// The serialisation a [`RowSink`] writes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SinkFormat {
    Csv,
    Json,
}

/// An incremental writer of one CSV or JSON artifact.
#[derive(Debug)]
pub struct RowSink {
    path: PathBuf,
    part: PathBuf,
    writer: BufWriter<File>,
    format: SinkFormat,
    columns: Vec<String>,
    rows: usize,
    finished: bool,
}

impl RowSink {
    /// Opens a CSV sink at `path` and writes the header row immediately.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors from creating the temporary file.
    pub fn csv<S: AsRef<str>>(path: impl Into<PathBuf>, columns: &[S]) -> io::Result<Self> {
        let mut sink = Self::open(path.into(), columns, SinkFormat::Csv)?;
        let header: Vec<String> = sink.columns.iter().map(|c| csv_escape(c)).collect();
        sink.writer.write_all(header.join(",").as_bytes())?;
        sink.writer.write_all(b"\n")?;
        Ok(sink)
    }

    /// Opens a JSON sink at `path` and writes the opening bracket.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors from creating the temporary file.
    pub fn json<S: AsRef<str>>(path: impl Into<PathBuf>, columns: &[S]) -> io::Result<Self> {
        let mut sink = Self::open(path.into(), columns, SinkFormat::Json)?;
        sink.writer.write_all(b"[")?;
        Ok(sink)
    }

    fn open<S: AsRef<str>>(path: PathBuf, columns: &[S], format: SinkFormat) -> io::Result<Self> {
        let mut part = path.clone().into_os_string();
        part.push(".part");
        let part = PathBuf::from(part);
        let writer = BufWriter::new(File::create(&part)?);
        Ok(Self {
            path,
            part,
            writer,
            format,
            columns: columns.iter().map(|c| c.as_ref().to_string()).collect(),
            rows: 0,
            finished: false,
        })
    }

    /// The destination the finished artifact will land at.
    #[must_use]
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Rows written so far.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Appends one row; the cell count must match the sink's columns.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors from the write.
    pub fn push(&mut self, cells: &[Value]) -> io::Result<()> {
        assert_eq!(
            cells.len(),
            self.columns.len(),
            "row width {} != column count {}",
            cells.len(),
            self.columns.len()
        );
        match self.format {
            SinkFormat::Csv => {
                let rendered: Vec<String> = cells.iter().map(csv_cell).collect();
                self.writer.write_all(rendered.join(",").as_bytes())?;
                self.writer.write_all(b"\n")?;
            }
            SinkFormat::Json => {
                if self.rows > 0 {
                    self.writer.write_all(b",")?;
                }
                self.writer.write_all(b"\n  {")?;
                for (i, (column, value)) in self.columns.iter().zip(cells).enumerate() {
                    if i > 0 {
                        self.writer.write_all(b", ")?;
                    }
                    self.writer.write_all(json_string(column).as_bytes())?;
                    self.writer.write_all(b": ")?;
                    self.writer.write_all(json_value(value).as_bytes())?;
                }
                self.writer.write_all(b"}")?;
            }
        }
        self.rows += 1;
        Ok(())
    }

    /// Finalises the artifact (closing bracket for JSON), flushes, and
    /// atomically renames the temporary file over the destination.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors; on error the destination is untouched.
    pub fn finish(mut self) -> io::Result<()> {
        let flush_timer = sf_obs::span::timing_start();
        if self.format == SinkFormat::Json {
            if self.rows > 0 {
                self.writer.write_all(b"\n")?;
            }
            self.writer.write_all(b"]\n")?;
        }
        self.writer.flush()?;
        let bytes = self.writer.get_ref().metadata().map_or(0, |m| m.len());
        // Only a successful rename counts as finished; a failure here must
        // still have Drop remove the orphaned .part file.
        std::fs::rename(&self.part, &self.path)?;
        self.finished = true;
        sf_obs::span::timing_add("sink_flush", flush_timer, 1);
        let metrics = sf_obs::metrics::global();
        metrics.counter_add("sink.rows", self.rows as u64);
        metrics.counter_add("sink.bytes", bytes);
        metrics.counter_add("sink.artifacts", 1);
        Ok(())
    }
}

impl Drop for RowSink {
    fn drop(&mut self) {
        // An abandoned sink (error path) must not leave a stray .part file.
        if !self.finished {
            let _ = std::fs::remove_file(&self.part);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::{Record, Table};

    struct Row {
        name: String,
        nodes: usize,
        latency: f64,
        point: Option<f64>,
    }

    impl Record for Row {
        fn columns() -> Vec<&'static str> {
            vec!["name", "nodes", "latency", "point"]
        }
        fn values(&self) -> Vec<Value> {
            vec![
                self.name.clone().into(),
                self.nodes.into(),
                self.latency.into(),
                self.point.into(),
            ]
        }
    }

    fn rows() -> Vec<Row> {
        vec![
            Row {
                name: "SF, \"quoted\"".into(),
                nodes: 64,
                latency: 3.25,
                point: Some(62.5),
            },
            Row {
                name: "17".into(), // ambiguous string: must stay quoted
                nodes: 1296,
                latency: 11.0,
                point: None,
            },
        ]
    }

    fn temp(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("sf-sink-test-{}-{name}", std::process::id()))
    }

    #[test]
    fn streamed_csv_and_json_match_the_eager_table_bytes() {
        let table = Table::from_records(&rows());
        for (ext, eager) in [("csv", table.to_csv()), ("json", table.to_json())] {
            let path = temp(ext);
            let mut sink = if ext == "csv" {
                RowSink::csv(&path, &table.columns).unwrap()
            } else {
                RowSink::json(&path, &table.columns).unwrap()
            };
            for row in &table.rows {
                sink.push(row).unwrap();
            }
            assert_eq!(sink.rows(), table.len());
            sink.finish().unwrap();
            assert_eq!(std::fs::read_to_string(&path).unwrap(), eager, "{ext}");
            std::fs::remove_file(&path).unwrap();
        }
    }

    #[test]
    fn empty_sinks_match_empty_tables() {
        let table = Table::with_columns(&["a", "b"]);
        let csv_path = temp("empty-csv");
        RowSink::csv(&csv_path, &table.columns)
            .unwrap()
            .finish()
            .unwrap();
        assert_eq!(std::fs::read_to_string(&csv_path).unwrap(), table.to_csv());
        std::fs::remove_file(&csv_path).unwrap();

        let json_path = temp("empty-json");
        RowSink::json(&json_path, &table.columns)
            .unwrap()
            .finish()
            .unwrap();
        assert_eq!(
            std::fs::read_to_string(&json_path).unwrap(),
            table.to_json()
        );
        std::fs::remove_file(&json_path).unwrap();
    }

    #[test]
    fn unfinished_sink_leaves_no_partial_artifact() {
        let path = temp("abandoned");
        let part = PathBuf::from(format!("{}.part", path.display()));
        {
            let mut sink = RowSink::csv(&path, &["a"]).unwrap();
            sink.push(&[Value::UInt(1)]).unwrap();
            assert!(part.exists());
            // Dropped without finish(): simulates an error-path abort.
        }
        assert!(!part.exists(), "abandoned .part must be cleaned up");
        assert!(!path.exists(), "destination must not appear without finish");
    }
}
