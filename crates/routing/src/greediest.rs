//! String Figure's adaptive greediest routing protocol.
//!
//! Forwarding works purely on coordinates (Section III-B):
//!
//! 1. The router computes the minimum circular distance (MD) from each usable
//!    one-hop neighbour to the destination and considers the *improving set*
//!    `W = { w : MD(w, t) < MD(s, t) }`. Forwarding to a member of `W` makes
//!    the MD strictly decrease at every hop, which is the progressive,
//!    distance-reducing property behind the paper's loop-freedom proof
//!    (Appendix A, Lemmas 1–2, Proposition 3).
//! 2. Two-hop entries of the routing table refine the choice *within* `W`:
//!    each improving neighbour is scored by the best MD reachable through it
//!    in at most one more hop, so the router effectively looks two hops ahead
//!    without giving up the per-hop progress guarantee.
//! 3. Adaptive routing diverts only the first hop: among the improving
//!    neighbours the source prefers an output port whose queue occupancy is
//!    below the configured threshold (default 50%).
//! 4. Two virtual channels avoid buffer-dependency deadlocks: a packet uses
//!    the *up* channel when the destination's coordinate (in the MD-defining
//!    space) is above the current node's, and the *down* channel otherwise.
//!
//! After power gating, the improving set of a router can momentarily be empty
//! (its ring neighbour in the best space may be offline). The hardware
//! equivalent would stall until reconfiguration completes; the protocol here
//! falls back to a breadth-first-search next hop on the live graph and counts
//! the event, so experiments can report how often the greedy invariant had to
//! be bypassed.

use crate::protocol::{PortLoadEstimator, RoutingContext, RoutingProtocol};
use crate::table::{HopCount, RoutingTable};
use sf_topology::{AdjacencyGraph, StringFigureTopology, VirtualSpaces};
use sf_types::{
    minimum_circular_distance, CoordinateVector, NodeId, SfError, SfResult, VirtualChannelId,
};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};

/// Tuning knobs of the greediest protocol.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GreediestOptions {
    /// Use two-hop routing-table entries to refine the choice among improving
    /// neighbours (the paper's default, per its sensitivity study).
    pub use_two_hop: bool,
    /// Adapt the first-hop decision to port load.
    pub adaptive: bool,
    /// Route on the 7-bit quantised coordinates the hardware table stores
    /// instead of full precision.
    pub use_quantized: bool,
}

impl Default for GreediestOptions {
    fn default() -> Self {
        Self {
            use_two_hop: true,
            adaptive: true,
            use_quantized: false,
        }
    }
}

#[derive(Debug, Clone)]
struct NodeCandidates {
    /// Improvable one-hop neighbours with their coordinate vectors.
    one_hop: Vec<(NodeId, CoordinateVector)>,
    /// Two-hop targets as (via one-hop neighbour, target, target coordinates).
    two_hop: Vec<(NodeId, NodeId, CoordinateVector)>,
}

/// The greediest routing protocol over a String Figure (or S2) topology.
///
/// # Examples
///
/// ```
/// use sf_routing::{GreediestRouting, trace_route};
/// use sf_topology::StringFigureTopology;
/// use sf_types::{NetworkConfig, NodeId};
///
/// let topo = StringFigureTopology::generate(&NetworkConfig::new(64, 4)?)?;
/// let routing = GreediestRouting::new(&topo);
/// let route = trace_route(&routing, NodeId::new(3), NodeId::new(40), 64)?;
/// assert!(!route.has_loop());
/// assert!(route.hops() <= 12);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct GreediestRouting {
    options: GreediestOptions,
    tables: Vec<RoutingTable>,
    candidates: Vec<NodeCandidates>,
    coordinates: Vec<CoordinateVector>,
    active: Vec<bool>,
    adjacency: Vec<Vec<NodeId>>,
    fallback_routes: AtomicU64,
    decisions: AtomicU64,
}

impl GreediestRouting {
    /// Builds the protocol state (all per-router tables) for a String Figure
    /// topology with default options.
    #[must_use]
    pub fn new(topology: &StringFigureTopology) -> Self {
        Self::with_options(topology, GreediestOptions::default())
    }

    /// Builds the protocol state with explicit options.
    #[must_use]
    pub fn with_options(topology: &StringFigureTopology, options: GreediestOptions) -> Self {
        Self::from_parts(topology.graph(), topology.spaces(), options)
    }

    /// Builds the protocol from a raw graph plus virtual spaces (also used for
    /// the S2 baseline, which shares the coordinate structure).
    #[must_use]
    pub fn from_parts(
        graph: &AdjacencyGraph,
        spaces: &VirtualSpaces,
        options: GreediestOptions,
    ) -> Self {
        let n = graph.num_nodes();
        let mut tables = Vec::with_capacity(n);
        let mut candidates = Vec::with_capacity(n);
        for i in 0..n {
            let table = RoutingTable::build(NodeId::new(i), graph, spaces);
            candidates.push(Self::collect_candidates(&table, options.use_quantized));
            tables.push(table);
        }
        Self {
            options,
            tables,
            candidates,
            coordinates: spaces.all_coordinates().to_vec(),
            active: (0..n).map(|i| graph.is_active(NodeId::new(i))).collect(),
            adjacency: (0..n)
                .map(|i| graph.active_neighbors(NodeId::new(i)))
                .collect(),
            fallback_routes: AtomicU64::new(0),
            decisions: AtomicU64::new(0),
        }
    }

    fn collect_candidates(table: &RoutingTable, use_quantized: bool) -> NodeCandidates {
        let mut one_hop = Vec::new();
        let mut two_hop = Vec::new();
        for cand in table.candidates(use_quantized) {
            match cand.hop {
                HopCount::One => one_hop.push((cand.node, cand.coordinates)),
                HopCount::Two => two_hop.push((cand.via, cand.node, cand.coordinates)),
            }
        }
        // Presorted by node id: `next_hop` streams the improving set in this
        // order instead of collecting and sorting per decision, which keeps
        // the hot path allocation-free while preserving the exact
        // first-minimum tie-break of the old sort + min_by pipeline.
        one_hop.sort_by_key(|(node, _)| *node);
        NodeCandidates { one_hop, two_hop }
    }

    /// Rebuilds all routing state from the (possibly reconfigured) topology.
    /// The paper performs the equivalent by flipping blocking/valid/hop bits
    /// in the affected routers; rebuilding gives the same end state.
    pub fn resync(&mut self, graph: &AdjacencyGraph, spaces: &VirtualSpaces) {
        let refreshed = Self::from_parts(graph, spaces, self.options);
        self.tables = refreshed.tables;
        self.candidates = refreshed.candidates;
        self.coordinates = refreshed.coordinates;
        self.active = refreshed.active;
        self.adjacency = refreshed.adjacency;
    }

    /// The per-router routing tables (for storage-cost studies).
    #[must_use]
    pub fn tables(&self) -> &[RoutingTable] {
        &self.tables
    }

    /// The options this protocol instance was built with.
    #[must_use]
    pub fn options(&self) -> &GreediestOptions {
        &self.options
    }

    /// Number of forwarding decisions that had to fall back to BFS because no
    /// improving neighbour existed (0 on an un-gated String Figure topology).
    #[must_use]
    pub fn fallback_count(&self) -> u64 {
        self.fallback_routes.load(Ordering::Relaxed)
    }

    /// Total number of forwarding decisions made.
    #[must_use]
    pub fn decision_count(&self) -> u64 {
        self.decisions.load(Ordering::Relaxed)
    }

    /// Minimum circular distance between two nodes' coordinate vectors.
    #[must_use]
    pub fn md(&self, a: NodeId, b: NodeId) -> f64 {
        minimum_circular_distance(&self.coordinates[a.index()], &self.coordinates[b.index()])
    }

    fn check(&self, node: NodeId) -> SfResult<()> {
        if node.index() >= self.coordinates.len() {
            return Err(SfError::UnknownNode {
                node: node.index(),
                network_size: self.coordinates.len(),
            });
        }
        if !self.active[node.index()] {
            return Err(SfError::NodeOffline { node: node.index() });
        }
        Ok(())
    }

    /// BFS escape hatch used when the greedy improving set is empty (only
    /// possible transiently after reconfiguration).
    fn bfs_next_hop(&self, at: NodeId, dest: NodeId) -> SfResult<NodeId> {
        let n = self.adjacency.len();
        let mut prev: Vec<Option<usize>> = vec![None; n];
        let mut visited = vec![false; n];
        visited[at.index()] = true;
        let mut queue = VecDeque::new();
        queue.push_back(at.index());
        while let Some(cur) = queue.pop_front() {
            if cur == dest.index() {
                // Walk back to the first hop.
                let mut hop = cur;
                while let Some(p) = prev[hop] {
                    if p == at.index() {
                        return Ok(NodeId::new(hop));
                    }
                    hop = p;
                }
                return Ok(NodeId::new(hop));
            }
            for next in &self.adjacency[cur] {
                let ni = next.index();
                if !visited[ni] && self.active[ni] {
                    visited[ni] = true;
                    prev[ni] = Some(cur);
                    queue.push_back(ni);
                }
            }
        }
        Err(SfError::RoutingStuck {
            at: at.index(),
            destination: dest.index(),
        })
    }
}

impl RoutingProtocol for GreediestRouting {
    fn name(&self) -> &'static str {
        if self.options.adaptive {
            "greediest-adaptive"
        } else {
            "greediest"
        }
    }

    fn next_hop(
        &self,
        at: NodeId,
        dest: NodeId,
        loads: &dyn PortLoadEstimator,
        ctx: &RoutingContext,
    ) -> SfResult<NodeId> {
        self.check(at)?;
        self.check(dest)?;
        self.decisions.fetch_add(1, Ordering::Relaxed);
        if at == dest {
            return Ok(dest);
        }

        let dest_coords = &self.coordinates[dest.index()];
        let current_md = minimum_circular_distance(&self.coordinates[at.index()], dest_coords);
        let cands = &self.candidates[at.index()];

        // Direct neighbour? Deliver immediately.
        if cands
            .one_hop
            .iter()
            .any(|(node, _)| *node == dest && self.active[dest.index()])
        {
            return Ok(dest);
        }

        // Score an improving neighbour by the best MD reachable through it
        // within one more hop (two-hop lookahead), if enabled.
        let score = |w: NodeId, own_md: f64| -> f64 {
            if !self.options.use_two_hop {
                return own_md;
            }
            let mut best = own_md;
            for (via, target, coords) in &cands.two_hop {
                if *via == w && self.active[target.index()] {
                    let md = if *target == dest {
                        0.0
                    } else {
                        minimum_circular_distance(coords, dest_coords)
                    };
                    if md < best {
                        best = md;
                    }
                }
            }
            best
        };

        // Stream the improving set W (one-hop neighbours strictly closer to
        // the destination in MD) straight out of the presorted candidate
        // list: no per-decision collect or sort. Strict `<` keeps the first
        // minimum in node-id order, matching the old sort + `min_by`
        // tie-break exactly.
        let adaptive = self.options.adaptive && ctx.first_hop;
        let mut best_overall: Option<(NodeId, f64)> = None;
        // Best-scored neighbour whose output queue is below the adaptive
        // threshold; if every improving port is congested, the overall best
        // wins (the paper's behaviour).
        let mut best_under: Option<(NodeId, f64)> = None;
        for (node, coords) in &cands.one_hop {
            if !self.active[node.index()] {
                continue;
            }
            let md = minimum_circular_distance(coords, dest_coords);
            if md >= current_md {
                continue;
            }
            let scored = score(*node, md);
            if best_overall.is_none_or(|(_, best)| scored < best) {
                best_overall = Some((*node, scored));
            }
            if adaptive
                && loads.load(at, *node) < ctx.adaptive_threshold
                && best_under.is_none_or(|(_, best)| scored < best)
            {
                best_under = Some((*node, scored));
            }
        }

        let Some((overall, _)) = best_overall else {
            self.fallback_routes.fetch_add(1, Ordering::Relaxed);
            return self.bfs_next_hop(at, dest);
        };
        if let Some((under, _)) = best_under {
            return Ok(under);
        }
        Ok(overall)
    }

    fn virtual_channel(&self, at: NodeId, _next: NodeId, dest: NodeId) -> VirtualChannelId {
        let at_coords = &self.coordinates[at.index()];
        let dest_coords = &self.coordinates[dest.index()];
        let (space, _) = at_coords.closest_space(dest_coords);
        if dest_coords.coordinate(space) >= at_coords.coordinate(space) {
            VirtualChannelId::UP
        } else {
            VirtualChannelId::DOWN
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::{trace_route, trace_route_with_loads, TableLoad};
    use sf_topology::spaces::paper_figure3_example;
    use sf_types::NetworkConfig;

    fn n(i: usize) -> NodeId {
        NodeId::new(i)
    }

    fn example() -> (StringFigureTopology, GreediestRouting) {
        let config = NetworkConfig::new(9, 4).unwrap();
        let topo = StringFigureTopology::from_spaces(config, paper_figure3_example()).unwrap();
        let routing = GreediestRouting::new(&topo);
        (topo, routing)
    }

    #[test]
    fn paper_worked_example_routes_7_to_2() {
        // Figure 6(a): Node-7 forwards a packet for Node-2 to the neighbour
        // with the smallest MD; the route must reach Node-2 loop-free in a
        // couple of hops.
        let (_, routing) = example();
        let route = trace_route(&routing, n(7), n(2), 9).unwrap();
        assert_eq!(route.source(), n(7));
        assert_eq!(route.destination(), n(2));
        assert!(!route.has_loop());
        assert!(route.hops() <= 3, "route {:?}", route.path);
        // Every hop strictly reduces the MD to the destination.
        for w in route.path.windows(2) {
            assert!(routing.md(w[1], n(2)) < routing.md(w[0], n(2)) || w[1] == n(2));
        }
    }

    #[test]
    fn all_pairs_loop_free_on_small_network() {
        let (_, routing) = example();
        for s in 0..9 {
            for t in 0..9 {
                let route = trace_route(&routing, n(s), n(t), 9).unwrap();
                assert!(!route.has_loop(), "{s}->{t}: {:?}", route.path);
                assert_eq!(route.destination(), n(t));
            }
        }
        assert_eq!(routing.fallback_count(), 0);
    }

    #[test]
    fn loop_free_on_generated_networks() {
        for &(nodes, ports, seed) in &[(61usize, 4usize, 1u64), (128, 4, 2), (200, 8, 3)] {
            let config = NetworkConfig::new(nodes, ports).unwrap().with_seed(seed);
            let topo = StringFigureTopology::generate(&config).unwrap();
            let routing = GreediestRouting::new(&topo);
            let mut max_hops = 0;
            for s in (0..nodes).step_by(7) {
                for t in (0..nodes).step_by(11) {
                    let route = trace_route(&routing, n(s), n(t), nodes).unwrap();
                    assert!(!route.has_loop(), "N={nodes} {s}->{t}");
                    max_hops = max_hops.max(route.hops());
                }
            }
            assert!(
                max_hops <= 3 * ports,
                "N={nodes}: greedy route of {max_hops} hops is suspiciously long"
            );
            assert_eq!(routing.fallback_count(), 0, "N={nodes}");
        }
    }

    #[test]
    fn md_matches_manual_computation() {
        let (topo, routing) = example();
        let a = topo.coordinates(n(7));
        let b = topo.coordinates(n(2));
        assert!((routing.md(n(7), n(2)) - minimum_circular_distance(a, b)).abs() < 1e-12);
        assert_eq!(routing.md(n(3), n(3)), 0.0);
    }

    #[test]
    fn direct_neighbor_is_delivered_immediately() {
        let (topo, routing) = example();
        let neighbor = topo.graph().active_neighbors(n(0))[0];
        let hop = routing
            .next_hop(
                n(0),
                neighbor,
                &crate::protocol::ZeroLoad,
                &RoutingContext::default(),
            )
            .unwrap();
        assert_eq!(hop, neighbor);
    }

    #[test]
    fn self_destination_returns_self() {
        let (_, routing) = example();
        let hop = routing
            .next_hop(
                n(4),
                n(4),
                &crate::protocol::ZeroLoad,
                &RoutingContext::default(),
            )
            .unwrap();
        assert_eq!(hop, n(4));
    }

    #[test]
    fn unknown_and_offline_nodes_are_rejected() {
        let config = NetworkConfig::new(16, 4).unwrap();
        let mut topo = StringFigureTopology::generate(&config).unwrap();
        topo.gate_node(n(5)).unwrap();
        let routing = GreediestRouting::new(&topo);
        let ctx = RoutingContext::default();
        assert!(matches!(
            routing.next_hop(n(0), n(99), &crate::protocol::ZeroLoad, &ctx),
            Err(SfError::UnknownNode { .. })
        ));
        assert!(matches!(
            routing.next_hop(n(0), n(5), &crate::protocol::ZeroLoad, &ctx),
            Err(SfError::NodeOffline { .. })
        ));
        assert!(matches!(
            routing.next_hop(n(5), n(0), &crate::protocol::ZeroLoad, &ctx),
            Err(SfError::NodeOffline { .. })
        ));
    }

    #[test]
    fn routing_still_works_after_gating_with_resync() {
        let config = NetworkConfig::new(64, 4).unwrap();
        let mut topo = StringFigureTopology::generate(&config).unwrap();
        for i in [3usize, 17, 31, 45] {
            topo.gate_node(n(i)).unwrap();
        }
        let mut routing = GreediestRouting::new(&topo);
        routing.resync(topo.graph(), topo.spaces());
        let live: Vec<usize> = (0..64).filter(|i| !topo.is_gated(n(*i))).collect();
        for &s in live.iter().step_by(5) {
            for &t in live.iter().step_by(7) {
                let route = trace_route(&routing, n(s), n(t), 64).unwrap();
                assert!(!route.has_loop());
                assert_eq!(route.destination(), n(t));
                // Gated nodes never appear on a route.
                for hop in &route.path {
                    assert!(!topo.is_gated(*hop));
                }
            }
        }
    }

    #[test]
    fn adaptive_first_hop_avoids_congested_port() {
        let (_, routing) = example();
        // Find a source/destination with at least two improving neighbours.
        let mut found = false;
        'outer: for s in 0..9 {
            for t in 0..9 {
                if s == t {
                    continue;
                }
                let ctx = RoutingContext::default();
                let idle_choice = routing
                    .next_hop(n(s), n(t), &crate::protocol::ZeroLoad, &ctx)
                    .unwrap();
                if idle_choice == n(t) {
                    continue;
                }
                // Congest the idle choice and see whether the router diverts.
                let mut loads = TableLoad::new();
                loads.set(n(s), idle_choice, 0.9);
                let diverted = routing.next_hop(n(s), n(t), &loads, &ctx).unwrap();
                if diverted != idle_choice {
                    found = true;
                    // The diverted hop must still make greedy progress.
                    assert!(routing.md(diverted, n(t)) < routing.md(n(s), n(t)));
                    break 'outer;
                }
            }
        }
        assert!(found, "no source/destination pair exercised path diversity");
    }

    #[test]
    fn adaptive_divergence_only_on_first_hop() {
        let (_, routing) = example();
        let mut loads = TableLoad::new();
        for s in 0..9 {
            for t in 0..9 {
                loads.set(n(s), n(t), 0.9);
            }
        }
        // With every port congested the router falls back to the pure
        // greediest choice, so routes still complete loop-free.
        for s in 0..9 {
            for t in 0..9 {
                let route = trace_route_with_loads(&routing, n(s), n(t), 9, &loads).unwrap();
                assert!(!route.has_loop());
            }
        }
    }

    #[test]
    fn non_adaptive_and_one_hop_only_options() {
        let config = NetworkConfig::new(100, 4).unwrap();
        let topo = StringFigureTopology::generate(&config).unwrap();
        let plain = GreediestRouting::with_options(
            &topo,
            GreediestOptions {
                use_two_hop: false,
                adaptive: false,
                use_quantized: false,
            },
        );
        assert_eq!(plain.name(), "greediest");
        let with_two_hop = GreediestRouting::new(&topo);
        assert_eq!(with_two_hop.name(), "greediest-adaptive");
        let mut total_plain = 0usize;
        let mut total_two_hop = 0usize;
        for s in (0..100).step_by(9) {
            for t in (0..100).step_by(13) {
                total_plain += trace_route(&plain, n(s), n(t), 100).unwrap().hops();
                total_two_hop += trace_route(&with_two_hop, n(s), n(t), 100).unwrap().hops();
            }
        }
        // Two-hop lookahead should never be worse on aggregate.
        assert!(total_two_hop <= total_plain);
    }

    #[test]
    fn quantized_routing_still_loop_free() {
        let config = NetworkConfig::new(128, 4).unwrap();
        let topo = StringFigureTopology::generate(&config).unwrap();
        let routing = GreediestRouting::with_options(
            &topo,
            GreediestOptions {
                use_two_hop: true,
                adaptive: false,
                use_quantized: true,
            },
        );
        for s in (0..128).step_by(11) {
            for t in (0..128).step_by(17) {
                let route = trace_route(&routing, n(s), n(t), 128).unwrap();
                assert!(!route.has_loop());
                assert_eq!(route.destination(), n(t));
            }
        }
    }

    #[test]
    fn virtual_channel_follows_coordinate_direction() {
        let (topo, routing) = example();
        for s in 0..9 {
            for t in 0..9 {
                if s == t {
                    continue;
                }
                let vc = routing.virtual_channel(n(s), n(t), n(t));
                let (space, _) = topo.coordinates(n(s)).closest_space(topo.coordinates(n(t)));
                let up = topo.coordinates(n(t)).coordinate(space)
                    >= topo.coordinates(n(s)).coordinate(space);
                assert_eq!(vc == VirtualChannelId::UP, up);
            }
        }
    }

    #[test]
    fn decision_counters_advance() {
        let (_, routing) = example();
        let before = routing.decision_count();
        let _ = trace_route(&routing, n(0), n(8), 9).unwrap();
        assert!(routing.decision_count() > before);
    }
}
