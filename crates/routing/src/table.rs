//! The per-router routing table of String Figure's compute+table hybrid
//! routing.
//!
//! Each router stores only information about its one- and two-hop neighbours
//! (Section IV, Figure 6b): for every such neighbour and every virtual space
//! one entry holding the neighbour's node number, a blocking bit, a valid bit,
//! a hop bit (one- vs two-hop), the virtual-space number, and the neighbour's
//! 7-bit quantised coordinate in that space. Network reconfiguration only
//! flips the blocking / valid / hop bits — entries are never added or removed
//! after fabrication, which is what makes reconfiguration cheap.

use serde::{Deserialize, Serialize};
use sf_topology::{AdjacencyGraph, VirtualSpaces};
use sf_types::{Coordinate, CoordinateVector, NodeId, QuantizedCoord, SpaceId};
use std::collections::BTreeMap;

/// Whether a routing-table entry describes a one-hop or two-hop neighbour.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum HopCount {
    /// Directly connected neighbour.
    One,
    /// Neighbour of a neighbour, reached via the `via` node of the entry.
    Two,
}

/// One routing-table entry: the coordinate of a (one- or two-hop) neighbour in
/// one virtual space, plus the control bits used by reconfiguration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RoutingTableEntry {
    /// The neighbour this entry describes.
    pub neighbor: NodeId,
    /// The directly connected node through which the neighbour is reached
    /// (equal to `neighbor` for one-hop entries).
    pub via: NodeId,
    /// One- or two-hop.
    pub hop: HopCount,
    /// Virtual space of the stored coordinate.
    pub space: SpaceId,
    /// The neighbour's coordinate in `space`, quantised to 7 bits as stored by
    /// the hardware table.
    pub coordinate: QuantizedCoord,
    /// Full-precision coordinate kept alongside for evaluation of the
    /// quantisation sensitivity (the hardware only stores the 7-bit value).
    pub full_coordinate: Coordinate,
    /// Valid bit: entry refers to a mounted, existing node.
    pub valid: bool,
    /// Blocking bit: set during atomic reconfiguration to freeze the entry.
    pub blocked: bool,
}

impl RoutingTableEntry {
    /// Whether the entry may be used for forwarding decisions right now.
    #[must_use]
    pub fn usable(&self) -> bool {
        self.valid && !self.blocked
    }
}

/// A forwarding candidate assembled from the table: a unique neighbour with
/// its full coordinate vector and the first hop used to reach it.
#[derive(Debug, Clone, PartialEq)]
pub struct CandidateNeighbor {
    /// The candidate (one- or two-hop) neighbour.
    pub node: NodeId,
    /// The directly connected node to forward to in order to reach `node`.
    pub via: NodeId,
    /// One- or two-hop.
    pub hop: HopCount,
    /// The candidate's coordinates in every virtual space.
    pub coordinates: CoordinateVector,
}

/// The routing table of one router.
///
/// # Examples
///
/// ```
/// use sf_routing::table::RoutingTable;
/// use sf_topology::StringFigureTopology;
/// use sf_types::{NetworkConfig, NodeId};
///
/// let topo = StringFigureTopology::generate(&NetworkConfig::new(32, 4)?)?;
/// let table = RoutingTable::build(NodeId::new(0), topo.graph(), topo.spaces());
/// assert!(!table.one_hop_neighbors().is_empty());
/// assert!(table.storage_bits(32, 4) > 0);
/// # Ok::<(), sf_types::SfError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RoutingTable {
    owner: NodeId,
    entries: Vec<RoutingTableEntry>,
}

impl RoutingTable {
    /// Builds the routing table of `owner` from the current link graph and
    /// virtual-space coordinates: one entry per (neighbour, space) for every
    /// active one-hop neighbour and every active two-hop neighbour.
    #[must_use]
    pub fn build(owner: NodeId, graph: &AdjacencyGraph, spaces: &VirtualSpaces) -> Self {
        let mut entries = Vec::new();
        let one_hop = graph.active_neighbors(owner);
        let one_hop_set: std::collections::BTreeSet<NodeId> = one_hop.iter().copied().collect();

        let mut push_entries = |node: NodeId, via: NodeId, hop: HopCount| {
            let coords = spaces.coordinates(node);
            for s in 0..spaces.num_spaces() {
                let space = SpaceId::new(s);
                let full = coords.coordinate(space);
                entries.push(RoutingTableEntry {
                    neighbor: node,
                    via,
                    hop,
                    space,
                    coordinate: full.quantize(),
                    full_coordinate: full,
                    valid: true,
                    blocked: false,
                });
            }
        };

        for &n1 in &one_hop {
            push_entries(n1, n1, HopCount::One);
        }
        // Two-hop neighbours: neighbours of neighbours that are neither the
        // owner nor already one-hop neighbours. Record the first discovered
        // via; subsequent vias are redundant for the hardware table.
        let mut two_hop_via: BTreeMap<NodeId, NodeId> = BTreeMap::new();
        for &n1 in &one_hop {
            for n2 in graph.active_neighbors(n1) {
                if n2 == owner || one_hop_set.contains(&n2) {
                    continue;
                }
                two_hop_via.entry(n2).or_insert(n1);
            }
        }
        for (node, via) in two_hop_via {
            push_entries(node, via, HopCount::Two);
        }

        Self { owner, entries }
    }

    /// The router this table belongs to.
    #[must_use]
    pub fn owner(&self) -> NodeId {
        self.owner
    }

    /// All entries, in insertion order (one-hop first).
    #[must_use]
    pub fn entries(&self) -> &[RoutingTableEntry] {
        &self.entries
    }

    /// Number of entries (rows) in the table.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the table has no entries (an isolated router).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Unique usable one-hop neighbours.
    #[must_use]
    pub fn one_hop_neighbors(&self) -> Vec<NodeId> {
        let mut out: Vec<NodeId> = self
            .entries
            .iter()
            .filter(|e| e.hop == HopCount::One && e.usable())
            .map(|e| e.neighbor)
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Unique usable two-hop neighbours.
    #[must_use]
    pub fn two_hop_neighbors(&self) -> Vec<NodeId> {
        let mut out: Vec<NodeId> = self
            .entries
            .iter()
            .filter(|e| e.hop == HopCount::Two && e.usable())
            .map(|e| e.neighbor)
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Assembles the usable forwarding candidates: every usable neighbour with
    /// its full coordinate vector and first hop. When `use_quantized` is true
    /// the coordinate vectors are reconstructed from the 7-bit values the
    /// hardware would store; otherwise full precision is used.
    #[must_use]
    pub fn candidates(&self, use_quantized: bool) -> Vec<CandidateNeighbor> {
        let mut grouped: BTreeMap<NodeId, (NodeId, HopCount, BTreeMap<usize, Coordinate>)> =
            BTreeMap::new();
        for e in self.entries.iter().filter(|e| e.usable()) {
            let coord = if use_quantized {
                e.coordinate.to_coordinate()
            } else {
                e.full_coordinate
            };
            grouped
                .entry(e.neighbor)
                .or_insert_with(|| (e.via, e.hop, BTreeMap::new()))
                .2
                .insert(e.space.index(), coord);
        }
        grouped
            .into_iter()
            .map(|(node, (via, hop, coords))| CandidateNeighbor {
                node,
                via,
                hop,
                coordinates: CoordinateVector::new(coords.into_values().collect()),
            })
            .collect()
    }

    /// Sets the blocking bit of every entry that refers to (or routes via)
    /// `node`; returns how many entries changed. This is the first step of the
    /// paper's atomic reconfiguration sequence.
    pub fn block_node(&mut self, node: NodeId) -> usize {
        self.flip(node, |e| {
            if !e.blocked {
                e.blocked = true;
                true
            } else {
                false
            }
        })
    }

    /// Clears the blocking bit of every entry that refers to (or routes via)
    /// `node`; returns how many entries changed (the last reconfiguration
    /// step).
    pub fn unblock_node(&mut self, node: NodeId) -> usize {
        self.flip(node, |e| {
            if e.blocked {
                e.blocked = false;
                true
            } else {
                false
            }
        })
    }

    /// Clears the valid bit of every entry that refers to (or routes via)
    /// `node`; returns how many entries changed.
    pub fn invalidate_node(&mut self, node: NodeId) -> usize {
        self.flip(node, |e| {
            if e.valid {
                e.valid = false;
                true
            } else {
                false
            }
        })
    }

    /// Sets the valid bit of every entry that refers to (or routes via)
    /// `node`; returns how many entries changed.
    pub fn revalidate_node(&mut self, node: NodeId) -> usize {
        self.flip(node, |e| {
            if !e.valid {
                e.valid = true;
                true
            } else {
                false
            }
        })
    }

    /// Promotes a two-hop neighbour to one-hop (used when an enabled shortcut
    /// turns a former two-hop neighbour into a direct neighbour); returns how
    /// many entries changed.
    pub fn promote_to_one_hop(&mut self, node: NodeId) -> usize {
        let mut changed = 0;
        for e in &mut self.entries {
            if e.neighbor == node && e.hop == HopCount::Two {
                e.hop = HopCount::One;
                e.via = node;
                changed += 1;
            }
        }
        changed
    }

    fn flip<F: FnMut(&mut RoutingTableEntry) -> bool>(&mut self, node: NodeId, mut f: F) -> usize {
        let mut changed = 0;
        for e in &mut self.entries {
            if (e.neighbor == node || e.via == node) && f(e) {
                changed += 1;
            }
        }
        changed
    }

    /// Storage cost of this table in bits, following the paper's per-entry
    /// layout: `log2(N)` node number + 1 blocking + 1 valid + 1 hop +
    /// `ceil(log2(p/2))` space number + 7-bit coordinate.
    #[must_use]
    pub fn storage_bits(&self, num_nodes: usize, ports: usize) -> u64 {
        let node_bits = (usize::BITS - (num_nodes.max(2) - 1).leading_zeros()) as u64;
        let spaces = (ports / 2).max(1);
        let space_bits = if spaces <= 1 {
            1
        } else {
            (usize::BITS - (spaces - 1).leading_zeros()) as u64
        };
        let per_entry = node_bits + 1 + 1 + 1 + space_bits + 7;
        per_entry * self.entries.len() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sf_topology::spaces::paper_figure3_example;
    use sf_topology::StringFigureTopology;
    use sf_types::NetworkConfig;

    fn n(i: usize) -> NodeId {
        NodeId::new(i)
    }

    fn example_topology() -> StringFigureTopology {
        let config = NetworkConfig::new(9, 4).unwrap();
        StringFigureTopology::from_spaces(config, paper_figure3_example()).unwrap()
    }

    #[test]
    fn builds_one_and_two_hop_entries() {
        let topo = example_topology();
        let table = RoutingTable::build(n(7), topo.graph(), topo.spaces());
        assert_eq!(table.owner(), n(7));
        assert!(!table.is_empty());
        let one_hop = table.one_hop_neighbors();
        // Node-7's graph neighbours must all appear as one-hop entries.
        for nb in topo.graph().active_neighbors(n(7)) {
            assert!(one_hop.contains(&nb), "missing one-hop {nb}");
        }
        // Every entry appears once per virtual space.
        let spaces = topo.spaces().num_spaces();
        assert_eq!(table.len() % spaces, 0);
        // Two-hop neighbours are never also one-hop neighbours.
        let two_hop = table.two_hop_neighbors();
        for t in &two_hop {
            assert!(!one_hop.contains(t));
        }
    }

    #[test]
    fn candidates_have_full_coordinate_vectors() {
        let topo = example_topology();
        let table = RoutingTable::build(n(2), topo.graph(), topo.spaces());
        for cand in table.candidates(false) {
            assert_eq!(cand.coordinates.num_spaces(), 2);
            assert_eq!(
                cand.coordinates.as_slice(),
                topo.coordinates(cand.node).as_slice(),
                "full-precision candidate coordinates must match the topology"
            );
            if cand.hop == HopCount::One {
                assert_eq!(cand.via, cand.node);
            } else {
                assert!(table.one_hop_neighbors().contains(&cand.via));
            }
        }
    }

    #[test]
    fn quantized_candidates_are_close_to_exact() {
        let topo = example_topology();
        let table = RoutingTable::build(n(0), topo.graph(), topo.spaces());
        let exact = table.candidates(false);
        let quantized = table.candidates(true);
        assert_eq!(exact.len(), quantized.len());
        for (e, q) in exact.iter().zip(&quantized) {
            assert_eq!(e.node, q.node);
            for (a, b) in e.coordinates.iter().zip(q.coordinates.iter()) {
                assert!(sf_types::circular_distance(a, b) <= 1.0 / 128.0);
            }
        }
    }

    #[test]
    fn table_size_is_independent_of_network_scale() {
        // The defining scalability property: table entries depend on p, not N.
        let small = StringFigureTopology::generate(&NetworkConfig::new(64, 4).unwrap()).unwrap();
        let large = StringFigureTopology::generate(&NetworkConfig::new(512, 4).unwrap()).unwrap();
        let avg_entries = |topo: &StringFigureTopology| {
            let total: usize = topo
                .graph()
                .nodes()
                .map(|v| RoutingTable::build(v, topo.graph(), topo.spaces()).len())
                .sum();
            total as f64 / topo.graph().num_nodes() as f64
        };
        let small_avg = avg_entries(&small);
        let large_avg = avg_entries(&large);
        assert!(
            (small_avg - large_avg).abs() < small_avg * 0.5,
            "table size should not grow with N: {small_avg} vs {large_avg}"
        );
        // And stays within a small constant related to p(p+1) per the paper.
        assert!(large_avg <= (4 * (4 + 1) * 2) as f64);
    }

    #[test]
    fn storage_bits_accounting() {
        let topo = example_topology();
        let table = RoutingTable::build(n(0), topo.graph(), topo.spaces());
        // N=9 -> 4 node bits, p=4 -> 2 spaces -> 1 space bit, +3 flag bits +7
        // coordinate bits = 15 bits per entry.
        assert_eq!(table.storage_bits(9, 4), 15 * table.len() as u64);
        // 1296 nodes -> 11 node bits, p=8 -> 4 spaces -> 2 space bits.
        assert_eq!(table.storage_bits(1296, 8), 23 * table.len() as u64);
    }

    #[test]
    fn blocking_and_validation_bit_flips() {
        let topo = example_topology();
        let mut table = RoutingTable::build(n(0), topo.graph(), topo.spaces());
        let victim = table.one_hop_neighbors()[0];
        let blocked = table.block_node(victim);
        assert!(blocked > 0);
        assert!(!table.one_hop_neighbors().contains(&victim));
        // Blocking is idempotent.
        assert_eq!(table.block_node(victim), 0);
        let unblocked = table.unblock_node(victim);
        assert_eq!(unblocked, blocked);
        assert!(table.one_hop_neighbors().contains(&victim));

        let invalidated = table.invalidate_node(victim);
        assert_eq!(invalidated, blocked);
        assert!(!table.one_hop_neighbors().contains(&victim));
        assert_eq!(table.revalidate_node(victim), invalidated);
        assert!(table.one_hop_neighbors().contains(&victim));
    }

    #[test]
    fn promote_two_hop_to_one_hop() {
        let topo = example_topology();
        let mut table = RoutingTable::build(n(0), topo.graph(), topo.spaces());
        let two_hop = table.two_hop_neighbors();
        assert!(!two_hop.is_empty());
        let target = two_hop[0];
        let changed = table.promote_to_one_hop(target);
        assert!(changed > 0);
        assert!(table.one_hop_neighbors().contains(&target));
        assert!(!table.two_hop_neighbors().contains(&target));
        // The via pointer of promoted entries is the node itself.
        for e in table.entries().iter().filter(|e| e.neighbor == target) {
            assert_eq!(e.via, target);
            assert_eq!(e.hop, HopCount::One);
        }
    }

    #[test]
    fn entries_report_usability() {
        let mut e = RoutingTableEntry {
            neighbor: n(1),
            via: n(1),
            hop: HopCount::One,
            space: SpaceId::new(0),
            coordinate: QuantizedCoord::from_raw(3).unwrap(),
            full_coordinate: Coordinate::new(0.03).unwrap(),
            valid: true,
            blocked: false,
        };
        assert!(e.usable());
        e.blocked = true;
        assert!(!e.usable());
        e.blocked = false;
        e.valid = false;
        assert!(!e.usable());
    }
}
