//! The routing-protocol abstraction shared by String Figure's greediest
//! routing and all baseline protocols.
//!
//! A [`RoutingProtocol`] makes per-hop forwarding decisions: given the node a
//! packet currently occupies and its destination, it returns the next hop.
//! Adaptive protocols additionally consult a [`PortLoadEstimator`] that
//! reports the occupancy of each outgoing link's queue, which the cycle-level
//! simulator wires to its real queue counters and analysis code stubs out with
//! [`ZeroLoad`].
//!
//! [`trace_route`] walks a protocol hop by hop and returns the full path,
//! which is how the hop-count studies (Figure 9a) and the loop-freedom
//! property tests exercise a protocol without running the full simulator.

use sf_types::{NodeId, SfError, SfResult, VirtualChannelId};

/// Reports the current load (queue occupancy fraction, `0.0..=1.0`) of the
/// outgoing link from one node towards a neighbouring node.
///
/// **Sharded-simulation restriction:** while deciding a hop for a packet at
/// node `n`, a protocol must only query `load(n, x)` — its *own* outgoing
/// links. The sharded kernel's wavefront schedule orders each router after
/// exactly its smaller-id graph neighbours, which makes those counters (and
/// only those) serial-equivalent at decision time; reading the load of some
/// other pair of nodes would observe scheduling-dependent state and break
/// the kernel's bit-identical-for-any-shard-count guarantee. Every protocol
/// in this workspace obeys the restriction.
pub trait PortLoadEstimator {
    /// Occupancy fraction of the output queue from `from` towards `to`.
    fn load(&self, from: NodeId, to: NodeId) -> f64;
}

/// A [`PortLoadEstimator`] that reports an idle network; used for static
/// analysis and as the default when adaptivity is irrelevant.
#[derive(Debug, Clone, Copy, Default)]
pub struct ZeroLoad;

impl PortLoadEstimator for ZeroLoad {
    fn load(&self, _from: NodeId, _to: NodeId) -> f64 {
        0.0
    }
}

/// A [`PortLoadEstimator`] backed by an explicit table of loads, convenient in
/// tests and in the adaptive-routing experiments.
#[derive(Debug, Clone, Default)]
pub struct TableLoad {
    entries: std::collections::HashMap<(usize, usize), f64>,
}

impl TableLoad {
    /// Creates an empty load table (all links idle).
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the load of the link from `from` to `to`.
    pub fn set(&mut self, from: NodeId, to: NodeId, load: f64) {
        self.entries.insert((from.index(), to.index()), load);
    }
}

impl PortLoadEstimator for TableLoad {
    fn load(&self, from: NodeId, to: NodeId) -> f64 {
        self.entries
            .get(&(from.index(), to.index()))
            .copied()
            .unwrap_or(0.0)
    }
}

/// Per-decision context handed to a routing protocol.
#[derive(Debug, Clone, Copy)]
pub struct RoutingContext {
    /// Whether this is the packet's first hop (String Figure only adapts the
    /// first-hop decision).
    pub first_hop: bool,
    /// Queue-occupancy threshold above which adaptive routing avoids a port.
    pub adaptive_threshold: f64,
}

impl Default for RoutingContext {
    fn default() -> Self {
        Self {
            first_hop: true,
            adaptive_threshold: 0.5,
        }
    }
}

/// A memory-network routing protocol.
///
/// Protocols are `Send + Sync`: the sharded simulation kernel shares one
/// protocol instance across all shard workers, so forwarding decisions must
/// be computable from `&self`. Mutable diagnostics (decision counters and the
/// like) use atomics, and their values must never feed back into forwarding
/// decisions (their update order varies across shard schedules).
///
/// When deciding a hop at node `n`, only query the estimator for `n`'s own
/// outgoing links (`loads.load(n, candidate)`) — see the restriction on
/// [`PortLoadEstimator`].
pub trait RoutingProtocol: Send + Sync {
    /// Short name used in experiment output (e.g. `"greediest"`,
    /// `"xy-adaptive"`, `"k-shortest"`).
    fn name(&self) -> &'static str;

    /// Chooses the next hop for a packet at `at` destined for `dest`.
    ///
    /// # Errors
    ///
    /// * [`SfError::UnknownNode`] if either node does not exist.
    /// * [`SfError::NodeOffline`] if either node is powered off.
    /// * [`SfError::RoutingStuck`] if no forwarding choice exists (indicates a
    ///   disconnected or mis-configured network).
    fn next_hop(
        &self,
        at: NodeId,
        dest: NodeId,
        loads: &dyn PortLoadEstimator,
        ctx: &RoutingContext,
    ) -> SfResult<NodeId>;

    /// Virtual channel a packet should use on the hop from `at` to `next`
    /// while travelling to `dest`. The default is a single channel; String
    /// Figure overrides this with its coordinate-direction rule.
    fn virtual_channel(&self, _at: NodeId, _next: NodeId, _dest: NodeId) -> VirtualChannelId {
        VirtualChannelId::UP
    }

    /// Upper bound on route length used by [`trace_route`] to detect
    /// livelock; defaults to four times the node count.
    fn max_hops(&self, num_nodes: usize) -> usize {
        4 * num_nodes.max(4)
    }
}

/// A complete route produced by [`trace_route`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RouteTrace {
    /// Nodes visited, starting with the source and ending with the
    /// destination.
    pub path: Vec<NodeId>,
}

impl RouteTrace {
    /// Number of hops (links traversed).
    #[must_use]
    pub fn hops(&self) -> usize {
        self.path.len().saturating_sub(1)
    }

    /// Whether the route ever visits the same node twice.
    #[must_use]
    pub fn has_loop(&self) -> bool {
        let mut seen = std::collections::HashSet::new();
        self.path.iter().any(|n| !seen.insert(*n))
    }

    /// Source node of the route.
    #[must_use]
    pub fn source(&self) -> NodeId {
        *self.path.first().expect("routes are never empty")
    }

    /// Destination node of the route.
    #[must_use]
    pub fn destination(&self) -> NodeId {
        *self.path.last().expect("routes are never empty")
    }
}

/// Walks `protocol` hop by hop from `from` to `to` on an idle network and
/// returns the visited path.
///
/// # Errors
///
/// Propagates any error from the protocol, and returns
/// [`SfError::RoutingStuck`] if the route exceeds the protocol's
/// [`RoutingProtocol::max_hops`] bound (livelock).
pub fn trace_route<P: RoutingProtocol + ?Sized>(
    protocol: &P,
    from: NodeId,
    to: NodeId,
    num_nodes: usize,
) -> SfResult<RouteTrace> {
    trace_route_with_loads(protocol, from, to, num_nodes, &ZeroLoad)
}

/// Like [`trace_route`] but with an explicit load estimator, so adaptive
/// decisions can be exercised.
///
/// # Errors
///
/// Same conditions as [`trace_route`].
pub fn trace_route_with_loads<P: RoutingProtocol + ?Sized>(
    protocol: &P,
    from: NodeId,
    to: NodeId,
    num_nodes: usize,
    loads: &dyn PortLoadEstimator,
) -> SfResult<RouteTrace> {
    let mut path = vec![from];
    let mut current = from;
    let max_hops = protocol.max_hops(num_nodes);
    let mut ctx = RoutingContext::default();
    while current != to {
        if path.len() > max_hops {
            return Err(SfError::RoutingStuck {
                at: current.index(),
                destination: to.index(),
            });
        }
        let next = protocol.next_hop(current, to, loads, &ctx)?;
        ctx.first_hop = false;
        path.push(next);
        current = next;
    }
    Ok(RouteTrace { path })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A protocol over a ring of `n` nodes that always forwards clockwise.
    struct ClockwiseRing {
        n: usize,
    }

    impl RoutingProtocol for ClockwiseRing {
        fn name(&self) -> &'static str {
            "clockwise-ring"
        }

        fn next_hop(
            &self,
            at: NodeId,
            _dest: NodeId,
            _loads: &dyn PortLoadEstimator,
            _ctx: &RoutingContext,
        ) -> SfResult<NodeId> {
            Ok(NodeId::new((at.index() + 1) % self.n))
        }
    }

    /// A protocol that never makes progress, for livelock detection tests.
    struct Stuck;

    impl RoutingProtocol for Stuck {
        fn name(&self) -> &'static str {
            "stuck"
        }

        fn next_hop(
            &self,
            at: NodeId,
            _dest: NodeId,
            _loads: &dyn PortLoadEstimator,
            _ctx: &RoutingContext,
        ) -> SfResult<NodeId> {
            Ok(at)
        }

        fn max_hops(&self, _num_nodes: usize) -> usize {
            8
        }
    }

    #[test]
    fn trace_route_on_ring() {
        let proto = ClockwiseRing { n: 6 };
        let route = trace_route(&proto, NodeId::new(1), NodeId::new(4), 6).unwrap();
        assert_eq!(route.hops(), 3);
        assert_eq!(route.source(), NodeId::new(1));
        assert_eq!(route.destination(), NodeId::new(4));
        assert!(!route.has_loop());
    }

    #[test]
    fn trace_route_to_self_is_empty() {
        let proto = ClockwiseRing { n: 6 };
        let route = trace_route(&proto, NodeId::new(2), NodeId::new(2), 6).unwrap();
        assert_eq!(route.hops(), 0);
        assert!(!route.has_loop());
    }

    #[test]
    fn livelock_is_detected() {
        let proto = Stuck;
        let err = trace_route(&proto, NodeId::new(0), NodeId::new(3), 6).unwrap_err();
        assert!(matches!(err, SfError::RoutingStuck { .. }));
    }

    #[test]
    fn loop_detection_in_trace() {
        let trace = RouteTrace {
            path: vec![
                NodeId::new(0),
                NodeId::new(1),
                NodeId::new(0),
                NodeId::new(2),
            ],
        };
        assert!(trace.has_loop());
        assert_eq!(trace.hops(), 3);
    }

    #[test]
    fn load_estimators() {
        let zero = ZeroLoad;
        assert_eq!(zero.load(NodeId::new(0), NodeId::new(1)), 0.0);
        let mut table = TableLoad::new();
        table.set(NodeId::new(0), NodeId::new(1), 0.75);
        assert_eq!(table.load(NodeId::new(0), NodeId::new(1)), 0.75);
        assert_eq!(table.load(NodeId::new(1), NodeId::new(0)), 0.0);
    }

    #[test]
    fn default_context_and_vc() {
        let ctx = RoutingContext::default();
        assert!(ctx.first_hop);
        assert!((ctx.adaptive_threshold - 0.5).abs() < 1e-12);
        let proto = ClockwiseRing { n: 4 };
        assert_eq!(
            proto.virtual_channel(NodeId::new(0), NodeId::new(1), NodeId::new(2)),
            VirtualChannelId::UP
        );
        assert_eq!(proto.max_hops(10), 40);
        assert_eq!(proto.name(), "clockwise-ring");
    }
}
