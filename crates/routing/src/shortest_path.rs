//! Look-up-table shortest-path routing for the structured baselines.
//!
//! Flattened Butterfly / Adapted FB use "minimal + adaptive" routing and
//! Jellyfish-style random graphs use k-shortest-path tables (Figure 8). Both
//! are modelled here by a per-destination next-hop table computed with
//! breadth-first search: every router stores, for every destination, the set
//! of neighbours that lie on *some* shortest path, and the adaptive variant
//! picks the least-loaded of them at each hop.
//!
//! The point the paper makes about this class of protocols is their storage
//! cost: the table has `O(N)` entries per router (times the path diversity),
//! in contrast to String Figure's `O(p^2)` entries. [`ShortestPathRouting::
//! storage_entries`] exposes that cost so the routing-overhead comparison can
//! be reproduced.

use crate::protocol::{PortLoadEstimator, RoutingContext, RoutingProtocol};
use sf_topology::AdjacencyGraph;
use sf_types::{NodeId, SfError, SfResult, VirtualChannelId};
use std::collections::VecDeque;

/// Minimal (shortest-path) table routing with optional adaptive selection
/// among equal-progress next hops.
///
/// # Examples
///
/// ```
/// use sf_routing::{ShortestPathRouting, trace_route};
/// use sf_topology::{baselines::MemoryNetworkTopology, FlattenedButterfly};
/// use sf_types::NodeId;
///
/// let fb = FlattenedButterfly::full(64)?;
/// let routing = ShortestPathRouting::new(fb.graph(), "fb-minimal-adaptive");
/// let route = trace_route(&routing, NodeId::new(0), NodeId::new(63), 64)?;
/// assert!(route.hops() <= 2);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct ShortestPathRouting {
    name: &'static str,
    num_nodes: usize,
    active: Vec<bool>,
    /// `distance[dest][node]` = hops from `node` to `dest` (u32::MAX if
    /// unreachable).
    distance: Vec<Vec<u32>>,
    /// `next_hops[dest][node]` = neighbours of `node` on a shortest path
    /// towards `dest`.
    next_hops: Vec<Vec<Vec<NodeId>>>,
    adaptive: bool,
}

impl ShortestPathRouting {
    /// Builds the routing tables (BFS from every destination) for the active
    /// subgraph of `graph`.
    #[must_use]
    pub fn new(graph: &AdjacencyGraph, name: &'static str) -> Self {
        Self::with_adaptivity(graph, name, true)
    }

    /// Builds the routing tables with or without adaptive next-hop selection.
    #[must_use]
    pub fn with_adaptivity(graph: &AdjacencyGraph, name: &'static str, adaptive: bool) -> Self {
        let n = graph.num_nodes();
        let active: Vec<bool> = (0..n).map(|i| graph.is_active(NodeId::new(i))).collect();
        let adjacency: Vec<Vec<NodeId>> = (0..n)
            .map(|i| graph.active_neighbors(NodeId::new(i)))
            .collect();

        let mut distance = vec![vec![u32::MAX; n]; n];
        let mut next_hops = vec![vec![Vec::new(); n]; n];
        for dest in 0..n {
            if !active[dest] {
                continue;
            }
            let dist = &mut distance[dest];
            dist[dest] = 0;
            let mut queue = VecDeque::new();
            queue.push_back(dest);
            while let Some(cur) = queue.pop_front() {
                for nb in &adjacency[cur] {
                    let ni = nb.index();
                    if dist[ni] == u32::MAX {
                        dist[ni] = dist[cur] + 1;
                        queue.push_back(ni);
                    }
                }
            }
            // A neighbour is a valid next hop towards `dest` if it is strictly
            // closer to `dest`.
            for node in 0..n {
                if !active[node] || dist[node] == u32::MAX || node == dest {
                    continue;
                }
                let hops: Vec<NodeId> = adjacency[node]
                    .iter()
                    .filter(|nb| dist[nb.index()] < dist[node])
                    .copied()
                    .collect();
                next_hops[dest][node] = hops;
            }
        }
        Self {
            name,
            num_nodes: n,
            active,
            distance,
            next_hops,
            adaptive,
        }
    }

    /// Hop distance from `from` to `to`, if reachable.
    #[must_use]
    pub fn distance(&self, from: NodeId, to: NodeId) -> Option<u32> {
        let d = self.distance[to.index()][from.index()];
        (d != u32::MAX).then_some(d)
    }

    /// Total number of (router, destination, next-hop) entries stored across
    /// the network — the forwarding-state cost the paper contrasts with
    /// String Figure's constant-size tables.
    #[must_use]
    pub fn storage_entries(&self) -> u64 {
        self.next_hops
            .iter()
            .flat_map(|per_dest| per_dest.iter())
            .map(|hops| hops.len() as u64)
            .sum()
    }

    fn check(&self, node: NodeId) -> SfResult<()> {
        if node.index() >= self.num_nodes {
            return Err(SfError::UnknownNode {
                node: node.index(),
                network_size: self.num_nodes,
            });
        }
        if !self.active[node.index()] {
            return Err(SfError::NodeOffline { node: node.index() });
        }
        Ok(())
    }
}

impl RoutingProtocol for ShortestPathRouting {
    fn name(&self) -> &'static str {
        self.name
    }

    fn next_hop(
        &self,
        at: NodeId,
        dest: NodeId,
        loads: &dyn PortLoadEstimator,
        ctx: &RoutingContext,
    ) -> SfResult<NodeId> {
        self.check(at)?;
        self.check(dest)?;
        if at == dest {
            return Ok(dest);
        }
        let options = &self.next_hops[dest.index()][at.index()];
        if options.is_empty() {
            return Err(SfError::RoutingStuck {
                at: at.index(),
                destination: dest.index(),
            });
        }
        if self.adaptive {
            if let Some(&nb) = options
                .iter()
                .find(|&&nb| loads.load(at, nb) < ctx.adaptive_threshold)
            {
                return Ok(nb);
            }
        }
        Ok(options[0])
    }

    fn virtual_channel(&self, at: NodeId, _next: NodeId, dest: NodeId) -> VirtualChannelId {
        if dest.index() >= at.index() {
            VirtualChannelId::UP
        } else {
            VirtualChannelId::DOWN
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::{trace_route, TableLoad, ZeroLoad};
    use sf_topology::{FlattenedButterfly, JellyfishTopology, MemoryNetworkTopology};

    fn n(i: usize) -> NodeId {
        NodeId::new(i)
    }

    #[test]
    fn routes_are_shortest_on_fb() {
        let fb = FlattenedButterfly::full(36).unwrap();
        let routing = ShortestPathRouting::new(fb.graph(), "fb");
        for s in 0..36 {
            for t in 0..36 {
                let route = trace_route(&routing, n(s), n(t), 36).unwrap();
                assert_eq!(route.hops() as u32, routing.distance(n(s), n(t)).unwrap());
                assert!(!route.has_loop());
            }
        }
    }

    #[test]
    fn routes_are_shortest_on_jellyfish() {
        let jelly = JellyfishTopology::generate(80, 4, 5).unwrap();
        let routing = ShortestPathRouting::new(jelly.graph(), "jellyfish-ksp");
        for s in (0..80).step_by(3) {
            for t in (0..80).step_by(7) {
                let route = trace_route(&routing, n(s), n(t), 80).unwrap();
                assert_eq!(route.hops() as u32, routing.distance(n(s), n(t)).unwrap());
            }
        }
    }

    #[test]
    fn storage_grows_with_network_size() {
        let small = JellyfishTopology::generate(50, 4, 1).unwrap();
        let large = JellyfishTopology::generate(200, 4, 1).unwrap();
        let small_entries =
            ShortestPathRouting::new(small.graph(), "jf").storage_entries() as f64 / 50.0;
        let large_entries =
            ShortestPathRouting::new(large.graph(), "jf").storage_entries() as f64 / 200.0;
        // Per-router forwarding state grows roughly linearly with N, unlike
        // String Figure's constant-size tables.
        assert!(large_entries > 2.5 * small_entries);
    }

    #[test]
    fn adaptive_selection_diverts_under_load() {
        let fb = FlattenedButterfly::full(16).unwrap();
        let routing = ShortestPathRouting::new(fb.graph(), "fb");
        let ctx = RoutingContext::default();
        // Find a pair with at least two minimal next hops.
        let mut exercised = false;
        for s in 0..16 {
            for t in 0..16 {
                if s == t {
                    continue;
                }
                let first = routing.next_hop(n(s), n(t), &ZeroLoad, &ctx).unwrap();
                let mut loads = TableLoad::new();
                loads.set(n(s), first, 0.95);
                let second = routing.next_hop(n(s), n(t), &loads, &ctx).unwrap();
                if second != first {
                    exercised = true;
                    assert_eq!(
                        routing.distance(n(second.index()), n(t)),
                        routing.distance(n(first.index()), n(t)),
                        "diverted hop must still be minimal"
                    );
                }
            }
        }
        assert!(exercised);
    }

    #[test]
    fn non_adaptive_is_deterministic() {
        let fb = FlattenedButterfly::full(16).unwrap();
        let routing = ShortestPathRouting::with_adaptivity(fb.graph(), "fb", false);
        let ctx = RoutingContext::default();
        let choice = routing.next_hop(n(0), n(15), &ZeroLoad, &ctx).unwrap();
        let mut loads = TableLoad::new();
        loads.set(n(0), choice, 0.99);
        assert_eq!(routing.next_hop(n(0), n(15), &loads, &ctx).unwrap(), choice);
    }

    #[test]
    fn gated_nodes_are_avoided() {
        let jelly = JellyfishTopology::generate(40, 4, 2).unwrap();
        let mut graph = jelly.graph().clone();
        graph.set_active(n(7), false).unwrap();
        let routing = ShortestPathRouting::new(&graph, "jf");
        let ctx = RoutingContext::default();
        assert!(matches!(
            routing.next_hop(n(7), n(3), &ZeroLoad, &ctx),
            Err(SfError::NodeOffline { .. })
        ));
        for s in (0..40).step_by(3) {
            if s == 7 {
                continue;
            }
            for t in (0..40).step_by(5) {
                if t == 7 || t == s {
                    continue;
                }
                let route = trace_route(&routing, n(s), n(t), 40).unwrap();
                assert!(!route.path.contains(&n(7)));
            }
        }
    }

    #[test]
    fn unknown_node_rejected_and_self_route() {
        let fb = FlattenedButterfly::full(9).unwrap();
        let routing = ShortestPathRouting::new(fb.graph(), "fb");
        let ctx = RoutingContext::default();
        assert!(routing.next_hop(n(0), n(100), &ZeroLoad, &ctx).is_err());
        assert_eq!(routing.next_hop(n(4), n(4), &ZeroLoad, &ctx).unwrap(), n(4));
        assert_eq!(routing.distance(n(4), n(4)), Some(0));
        // Nodes 0 and 8 share neither a row nor a column on the 3x3 grid, so
        // the minimal path is exactly two hops.
        assert_eq!(routing.distance(n(0), n(8)), Some(2));
    }
}
