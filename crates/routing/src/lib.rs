//! # `sf-routing`
//!
//! Routing protocols for the String Figure memory-network reproduction
//! (HPCA 2019): the paper's compute+table hybrid *greediest* routing with
//! adaptive first-hop selection and virtual-channel deadlock avoidance, plus
//! the baseline protocols used in its evaluation (greedy/adaptive mesh routing
//! and minimal look-up-table routing for FB/AFB/Jellyfish/S2-ideal).
//!
//! ## Modules
//!
//! * [`protocol`] — the [`RoutingProtocol`] trait, load estimators, and
//!   [`trace_route`] for hop-by-hop protocol walks.
//! * [`table`] — the per-router routing table with blocking / valid / hop
//!   bits and 7-bit quantised coordinates.
//! * [`greediest`] — String Figure's adaptive greediest routing.
//! * [`mesh`] — greedy + adaptive mesh routing (DM/ODM).
//! * [`shortest_path`] — minimal look-up-table routing (FB, AFB, Jellyfish,
//!   S2-ideal).
//!
//! ## Example
//!
//! ```
//! use sf_routing::{trace_route, GreediestRouting};
//! use sf_topology::StringFigureTopology;
//! use sf_types::{NetworkConfig, NodeId};
//!
//! let topology = StringFigureTopology::generate(&NetworkConfig::new(128, 4)?)?;
//! let routing = GreediestRouting::new(&topology);
//! let route = trace_route(&routing, NodeId::new(0), NodeId::new(100), 128)?;
//! assert!(!route.has_loop());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

pub mod greediest;
pub mod mesh;
pub mod protocol;
pub mod shortest_path;
pub mod table;

pub use greediest::{GreediestOptions, GreediestRouting};
pub use mesh::MeshRouting;
pub use protocol::{
    trace_route, trace_route_with_loads, PortLoadEstimator, RouteTrace, RoutingContext,
    RoutingProtocol, TableLoad, ZeroLoad,
};
pub use shortest_path::ShortestPathRouting;
pub use table::{CandidateNeighbor, HopCount, RoutingTable, RoutingTableEntry};
