//! Greedy + adaptive routing for the Distributed Mesh (DM) and Optimized
//! Distributed Mesh (ODM) baselines.
//!
//! Each hop forwards to the active neighbour that minimises the remaining
//! Manhattan distance to the destination on the mesh grid (dimension-ordered
//! progress); when several neighbours make equal progress (which happens with
//! ODM express links and at the turn point of XY routes), the adaptive variant
//! prefers the least-loaded output port. Because the Manhattan distance to the
//! destination strictly decreases at every hop, routes are loop-free.

use crate::protocol::{PortLoadEstimator, RoutingContext, RoutingProtocol};
use sf_topology::baselines::MemoryNetworkTopology;
use sf_topology::MeshTopology;
use sf_types::{NodeId, SfError, SfResult, VirtualChannelId};

/// Greedy Manhattan-distance routing over a mesh (DM/ODM).
///
/// # Examples
///
/// ```
/// use sf_routing::{MeshRouting, trace_route};
/// use sf_topology::MeshTopology;
/// use sf_types::NodeId;
///
/// let mesh = MeshTopology::distributed(16)?;
/// let routing = MeshRouting::new(&mesh);
/// let route = trace_route(&routing, NodeId::new(0), NodeId::new(15), 16)?;
/// assert_eq!(route.hops(), 6); // 3 hops in x plus 3 hops in y
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct MeshRouting {
    positions: Vec<(usize, usize)>,
    adjacency: Vec<Vec<NodeId>>,
    active: Vec<bool>,
    adaptive: bool,
}

impl MeshRouting {
    /// Builds adaptive mesh routing state from a mesh topology.
    #[must_use]
    pub fn new(mesh: &MeshTopology) -> Self {
        Self::with_adaptivity(mesh, true)
    }

    /// Builds mesh routing with or without load-adaptive tie breaking.
    #[must_use]
    pub fn with_adaptivity(mesh: &MeshTopology, adaptive: bool) -> Self {
        let n = mesh.num_nodes();
        Self {
            positions: (0..n).map(|i| mesh.position(NodeId::new(i))).collect(),
            adjacency: (0..n)
                .map(|i| mesh.graph().active_neighbors(NodeId::new(i)))
                .collect(),
            active: (0..n)
                .map(|i| mesh.graph().is_active(NodeId::new(i)))
                .collect(),
            adaptive,
        }
    }

    fn manhattan(&self, a: NodeId, b: NodeId) -> usize {
        let (ar, ac) = self.positions[a.index()];
        let (br, bc) = self.positions[b.index()];
        ar.abs_diff(br) + ac.abs_diff(bc)
    }

    fn check(&self, node: NodeId) -> SfResult<()> {
        if node.index() >= self.positions.len() {
            return Err(SfError::UnknownNode {
                node: node.index(),
                network_size: self.positions.len(),
            });
        }
        if !self.active[node.index()] {
            return Err(SfError::NodeOffline { node: node.index() });
        }
        Ok(())
    }
}

impl RoutingProtocol for MeshRouting {
    fn name(&self) -> &'static str {
        if self.adaptive {
            "mesh-greedy-adaptive"
        } else {
            "mesh-greedy"
        }
    }

    fn next_hop(
        &self,
        at: NodeId,
        dest: NodeId,
        loads: &dyn PortLoadEstimator,
        ctx: &RoutingContext,
    ) -> SfResult<NodeId> {
        self.check(at)?;
        self.check(dest)?;
        if at == dest {
            return Ok(dest);
        }
        let current = self.manhattan(at, dest);
        let mut improving: Vec<(NodeId, usize)> = self.adjacency[at.index()]
            .iter()
            .filter(|nb| self.active[nb.index()])
            .map(|&nb| (nb, self.manhattan(nb, dest)))
            .filter(|&(_, d)| d < current)
            .collect();
        if improving.is_empty() {
            return Err(SfError::RoutingStuck {
                at: at.index(),
                destination: dest.index(),
            });
        }
        improving.sort_by_key(|&(nb, d)| (d, nb));
        if self.adaptive {
            let best_distance = improving[0].1;
            // Among the neighbours with the best progress, prefer an
            // uncongested port.
            if let Some(&(nb, _)) = improving
                .iter()
                .take_while(|&&(_, d)| d == best_distance)
                .find(|&&(nb, _)| loads.load(at, nb) < ctx.adaptive_threshold)
            {
                return Ok(nb);
            }
        }
        Ok(improving[0].0)
    }

    fn virtual_channel(&self, at: NodeId, _next: NodeId, dest: NodeId) -> VirtualChannelId {
        // Classic dateline-free scheme for minimal mesh routing: one channel
        // towards higher node indices, the other towards lower.
        if dest.index() >= at.index() {
            VirtualChannelId::UP
        } else {
            VirtualChannelId::DOWN
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::{trace_route, trace_route_with_loads, TableLoad, ZeroLoad};

    fn n(i: usize) -> NodeId {
        NodeId::new(i)
    }

    #[test]
    fn routes_follow_manhattan_distance() {
        let mesh = MeshTopology::distributed(16).unwrap();
        let routing = MeshRouting::new(&mesh);
        for s in 0..16 {
            for t in 0..16 {
                let route = trace_route(&routing, n(s), n(t), 16).unwrap();
                assert!(!route.has_loop());
                assert_eq!(route.hops(), routing.manhattan(n(s), n(t)));
            }
        }
    }

    #[test]
    fn odm_express_links_shorten_routes() {
        let dm = MeshTopology::distributed(64).unwrap();
        let odm = MeshTopology::optimized(64).unwrap();
        let dm_routing = MeshRouting::new(&dm);
        let odm_routing = MeshRouting::new(&odm);
        let mut dm_total = 0;
        let mut odm_total = 0;
        for s in (0..64).step_by(5) {
            for t in (0..64).step_by(7) {
                dm_total += trace_route(&dm_routing, n(s), n(t), 64).unwrap().hops();
                odm_total += trace_route(&odm_routing, n(s), n(t), 64).unwrap().hops();
            }
        }
        assert!(odm_total < dm_total);
    }

    #[test]
    fn adaptive_tie_breaking_prefers_idle_port() {
        let mesh = MeshTopology::distributed(16).unwrap();
        let routing = MeshRouting::new(&mesh);
        // From node 0 to node 5 both node 1 (east) and node 4 (south) make
        // equal progress.
        let ctx = RoutingContext::default();
        let default_choice = routing.next_hop(n(0), n(5), &ZeroLoad, &ctx).unwrap();
        let mut loads = TableLoad::new();
        loads.set(n(0), default_choice, 0.9);
        let diverted = routing.next_hop(n(0), n(5), &loads, &ctx).unwrap();
        assert_ne!(diverted, default_choice);
        assert_eq!(routing.manhattan(diverted, n(5)), 1);
    }

    #[test]
    fn non_adaptive_ignores_load() {
        let mesh = MeshTopology::distributed(16).unwrap();
        let routing = MeshRouting::with_adaptivity(&mesh, false);
        assert_eq!(routing.name(), "mesh-greedy");
        let ctx = RoutingContext::default();
        let choice = routing.next_hop(n(0), n(5), &ZeroLoad, &ctx).unwrap();
        let mut loads = TableLoad::new();
        loads.set(n(0), choice, 0.99);
        assert_eq!(routing.next_hop(n(0), n(5), &loads, &ctx).unwrap(), choice);
    }

    #[test]
    fn congested_network_routes_remain_loop_free() {
        let mesh = MeshTopology::distributed(25).unwrap();
        let routing = MeshRouting::new(&mesh);
        let mut loads = TableLoad::new();
        for a in 0..25 {
            for b in 0..25 {
                loads.set(n(a), n(b), 0.8);
            }
        }
        for s in 0..25 {
            for t in 0..25 {
                let route = trace_route_with_loads(&routing, n(s), n(t), 25, &loads).unwrap();
                assert!(!route.has_loop());
            }
        }
    }

    #[test]
    fn unknown_nodes_rejected_and_self_route() {
        let mesh = MeshTopology::distributed(9).unwrap();
        let routing = MeshRouting::new(&mesh);
        let ctx = RoutingContext::default();
        assert!(matches!(
            routing.next_hop(n(0), n(100), &ZeroLoad, &ctx),
            Err(SfError::UnknownNode { .. })
        ));
        assert_eq!(routing.next_hop(n(3), n(3), &ZeroLoad, &ctx).unwrap(), n(3));
    }

    #[test]
    fn virtual_channels_split_by_direction() {
        let mesh = MeshTopology::distributed(9).unwrap();
        let routing = MeshRouting::new(&mesh);
        assert_eq!(
            routing.virtual_channel(n(0), n(1), n(8)),
            VirtualChannelId::UP
        );
        assert_eq!(
            routing.virtual_channel(n(8), n(7), n(0)),
            VirtualChannelId::DOWN
        );
    }
}
