//! Jellyfish: a sufficiently-uniform random regular graph baseline.
//!
//! Jellyfish (Singla et al., NSDI'12) interconnects switches as a random
//! `r`-regular graph and showed that such graphs achieve near-optimal
//! throughput and path lengths. The paper uses it in Figure 5 as the reference
//! for "sufficiently uniform random graphs" when arguing that String Figure's
//! constructed topology has the same path-length scaling.
//!
//! The construction here follows Jellyfish's incremental procedure: repeatedly
//! connect random pairs of nodes that both have free ports and are not yet
//! connected; when the process gets stuck with free ports remaining, break an
//! existing random edge and splice the stuck node into it.

use crate::baselines::MemoryNetworkTopology;
use crate::graph::{AdjacencyGraph, EdgeKind};
use serde::{Deserialize, Serialize};
use sf_types::{DeterministicRng, NodeId, SfError, SfResult};

/// A random `r`-regular (or nearly regular) graph topology.
///
/// # Examples
///
/// ```
/// use sf_topology::baselines::{JellyfishTopology, MemoryNetworkTopology};
///
/// let jelly = JellyfishTopology::generate(100, 4, 7)?;
/// assert_eq!(jelly.num_nodes(), 100);
/// assert!(jelly.graph().is_connected());
/// assert!(jelly.graph().max_degree() <= 4);
/// # Ok::<(), sf_types::SfError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JellyfishTopology {
    degree: usize,
    seed: u64,
    graph: AdjacencyGraph,
}

impl JellyfishTopology {
    /// Generates a random graph over `nodes` nodes where every node has (at
    /// most, and almost always exactly) `degree` links.
    ///
    /// # Errors
    ///
    /// Returns [`SfError::InvalidConfiguration`] if fewer than `degree + 1`
    /// nodes are requested or `degree < 2`.
    pub fn generate(nodes: usize, degree: usize, seed: u64) -> SfResult<Self> {
        if degree < 2 {
            return Err(SfError::InvalidConfiguration {
                reason: format!("jellyfish needs degree of at least 2, got {degree}"),
            });
        }
        if nodes <= degree {
            return Err(SfError::InvalidConfiguration {
                reason: format!(
                    "jellyfish with degree {degree} needs more than {degree} nodes, got {nodes}"
                ),
            });
        }
        let mut rng = DeterministicRng::new(seed);
        let mut graph = AdjacencyGraph::new(nodes);
        let free = |g: &AdjacencyGraph, v: usize| degree.saturating_sub(g.degree(NodeId::new(v)));

        // Phase 1: connect random non-adjacent pairs with free ports.
        let mut stall = 0usize;
        while stall < nodes * degree * 4 {
            let candidates: Vec<usize> = (0..nodes).filter(|&v| free(&graph, v) > 0).collect();
            if candidates.len() < 2 {
                break;
            }
            let u = candidates[rng.next_index(candidates.len())];
            let v = candidates[rng.next_index(candidates.len())];
            if u == v || graph.has_edge(NodeId::new(u), NodeId::new(v)) {
                stall += 1;
                continue;
            }
            graph.add_edge(NodeId::new(u), NodeId::new(v), EdgeKind::Structured)?;
            stall = 0;
        }

        // Phase 2: splice any node that still has two or more free ports into
        // a random existing edge (Jellyfish's incremental-expansion step).
        for v in 0..nodes {
            let mut guard = 0;
            while free(&graph, v) >= 2 && guard < 100 {
                guard += 1;
                let edges = graph.active_edges();
                if edges.is_empty() {
                    break;
                }
                let e = edges[rng.next_index(edges.len())];
                if e.a.index() == v
                    || e.b.index() == v
                    || graph.has_edge(NodeId::new(v), e.a)
                    || graph.has_edge(NodeId::new(v), e.b)
                {
                    continue;
                }
                graph.remove_edge(e.a, e.b);
                graph.add_edge(NodeId::new(v), e.a, EdgeKind::Structured)?;
                graph.add_edge(NodeId::new(v), e.b, EdgeKind::Structured)?;
            }
        }

        Ok(Self {
            degree,
            seed,
            graph,
        })
    }

    /// The target degree `r` of the random regular graph.
    #[must_use]
    pub fn degree(&self) -> usize {
        self.degree
    }

    /// Seed used to generate this topology.
    #[must_use]
    pub fn seed(&self) -> u64 {
        self.seed
    }
}

impl MemoryNetworkTopology for JellyfishTopology {
    fn name(&self) -> &'static str {
        "Jellyfish"
    }

    fn graph(&self) -> &AdjacencyGraph {
        &self.graph
    }

    fn router_ports(&self) -> usize {
        self.degree
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::average_shortest_path_length;

    #[test]
    fn generates_connected_nearly_regular_graph() {
        for &(n, r) in &[(20, 3), (100, 4), (200, 8)] {
            let j = JellyfishTopology::generate(n, r, 1).unwrap();
            assert!(j.graph().is_connected(), "N={n} r={r}");
            assert!(j.graph().max_degree() <= r);
            // Almost every node should reach full degree.
            let full = (0..n)
                .filter(|&v| j.graph().degree(NodeId::new(v)) == r)
                .count();
            assert!(full * 10 >= n * 9, "only {full}/{n} nodes at full degree");
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let a = JellyfishTopology::generate(64, 4, 9).unwrap();
        let b = JellyfishTopology::generate(64, 4, 9).unwrap();
        assert_eq!(a, b);
        let c = JellyfishTopology::generate(64, 4, 10).unwrap();
        assert_ne!(a, c);
        assert_eq!(a.seed(), 9);
        assert_eq!(a.degree(), 4);
    }

    #[test]
    fn path_length_scales_logarithmically() {
        let small = JellyfishTopology::generate(100, 8, 3).unwrap();
        let large = JellyfishTopology::generate(800, 8, 3).unwrap();
        let a = average_shortest_path_length(small.graph());
        let b = average_shortest_path_length(large.graph());
        // 8x more nodes should cost far less than 2x the path length.
        assert!(b < 1.8 * a, "small {a}, large {b}");
        assert!(b < 5.0);
    }

    #[test]
    fn invalid_configurations_rejected() {
        assert!(JellyfishTopology::generate(4, 1, 0).is_err());
        assert!(JellyfishTopology::generate(4, 4, 0).is_err());
        assert!(JellyfishTopology::generate(5, 4, 0).is_ok());
    }
}
