//! Flattened Butterfly (FB) and Adapted Flattened Butterfly (AFB) baselines.
//!
//! A 2D flattened butterfly places nodes on an `a x b` grid and fully connects
//! every row and every column, giving one- or two-hop paths between any pair
//! at the cost of high-radix routers (`(a-1) + (b-1)` ports) whose port count
//! grows with network scale — exactly the scaling cost the paper criticises.
//!
//! The *adapted* FB (AFB) is the paper's bisection-matched variant: each row
//! and column is partitioned into contiguous groups that are fully connected
//! internally, with single bridge links between adjacent groups. This roughly
//! halves the router radix (Figure 8's AFB port counts) while preserving the
//! low-diameter structure.

use crate::baselines::MemoryNetworkTopology;
use crate::graph::{AdjacencyGraph, EdgeKind};
use serde::{Deserialize, Serialize};
use sf_types::{NodeId, SfError, SfResult};

/// A 2D flattened-butterfly topology, optionally partitioned (AFB).
///
/// # Examples
///
/// ```
/// use sf_topology::baselines::{FlattenedButterfly, MemoryNetworkTopology};
///
/// let fb = FlattenedButterfly::full(64)?;
/// // Any two nodes are at most two hops apart in a full 2D FB.
/// let stats = sf_topology::analysis::path_length_stats(fb.graph());
/// assert!(stats.diameter <= 2);
///
/// let afb = FlattenedButterfly::adapted(64)?;
/// assert!(afb.router_ports() < fb.router_ports());
/// # Ok::<(), sf_types::SfError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FlattenedButterfly {
    rows: usize,
    cols: usize,
    partitions: usize,
    graph: AdjacencyGraph,
    name: &'static str,
}

impl FlattenedButterfly {
    /// Builds a full 2D flattened butterfly (every row and column is a
    /// clique).
    ///
    /// # Errors
    ///
    /// Returns [`SfError::InvalidConfiguration`] if fewer than 2 nodes are
    /// requested.
    pub fn full(nodes: usize) -> SfResult<Self> {
        Self::build(nodes, 1, "FB")
    }

    /// Builds an adapted (partitioned) flattened butterfly with each row and
    /// column split into two groups.
    ///
    /// # Errors
    ///
    /// Returns [`SfError::InvalidConfiguration`] if fewer than 2 nodes are
    /// requested.
    pub fn adapted(nodes: usize) -> SfResult<Self> {
        Self::build(nodes, 2, "AFB")
    }

    /// Builds a partitioned flattened butterfly with a custom number of
    /// groups per dimension (`partitions = 1` is the full FB).
    ///
    /// # Errors
    ///
    /// Returns [`SfError::InvalidConfiguration`] if fewer than 2 nodes are
    /// requested or `partitions` is zero.
    pub fn with_partitions(nodes: usize, partitions: usize) -> SfResult<Self> {
        let name = if partitions <= 1 { "FB" } else { "AFB" };
        Self::build(nodes, partitions, name)
    }

    fn build(nodes: usize, partitions: usize, name: &'static str) -> SfResult<Self> {
        if nodes < 2 {
            return Err(SfError::InvalidConfiguration {
                reason: format!("a flattened butterfly needs at least 2 nodes, got {nodes}"),
            });
        }
        if partitions == 0 {
            return Err(SfError::InvalidConfiguration {
                reason: "partition count must be at least 1".to_string(),
            });
        }
        let cols = (nodes as f64).sqrt().ceil() as usize;
        let rows = nodes.div_ceil(cols);
        let mut graph = AdjacencyGraph::new(nodes);
        let exists = |r: usize, c: usize| r * cols + c < nodes;
        let id = |r: usize, c: usize| NodeId::new(r * cols + c);

        // Group index of a coordinate along one dimension of length `len`.
        let group = |idx: usize, len: usize| -> usize {
            if partitions <= 1 {
                0
            } else {
                let size = len.div_ceil(partitions);
                idx / size
            }
        };

        // Rows: connect all pairs within the same group; bridge adjacent cells
        // across group boundaries to keep the row connected.
        for r in 0..rows {
            for c1 in 0..cols {
                if !exists(r, c1) {
                    continue;
                }
                for c2 in c1 + 1..cols {
                    if !exists(r, c2) {
                        continue;
                    }
                    let same_group = group(c1, cols) == group(c2, cols);
                    let bridge = c2 == c1 + 1;
                    if same_group || bridge {
                        graph.add_edge(id(r, c1), id(r, c2), EdgeKind::Structured)?;
                    }
                }
            }
        }
        // Columns: same scheme.
        for c in 0..cols {
            for r1 in 0..rows {
                if !exists(r1, c) {
                    continue;
                }
                for r2 in r1 + 1..rows {
                    if !exists(r2, c) {
                        continue;
                    }
                    let same_group = group(r1, rows) == group(r2, rows);
                    let bridge = r2 == r1 + 1;
                    if same_group || bridge {
                        graph.add_edge(id(r1, c), id(r2, c), EdgeKind::Structured)?;
                    }
                }
            }
        }

        Ok(Self {
            rows,
            cols,
            partitions,
            graph,
            name,
        })
    }

    /// Number of grid rows.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of grid columns.
    #[must_use]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of partitions per dimension (1 for the full FB).
    #[must_use]
    pub fn partitions(&self) -> usize {
        self.partitions
    }

    /// Grid coordinates `(row, col)` of a node.
    #[must_use]
    pub fn position(&self, node: NodeId) -> (usize, usize) {
        (node.index() / self.cols, node.index() % self.cols)
    }
}

impl MemoryNetworkTopology for FlattenedButterfly {
    fn name(&self) -> &'static str {
        self.name
    }

    fn graph(&self) -> &AdjacencyGraph {
        &self.graph
    }

    fn router_ports(&self) -> usize {
        self.graph.max_degree()
    }

    fn requires_high_radix(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::path_length_stats;

    #[test]
    fn full_fb_has_diameter_two() {
        for nodes in [16, 61, 64, 100] {
            let fb = FlattenedButterfly::full(nodes).unwrap();
            assert!(fb.graph().is_connected(), "N={nodes}");
            let stats = path_length_stats(fb.graph());
            assert!(stats.diameter <= 2, "N={nodes} diameter {}", stats.diameter);
        }
    }

    #[test]
    fn full_fb_radix_grows_with_scale() {
        let small = FlattenedButterfly::full(64).unwrap();
        let large = FlattenedButterfly::full(1024).unwrap();
        assert!(large.router_ports() > small.router_ports());
        // 32x32 grid: radix = 31 + 31 = 62.
        assert_eq!(large.router_ports(), 62);
        assert!(large.requires_high_radix());
    }

    #[test]
    fn adapted_fb_reduces_radix() {
        let fb = FlattenedButterfly::full(256).unwrap();
        let afb = FlattenedButterfly::adapted(256).unwrap();
        assert!(afb.router_ports() < fb.router_ports());
        assert!(afb.graph().num_edges() < fb.graph().num_edges());
        assert!(afb.graph().is_connected());
        assert_eq!(afb.name(), "AFB");
        assert_eq!(afb.partitions(), 2);
        // Partitioning lengthens paths slightly but keeps them short.
        let stats = path_length_stats(afb.graph());
        assert!(stats.diameter <= 6);
    }

    #[test]
    fn custom_partitions() {
        let t = FlattenedButterfly::with_partitions(100, 4).unwrap();
        assert!(t.graph().is_connected());
        assert_eq!(t.name(), "AFB");
        let full = FlattenedButterfly::with_partitions(100, 1).unwrap();
        assert_eq!(full.name(), "FB");
        assert!(FlattenedButterfly::with_partitions(100, 0).is_err());
    }

    #[test]
    fn non_square_counts_supported() {
        for nodes in [17, 61, 113] {
            let fb = FlattenedButterfly::full(nodes).unwrap();
            assert_eq!(fb.graph().num_nodes(), nodes);
            assert!(fb.graph().is_connected());
            let afb = FlattenedButterfly::adapted(nodes).unwrap();
            assert!(afb.graph().is_connected());
        }
    }

    #[test]
    fn positions_are_consistent() {
        let fb = FlattenedButterfly::full(20).unwrap();
        let (r, c) = fb.position(NodeId::new(7));
        assert_eq!(r * fb.cols() + c, 7);
    }

    #[test]
    fn too_small_rejected() {
        assert!(FlattenedButterfly::full(1).is_err());
    }
}
