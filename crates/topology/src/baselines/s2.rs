//! Space Shuffle (S2-ideal) baseline.
//!
//! S2 (Yu & Qian, ICNP'14) is the data-center network design String Figure is
//! inspired by: nodes are placed on multiple random coordinate rings and
//! routed with greedy coordinate routing. S2 however has no shortcuts and no
//! support for down-scaling — resizing requires regenerating the topology and
//! every routing table, which is impractical for pre-fabricated memory
//! networks. The paper therefore evaluates it as an *ideal* (impractical)
//! baseline called S2-ideal.
//!
//! Here S2 is modelled as a String Figure topology with shortcut fabrication
//! disabled, which matches its construction (multi-space random rings plus
//! free-port pairing).

use crate::baselines::MemoryNetworkTopology;
use crate::graph::AdjacencyGraph;
use crate::spaces::VirtualSpaces;
use crate::stringfigure::StringFigureTopology;
use serde::{Deserialize, Serialize};
use sf_types::{CoordinateVector, NetworkConfig, NodeId, SfResult};

/// The S2-ideal baseline topology (multi-space random rings, no shortcuts, no
/// reconfiguration support).
///
/// # Examples
///
/// ```
/// use sf_topology::baselines::{MemoryNetworkTopology, S2Topology};
/// use sf_types::NetworkConfig;
///
/// let s2 = S2Topology::generate(&NetworkConfig::new(64, 4)?)?;
/// assert_eq!(s2.name(), "S2");
/// assert!(s2.graph().is_connected());
/// # Ok::<(), sf_types::SfError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct S2Topology {
    inner: StringFigureTopology,
}

impl S2Topology {
    /// Generates an S2 topology for the given configuration (the `shortcuts`
    /// flag is ignored and forced off).
    ///
    /// # Errors
    ///
    /// Propagates configuration validation errors from
    /// [`StringFigureTopology::generate`].
    pub fn generate(config: &NetworkConfig) -> SfResult<Self> {
        let config = config.clone().with_shortcuts(false);
        Ok(Self {
            inner: StringFigureTopology::generate(&config)?,
        })
    }

    /// Virtual spaces (coordinates and rings) of this topology.
    #[must_use]
    pub fn spaces(&self) -> &VirtualSpaces {
        self.inner.spaces()
    }

    /// Coordinate vector of a node.
    #[must_use]
    pub fn coordinates(&self, node: NodeId) -> &CoordinateVector {
        self.inner.coordinates(node)
    }

    /// The underlying String Figure construction (without shortcuts).
    #[must_use]
    pub fn as_string_figure(&self) -> &StringFigureTopology {
        &self.inner
    }
}

impl MemoryNetworkTopology for S2Topology {
    fn name(&self) -> &'static str {
        "S2"
    }

    fn graph(&self) -> &AdjacencyGraph {
        self.inner.graph()
    }

    fn router_ports(&self) -> usize {
        self.inner.config().ports
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::average_shortest_path_length;

    #[test]
    fn s2_has_no_shortcuts() {
        let s2 = S2Topology::generate(&NetworkConfig::new(128, 4).unwrap()).unwrap();
        assert!(s2.as_string_figure().shortcut_wires().is_empty());
        assert!(s2.graph().is_connected());
        assert_eq!(s2.router_ports(), 4);
        assert!(!s2.supports_reconfiguration());
        assert!(!s2.requires_high_radix());
    }

    #[test]
    fn s2_and_sf_have_similar_path_lengths() {
        // Figure 5's claim: SF matches the path-length scaling of S2.
        let config = NetworkConfig::new(200, 8).unwrap();
        let s2 = S2Topology::generate(&config).unwrap();
        let sf = StringFigureTopology::generate(&config).unwrap();
        let a = average_shortest_path_length(s2.graph());
        let b = average_shortest_path_length(sf.graph());
        assert!((a - b).abs() < 0.6, "S2 {a} vs SF {b}");
    }

    #[test]
    fn coordinates_accessible() {
        let s2 = S2Topology::generate(&NetworkConfig::new(32, 4).unwrap()).unwrap();
        assert_eq!(s2.coordinates(NodeId::new(5)).num_spaces(), 2);
        assert_eq!(s2.spaces().num_nodes(), 32);
    }
}
