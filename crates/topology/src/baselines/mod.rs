//! Baseline memory-network topologies the paper compares against.
//!
//! * [`mesh`] — Distributed Mesh (DM) and Optimized Distributed Mesh (ODM)
//!   with express links, the best-performing topology of earlier memory
//!   network studies.
//! * [`flattened_butterfly`] — 2D Flattened Butterfly (FB) and the
//!   bisection-matched Adapted FB (AFB) with partitioned rows/columns.
//! * [`s2`] — Space Shuffle (S2-ideal): String Figure's multi-space random
//!   rings without shortcuts or reconfigurability.
//! * [`jellyfish`] — a sufficiently-uniform random regular graph, used for
//!   the Figure 5 path-length comparison.
//!
//! All baselines expose their link structure as an
//! [`AdjacencyGraph`](crate::graph::AdjacencyGraph) through the
//! [`MemoryNetworkTopology`] trait so that path-length analysis, bisection
//! measurement, and the cycle-level simulator treat every topology uniformly.

pub mod flattened_butterfly;
pub mod jellyfish;
pub mod mesh;
pub mod s2;

pub use flattened_butterfly::FlattenedButterfly;
pub use jellyfish::JellyfishTopology;
pub use mesh::MeshTopology;
pub use s2::S2Topology;

use crate::graph::AdjacencyGraph;

/// Common interface over every memory-network topology in this crate
/// (String Figure and all baselines).
pub trait MemoryNetworkTopology {
    /// Short human-readable name used in experiment output (e.g. `"SF"`,
    /// `"ODM"`, `"AFB"`).
    fn name(&self) -> &'static str;

    /// The live link graph of the topology.
    fn graph(&self) -> &AdjacencyGraph;

    /// Number of router ports a node needs in this topology (excluding the
    /// terminal port towards the local memory stack / processor).
    fn router_ports(&self) -> usize;

    /// Number of memory nodes.
    fn num_nodes(&self) -> usize {
        self.graph().num_nodes()
    }

    /// Whether the topology supports reconfigurable (elastic) scaling without
    /// regenerating topology and routing state (Table II's last column).
    fn supports_reconfiguration(&self) -> bool {
        false
    }

    /// Whether the topology requires high-radix routers whose port count
    /// grows with network size (Table II).
    fn requires_high_radix(&self) -> bool {
        false
    }
}

impl MemoryNetworkTopology for crate::stringfigure::StringFigureTopology {
    fn name(&self) -> &'static str {
        "SF"
    }

    fn graph(&self) -> &AdjacencyGraph {
        self.graph()
    }

    fn router_ports(&self) -> usize {
        self.config().ports
    }

    fn supports_reconfiguration(&self) -> bool {
        true
    }
}
