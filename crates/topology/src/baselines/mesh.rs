//! Distributed Mesh (DM) and Optimized Distributed Mesh (ODM) baselines.
//!
//! Earlier memory-network studies (Kim et al., Zhan et al.) found the
//! distributed 2D mesh to be the strongest conventional topology at small
//! scales, so the paper uses it as its primary baseline. The *optimized*
//! variant (ODM) adds express links that skip over `express_interval` nodes in
//! each dimension, increasing bisection bandwidth to match String Figure's at
//! each network scale without changing the basic 4-port structure.

use crate::baselines::MemoryNetworkTopology;
use crate::graph::{AdjacencyGraph, EdgeKind};
use serde::{Deserialize, Serialize};
use sf_types::{NodeId, SfError, SfResult};

/// A 2D mesh of memory nodes, optionally with express links (ODM).
///
/// Nodes are laid out row-major on a near-square `rows x cols` grid; the last
/// row may be partially filled when the node count is not a perfect rectangle,
/// which is exactly the "arbitrary network scale" weakness the paper points
/// out for rigid topologies.
///
/// # Examples
///
/// ```
/// use sf_topology::baselines::{MemoryNetworkTopology, MeshTopology};
///
/// let mesh = MeshTopology::distributed(16)?;
/// assert_eq!(mesh.rows(), 4);
/// assert_eq!(mesh.cols(), 4);
/// assert_eq!(mesh.router_ports(), 4);
/// let odm = MeshTopology::optimized(16)?;
/// assert!(odm.graph().num_edges() > mesh.graph().num_edges());
/// # Ok::<(), sf_types::SfError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MeshTopology {
    rows: usize,
    cols: usize,
    graph: AdjacencyGraph,
    express_interval: Option<usize>,
    name: &'static str,
}

impl MeshTopology {
    /// Builds a plain distributed mesh (DM).
    ///
    /// # Errors
    ///
    /// Returns [`SfError::InvalidConfiguration`] if fewer than 2 nodes are
    /// requested.
    pub fn distributed(nodes: usize) -> SfResult<Self> {
        Self::build(nodes, None, "DM")
    }

    /// Builds an optimized distributed mesh (ODM) with express links every
    /// two nodes in each dimension.
    ///
    /// # Errors
    ///
    /// Returns [`SfError::InvalidConfiguration`] if fewer than 2 nodes are
    /// requested.
    pub fn optimized(nodes: usize) -> SfResult<Self> {
        Self::build(nodes, Some(2), "ODM")
    }

    fn build(nodes: usize, express_interval: Option<usize>, name: &'static str) -> SfResult<Self> {
        if nodes < 2 {
            return Err(SfError::InvalidConfiguration {
                reason: format!("a mesh needs at least 2 nodes, got {nodes}"),
            });
        }
        let cols = (nodes as f64).sqrt().ceil() as usize;
        let rows = nodes.div_ceil(cols);
        let mut graph = AdjacencyGraph::new(nodes);
        let node_at = |r: usize, c: usize| -> Option<NodeId> {
            let idx = r * cols + c;
            (r < rows && c < cols && idx < nodes).then(|| NodeId::new(idx))
        };
        for r in 0..rows {
            for c in 0..cols {
                let Some(u) = node_at(r, c) else { continue };
                if let Some(v) = node_at(r, c + 1) {
                    graph.add_edge(u, v, EdgeKind::Structured)?;
                }
                if let Some(v) = node_at(r + 1, c) {
                    graph.add_edge(u, v, EdgeKind::Structured)?;
                }
                if let Some(step) = express_interval {
                    if let Some(v) = node_at(r, c + step) {
                        graph.add_edge(u, v, EdgeKind::Structured)?;
                    }
                    if let Some(v) = node_at(r + step, c) {
                        graph.add_edge(u, v, EdgeKind::Structured)?;
                    }
                }
            }
        }
        Ok(Self {
            rows,
            cols,
            graph,
            express_interval,
            name,
        })
    }

    /// Number of grid rows.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of grid columns.
    #[must_use]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Grid coordinates `(row, col)` of a node.
    #[must_use]
    pub fn position(&self, node: NodeId) -> (usize, usize) {
        (node.index() / self.cols, node.index() % self.cols)
    }

    /// Node at the given grid coordinates, if one exists there.
    #[must_use]
    pub fn node_at(&self, row: usize, col: usize) -> Option<NodeId> {
        let idx = row * self.cols + col;
        (row < self.rows && col < self.cols && idx < self.graph.num_nodes())
            .then(|| NodeId::new(idx))
    }

    /// Express-link interval, if this is an ODM instance.
    #[must_use]
    pub fn express_interval(&self) -> Option<usize> {
        self.express_interval
    }
}

impl MemoryNetworkTopology for MeshTopology {
    fn name(&self) -> &'static str {
        self.name
    }

    fn graph(&self) -> &AdjacencyGraph {
        &self.graph
    }

    fn router_ports(&self) -> usize {
        // 4 mesh ports, plus 4 express ports for ODM.
        if self.express_interval.is_some() {
            8
        } else {
            4
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::{average_shortest_path_length, path_length_stats};

    fn n(i: usize) -> NodeId {
        NodeId::new(i)
    }

    #[test]
    fn square_mesh_structure() {
        let mesh = MeshTopology::distributed(16).unwrap();
        assert_eq!((mesh.rows(), mesh.cols()), (4, 4));
        // Interior node has 4 neighbours, corner has 2.
        assert_eq!(mesh.graph().degree(n(5)), 4);
        assert_eq!(mesh.graph().degree(n(0)), 2);
        assert_eq!(mesh.graph().num_edges(), 24);
        assert!(mesh.graph().is_connected());
    }

    #[test]
    fn non_square_mesh_structure() {
        let mesh = MeshTopology::distributed(10).unwrap();
        assert!(mesh.graph().is_connected());
        assert_eq!(mesh.graph().num_nodes(), 10);
        // Every node exists at its claimed position.
        for i in 0..10 {
            let (r, c) = mesh.position(n(i));
            assert_eq!(mesh.node_at(r, c), Some(n(i)));
        }
        assert_eq!(mesh.node_at(100, 0), None);
    }

    #[test]
    fn mesh_path_length_grows_with_scale() {
        let small = MeshTopology::distributed(16).unwrap();
        let large = MeshTopology::distributed(256).unwrap();
        let a = average_shortest_path_length(small.graph());
        let b = average_shortest_path_length(large.graph());
        assert!(b > 2.0 * a, "mesh path length must grow superlinearly-ish");
    }

    #[test]
    fn odm_has_more_links_and_shorter_paths() {
        let dm = MeshTopology::distributed(64).unwrap();
        let odm = MeshTopology::optimized(64).unwrap();
        assert!(odm.graph().num_edges() > dm.graph().num_edges());
        let dm_len = average_shortest_path_length(dm.graph());
        let odm_len = average_shortest_path_length(odm.graph());
        assert!(odm_len < dm_len);
        assert_eq!(odm.express_interval(), Some(2));
        assert_eq!(odm.name(), "ODM");
        assert_eq!(dm.name(), "DM");
    }

    #[test]
    fn mesh_diameter_matches_manhattan() {
        let mesh = MeshTopology::distributed(25).unwrap();
        let stats = path_length_stats(mesh.graph());
        assert_eq!(stats.diameter, 8); // (5-1) + (5-1)
    }

    #[test]
    fn tiny_mesh_rejected_and_accepted() {
        assert!(MeshTopology::distributed(1).is_err());
        assert!(MeshTopology::distributed(2).is_ok());
        assert!(MeshTopology::optimized(3).is_ok());
    }

    #[test]
    fn router_port_counts() {
        assert_eq!(MeshTopology::distributed(64).unwrap().router_ports(), 4);
        assert_eq!(MeshTopology::optimized(64).unwrap().router_ports(), 8);
    }
}
