//! Generic adjacency-list graph shared by every memory-network topology.
//!
//! All topology builders in this crate (String Figure, mesh, flattened
//! butterfly, S2, Jellyfish) produce an [`AdjacencyGraph`]: a simple,
//! symmetric adjacency structure with per-node activity flags (used for power
//! gating / unmounted nodes) and per-edge metadata describing *why* the edge
//! exists ([`EdgeKind`]). Graph analysis ([`crate::analysis`]) and the network
//! simulator operate purely on this structure.

use serde::{Deserialize, Serialize};
use sf_types::{NodeId, SfError, SfResult, SpaceId};
use std::collections::BTreeSet;
use std::fmt;

/// Why an edge exists in a memory-network topology.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum EdgeKind {
    /// Adjacent nodes on the coordinate ring of one virtual space
    /// (the "basic balanced random topology" of String Figure / S2).
    RingNeighbor {
        /// Virtual space whose ring this edge belongs to.
        space: SpaceId,
    },
    /// Extra pairing of two nodes that had free ports left after ring
    /// construction (String Figure step 4).
    FreePortPairing,
    /// A String Figure shortcut to a 2-hop or 4-hop clockwise Space-0
    /// neighbour, used to keep throughput high after down-scaling.
    Shortcut {
        /// Ring distance (2 or 4) of the shortcut in Space-0.
        ring_hops: u8,
    },
    /// A reconfiguration link joining the two active ring neighbours of a
    /// gated node (the paper's "original two-hop neighbours are now one-hop
    /// neighbours"); it keeps every space's ring of active nodes intact so
    /// greediest routing keeps its progress guarantee.
    RingHealing {
        /// Virtual space whose ring this healing link repairs.
        space: SpaceId,
    },
    /// A regular edge of a structured baseline topology (mesh, flattened
    /// butterfly, Jellyfish random graph, ...).
    Structured,
}

impl fmt::Display for EdgeKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::RingNeighbor { space } => write!(f, "ring({space})"),
            Self::FreePortPairing => write!(f, "pairing"),
            Self::Shortcut { ring_hops } => write!(f, "shortcut({ring_hops}-hop)"),
            Self::RingHealing { space } => write!(f, "healing({space})"),
            Self::Structured => write!(f, "structured"),
        }
    }
}

/// An undirected edge between two memory nodes, with its construction kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Edge {
    /// Lower-numbered endpoint.
    pub a: NodeId,
    /// Higher-numbered endpoint.
    pub b: NodeId,
    /// Why this edge exists.
    pub kind: EdgeKind,
}

impl Edge {
    /// Creates a canonicalised edge (endpoints ordered so `a <= b`).
    #[must_use]
    pub fn new(u: NodeId, v: NodeId, kind: EdgeKind) -> Self {
        if u <= v {
            Self { a: u, b: v, kind }
        } else {
            Self { a: v, b: u, kind }
        }
    }

    /// Returns the endpoint opposite to `node`, or `None` if `node` is not an
    /// endpoint.
    #[must_use]
    pub fn other(&self, node: NodeId) -> Option<NodeId> {
        if node == self.a {
            Some(self.b)
        } else if node == self.b {
            Some(self.a)
        } else {
            None
        }
    }

    /// Returns `true` if this edge connects the two given nodes (in either
    /// order).
    #[must_use]
    pub fn connects(&self, u: NodeId, v: NodeId) -> bool {
        (self.a == u && self.b == v) || (self.a == v && self.b == u)
    }
}

impl fmt::Display for Edge {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}--{} [{}]", self.a, self.b, self.kind)
    }
}

/// Symmetric adjacency-list graph over memory nodes with activity flags.
///
/// Inactive nodes model power-gated or not-yet-mounted memory nodes: they stay
/// in the structure (so they can be re-activated without rebuilding) but are
/// excluded from [`AdjacencyGraph::active_neighbors`] and from analysis.
///
/// # Examples
///
/// ```
/// use sf_topology::graph::{AdjacencyGraph, EdgeKind};
/// use sf_types::NodeId;
///
/// let mut g = AdjacencyGraph::new(3);
/// g.add_edge(NodeId::new(0), NodeId::new(1), EdgeKind::Structured).unwrap();
/// g.add_edge(NodeId::new(1), NodeId::new(2), EdgeKind::Structured).unwrap();
/// assert_eq!(g.degree(NodeId::new(1)), 2);
/// assert!(g.has_edge(NodeId::new(0), NodeId::new(1)));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AdjacencyGraph {
    num_nodes: usize,
    adjacency: Vec<BTreeSet<usize>>,
    edges: Vec<Edge>,
    active: Vec<bool>,
}

impl AdjacencyGraph {
    /// Creates an empty graph with `num_nodes` nodes (all active) and no edges.
    #[must_use]
    pub fn new(num_nodes: usize) -> Self {
        Self {
            num_nodes,
            adjacency: vec![BTreeSet::new(); num_nodes],
            edges: Vec::new(),
            active: vec![true; num_nodes],
        }
    }

    /// Number of nodes (active and inactive).
    #[must_use]
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// Number of currently active nodes.
    #[must_use]
    pub fn num_active_nodes(&self) -> usize {
        self.active.iter().filter(|&&a| a).count()
    }

    /// Number of undirected edges (regardless of endpoint activity).
    #[must_use]
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Validates that a node id is within range.
    ///
    /// # Errors
    ///
    /// Returns [`SfError::UnknownNode`] if out of range.
    pub fn check_node(&self, node: NodeId) -> SfResult<()> {
        if node.index() >= self.num_nodes {
            return Err(SfError::UnknownNode {
                node: node.index(),
                network_size: self.num_nodes,
            });
        }
        Ok(())
    }

    /// Adds an undirected edge between `u` and `v`.
    ///
    /// Duplicate edges (same endpoints, any kind) are ignored and reported as
    /// `Ok(false)`; a newly inserted edge returns `Ok(true)`.
    ///
    /// # Errors
    ///
    /// Returns [`SfError::UnknownNode`] if either endpoint is out of range, or
    /// [`SfError::InvalidConfiguration`] for a self-loop.
    pub fn add_edge(&mut self, u: NodeId, v: NodeId, kind: EdgeKind) -> SfResult<bool> {
        self.check_node(u)?;
        self.check_node(v)?;
        if u == v {
            return Err(SfError::InvalidConfiguration {
                reason: format!("self-loop on node {u} is not a valid memory-network link"),
            });
        }
        if self.adjacency[u.index()].contains(&v.index()) {
            return Ok(false);
        }
        self.adjacency[u.index()].insert(v.index());
        self.adjacency[v.index()].insert(u.index());
        self.edges.push(Edge::new(u, v, kind));
        Ok(true)
    }

    /// Removes the edge between `u` and `v` if it exists; returns whether an
    /// edge was removed.
    pub fn remove_edge(&mut self, u: NodeId, v: NodeId) -> bool {
        let removed = self.adjacency[u.index()].remove(&v.index());
        self.adjacency[v.index()].remove(&u.index());
        if removed {
            self.edges.retain(|e| !e.connects(u, v));
        }
        removed
    }

    /// Returns `true` if an edge between `u` and `v` exists (ignoring
    /// activity).
    #[must_use]
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        u.index() < self.num_nodes && self.adjacency[u.index()].contains(&v.index())
    }

    /// Returns the kind of the edge between `u` and `v`, if present.
    #[must_use]
    pub fn edge_kind(&self, u: NodeId, v: NodeId) -> Option<EdgeKind> {
        self.edges.iter().find(|e| e.connects(u, v)).map(|e| e.kind)
    }

    /// All neighbours of `node`, including inactive ones.
    #[must_use]
    pub fn neighbors(&self, node: NodeId) -> Vec<NodeId> {
        self.adjacency[node.index()]
            .iter()
            .map(|&i| NodeId::new(i))
            .collect()
    }

    /// Neighbours of `node` that are currently active. If `node` itself is
    /// inactive the result is empty.
    #[must_use]
    pub fn active_neighbors(&self, node: NodeId) -> Vec<NodeId> {
        if !self.is_active(node) {
            return Vec::new();
        }
        self.adjacency[node.index()]
            .iter()
            .filter(|&&i| self.active[i])
            .map(|&i| NodeId::new(i))
            .collect()
    }

    /// Degree of `node` counting all incident edges (ignores activity).
    #[must_use]
    pub fn degree(&self, node: NodeId) -> usize {
        self.adjacency[node.index()].len()
    }

    /// Degree of `node` counting only active neighbours.
    #[must_use]
    pub fn active_degree(&self, node: NodeId) -> usize {
        self.adjacency[node.index()]
            .iter()
            .filter(|&&i| self.active[i])
            .count()
    }

    /// Maximum degree over all nodes.
    #[must_use]
    pub fn max_degree(&self) -> usize {
        (0..self.num_nodes)
            .map(|i| self.adjacency[i].len())
            .max()
            .unwrap_or(0)
    }

    /// Average degree over all nodes.
    #[must_use]
    pub fn average_degree(&self) -> f64 {
        if self.num_nodes == 0 {
            return 0.0;
        }
        2.0 * self.edges.len() as f64 / self.num_nodes as f64
    }

    /// Whether `node` is currently active (powered on and mounted).
    #[must_use]
    pub fn is_active(&self, node: NodeId) -> bool {
        node.index() < self.num_nodes && self.active[node.index()]
    }

    /// Sets the activity of a node.
    ///
    /// # Errors
    ///
    /// Returns [`SfError::UnknownNode`] if out of range.
    pub fn set_active(&mut self, node: NodeId, active: bool) -> SfResult<()> {
        self.check_node(node)?;
        self.active[node.index()] = active;
        Ok(())
    }

    /// Iterates over all node ids (active and inactive).
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.num_nodes).map(NodeId::new)
    }

    /// Iterates over currently active node ids.
    pub fn active_nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.num_nodes)
            .filter(|&i| self.active[i])
            .map(NodeId::new)
    }

    /// All edges with their construction kinds.
    #[must_use]
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// Edges whose both endpoints are currently active.
    #[must_use]
    pub fn active_edges(&self) -> Vec<Edge> {
        self.edges
            .iter()
            .filter(|e| self.active[e.a.index()] && self.active[e.b.index()])
            .copied()
            .collect()
    }

    /// Whether the subgraph induced by active nodes is connected.
    ///
    /// A graph with zero or one active node is considered connected.
    #[must_use]
    pub fn is_connected(&self) -> bool {
        let actives: Vec<usize> = (0..self.num_nodes).filter(|&i| self.active[i]).collect();
        if actives.len() <= 1 {
            return true;
        }
        let mut visited = vec![false; self.num_nodes];
        let mut stack = vec![actives[0]];
        visited[actives[0]] = true;
        let mut seen = 1usize;
        while let Some(cur) = stack.pop() {
            for &next in &self.adjacency[cur] {
                if self.active[next] && !visited[next] {
                    visited[next] = true;
                    seen += 1;
                    stack.push(next);
                }
            }
        }
        seen == actives.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: usize) -> NodeId {
        NodeId::new(i)
    }

    fn ring(num: usize) -> AdjacencyGraph {
        let mut g = AdjacencyGraph::new(num);
        for i in 0..num {
            g.add_edge(n(i), n((i + 1) % num), EdgeKind::Structured)
                .unwrap();
        }
        g
    }

    #[test]
    fn empty_graph_properties() {
        let g = AdjacencyGraph::new(5);
        assert_eq!(g.num_nodes(), 5);
        assert_eq!(g.num_active_nodes(), 5);
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.max_degree(), 0);
        assert_eq!(g.average_degree(), 0.0);
        assert!(!g.is_connected());
    }

    #[test]
    fn edge_insertion_and_dedup() {
        let mut g = AdjacencyGraph::new(4);
        assert!(g.add_edge(n(0), n(1), EdgeKind::Structured).unwrap());
        assert!(!g.add_edge(n(1), n(0), EdgeKind::FreePortPairing).unwrap());
        assert_eq!(g.num_edges(), 1);
        assert!(g.has_edge(n(0), n(1)));
        assert!(g.has_edge(n(1), n(0)));
        assert!(!g.has_edge(n(0), n(2)));
        assert_eq!(g.edge_kind(n(0), n(1)), Some(EdgeKind::Structured));
    }

    #[test]
    fn self_loops_rejected() {
        let mut g = AdjacencyGraph::new(3);
        assert!(g.add_edge(n(1), n(1), EdgeKind::Structured).is_err());
    }

    #[test]
    fn out_of_range_nodes_rejected() {
        let mut g = AdjacencyGraph::new(3);
        assert!(g.add_edge(n(0), n(3), EdgeKind::Structured).is_err());
        assert!(g.check_node(n(5)).is_err());
        assert!(g.set_active(n(9), false).is_err());
    }

    #[test]
    fn remove_edge_updates_both_sides() {
        let mut g = ring(4);
        assert!(g.remove_edge(n(0), n(1)));
        assert!(!g.has_edge(n(0), n(1)));
        assert!(!g.has_edge(n(1), n(0)));
        assert!(!g.remove_edge(n(0), n(1)));
        assert_eq!(g.num_edges(), 3);
    }

    #[test]
    fn degree_accounting() {
        let g = ring(6);
        for i in 0..6 {
            assert_eq!(g.degree(n(i)), 2);
        }
        assert_eq!(g.max_degree(), 2);
        assert!((g.average_degree() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn activity_gating() {
        let mut g = ring(5);
        assert!(g.is_active(n(2)));
        g.set_active(n(2), false).unwrap();
        assert!(!g.is_active(n(2)));
        assert_eq!(g.num_active_nodes(), 4);
        assert_eq!(g.active_degree(n(1)), 1);
        assert!(!g.active_neighbors(n(1)).contains(&n(2)));
        assert!(g.active_neighbors(n(2)).is_empty());
        assert_eq!(g.active_edges().len(), 3);
        // Ring minus one node is a path: still connected.
        assert!(g.is_connected());
        g.set_active(n(0), false).unwrap();
        // Removing two non-adjacent ring nodes disconnects the ring.
        assert!(!g.is_connected());
    }

    #[test]
    fn connectivity_detection() {
        let mut g = AdjacencyGraph::new(4);
        g.add_edge(n(0), n(1), EdgeKind::Structured).unwrap();
        g.add_edge(n(2), n(3), EdgeKind::Structured).unwrap();
        assert!(!g.is_connected());
        g.add_edge(n(1), n(2), EdgeKind::Structured).unwrap();
        assert!(g.is_connected());
    }

    #[test]
    fn single_node_is_connected() {
        let g = AdjacencyGraph::new(1);
        assert!(g.is_connected());
    }

    #[test]
    fn edge_helpers() {
        let e = Edge::new(n(5), n(2), EdgeKind::Shortcut { ring_hops: 2 });
        assert_eq!(e.a, n(2));
        assert_eq!(e.b, n(5));
        assert_eq!(e.other(n(2)), Some(n(5)));
        assert_eq!(e.other(n(5)), Some(n(2)));
        assert_eq!(e.other(n(1)), None);
        assert!(e.connects(n(5), n(2)));
        assert!(!e.connects(n(5), n(3)));
        assert_eq!(e.to_string(), "n2--n5 [shortcut(2-hop)]");
    }

    #[test]
    fn edge_kind_display() {
        assert_eq!(
            EdgeKind::RingNeighbor {
                space: SpaceId::new(1)
            }
            .to_string(),
            "ring(s1)"
        );
        assert_eq!(EdgeKind::FreePortPairing.to_string(), "pairing");
        assert_eq!(EdgeKind::Structured.to_string(), "structured");
    }

    #[test]
    fn node_iterators() {
        let mut g = ring(4);
        g.set_active(n(3), false).unwrap();
        assert_eq!(g.nodes().count(), 4);
        let active: Vec<NodeId> = g.active_nodes().collect();
        assert_eq!(active, vec![n(0), n(1), n(2)]);
    }
}
