//! The String Figure topology: balanced random multi-space rings, free-port
//! pairing, shortcuts, and elastic (gate / un-gate) reconfiguration.
//!
//! Construction follows Section III-A of the paper:
//!
//! 1. Build `L = floor(p/2)` virtual spaces and give every node a balanced
//!    random coordinate in each ([`VirtualSpaces::generate`]).
//! 2. Connect ring-adjacent nodes in every space (the *basic balanced random
//!    topology*).
//! 3. Pair up nodes that still have free router ports (which happens when two
//!    nodes are ring-adjacent in more than one space), preferring pairs with
//!    the longest circular distance.
//! 4. Fabricate *shortcuts* from every node to its 2-hop and 4-hop clockwise
//!    Space-0 neighbours with larger node ids (at most two per node). The
//!    shortcut wires exist physically; the per-router topology switch decides
//!    which `p` of the incident connections are live at any time.
//!
//! Elastic reconfiguration (Section III-C) is exposed as
//! [`StringFigureTopology::gate_node`] / [`StringFigureTopology::ungate_node`]:
//! gating a node frees ports on its neighbours, which the topology switch uses
//! to activate fabricated shortcuts and preserve throughput.

use crate::graph::{AdjacencyGraph, Edge, EdgeKind};
use crate::spaces::VirtualSpaces;
use serde::{Deserialize, Serialize};
use sf_types::{
    CoordinateVector, DeterministicRng, NetworkConfig, NodeId, SfError, SfResult, SpaceId,
};
use std::collections::BTreeSet;

/// Ring offsets (in Space-0 hops) at which shortcuts are fabricated.
pub const SHORTCUT_RING_HOPS: [usize; 2] = [2, 4];

/// A fully constructed String Figure memory-network topology.
///
/// # Examples
///
/// ```
/// use sf_topology::StringFigureTopology;
/// use sf_types::NetworkConfig;
///
/// let config = NetworkConfig::new(64, 4)?;
/// let topo = StringFigureTopology::generate(&config)?;
/// assert_eq!(topo.graph().num_nodes(), 64);
/// assert!(topo.graph().is_connected());
/// // Fabricated wiring per node is bounded: p basic connections plus at most
/// // two outgoing and two incoming shortcut wires.
/// assert!(topo.max_fabricated_degree() <= config.ports + 4);
/// # Ok::<(), sf_types::SfError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StringFigureTopology {
    config: NetworkConfig,
    spaces: VirtualSpaces,
    /// Currently live links (basic edges filtered by node activity plus the
    /// currently enabled shortcuts).
    graph: AdjacencyGraph,
    /// Edges of the basic balanced random topology (rings + free-port pairs).
    basic_edges: Vec<Edge>,
    /// All fabricated shortcut wires (whether currently enabled or not).
    shortcut_wires: Vec<Edge>,
    /// Free-port pairing links temporarily switched off because a
    /// reconfiguration needed their ports for ring-healing links.
    suspended_pairings: BTreeSet<(usize, usize)>,
    /// Ring-healing links currently in place: for every virtual space, the
    /// active ring neighbours of gated nodes are joined so that each space's
    /// ring of active nodes stays intact (the mechanism behind the paper's
    /// "two-hop neighbours become one-hop neighbours" table update).
    healing_links: BTreeSet<(usize, usize)>,
}

/// The observable effect of a single gate/un-gate reconfiguration step.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReconfigurationDelta {
    /// The node that was gated or un-gated.
    pub node: NodeId,
    /// `true` if the node is now gated (off), `false` if it was brought back.
    pub gated: bool,
    /// Neighbours whose routing tables must be updated (blocking/valid bits).
    pub affected_neighbors: Vec<NodeId>,
    /// Shortcut links switched on by this reconfiguration.
    pub shortcuts_enabled: Vec<Edge>,
    /// Shortcut links switched off by this reconfiguration.
    pub shortcuts_disabled: Vec<Edge>,
}

impl StringFigureTopology {
    /// Generates a String Figure topology from a network configuration.
    ///
    /// # Errors
    ///
    /// Returns [`SfError::InvalidConfiguration`] if the configuration is
    /// invalid (see [`NetworkConfig::validate`]).
    pub fn generate(config: &NetworkConfig) -> SfResult<Self> {
        config.validate()?;
        let mut rng = DeterministicRng::new(config.seed);
        let spaces = VirtualSpaces::generate(
            config.nodes,
            config.virtual_spaces(),
            config.balance_candidates,
            &mut rng,
        );
        Self::from_spaces(config.clone(), spaces)
    }

    /// Builds a String Figure topology from pre-computed virtual spaces
    /// (used for the paper's worked example and for tests with hand-picked
    /// coordinates).
    ///
    /// # Errors
    ///
    /// Returns [`SfError::InvalidConfiguration`] if the configuration is
    /// invalid or does not match the supplied spaces.
    pub fn from_spaces(config: NetworkConfig, spaces: VirtualSpaces) -> SfResult<Self> {
        config.validate()?;
        if spaces.num_nodes() != config.nodes {
            return Err(SfError::InvalidConfiguration {
                reason: format!(
                    "virtual spaces cover {} nodes but the configuration asks for {}",
                    spaces.num_nodes(),
                    config.nodes
                ),
            });
        }
        if spaces.num_spaces() != config.virtual_spaces() {
            return Err(SfError::InvalidConfiguration {
                reason: format!(
                    "virtual spaces have {} spaces but p={} implies {}",
                    spaces.num_spaces(),
                    config.ports,
                    config.virtual_spaces()
                ),
            });
        }

        let n = config.nodes;
        let mut graph = AdjacencyGraph::new(n);
        let mut basic_edges = Vec::new();

        // Step 3 of the construction: connect ring-adjacent nodes per space.
        for s in 0..spaces.num_spaces() {
            let space = SpaceId::new(s);
            let ring = spaces.ring(space);
            for (i, &node) in ring.iter().enumerate() {
                let succ = ring[(i + 1) % ring.len()];
                if node == succ {
                    continue; // degenerate 1-node ring
                }
                if graph.add_edge(node, succ, EdgeKind::RingNeighbor { space })? {
                    basic_edges.push(Edge::new(node, succ, EdgeKind::RingNeighbor { space }));
                }
            }
        }

        // Step 4: pair nodes that still have free ports, preferring the pair
        // with the longest Space-0 circular distance.
        let ports = config.ports;
        let free = |graph: &AdjacencyGraph, node: NodeId| ports.saturating_sub(graph.degree(node));
        loop {
            let candidates: Vec<NodeId> = graph.nodes().filter(|&v| free(&graph, v) > 0).collect();
            if candidates.len() < 2 {
                break;
            }
            let mut best: Option<(NodeId, NodeId, f64)> = None;
            for (i, &u) in candidates.iter().enumerate() {
                for &v in &candidates[i + 1..] {
                    if graph.has_edge(u, v) {
                        continue;
                    }
                    let d = spaces.space_distance(SpaceId::new(0), u, v);
                    if best.is_none_or(|(_, _, bd)| d > bd) {
                        best = Some((u, v, d));
                    }
                }
            }
            let Some((u, v, _)) = best else { break };
            graph.add_edge(u, v, EdgeKind::FreePortPairing)?;
            basic_edges.push(Edge::new(u, v, EdgeKind::FreePortPairing));
        }

        // Shortcut fabrication: 2-hop and 4-hop clockwise Space-0 neighbours
        // with a larger node id, at most two per node, skipping wires that
        // duplicate basic links.
        let mut shortcut_wires = Vec::new();
        if config.shortcuts {
            for node in graph.nodes() {
                let mut added = 0usize;
                for &hops in &SHORTCUT_RING_HOPS {
                    if added >= 2 {
                        break;
                    }
                    if hops >= n {
                        continue;
                    }
                    let target = spaces.clockwise_neighbor(SpaceId::new(0), node, hops);
                    if target <= node {
                        continue; // only connect towards larger node numbers
                    }
                    let wire = Edge::new(
                        node,
                        target,
                        EdgeKind::Shortcut {
                            ring_hops: hops as u8,
                        },
                    );
                    let duplicate_basic = graph.has_edge(node, target);
                    let duplicate_shortcut = shortcut_wires
                        .iter()
                        .any(|e: &Edge| e.connects(node, target));
                    if !duplicate_basic && !duplicate_shortcut {
                        shortcut_wires.push(wire);
                        added += 1;
                    }
                }
            }
        }

        let mut topology = Self {
            config,
            spaces,
            graph,
            basic_edges,
            shortcut_wires,
            suspended_pairings: BTreeSet::new(),
            healing_links: BTreeSet::new(),
        };
        // At construction time, switch on any shortcut whose endpoints still
        // have free switch ports (this fully utilises router ports, matching
        // the paper's goal).
        topology.sync_reconfigurable_links()?;
        Ok(topology)
    }

    /// The network configuration used to build this topology.
    #[must_use]
    pub fn config(&self) -> &NetworkConfig {
        &self.config
    }

    /// The virtual spaces (coordinates and rings).
    #[must_use]
    pub fn spaces(&self) -> &VirtualSpaces {
        &self.spaces
    }

    /// The currently live link graph (basic links filtered by node activity,
    /// plus enabled shortcuts).
    #[must_use]
    pub fn graph(&self) -> &AdjacencyGraph {
        &self.graph
    }

    /// Coordinate vector of a node.
    #[must_use]
    pub fn coordinates(&self, node: NodeId) -> &CoordinateVector {
        self.spaces.coordinates(node)
    }

    /// Edges of the basic balanced random topology (rings + free-port pairs).
    #[must_use]
    pub fn basic_edges(&self) -> &[Edge] {
        &self.basic_edges
    }

    /// All fabricated shortcut wires, enabled or not.
    #[must_use]
    pub fn shortcut_wires(&self) -> &[Edge] {
        &self.shortcut_wires
    }

    /// Shortcut wires that are currently switched on.
    #[must_use]
    pub fn enabled_shortcuts(&self) -> Vec<Edge> {
        self.shortcut_wires
            .iter()
            .filter(|e| self.graph.has_edge(e.a, e.b))
            .copied()
            .collect()
    }

    /// Whether a node is currently gated (powered off / unmounted).
    #[must_use]
    pub fn is_gated(&self, node: NodeId) -> bool {
        !self.graph.is_active(node)
    }

    /// Number of router ports currently in use at `node` (live links to
    /// active neighbours).
    #[must_use]
    pub fn ports_in_use(&self, node: NodeId) -> usize {
        self.graph.active_degree(node)
    }

    /// Number of free router ports at `node`.
    #[must_use]
    pub fn free_ports(&self, node: NodeId) -> usize {
        self.config.ports.saturating_sub(self.ports_in_use(node))
    }

    /// The largest number of fabricated connections (basic + shortcut wires)
    /// at any node; bounded by `p + 2` per the paper's physical-implementation
    /// argument.
    #[must_use]
    pub fn max_fabricated_degree(&self) -> usize {
        self.graph
            .nodes()
            .map(|v| {
                let basic = self
                    .basic_edges
                    .iter()
                    .filter(|e| e.a == v || e.b == v)
                    .count();
                let shortcuts = self
                    .shortcut_wires
                    .iter()
                    .filter(|e| e.a == v || e.b == v)
                    .count();
                basic + shortcuts
            })
            .max()
            .unwrap_or(0)
    }

    /// Total number of fabricated wires in the network (basic + shortcuts),
    /// which grows linearly with `N`.
    #[must_use]
    pub fn total_fabricated_wires(&self) -> usize {
        self.basic_edges.len() + self.shortcut_wires.len()
    }

    /// Gates a node off (power gating or unmounting).
    ///
    /// Neighbouring routers lose the corresponding live link; the node's
    /// active ring neighbours in every virtual space are joined with
    /// ring-healing links (the paper's "two-hop neighbours become one-hop
    /// neighbours" table update), and fabricated shortcuts are switched on
    /// wherever free ports remain to preserve throughput.
    ///
    /// # Errors
    ///
    /// * [`SfError::UnknownNode`] if the node does not exist.
    /// * [`SfError::InvalidReconfiguration`] if the node is already gated or
    ///   fewer than two nodes would remain active.
    pub fn gate_node(&mut self, node: NodeId) -> SfResult<ReconfigurationDelta> {
        self.graph.check_node(node)?;
        if self.is_gated(node) {
            return Err(SfError::InvalidReconfiguration {
                reason: format!("node {node} is already gated"),
            });
        }
        if self.graph.num_active_nodes() <= 2 {
            return Err(SfError::InvalidReconfiguration {
                reason: format!("gating node {node} would leave fewer than two active nodes"),
            });
        }
        let affected_neighbors = self.graph.active_neighbors(node);
        self.graph.set_active(node, false)?;
        let (enabled, disabled) = self.sync_reconfigurable_links()?;
        debug_assert!(
            self.graph.is_connected(),
            "ring healing keeps the network connected"
        );
        Ok(ReconfigurationDelta {
            node,
            gated: true,
            affected_neighbors,
            shortcuts_enabled: enabled,
            shortcuts_disabled: disabled,
        })
    }

    /// Brings a gated node back online.
    ///
    /// Ring-healing links that are no longer needed and dynamically enabled
    /// shortcuts that would over-subscribe router ports are switched off
    /// again (the reverse of [`StringFigureTopology::gate_node`]).
    ///
    /// # Errors
    ///
    /// * [`SfError::UnknownNode`] if the node does not exist.
    /// * [`SfError::InvalidReconfiguration`] if the node is not gated.
    pub fn ungate_node(&mut self, node: NodeId) -> SfResult<ReconfigurationDelta> {
        self.graph.check_node(node)?;
        if !self.is_gated(node) {
            return Err(SfError::InvalidReconfiguration {
                reason: format!("node {node} is not gated"),
            });
        }
        self.graph.set_active(node, true)?;
        let affected_neighbors = self.graph.active_neighbors(node);
        let (enabled, disabled) = self.sync_reconfigurable_links()?;
        Ok(ReconfigurationDelta {
            node,
            gated: false,
            affected_neighbors,
            shortcuts_enabled: enabled,
            shortcuts_disabled: disabled,
        })
    }

    /// Ring-healing links required by the current activity pattern: for every
    /// virtual space, each pair of consecutive *active* nodes on the ring that
    /// is separated by at least one gated node must be directly linked.
    fn required_healing_links(&self) -> Vec<(NodeId, NodeId, SpaceId)> {
        let mut required = Vec::new();
        for s in 0..self.spaces.num_spaces() {
            let space = SpaceId::new(s);
            let ring = self.spaces.ring(space);
            let active: Vec<NodeId> = ring
                .iter()
                .copied()
                .filter(|&n| self.graph.is_active(n))
                .collect();
            if active.len() < 2 || active.len() == ring.len() {
                continue;
            }
            for (i, &a) in active.iter().enumerate() {
                let b = active[(i + 1) % active.len()];
                if a == b {
                    continue;
                }
                // Only needed when at least one gated node sits between them
                // on the original ring (otherwise the basic ring link exists).
                let pos_a = self.spaces.ring_position(space, a);
                let pos_b = self.spaces.ring_position(space, b);
                let adjacent_on_ring = (pos_a + 1) % ring.len() == pos_b;
                if !adjacent_on_ring {
                    required.push((a, b, space));
                }
            }
        }
        required
    }

    /// Brings the reconfigurable links (ring-healing links, free-port pairing
    /// links, and fabricated shortcuts) in sync with the current node
    /// activity pattern. Returns the links switched on and off.
    ///
    /// Port-budget priority: ring links and ring-healing links first (they
    /// carry the routing-correctness guarantee and never exceed `p` because
    /// every active node has exactly two of them per virtual space), then the
    /// free-port pairing links, then fabricated shortcuts.
    fn sync_reconfigurable_links(&mut self) -> SfResult<(Vec<Edge>, Vec<Edge>)> {
        let mut enabled = Vec::new();
        let mut disabled = Vec::new();
        let ports = self.config.ports;

        // 1. Drop every currently enabled fabricated shortcut; the ones still
        //    justified are re-enabled in step 5 (this keeps the procedure
        //    idempotent and makes gate/un-gate exactly reversible).
        let wires = self.shortcut_wires.clone();
        for wire in &wires {
            if self.graph.remove_edge(wire.a, wire.b) {
                disabled.push(*wire);
            }
        }

        // 2. Ring healing: compute the required links, drop stale ones, add
        //    missing ones.
        let required = self.required_healing_links();
        let required_keys: BTreeSet<(usize, usize)> = required
            .iter()
            .map(|(a, b, _)| {
                let (x, y) = (a.index().min(b.index()), a.index().max(b.index()));
                (x, y)
            })
            .collect();
        let stale: Vec<(usize, usize)> = self
            .healing_links
            .iter()
            .filter(|k| !required_keys.contains(k))
            .copied()
            .collect();
        for (a, b) in stale {
            let (u, v) = (NodeId::new(a), NodeId::new(b));
            if self.graph.remove_edge(u, v) {
                disabled.push(Edge::new(
                    u,
                    v,
                    EdgeKind::RingHealing {
                        space: SpaceId::new(0),
                    },
                ));
            }
            self.healing_links.remove(&(a, b));
        }
        for (a, b, space) in required {
            let key = (a.index().min(b.index()), a.index().max(b.index()));
            if self.graph.has_edge(a, b) {
                continue;
            }
            // Make room for the healing link by suspending pairing links on
            // over-budget endpoints (the pairing links only exist to soak up
            // spare ports, so they yield to correctness-critical links).
            for node in [a, b] {
                if self.free_ports(node) == 0 {
                    self.suspend_one_pairing(node, &mut disabled);
                }
            }
            self.graph.add_edge(a, b, EdgeKind::RingHealing { space })?;
            self.healing_links.insert(key);
            enabled.push(Edge::new(a, b, EdgeKind::RingHealing { space }));
        }

        // 3. Shed pairing links from any node still over budget (possible
        //    when a gated neighbour's link was shared across spaces).
        let over_budget: Vec<NodeId> = self
            .graph
            .nodes()
            .filter(|&v| self.graph.is_active(v) && self.ports_in_use(v) > ports)
            .collect();
        for node in over_budget {
            while self.ports_in_use(node) > ports {
                if !self.suspend_one_pairing(node, &mut disabled) {
                    break;
                }
            }
        }

        // 4. Re-attach suspended pairing links wherever both endpoints have a
        //    free port again.
        let suspended: Vec<(usize, usize)> = self.suspended_pairings.iter().copied().collect();
        for (a, b) in suspended {
            let (u, v) = (NodeId::new(a), NodeId::new(b));
            if !self.graph.is_active(u) || !self.graph.is_active(v) {
                continue;
            }
            if self.free_ports(u) == 0 || self.free_ports(v) == 0 || self.graph.has_edge(u, v) {
                continue;
            }
            self.graph.add_edge(u, v, EdgeKind::FreePortPairing)?;
            self.suspended_pairings.remove(&(a, b));
            enabled.push(Edge::new(u, v, EdgeKind::FreePortPairing));
        }

        // 5. Fabricated shortcuts: switch on every wire whose endpoints are
        //    active and still have free ports.
        for wire in wires {
            if self.graph.has_edge(wire.a, wire.b) {
                continue;
            }
            if !self.graph.is_active(wire.a) || !self.graph.is_active(wire.b) {
                continue;
            }
            if self.free_ports(wire.a) == 0 || self.free_ports(wire.b) == 0 {
                continue;
            }
            self.graph.add_edge(wire.a, wire.b, wire.kind)?;
            enabled.push(wire);
        }
        Ok((enabled, disabled))
    }

    /// Suspends one free-port pairing link incident to `node` (if any),
    /// recording it for later re-attachment; returns whether a link was
    /// suspended.
    fn suspend_one_pairing(&mut self, node: NodeId, disabled: &mut Vec<Edge>) -> bool {
        let pairing = self.basic_edges.iter().find(|e| {
            e.kind == EdgeKind::FreePortPairing
                && (e.a == node || e.b == node)
                && self.graph.has_edge(e.a, e.b)
        });
        let Some(edge) = pairing.copied() else {
            return false;
        };
        self.graph.remove_edge(edge.a, edge.b);
        self.suspended_pairings
            .insert((edge.a.index(), edge.b.index()));
        disabled.push(edge);
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spaces::paper_figure3_example;

    fn n(i: usize) -> NodeId {
        NodeId::new(i)
    }

    fn small_config(nodes: usize, ports: usize) -> NetworkConfig {
        NetworkConfig::new(nodes, ports).unwrap()
    }

    fn paper_example_topology() -> StringFigureTopology {
        let config = small_config(9, 4);
        StringFigureTopology::from_spaces(config, paper_figure3_example()).unwrap()
    }

    #[test]
    fn generate_produces_connected_graph() {
        for &(nodes, ports) in &[(9, 4), (16, 4), (61, 4), (128, 4), (200, 8)] {
            let topo = StringFigureTopology::generate(&small_config(nodes, ports)).unwrap();
            assert!(topo.graph().is_connected(), "N={nodes} p={ports}");
            assert_eq!(topo.graph().num_nodes(), nodes);
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let config = small_config(64, 4);
        let a = StringFigureTopology::generate(&config).unwrap();
        let b = StringFigureTopology::generate(&config).unwrap();
        assert_eq!(a, b);
        let c = StringFigureTopology::generate(&config.clone().with_seed(99)).unwrap();
        assert_ne!(a, c);
    }

    #[test]
    fn basic_degree_never_exceeds_ports_plus_pairing_rules() {
        // The basic balanced random topology must not need more than p ports.
        for seed in 0..5 {
            let config = small_config(100, 4).with_seed(seed);
            let topo = StringFigureTopology::generate(&config).unwrap();
            for v in topo.graph().nodes() {
                let basic_deg = topo
                    .basic_edges()
                    .iter()
                    .filter(|e| e.a == v || e.b == v)
                    .count();
                assert!(
                    basic_deg <= config.ports,
                    "node {v} has basic degree {basic_deg} > p={}",
                    config.ports
                );
            }
        }
    }

    #[test]
    fn fabricated_connections_bounded() {
        // Each node originates at most two shortcut wires and can be the
        // target of at most two more (from its 2-hop and 4-hop Space-0
        // predecessors), so incident fabricated wiring is bounded by p + 4.
        for &(nodes, ports) in &[(50, 4), (120, 4), (300, 8)] {
            let topo = StringFigureTopology::generate(&small_config(nodes, ports)).unwrap();
            assert!(
                topo.max_fabricated_degree() <= ports + 4,
                "N={nodes} p={ports}: {}",
                topo.max_fabricated_degree()
            );
            // Total wiring grows linearly: <= N * (p/2 + 2) undirected wires.
            assert!(topo.total_fabricated_wires() <= nodes * (ports / 2 + 2));
        }
    }

    #[test]
    fn shortcuts_only_towards_larger_ids() {
        let topo = StringFigureTopology::generate(&small_config(64, 4)).unwrap();
        for wire in topo.shortcut_wires() {
            assert!(wire.a < wire.b);
            assert!(matches!(wire.kind, EdgeKind::Shortcut { .. }));
        }
    }

    #[test]
    fn at_most_two_shortcuts_per_node() {
        let topo = StringFigureTopology::generate(&small_config(128, 4)).unwrap();
        for v in topo.graph().nodes() {
            let count = topo.shortcut_wires().iter().filter(|e| e.a == v).count();
            assert!(count <= 2, "node {v} originates {count} shortcuts");
        }
    }

    #[test]
    fn shortcuts_can_be_disabled_by_config() {
        let config = small_config(64, 4).with_shortcuts(false);
        let topo = StringFigureTopology::generate(&config).unwrap();
        assert!(topo.shortcut_wires().is_empty());
        assert!(topo.enabled_shortcuts().is_empty());
    }

    #[test]
    fn paper_example_ring_connections_present() {
        let topo = paper_example_topology();
        let g = topo.graph();
        // Space-0 ring follows node-id order for the example coordinates.
        for i in 0..9 {
            assert!(g.has_edge(n(i), n((i + 1) % 9)), "missing ring edge {i}");
        }
        // Space-1: Node-2 is connected with Node-8 (ring neighbour), as in the
        // paper's description of Figure 3(b).
        assert!(g.has_edge(n(2), n(8)));
        assert!(g.graph_connected_sanity());
    }

    // Small extension trait for readability of the test above.
    trait Sanity {
        fn graph_connected_sanity(&self) -> bool;
    }
    impl Sanity for AdjacencyGraph {
        fn graph_connected_sanity(&self) -> bool {
            self.is_connected()
        }
    }

    #[test]
    fn gate_and_ungate_roundtrip() {
        let mut topo = StringFigureTopology::generate(&small_config(64, 4)).unwrap();
        let reference = topo.clone();
        let delta = topo.gate_node(n(10)).unwrap();
        assert!(delta.gated);
        assert!(topo.is_gated(n(10)));
        assert!(topo.graph().is_connected());
        assert!(!delta.affected_neighbors.is_empty());
        // Ports freed on neighbours may enable shortcuts; all enabled
        // shortcuts must respect port budgets.
        for v in topo.graph().active_nodes() {
            assert!(topo.ports_in_use(v) <= 4, "node {v} oversubscribed");
        }
        let back = topo.ungate_node(n(10)).unwrap();
        assert!(!back.gated);
        assert!(!topo.is_gated(n(10)));
        // After the round trip no node may be over its port budget.
        for v in topo.graph().active_nodes() {
            assert!(topo.ports_in_use(v) <= 4);
        }
        assert!(topo.graph().is_connected());
        // The live graph should match the original one again (same edges).
        assert_eq!(
            topo.graph().num_edges(),
            reference.graph().num_edges(),
            "round-trip should restore the original link count"
        );
    }

    #[test]
    fn gating_twice_is_rejected() {
        let mut topo = StringFigureTopology::generate(&small_config(32, 4)).unwrap();
        topo.gate_node(n(5)).unwrap();
        assert!(topo.gate_node(n(5)).is_err());
        assert!(topo.ungate_node(n(6)).is_err());
    }

    #[test]
    fn gate_unknown_node_is_rejected() {
        let mut topo = StringFigureTopology::generate(&small_config(16, 4)).unwrap();
        assert!(topo.gate_node(n(99)).is_err());
    }

    #[test]
    fn gating_many_nodes_keeps_network_connected() {
        let mut topo = StringFigureTopology::generate(&small_config(128, 8)).unwrap();
        let mut gated = 0;
        for i in (0..128).step_by(3) {
            if topo.gate_node(n(i)).is_ok() {
                gated += 1;
            }
        }
        assert!(gated >= 30, "only gated {gated} nodes");
        assert!(topo.graph().is_connected());
        assert_eq!(topo.graph().num_active_nodes(), 128 - gated);
    }

    #[test]
    fn config_mismatch_rejected() {
        let spaces = paper_figure3_example();
        // 9 nodes in the example but config says 16.
        assert!(StringFigureTopology::from_spaces(small_config(16, 4), spaces.clone()).is_err());
        // 2 spaces in the example but p=8 implies 4 spaces.
        assert!(StringFigureTopology::from_spaces(small_config(9, 8), spaces).is_err());
    }

    #[test]
    fn ports_in_use_and_free_ports_account() {
        let topo = StringFigureTopology::generate(&small_config(64, 4)).unwrap();
        for v in topo.graph().nodes() {
            assert_eq!(
                topo.ports_in_use(v) + topo.free_ports(v),
                4.max(topo.ports_in_use(v))
            );
        }
    }

    #[test]
    fn odd_port_count_still_works() {
        // p = 5 gives two virtual spaces and one spare port per node that the
        // pairing / shortcut machinery can use.
        let topo = StringFigureTopology::generate(&small_config(30, 5)).unwrap();
        assert!(topo.graph().is_connected());
        for v in topo.graph().nodes() {
            assert!(topo.ports_in_use(v) <= 5);
        }
    }

    #[test]
    fn tiny_networks_are_supported() {
        for nodes in 2..8 {
            let topo = StringFigureTopology::generate(&small_config(nodes, 4)).unwrap();
            assert!(topo.graph().is_connected(), "N={nodes}");
        }
    }
}
