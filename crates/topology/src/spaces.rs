//! Virtual spaces: random coordinate assignment and ring arithmetic.
//!
//! String Figure logically distributes all memory nodes into `L = floor(p/2)`
//! *virtual spaces*. Within each space every node receives a coordinate on the
//! unit ring; sorting nodes by that coordinate yields the space's *ring*, and
//! adjacent nodes on each ring become physically connected (see
//! [`crate::stringfigure`]).
//!
//! This module owns:
//!
//! * **Balanced coordinate generation** ([`VirtualSpaces::generate`]) — the
//!   paper's `BalancedCoordinateGen()` (Figure 4b). We implement it as
//!   max-min-spacing sampling: each node draws several candidate coordinates
//!   and keeps the one farthest (in circular distance) from every coordinate
//!   already assigned in that space, which avoids the clumping that plain
//!   uniform sampling produces and therefore balances ring-segment lengths.
//! * **Ring arithmetic** — successor/predecessor and k-hop clockwise
//!   neighbours in a given space, used both for topology construction and for
//!   shortcut generation.

use serde::{Deserialize, Serialize};
use sf_types::{
    circular_distance, Coordinate, CoordinateVector, DeterministicRng, NodeId, SfError, SfResult,
    SpaceId,
};

/// Per-space coordinates and ring orderings for all memory nodes of a network.
///
/// # Examples
///
/// ```
/// use sf_topology::spaces::VirtualSpaces;
/// use sf_types::{DeterministicRng, NodeId, SpaceId};
///
/// let mut rng = DeterministicRng::new(1);
/// let spaces = VirtualSpaces::generate(9, 2, 8, &mut rng);
/// assert_eq!(spaces.num_nodes(), 9);
/// assert_eq!(spaces.num_spaces(), 2);
/// // Every node has a successor and predecessor on each ring.
/// let succ = spaces.successor(SpaceId::new(0), NodeId::new(0));
/// assert_ne!(succ, NodeId::new(0));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VirtualSpaces {
    num_spaces: usize,
    /// Coordinate vector (one coordinate per space) for every node.
    coords: Vec<CoordinateVector>,
    /// For every space, the node ids sorted by their coordinate in that space.
    rings: Vec<Vec<NodeId>>,
    /// For every space, the position of each node on that space's ring
    /// (inverse permutation of `rings`).
    positions: Vec<Vec<usize>>,
}

impl VirtualSpaces {
    /// Generates balanced random coordinates for `num_nodes` nodes across
    /// `num_spaces` virtual spaces.
    ///
    /// `balance_candidates` controls the max-min-spacing sampling: each node
    /// draws that many uniform candidates per space and keeps the one with the
    /// largest minimum circular distance to already-placed coordinates.
    /// `balance_candidates = 1` degenerates to plain uniform sampling.
    ///
    /// # Panics
    ///
    /// Panics if `num_nodes`, `num_spaces`, or `balance_candidates` is zero.
    #[must_use]
    pub fn generate(
        num_nodes: usize,
        num_spaces: usize,
        balance_candidates: usize,
        rng: &mut DeterministicRng,
    ) -> Self {
        assert!(num_nodes > 0, "need at least one node");
        assert!(num_spaces > 0, "need at least one virtual space");
        assert!(balance_candidates > 0, "need at least one candidate");

        // Coordinates are generated space-major so that each space's balance
        // is independent of the others.
        let mut per_space: Vec<Vec<Coordinate>> = Vec::with_capacity(num_spaces);
        for space in 0..num_spaces {
            let mut space_rng = rng.fork(space as u64);
            per_space.push(balanced_coordinates(
                num_nodes,
                balance_candidates,
                &mut space_rng,
            ));
        }

        let coords: Vec<CoordinateVector> = (0..num_nodes)
            .map(|node| {
                CoordinateVector::new((0..num_spaces).map(|s| per_space[s][node]).collect())
            })
            .collect();

        Self::from_coordinate_vectors(coords).expect("generated coordinates are always consistent")
    }

    /// Builds virtual spaces from explicit per-node coordinate vectors.
    ///
    /// This is how the paper's Figure 3(b) worked example (nine nodes, two
    /// spaces, hand-picked coordinates) is reproduced in tests.
    ///
    /// # Errors
    ///
    /// Returns [`SfError::InvalidConfiguration`] if `coords` is empty or the
    /// vectors do not all have the same number of spaces.
    pub fn from_coordinate_vectors(coords: Vec<CoordinateVector>) -> SfResult<Self> {
        if coords.is_empty() {
            return Err(SfError::InvalidConfiguration {
                reason: "at least one coordinate vector is required".to_string(),
            });
        }
        let num_spaces = coords[0].num_spaces();
        if num_spaces == 0 {
            return Err(SfError::InvalidConfiguration {
                reason: "coordinate vectors must span at least one virtual space".to_string(),
            });
        }
        if coords.iter().any(|c| c.num_spaces() != num_spaces) {
            return Err(SfError::InvalidConfiguration {
                reason: "all coordinate vectors must span the same virtual spaces".to_string(),
            });
        }

        let num_nodes = coords.len();
        let mut rings = Vec::with_capacity(num_spaces);
        let mut positions = Vec::with_capacity(num_spaces);
        for s in 0..num_spaces {
            let space = SpaceId::new(s);
            let mut order: Vec<NodeId> = (0..num_nodes).map(NodeId::new).collect();
            order.sort_by(|&a, &b| {
                coords[a.index()]
                    .coordinate(space)
                    .cmp(&coords[b.index()].coordinate(space))
                    .then(a.cmp(&b))
            });
            let mut pos = vec![0usize; num_nodes];
            for (p, &node) in order.iter().enumerate() {
                pos[node.index()] = p;
            }
            rings.push(order);
            positions.push(pos);
        }

        Ok(Self {
            num_spaces,
            coords,
            rings,
            positions,
        })
    }

    /// Number of memory nodes.
    #[must_use]
    pub fn num_nodes(&self) -> usize {
        self.coords.len()
    }

    /// Number of virtual spaces `L`.
    #[must_use]
    pub fn num_spaces(&self) -> usize {
        self.num_spaces
    }

    /// Coordinate vector of a node.
    ///
    /// # Panics
    ///
    /// Panics if the node is out of range.
    #[must_use]
    pub fn coordinates(&self, node: NodeId) -> &CoordinateVector {
        &self.coords[node.index()]
    }

    /// All coordinate vectors, indexed by node.
    #[must_use]
    pub fn all_coordinates(&self) -> &[CoordinateVector] {
        &self.coords
    }

    /// The ring (nodes sorted by coordinate) of one virtual space.
    ///
    /// # Panics
    ///
    /// Panics if the space is out of range.
    #[must_use]
    pub fn ring(&self, space: SpaceId) -> &[NodeId] {
        &self.rings[space.index()]
    }

    /// Position of `node` on the ring of `space` (0-based, in coordinate
    /// order).
    #[must_use]
    pub fn ring_position(&self, space: SpaceId, node: NodeId) -> usize {
        self.positions[space.index()][node.index()]
    }

    /// The node `hops` positions clockwise (increasing coordinate, wrapping)
    /// from `node` on the ring of `space`.
    #[must_use]
    pub fn clockwise_neighbor(&self, space: SpaceId, node: NodeId, hops: usize) -> NodeId {
        let ring = &self.rings[space.index()];
        let pos = self.positions[space.index()][node.index()];
        ring[(pos + hops) % ring.len()]
    }

    /// The node `hops` positions counter-clockwise from `node` on the ring of
    /// `space`.
    #[must_use]
    pub fn counterclockwise_neighbor(&self, space: SpaceId, node: NodeId, hops: usize) -> NodeId {
        let ring = &self.rings[space.index()];
        let pos = self.positions[space.index()][node.index()];
        let len = ring.len();
        ring[(pos + len - (hops % len)) % len]
    }

    /// Immediate clockwise ring neighbour (successor) of `node` in `space`.
    #[must_use]
    pub fn successor(&self, space: SpaceId, node: NodeId) -> NodeId {
        self.clockwise_neighbor(space, node, 1)
    }

    /// Immediate counter-clockwise ring neighbour (predecessor) of `node` in
    /// `space`.
    #[must_use]
    pub fn predecessor(&self, space: SpaceId, node: NodeId) -> NodeId {
        self.counterclockwise_neighbor(space, node, 1)
    }

    /// Both ring neighbours of `node` in `space`: `(predecessor, successor)`.
    #[must_use]
    pub fn ring_neighbors(&self, space: SpaceId, node: NodeId) -> (NodeId, NodeId) {
        (self.predecessor(space, node), self.successor(space, node))
    }

    /// Circular distance between two nodes' coordinates in one space.
    #[must_use]
    pub fn space_distance(&self, space: SpaceId, a: NodeId, b: NodeId) -> f64 {
        circular_distance(
            self.coords[a.index()].coordinate(space),
            self.coords[b.index()].coordinate(space),
        )
    }

    /// Minimum circular distance between two nodes over all spaces.
    #[must_use]
    pub fn min_distance(&self, a: NodeId, b: NodeId) -> f64 {
        sf_types::minimum_circular_distance(&self.coords[a.index()], &self.coords[b.index()])
    }

    /// A balance metric for one space: the ratio of the largest to the
    /// smallest gap between consecutive ring coordinates. Perfectly even
    /// spacing gives 1.0; larger values indicate clumping.
    #[must_use]
    pub fn balance_ratio(&self, space: SpaceId) -> f64 {
        let ring = &self.rings[space.index()];
        if ring.len() < 2 {
            return 1.0;
        }
        let mut min_gap = f64::INFINITY;
        let mut max_gap: f64 = 0.0;
        for i in 0..ring.len() {
            let a = self.coords[ring[i].index()].coordinate(space);
            let b = self.coords[ring[(i + 1) % ring.len()].index()].coordinate(space);
            let gap = if i + 1 == ring.len() {
                1.0 - a.value() + b.value()
            } else {
                b.value() - a.value()
            };
            min_gap = min_gap.min(gap);
            max_gap = max_gap.max(gap);
        }
        if min_gap <= 0.0 {
            f64::INFINITY
        } else {
            max_gap / min_gap
        }
    }
}

/// Generates `num_nodes` balanced coordinates on the unit ring using
/// max-min-spacing candidate sampling (the reproduction of the paper's
/// `BalancedCoordinateGen()`).
fn balanced_coordinates(
    num_nodes: usize,
    candidates: usize,
    rng: &mut DeterministicRng,
) -> Vec<Coordinate> {
    let mut placed: Vec<Coordinate> = Vec::with_capacity(num_nodes);
    // Node ids are assigned to coordinates in a random order so that node id
    // and ring position are uncorrelated (the "random order" requirement of
    // the paper's step 2).
    let mut assignment: Vec<usize> = (0..num_nodes).collect();
    rng.shuffle(&mut assignment);

    let mut chosen = vec![Coordinate::wrapping(0.0); num_nodes];
    for (placement_index, &node) in assignment.iter().enumerate() {
        let candidate_count = if placement_index == 0 { 1 } else { candidates };
        let mut best = Coordinate::wrapping(rng.next_f64());
        let mut best_score = min_distance_to(&placed, best);
        for _ in 1..candidate_count {
            let cand = Coordinate::wrapping(rng.next_f64());
            let score = min_distance_to(&placed, cand);
            if score > best_score {
                best = cand;
                best_score = score;
            }
        }
        placed.push(best);
        chosen[node] = best;
    }
    chosen
}

fn min_distance_to(placed: &[Coordinate], candidate: Coordinate) -> f64 {
    placed
        .iter()
        .map(|&c| circular_distance(c, candidate))
        .fold(f64::INFINITY, f64::min)
}

/// The nine-node, two-space worked example of the paper's Figure 3(b).
///
/// Node-2's coordinates are 0.20 and 0.87 in Space-0 and Space-1 as stated in
/// the paper; the remaining coordinates are chosen to reproduce the figure's
/// ring orderings.
#[must_use]
pub fn paper_figure3_example() -> VirtualSpaces {
    let coords = [
        // (space0, space1) per node 0..9
        (0.05, 0.55), // node 0
        (0.13, 0.31), // node 1
        (0.20, 0.87), // node 2 (given in the paper text)
        (0.33, 0.62), // node 3
        (0.47, 0.11), // node 4
        (0.58, 0.05), // node 5
        (0.69, 0.40), // node 6
        (0.81, 0.72), // node 7
        (0.92, 0.93), // node 8
    ];
    let vectors = coords
        .iter()
        .map(|&(a, b)| {
            CoordinateVector::new(vec![
                Coordinate::new(a).expect("valid example coordinate"),
                Coordinate::new(b).expect("valid example coordinate"),
            ])
        })
        .collect();
    VirtualSpaces::from_coordinate_vectors(vectors).expect("example coordinates are consistent")
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn n(i: usize) -> NodeId {
        NodeId::new(i)
    }
    fn s(i: usize) -> SpaceId {
        SpaceId::new(i)
    }

    #[test]
    fn generate_basic_shape() {
        let mut rng = DeterministicRng::new(42);
        let spaces = VirtualSpaces::generate(100, 4, 8, &mut rng);
        assert_eq!(spaces.num_nodes(), 100);
        assert_eq!(spaces.num_spaces(), 4);
        for sp in 0..4 {
            assert_eq!(spaces.ring(s(sp)).len(), 100);
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let mut r1 = DeterministicRng::new(7);
        let mut r2 = DeterministicRng::new(7);
        let a = VirtualSpaces::generate(64, 2, 8, &mut r1);
        let b = VirtualSpaces::generate(64, 2, 8, &mut r2);
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_give_different_layouts() {
        let mut r1 = DeterministicRng::new(1);
        let mut r2 = DeterministicRng::new(2);
        let a = VirtualSpaces::generate(64, 2, 8, &mut r1);
        let b = VirtualSpaces::generate(64, 2, 8, &mut r2);
        assert_ne!(a, b);
    }

    #[test]
    fn rings_are_sorted_by_coordinate() {
        let mut rng = DeterministicRng::new(3);
        let spaces = VirtualSpaces::generate(50, 3, 8, &mut rng);
        for sp in 0..3 {
            let ring = spaces.ring(s(sp));
            for w in ring.windows(2) {
                let ca = spaces.coordinates(w[0]).coordinate(s(sp));
                let cb = spaces.coordinates(w[1]).coordinate(s(sp));
                assert!(ca <= cb);
            }
        }
    }

    #[test]
    fn ring_positions_are_inverse_of_rings() {
        let mut rng = DeterministicRng::new(5);
        let spaces = VirtualSpaces::generate(33, 2, 4, &mut rng);
        for sp in 0..2 {
            for (pos, &node) in spaces.ring(s(sp)).iter().enumerate() {
                assert_eq!(spaces.ring_position(s(sp), node), pos);
            }
        }
    }

    #[test]
    fn successor_predecessor_are_inverse() {
        let mut rng = DeterministicRng::new(11);
        let spaces = VirtualSpaces::generate(40, 2, 8, &mut rng);
        for i in 0..40 {
            for sp in 0..2 {
                let succ = spaces.successor(s(sp), n(i));
                assert_eq!(spaces.predecessor(s(sp), succ), n(i));
                let pred = spaces.predecessor(s(sp), n(i));
                assert_eq!(spaces.successor(s(sp), pred), n(i));
            }
        }
    }

    #[test]
    fn clockwise_neighbor_wraps() {
        let mut rng = DeterministicRng::new(13);
        let spaces = VirtualSpaces::generate(10, 1, 4, &mut rng);
        for i in 0..10 {
            assert_eq!(spaces.clockwise_neighbor(s(0), n(i), 10), n(i));
            assert_eq!(spaces.counterclockwise_neighbor(s(0), n(i), 10), n(i));
            assert_eq!(spaces.clockwise_neighbor(s(0), n(i), 0), n(i));
        }
    }

    #[test]
    fn balanced_generation_is_more_even_than_uniform() {
        // Compare the clumping (max gap / min gap) of balanced vs uniform
        // sampling averaged over several seeds; balanced must be tighter.
        let mut balanced_sum = 0.0;
        let mut uniform_sum = 0.0;
        let trials = 10;
        for seed in 0..trials {
            let mut rb = DeterministicRng::new(seed);
            let balanced = VirtualSpaces::generate(200, 1, 8, &mut rb);
            balanced_sum += balanced.balance_ratio(s(0));
            let mut ru = DeterministicRng::new(seed);
            let uniform = VirtualSpaces::generate(200, 1, 1, &mut ru);
            uniform_sum += uniform.balance_ratio(s(0));
        }
        assert!(
            balanced_sum < uniform_sum,
            "balanced {balanced_sum} should clump less than uniform {uniform_sum}"
        );
    }

    #[test]
    fn from_coordinates_validation() {
        assert!(VirtualSpaces::from_coordinate_vectors(vec![]).is_err());
        let mismatch = vec![
            CoordinateVector::new(vec![Coordinate::new(0.1).unwrap()]),
            CoordinateVector::new(vec![
                Coordinate::new(0.2).unwrap(),
                Coordinate::new(0.3).unwrap(),
            ]),
        ];
        assert!(VirtualSpaces::from_coordinate_vectors(mismatch).is_err());
        let empty_spaces = vec![CoordinateVector::new(vec![])];
        assert!(VirtualSpaces::from_coordinate_vectors(empty_spaces).is_err());
    }

    #[test]
    fn paper_example_matches_figure3() {
        let spaces = paper_figure3_example();
        assert_eq!(spaces.num_nodes(), 9);
        assert_eq!(spaces.num_spaces(), 2);
        // Node-2's coordinates as stated in the paper.
        let c2 = spaces.coordinates(n(2));
        assert!((c2.coordinate(s(0)).value() - 0.20).abs() < 1e-12);
        assert!((c2.coordinate(s(1)).value() - 0.87).abs() < 1e-12);
        // In Space-0 the ring order follows node ids 0..9 (coordinates are
        // increasing), so Node-2 neighbours Node-1 and Node-3 as in the paper.
        assert_eq!(spaces.ring_neighbors(s(0), n(2)), (n(1), n(3)));
        // In Space-1, Node-2 is connected with Node-6 and Node-8 per the paper.
        let (pred, succ) = spaces.ring_neighbors(s(1), n(2));
        let neighbours = [pred, succ];
        assert!(neighbours.contains(&n(8)));
        assert!(neighbours.contains(&n(6)) || neighbours.contains(&n(7)));
    }

    #[test]
    fn space_distance_and_min_distance() {
        let spaces = paper_figure3_example();
        let d0 = spaces.space_distance(s(0), n(0), n(1));
        assert!((d0 - 0.08).abs() < 1e-9);
        let md = spaces.min_distance(n(0), n(1));
        assert!(md <= d0 + 1e-12);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn prop_rings_are_permutations(seed in any::<u64>(), nodes in 2usize..200, spaces_n in 1usize..5) {
            let mut rng = DeterministicRng::new(seed);
            let vs = VirtualSpaces::generate(nodes, spaces_n, 4, &mut rng);
            for sp in 0..spaces_n {
                let mut ids: Vec<usize> = vs.ring(SpaceId::new(sp)).iter().map(|n| n.index()).collect();
                ids.sort_unstable();
                prop_assert_eq!(ids, (0..nodes).collect::<Vec<_>>());
            }
        }

        #[test]
        fn prop_successor_cycles_cover_ring(seed in any::<u64>(), nodes in 2usize..100) {
            let mut rng = DeterministicRng::new(seed);
            let vs = VirtualSpaces::generate(nodes, 2, 4, &mut rng);
            // Following successors from node 0 must visit every node exactly once.
            let mut seen = vec![false; nodes];
            let mut cur = NodeId::new(0);
            for _ in 0..nodes {
                prop_assert!(!seen[cur.index()]);
                seen[cur.index()] = true;
                cur = vs.successor(SpaceId::new(0), cur);
            }
            prop_assert_eq!(cur, NodeId::new(0));
            prop_assert!(seen.into_iter().all(|v| v));
        }
    }
}
