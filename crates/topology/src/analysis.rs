//! Graph analysis: shortest paths, path-length statistics, and empirical
//! bisection bandwidth.
//!
//! These routines reproduce the paper's topology-level metrics:
//!
//! * **Average shortest path length** (Figure 5 and Figure 9a) — BFS over the
//!   active subgraph, averaged over all ordered pairs of distinct active
//!   nodes, plus 10th/90th-percentile path lengths.
//! * **Empirical minimum bisection bandwidth** (Section V) — the minimum over
//!   many random equal splits of the active nodes of the maximum flow between
//!   the two halves, with unit-capacity links.

use crate::graph::AdjacencyGraph;
use serde::{Deserialize, Serialize};
use sf_types::{DeterministicRng, NodeId};
use std::collections::VecDeque;

/// Summary statistics of shortest-path lengths over all active node pairs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PathLengthStats {
    /// Mean shortest-path length over ordered pairs of distinct nodes.
    pub average: f64,
    /// 10th-percentile shortest-path length.
    pub p10: u32,
    /// Median shortest-path length.
    pub p50: u32,
    /// 90th-percentile shortest-path length.
    pub p90: u32,
    /// Network diameter (longest shortest path).
    pub diameter: u32,
    /// Number of unreachable ordered pairs (0 for a connected network).
    pub unreachable_pairs: usize,
}

/// BFS distances (in hops) from `source` to every node over the active
/// subgraph. Unreachable or inactive nodes get `u32::MAX`.
#[must_use]
pub fn bfs_distances(graph: &AdjacencyGraph, source: NodeId) -> Vec<u32> {
    let n = graph.num_nodes();
    let mut dist = vec![u32::MAX; n];
    if !graph.is_active(source) {
        return dist;
    }
    dist[source.index()] = 0;
    let mut queue = VecDeque::with_capacity(n);
    queue.push_back(source.index());
    while let Some(cur) = queue.pop_front() {
        let d = dist[cur];
        for next in graph.active_neighbors(NodeId::new(cur)) {
            let ni = next.index();
            if dist[ni] == u32::MAX {
                dist[ni] = d + 1;
                queue.push_back(ni);
            }
        }
    }
    dist
}

/// Shortest-path hop count between two active nodes, if reachable.
#[must_use]
pub fn shortest_path_length(graph: &AdjacencyGraph, from: NodeId, to: NodeId) -> Option<u32> {
    let dist = bfs_distances(graph, from);
    match dist.get(to.index()) {
        Some(&d) if d != u32::MAX => Some(d),
        _ => None,
    }
}

/// Computes shortest-path statistics over every ordered pair of distinct
/// active nodes.
///
/// For large networks this is `O(N * E)`; 1296 nodes with ~5200 links costs a
/// few million queue operations and completes in milliseconds.
#[must_use]
pub fn path_length_stats(graph: &AdjacencyGraph) -> PathLengthStats {
    let active: Vec<NodeId> = graph.active_nodes().collect();
    let mut lengths: Vec<u32> = Vec::new();
    let mut unreachable = 0usize;
    for &src in &active {
        let dist = bfs_distances(graph, src);
        for &dst in &active {
            if src == dst {
                continue;
            }
            let d = dist[dst.index()];
            if d == u32::MAX {
                unreachable += 1;
            } else {
                lengths.push(d);
            }
        }
    }
    if lengths.is_empty() {
        return PathLengthStats {
            average: 0.0,
            p10: 0,
            p50: 0,
            p90: 0,
            diameter: 0,
            unreachable_pairs: unreachable,
        };
    }
    lengths.sort_unstable();
    let sum: u64 = lengths.iter().map(|&d| u64::from(d)).sum();
    let percentile = |p: f64| -> u32 {
        let idx = ((lengths.len() as f64 - 1.0) * p).round() as usize;
        lengths[idx.min(lengths.len() - 1)]
    };
    PathLengthStats {
        average: sum as f64 / lengths.len() as f64,
        p10: percentile(0.10),
        p50: percentile(0.50),
        p90: percentile(0.90),
        diameter: *lengths.last().expect("non-empty"),
        unreachable_pairs: unreachable,
    }
}

/// Average shortest-path length over all ordered pairs of distinct active
/// nodes (convenience wrapper around [`path_length_stats`]).
#[must_use]
pub fn average_shortest_path_length(graph: &AdjacencyGraph) -> f64 {
    path_length_stats(graph).average
}

/// Result of the empirical bisection-bandwidth measurement.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BisectionBandwidth {
    /// Minimum max-flow (in links) observed over the random bisections.
    pub minimum: u64,
    /// Mean max-flow over the random bisections.
    pub average: f64,
    /// Number of random bisections evaluated.
    pub samples: usize,
}

/// Estimates the empirical minimum bisection bandwidth of the active subgraph.
///
/// Following the paper's methodology, the active nodes are split into two
/// random halves `samples` times; for each split the maximum flow between the
/// halves (unit capacity per link direction) is computed and the minimum and
/// mean over all splits are reported.
#[must_use]
pub fn empirical_bisection_bandwidth(
    graph: &AdjacencyGraph,
    samples: usize,
    rng: &mut DeterministicRng,
) -> BisectionBandwidth {
    let active: Vec<NodeId> = graph.active_nodes().collect();
    if active.len() < 2 || samples == 0 {
        return BisectionBandwidth {
            minimum: 0,
            average: 0.0,
            samples: 0,
        };
    }
    let mut minimum = u64::MAX;
    let mut total = 0u64;
    for _ in 0..samples {
        let mut order = active.clone();
        rng.shuffle(&mut order);
        let half = order.len() / 2;
        let (side_a, side_b) = order.split_at(half);
        let flow = max_flow_between(graph, side_a, side_b);
        minimum = minimum.min(flow);
        total += flow;
    }
    BisectionBandwidth {
        minimum,
        average: total as f64 / samples as f64,
        samples,
    }
}

/// Maximum flow between two node sets with unit-capacity edges
/// (Edmonds–Karp on a super-source/super-sink augmented graph).
#[must_use]
pub fn max_flow_between(graph: &AdjacencyGraph, side_a: &[NodeId], side_b: &[NodeId]) -> u64 {
    let n = graph.num_nodes();
    let source = n;
    let sink = n + 1;
    let total = n + 2;

    // Residual capacities in a dense-ish CSR-like structure: adjacency map of
    // (neighbour, capacity). Unit capacity per direction per physical link;
    // "infinite" capacity from the super source/sink.
    let mut cap: Vec<Vec<(usize, u64)>> = vec![Vec::new(); total];
    let mut index: Vec<std::collections::HashMap<usize, usize>> =
        vec![std::collections::HashMap::new(); total];

    let add_edge = |cap: &mut Vec<Vec<(usize, u64)>>,
                    index: &mut Vec<std::collections::HashMap<usize, usize>>,
                    u: usize,
                    v: usize,
                    c: u64| {
        if let Some(&i) = index[u].get(&v) {
            cap[u][i].1 += c;
        } else {
            index[u].insert(v, cap[u].len());
            cap[u].push((v, c));
        }
        if !index[v].contains_key(&u) {
            index[v].insert(u, cap[v].len());
            cap[v].push((u, 0));
        }
    };

    for e in graph.active_edges() {
        add_edge(&mut cap, &mut index, e.a.index(), e.b.index(), 1);
        add_edge(&mut cap, &mut index, e.b.index(), e.a.index(), 1);
    }
    let huge = graph.num_edges() as u64 + 1;
    for &a in side_a {
        add_edge(&mut cap, &mut index, source, a.index(), huge);
    }
    for &b in side_b {
        add_edge(&mut cap, &mut index, b.index(), sink, huge);
    }

    let mut flow = 0u64;
    loop {
        // BFS for an augmenting path.
        let mut parent: Vec<Option<(usize, usize)>> = vec![None; total];
        let mut visited = vec![false; total];
        visited[source] = true;
        let mut queue = VecDeque::new();
        queue.push_back(source);
        while let Some(u) = queue.pop_front() {
            if u == sink {
                break;
            }
            for (i, &(v, c)) in cap[u].iter().enumerate() {
                if c > 0 && !visited[v] {
                    visited[v] = true;
                    parent[v] = Some((u, i));
                    queue.push_back(v);
                }
            }
        }
        if !visited[sink] {
            break;
        }
        // Find the bottleneck along the path.
        let mut bottleneck = u64::MAX;
        let mut v = sink;
        while let Some((u, i)) = parent[v] {
            bottleneck = bottleneck.min(cap[u][i].1);
            v = u;
        }
        // Apply the augmentation.
        let mut v = sink;
        while let Some((u, i)) = parent[v] {
            cap[u][i].1 -= bottleneck;
            let back = index[v][&u];
            cap[v][back].1 += bottleneck;
            v = u;
        }
        flow += bottleneck;
    }
    flow
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::EdgeKind;

    fn n(i: usize) -> NodeId {
        NodeId::new(i)
    }

    fn ring(num: usize) -> AdjacencyGraph {
        let mut g = AdjacencyGraph::new(num);
        for i in 0..num {
            g.add_edge(n(i), n((i + 1) % num), EdgeKind::Structured)
                .unwrap();
        }
        g
    }

    fn line(num: usize) -> AdjacencyGraph {
        let mut g = AdjacencyGraph::new(num);
        for i in 0..num - 1 {
            g.add_edge(n(i), n(i + 1), EdgeKind::Structured).unwrap();
        }
        g
    }

    fn complete(num: usize) -> AdjacencyGraph {
        let mut g = AdjacencyGraph::new(num);
        for i in 0..num {
            for j in i + 1..num {
                g.add_edge(n(i), n(j), EdgeKind::Structured).unwrap();
            }
        }
        g
    }

    #[test]
    fn bfs_on_line() {
        let g = line(5);
        let dist = bfs_distances(&g, n(0));
        assert_eq!(dist, vec![0, 1, 2, 3, 4]);
        assert_eq!(shortest_path_length(&g, n(0), n(4)), Some(4));
        assert_eq!(shortest_path_length(&g, n(4), n(0)), Some(4));
    }

    #[test]
    fn bfs_from_inactive_source() {
        let mut g = line(4);
        g.set_active(n(0), false).unwrap();
        let dist = bfs_distances(&g, n(0));
        assert!(dist.iter().all(|&d| d == u32::MAX));
    }

    #[test]
    fn bfs_respects_gated_nodes() {
        let mut g = line(5);
        g.set_active(n(2), false).unwrap();
        assert_eq!(shortest_path_length(&g, n(0), n(4)), None);
        assert_eq!(shortest_path_length(&g, n(0), n(1)), Some(1));
    }

    #[test]
    fn ring_average_path_length() {
        // On an even ring of 8, distances from any node are 1,2,3,4,3,2,1 ->
        // average 16/7.
        let g = ring(8);
        let stats = path_length_stats(&g);
        assert!((stats.average - 16.0 / 7.0).abs() < 1e-9);
        assert_eq!(stats.diameter, 4);
        assert_eq!(stats.unreachable_pairs, 0);
        assert_eq!(stats.p50, 2);
    }

    #[test]
    fn complete_graph_has_unit_paths() {
        let g = complete(6);
        let stats = path_length_stats(&g);
        assert_eq!(stats.average, 1.0);
        assert_eq!(stats.diameter, 1);
        assert_eq!(stats.p10, 1);
        assert_eq!(stats.p90, 1);
    }

    #[test]
    fn disconnected_graph_counts_unreachable() {
        let mut g = AdjacencyGraph::new(4);
        g.add_edge(n(0), n(1), EdgeKind::Structured).unwrap();
        g.add_edge(n(2), n(3), EdgeKind::Structured).unwrap();
        let stats = path_length_stats(&g);
        assert_eq!(stats.unreachable_pairs, 8);
        assert_eq!(stats.average, 1.0);
    }

    #[test]
    fn empty_and_single_node_stats() {
        let g = AdjacencyGraph::new(1);
        let stats = path_length_stats(&g);
        assert_eq!(stats.average, 0.0);
        assert_eq!(stats.diameter, 0);
    }

    #[test]
    fn max_flow_on_ring_is_two() {
        // Splitting a ring into two contiguous arcs cuts exactly 2 links.
        let g = ring(8);
        let a: Vec<NodeId> = (0..4).map(n).collect();
        let b: Vec<NodeId> = (4..8).map(n).collect();
        assert_eq!(max_flow_between(&g, &a, &b), 2);
    }

    #[test]
    fn max_flow_on_complete_graph() {
        // K6 split 3/3: each of the 3 left nodes has 3 links to the right.
        let g = complete(6);
        let a: Vec<NodeId> = (0..3).map(n).collect();
        let b: Vec<NodeId> = (3..6).map(n).collect();
        assert_eq!(max_flow_between(&g, &a, &b), 9);
    }

    #[test]
    fn bisection_of_line_is_bounded_by_edge_count() {
        // A line of 10 nodes has 9 edges; any bisection cuts between 1 and 9
        // of them, and the empirical minimum can never exceed the average.
        let g = line(10);
        let mut rng = DeterministicRng::new(1);
        let bb = empirical_bisection_bandwidth(&g, 20, &mut rng);
        assert!((1..=9).contains(&bb.minimum));
        assert!(bb.average >= bb.minimum as f64);
        assert_eq!(bb.samples, 20);
        // The contiguous split is the true minimum bisection: exactly 1 link.
        let left: Vec<NodeId> = (0..5).map(n).collect();
        let right: Vec<NodeId> = (5..10).map(n).collect();
        assert_eq!(max_flow_between(&g, &left, &right), 1);
    }

    #[test]
    fn bisection_handles_degenerate_inputs() {
        let g = AdjacencyGraph::new(1);
        let mut rng = DeterministicRng::new(1);
        let bb = empirical_bisection_bandwidth(&g, 10, &mut rng);
        assert_eq!(bb.samples, 0);
        let g2 = ring(6);
        let bb2 = empirical_bisection_bandwidth(&g2, 0, &mut rng);
        assert_eq!(bb2.samples, 0);
    }

    #[test]
    fn denser_graphs_have_higher_bisection() {
        let mut rng = DeterministicRng::new(2);
        let ring_bb = empirical_bisection_bandwidth(&ring(12), 10, &mut rng);
        let complete_bb = empirical_bisection_bandwidth(&complete(12), 10, &mut rng);
        assert!(complete_bb.minimum > ring_bb.minimum);
    }
}
