//! 2D-grid placement of memory nodes and wire-length modelling.
//!
//! The paper places memory nodes on a PCB or silicon interposer as a 2D grid
//! and charges one extra hop of link latency whenever a wire spans more than
//! ten memory-node pitches (the wire length supported by HMC links). This
//! module provides the placement, the grid-distance computation, and a
//! clustering quality metric used by the placement-aware experiments.

use crate::graph::AdjacencyGraph;
use serde::{Deserialize, Serialize};
use sf_types::NodeId;

/// Position of a memory node on the 2D placement grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct GridPosition {
    /// Row index.
    pub row: u32,
    /// Column index.
    pub col: u32,
}

impl GridPosition {
    /// Chebyshev (chessboard) distance to another grid position, which is the
    /// number of memory-node pitches a wire between the two must span.
    #[must_use]
    pub fn grid_distance(&self, other: &Self) -> u32 {
        let dr = self.row.abs_diff(other.row);
        let dc = self.col.abs_diff(other.col);
        dr.max(dc)
    }
}

/// A placement of all memory nodes on a near-square 2D grid.
///
/// # Examples
///
/// ```
/// use sf_topology::placement::GridPlacement;
/// use sf_types::NodeId;
///
/// let placement = GridPlacement::row_major(9);
/// assert_eq!(placement.rows(), 3);
/// assert_eq!(placement.cols(), 3);
/// assert_eq!(placement.position(NodeId::new(4)).row, 1);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GridPlacement {
    rows: u32,
    cols: u32,
    positions: Vec<GridPosition>,
}

impl GridPlacement {
    /// Places `num_nodes` nodes in row-major order on a near-square grid.
    ///
    /// # Panics
    ///
    /// Panics if `num_nodes` is zero.
    #[must_use]
    pub fn row_major(num_nodes: usize) -> Self {
        assert!(num_nodes > 0, "cannot place zero nodes");
        let cols = (num_nodes as f64).sqrt().ceil() as u32;
        let rows = (num_nodes as u32).div_ceil(cols);
        let positions = (0..num_nodes)
            .map(|i| GridPosition {
                row: i as u32 / cols,
                col: i as u32 % cols,
            })
            .collect();
        Self {
            rows,
            cols,
            positions,
        }
    }

    /// Number of grid rows.
    #[must_use]
    pub fn rows(&self) -> u32 {
        self.rows
    }

    /// Number of grid columns.
    #[must_use]
    pub fn cols(&self) -> u32 {
        self.cols
    }

    /// Number of placed nodes.
    #[must_use]
    pub fn num_nodes(&self) -> usize {
        self.positions.len()
    }

    /// Grid position of a node.
    ///
    /// # Panics
    ///
    /// Panics if the node is out of range.
    #[must_use]
    pub fn position(&self, node: NodeId) -> GridPosition {
        self.positions[node.index()]
    }

    /// Wire length (in memory-node pitches) between two placed nodes.
    #[must_use]
    pub fn wire_length(&self, a: NodeId, b: NodeId) -> u32 {
        self.position(a).grid_distance(&self.position(b))
    }

    /// Whether the wire between two nodes is "long", i.e. spans more than
    /// `threshold` pitches (the paper uses ten).
    #[must_use]
    pub fn is_long_wire(&self, a: NodeId, b: NodeId, threshold: u32) -> bool {
        self.wire_length(a, b) > threshold
    }

    /// Fraction of the graph's edges that are long wires under `threshold`.
    #[must_use]
    pub fn long_wire_fraction(&self, graph: &AdjacencyGraph, threshold: u32) -> f64 {
        let edges = graph.edges();
        if edges.is_empty() {
            return 0.0;
        }
        let long = edges
            .iter()
            .filter(|e| self.is_long_wire(e.a, e.b, threshold))
            .count();
        long as f64 / edges.len() as f64
    }

    /// Average wire length over the graph's edges.
    #[must_use]
    pub fn average_wire_length(&self, graph: &AdjacencyGraph) -> f64 {
        let edges = graph.edges();
        if edges.is_empty() {
            return 0.0;
        }
        let total: u64 = edges
            .iter()
            .map(|e| u64::from(self.wire_length(e.a, e.b)))
            .sum();
        total as f64 / edges.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::EdgeKind;

    fn n(i: usize) -> NodeId {
        NodeId::new(i)
    }

    #[test]
    fn grid_distance_is_chebyshev() {
        let a = GridPosition { row: 0, col: 0 };
        let b = GridPosition { row: 3, col: 1 };
        assert_eq!(a.grid_distance(&b), 3);
        assert_eq!(b.grid_distance(&a), 3);
        assert_eq!(a.grid_distance(&a), 0);
    }

    #[test]
    fn row_major_square_layout() {
        let p = GridPlacement::row_major(16);
        assert_eq!(p.rows(), 4);
        assert_eq!(p.cols(), 4);
        assert_eq!(p.position(n(0)), GridPosition { row: 0, col: 0 });
        assert_eq!(p.position(n(5)), GridPosition { row: 1, col: 1 });
        assert_eq!(p.position(n(15)), GridPosition { row: 3, col: 3 });
    }

    #[test]
    fn row_major_non_square_layout() {
        let p = GridPlacement::row_major(10);
        assert_eq!(p.cols(), 4);
        assert_eq!(p.rows(), 3);
        assert_eq!(p.num_nodes(), 10);
        assert_eq!(p.position(n(9)), GridPosition { row: 2, col: 1 });
    }

    #[test]
    fn wire_length_and_long_wire() {
        let p = GridPlacement::row_major(144); // 12x12
        assert_eq!(p.wire_length(n(0), n(11)), 11);
        assert!(p.is_long_wire(n(0), n(11), 10));
        assert!(!p.is_long_wire(n(0), n(10), 10));
        assert_eq!(p.wire_length(n(0), n(13)), 1);
    }

    #[test]
    fn long_wire_fraction_and_average() {
        let p = GridPlacement::row_major(144);
        let mut g = AdjacencyGraph::new(144);
        g.add_edge(n(0), n(1), EdgeKind::Structured).unwrap(); // length 1
        g.add_edge(n(0), n(11), EdgeKind::Structured).unwrap(); // length 11
        assert!((p.long_wire_fraction(&g, 10) - 0.5).abs() < 1e-12);
        assert!((p.average_wire_length(&g) - 6.0).abs() < 1e-12);
        let empty = AdjacencyGraph::new(144);
        assert_eq!(p.long_wire_fraction(&empty, 10), 0.0);
        assert_eq!(p.average_wire_length(&empty), 0.0);
    }

    #[test]
    #[should_panic(expected = "cannot place zero nodes")]
    fn zero_nodes_panics() {
        let _ = GridPlacement::row_major(0);
    }
}
