//! # `sf-topology`
//!
//! Memory-network topologies for the String Figure reproduction (HPCA 2019):
//! the String Figure balanced random multi-space topology itself, the baseline
//! topologies it is evaluated against, and the graph analysis used by the
//! paper's Figure 5 / Figure 9(a) path-length studies and the bisection
//! bandwidth methodology.
//!
//! ## Modules
//!
//! * [`graph`] — the shared [`AdjacencyGraph`](graph::AdjacencyGraph) link
//!   structure with per-node activity flags and per-edge construction kinds.
//! * [`spaces`] — virtual spaces: balanced random coordinates and ring
//!   arithmetic.
//! * [`stringfigure`] — the String Figure topology builder with shortcut
//!   fabrication and elastic gate/un-gate reconfiguration.
//! * [`baselines`] — DM/ODM meshes, FB/AFB flattened butterflies, S2-ideal,
//!   and Jellyfish.
//! * [`analysis`] — BFS path-length statistics and empirical bisection
//!   bandwidth (max-flow over random node splits).
//! * [`placement`] — 2D-grid placement and wire-length modelling.
//!
//! ## Example
//!
//! ```
//! use sf_topology::{analysis, StringFigureTopology};
//! use sf_types::NetworkConfig;
//!
//! let config = NetworkConfig::new(128, 4)?;
//! let topology = StringFigureTopology::generate(&config)?;
//! let stats = analysis::path_length_stats(topology.graph());
//! assert!(stats.average < 6.0);
//! # Ok::<(), sf_types::SfError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

pub mod analysis;
pub mod baselines;
pub mod graph;
pub mod placement;
pub mod spaces;
pub mod stringfigure;

pub use baselines::{
    FlattenedButterfly, JellyfishTopology, MemoryNetworkTopology, MeshTopology, S2Topology,
};
pub use graph::{AdjacencyGraph, Edge, EdgeKind};
pub use placement::{GridPlacement, GridPosition};
pub use spaces::VirtualSpaces;
pub use stringfigure::{ReconfigurationDelta, StringFigureTopology};
