//! No-op derive macros backing the offline `serde` shim.
//!
//! The shim's `Serialize` / `Deserialize` traits are blanket-implemented for
//! every type, so the derives have nothing to emit — they only need to exist
//! so `#[derive(Serialize, Deserialize)]` keeps compiling.

use proc_macro::TokenStream;

/// No-op stand-in for `serde_derive::Serialize`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op stand-in for `serde_derive::Deserialize`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
