//! Offline stand-in for the `serde` crate.
//!
//! The build environment for this repository has no crates.io access, so this
//! shim provides exactly the subset of serde's surface the workspace uses:
//! the `Serialize` / `Deserialize` trait names (as markers, blanket-implemented
//! for every type) and the matching no-op derive macros. The workspace never
//! calls serde's data model — machine-readable output goes through
//! `sf-harness`'s hand-rolled CSV/JSON emitters instead — so marker semantics
//! are sufficient. Swapping this shim for real serde is a one-line change in
//! the root `Cargo.toml` once a registry is reachable.

#![forbid(unsafe_code)]

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait mirroring `serde::Serialize`; blanket-implemented so derive
/// bounds and `T: Serialize` constraints always hold.
pub trait Serialize {}

impl<T: ?Sized> Serialize for T {}

/// Marker trait mirroring `serde::Deserialize<'de>`; blanket-implemented.
pub trait Deserialize<'de> {}

impl<'de, T: ?Sized> Deserialize<'de> for T {}
