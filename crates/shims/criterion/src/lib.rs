//! Offline stand-in for the `criterion` benchmark framework.
//!
//! Implements just the API subset the `sf-bench` benches use —
//! [`Criterion::benchmark_group`], [`BenchmarkGroup::bench_with_input`],
//! [`Bencher::iter`], [`BenchmarkId`], and the [`criterion_group!`] /
//! [`criterion_main!`] macros — backed by a simple wall-clock measurement:
//! each benchmark runs a warm-up iteration, then `sample_size` timed
//! iterations, and prints the mean, minimum, and maximum per-iteration time.
//! No statistics engine, no plotting, no CLI parsing; good enough to spot
//! order-of-magnitude regressions while the environment is offline.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Entry point handed to every benchmark function.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("\n== {name}");
        BenchmarkGroup {
            _criterion: self,
            sample_size: 10,
        }
    }

    /// Runs a single named benchmark outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut bencher = Bencher::new(10);
        f(&mut bencher);
        bencher.report(name);
        self
    }
}

/// A group of benchmarks sharing a sample size.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed iterations each benchmark in the group runs.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Benchmarks `f` with `input`, labelled by `id`.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut bencher = Bencher::new(self.sample_size);
        f(&mut bencher, input);
        bencher.report(&id.label);
        self
    }

    /// Ends the group (no-op; exists for API compatibility).
    pub fn finish(self) {}
}

/// Identifies one benchmark within a group: `function_name/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Creates an id from a function name and a displayable parameter.
    pub fn new<P: Display>(function_name: &str, parameter: P) -> Self {
        Self {
            label: format!("{function_name}/{parameter}"),
        }
    }

    /// Creates an id from a parameter alone.
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        Self {
            label: parameter.to_string(),
        }
    }
}

/// Timer handed to the benchmark closure; call [`Bencher::iter`] with the
/// code under test.
#[derive(Debug)]
pub struct Bencher {
    sample_size: usize,
    samples: Vec<Duration>,
}

impl Bencher {
    fn new(sample_size: usize) -> Self {
        Self {
            sample_size,
            samples: Vec::new(),
        }
    }

    /// Runs `routine` once as warm-up, then `sample_size` timed iterations.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        std::hint::black_box(routine());
        self.samples.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            std::hint::black_box(routine());
            self.samples.push(start.elapsed());
        }
    }

    fn report(&self, label: &str) {
        if self.samples.is_empty() {
            println!("{label:40} (no samples — closure never called iter)");
            return;
        }
        let total: Duration = self.samples.iter().sum();
        let mean = total / self.samples.len() as u32;
        let min = self.samples.iter().min().copied().unwrap_or_default();
        let max = self.samples.iter().max().copied().unwrap_or_default();
        println!(
            "{label:40} mean {mean:>12.3?}   min {min:>12.3?}   max {max:>12.3?}   ({} samples)",
            self.samples.len()
        );
    }
}

/// Declares a group of benchmark functions, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group_name:ident, $($function:path),+ $(,)?) => {
        pub fn $group_name() {
            let mut criterion = $crate::Criterion::default();
            $($function(&mut criterion);)+
        }
    };
}

/// Declares the benchmark `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_collects_samples() {
        let mut criterion = Criterion::default();
        let mut group = criterion.benchmark_group("shim");
        group
            .sample_size(3)
            .bench_with_input(BenchmarkId::new("square", 7), &7u64, |b, &n| {
                b.iter(|| n * n)
            });
        group.finish();
    }
}
