//! Synthetic models of the paper's "real workload" traces (Table IV).
//!
//! The paper drives its RTL simulator with Pin-collected memory traces of
//! Spark jobs (wordcount, grep, sort), PageRank, Redis, Memcached, dense
//! matrix multiplication, and K-means. Those traces depend on proprietary
//! inputs and a specific host machine, so this module substitutes
//! parameterised generators that reproduce the *post-cache* characteristics
//! the memory network observes:
//!
//! | workload          | access structure                         | read share |
//! |--------------------|------------------------------------------|------------|
//! | Spark wordcount    | streaming scan, rare jumps               | 0.85       |
//! | Spark grep         | streaming scan, rare jumps               | 0.95       |
//! | Spark sort         | streaming scan + random shuffle writes   | 0.60       |
//! | PageRank           | edge-list scan + power-law vertex access | 0.90       |
//! | Redis              | zipfian key-value accesses               | 0.85       |
//! | Memcached          | zipfian key-value, get/set ratio 0.8     | 0.80       |
//! | K-means            | streaming points + hot centroid block    | 0.95       |
//! | MatMul             | blocked dense matrix multiply            | 0.67       |
//!
//! Every generated access is filtered through the paper's cache hierarchy
//! ([`crate::cache::CacheHierarchy`]); only last-level misses become memory
//! network requests, which are then mapped to memory nodes with the
//! [`crate::address::AddressMapper`].

use crate::address::AddressMapper;
use crate::cache::CacheHierarchy;
use serde::{Deserialize, Serialize};
use sf_netsim::{TrafficModel, TrafficRequest};
use sf_types::{DeterministicRng, NodeId, SfError, SfResult};
use std::collections::HashMap;
use std::fmt;

/// One of the eight evaluated applications (Table IV).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ApplicationModel {
    /// Spark "wordcount" over a text corpus.
    SparkWordcount,
    /// Spark "grep" over a text corpus.
    SparkGrep,
    /// Spark "sort" (shuffle-heavy).
    SparkSort,
    /// PageRank over a power-law graph.
    Pagerank,
    /// Redis in-memory key-value store.
    Redis,
    /// Memcached with a 0.8 get/set ratio.
    Memcached,
    /// K-means clustering.
    Kmeans,
    /// Dense matrix multiplication.
    MatMul,
}

impl ApplicationModel {
    /// All eight workloads in the order Figure 12 reports them.
    pub const ALL: [Self; 8] = [
        Self::SparkWordcount,
        Self::SparkGrep,
        Self::SparkSort,
        Self::Pagerank,
        Self::Redis,
        Self::Memcached,
        Self::Kmeans,
        Self::MatMul,
    ];

    /// Short name used in experiment output.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Self::SparkWordcount => "wordcount",
            Self::SparkGrep => "grep",
            Self::SparkSort => "sort",
            Self::Pagerank => "pagerank",
            Self::Redis => "redis",
            Self::Memcached => "memcached",
            Self::Kmeans => "kmeans",
            Self::MatMul => "matmul",
        }
    }

    /// The workload whose [`name`](Self::name) is `name`, if any — the
    /// inverse of the experiment-output rendering, used when restoring
    /// checkpointed rows.
    #[must_use]
    pub fn from_name(name: &str) -> Option<Self> {
        Self::ALL.into_iter().find(|w| w.name() == name)
    }

    /// Fraction of accesses that are reads.
    #[must_use]
    pub fn read_ratio(self) -> f64 {
        match self {
            Self::SparkWordcount => 0.85,
            Self::SparkGrep => 0.95,
            Self::SparkSort => 0.60,
            Self::Pagerank => 0.90,
            Self::Redis => 0.85,
            Self::Memcached => 0.80,
            Self::Kmeans => 0.95,
            Self::MatMul => 0.67,
        }
    }

    /// Probability that a processor issues a memory operation in a given
    /// network cycle (post-cache request rates differ per workload class:
    /// scan-heavy analytics are more memory-intensive than key-value stores).
    #[must_use]
    pub fn memory_intensity(self) -> f64 {
        match self {
            Self::SparkWordcount | Self::SparkGrep => 0.35,
            Self::SparkSort => 0.45,
            Self::Pagerank => 0.40,
            Self::Redis | Self::Memcached => 0.25,
            Self::Kmeans => 0.30,
            Self::MatMul => 0.50,
        }
    }
}

impl fmt::Display for ApplicationModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// The address-stream structure behind a workload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
enum AccessPattern {
    /// Sequential scan with occasional random jumps.
    Streaming {
        /// Probability of jumping to a random position instead of advancing.
        jump_probability: f64,
        /// Probability that a write lands at a random (shuffle) location.
        scatter_writes: bool,
    },
    /// Zipf-distributed object accesses (key-value stores).
    Zipfian {
        /// Skew of the key popularity distribution.
        theta: f64,
        /// Size of one stored object in bytes.
        object_bytes: u64,
    },
    /// Edge-list scan mixed with power-law vertex accesses (graph analytics).
    Graph {
        /// Fraction of accesses that continue the sequential edge scan.
        edge_scan_fraction: f64,
        /// Bytes of per-vertex state.
        vertex_bytes: u64,
    },
    /// Blocked dense matrix multiplication over three matrices.
    Blocked {
        /// Matrix dimension (elements per row/column).
        dimension: u64,
        /// Block (tile) edge length in elements.
        block: u64,
    },
    /// Streaming over points plus a small hot region of centroids.
    Iterative {
        /// Bytes of the hot (centroid) region.
        hot_bytes: u64,
        /// Probability of touching the hot region instead of the stream.
        hot_probability: f64,
    },
}

/// A single generated memory access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemoryAccess {
    /// Physical byte address.
    pub address: u64,
    /// Whether the access is a write.
    pub write: bool,
}

/// Generator of one application's memory-access stream.
#[derive(Debug, Clone)]
pub struct ApplicationWorkload {
    model: ApplicationModel,
    pattern: AccessPattern,
    working_set_bytes: u64,
    rng: DeterministicRng,
    cursor: u64,
    matmul_state: (u64, u64, u64, u8),
}

impl ApplicationWorkload {
    /// Creates a workload generator with a working set of
    /// `working_set_bytes`, seeded deterministically.
    ///
    /// # Panics
    ///
    /// Panics if `working_set_bytes` is smaller than 4 KiB.
    #[must_use]
    pub fn new(model: ApplicationModel, working_set_bytes: u64, seed: u64) -> Self {
        assert!(
            working_set_bytes >= 4096,
            "working set must be at least 4 KiB"
        );
        let pattern = match model {
            ApplicationModel::SparkWordcount => AccessPattern::Streaming {
                jump_probability: 0.02,
                scatter_writes: false,
            },
            ApplicationModel::SparkGrep => AccessPattern::Streaming {
                jump_probability: 0.01,
                scatter_writes: false,
            },
            ApplicationModel::SparkSort => AccessPattern::Streaming {
                jump_probability: 0.05,
                scatter_writes: true,
            },
            ApplicationModel::Pagerank => AccessPattern::Graph {
                edge_scan_fraction: 0.55,
                vertex_bytes: 16,
            },
            ApplicationModel::Redis => AccessPattern::Zipfian {
                theta: 0.99,
                object_bytes: 256,
            },
            ApplicationModel::Memcached => AccessPattern::Zipfian {
                theta: 0.90,
                object_bytes: 128,
            },
            ApplicationModel::Kmeans => AccessPattern::Iterative {
                hot_bytes: 64 * 1024,
                hot_probability: 0.25,
            },
            ApplicationModel::MatMul => {
                // Pick the largest square matrices (of f64) fitting three
                // copies in the working set.
                let per_matrix = working_set_bytes / 3;
                let dim = ((per_matrix / 8) as f64).sqrt().floor().max(8.0) as u64;
                AccessPattern::Blocked {
                    dimension: dim,
                    block: 16.min(dim),
                }
            }
        };
        Self {
            model,
            pattern,
            working_set_bytes,
            rng: DeterministicRng::new(seed ^ 0x5f5f),
            cursor: 0,
            matmul_state: (0, 0, 0, 0),
        }
    }

    /// The application this generator models.
    #[must_use]
    pub fn model(&self) -> ApplicationModel {
        self.model
    }

    /// The working-set size in bytes.
    #[must_use]
    pub fn working_set_bytes(&self) -> u64 {
        self.working_set_bytes
    }

    /// Generates the next memory access of the stream.
    pub fn next_access(&mut self) -> MemoryAccess {
        let ws = self.working_set_bytes;
        let write = !self.rng.next_bool(self.model.read_ratio());
        match &self.pattern {
            AccessPattern::Streaming {
                jump_probability,
                scatter_writes,
            } => {
                let jump = self.rng.next_bool(*jump_probability);
                if jump {
                    self.cursor = self.rng.next_below(ws / 64) * 64;
                } else {
                    self.cursor = (self.cursor + 64) % ws;
                }
                let address = if write && *scatter_writes {
                    // Shuffle output region: random cache line in the upper
                    // half of the working set.
                    ws / 2 + self.rng.next_below(ws / 128) * 64
                } else {
                    self.cursor
                };
                MemoryAccess { address, write }
            }
            AccessPattern::Zipfian {
                theta,
                object_bytes,
            } => {
                let objects = (ws / object_bytes).max(1) as usize;
                let key = self.rng.next_zipf(objects, *theta) as u64;
                let offset = self.rng.next_below(*object_bytes / 64 + 1) * 64;
                MemoryAccess {
                    address: key * object_bytes + offset,
                    write,
                }
            }
            AccessPattern::Graph {
                edge_scan_fraction,
                vertex_bytes,
            } => {
                // The edge list occupies the lower 3/4 of the working set, the
                // vertex array the upper 1/4.
                let edge_region = ws * 3 / 4;
                if self.rng.next_bool(*edge_scan_fraction) {
                    self.cursor = (self.cursor + 64) % edge_region;
                    MemoryAccess {
                        address: self.cursor,
                        write: false,
                    }
                } else {
                    let vertices = ((ws - edge_region) / vertex_bytes).max(1) as usize;
                    let v = self.rng.next_zipf(vertices, 0.8) as u64;
                    MemoryAccess {
                        address: edge_region + v * vertex_bytes,
                        write,
                    }
                }
            }
            AccessPattern::Blocked { dimension, block } => {
                let (mut i, mut j, mut k, mut step) = self.matmul_state;
                let d = *dimension;
                let element = 8u64;
                let a_base = 0u64;
                let b_base = d * d * element;
                let c_base = 2 * d * d * element;
                let address = match step {
                    0 => a_base + (i * d + k) * element,
                    1 => b_base + (k * d + j) * element,
                    _ => c_base + (i * d + j) * element,
                };
                let is_c_update = step == 2;
                step += 1;
                if step == 3 {
                    step = 0;
                    k += 1;
                    if k % block == 0 || k >= d {
                        k = if k >= d { 0 } else { k };
                        j += 1;
                        if j >= d {
                            j = 0;
                            i = (i + 1) % d;
                        }
                    }
                }
                self.matmul_state = (i, j, k, step);
                // The C-tile update is a read-modify-write; counting it as a
                // write gives the 2:1 read/write mix of a dense multiply.
                MemoryAccess {
                    address: address % ws,
                    write: is_c_update,
                }
            }
            AccessPattern::Iterative {
                hot_bytes,
                hot_probability,
            } => {
                if self.rng.next_bool(*hot_probability) {
                    let offset = self.rng.next_below(hot_bytes / 64) * 64;
                    MemoryAccess {
                        address: offset,
                        write,
                    }
                } else {
                    self.cursor = (self.cursor + 64) % (ws - hot_bytes) + hot_bytes;
                    MemoryAccess {
                        address: self.cursor,
                        write: false,
                    }
                }
            }
        }
    }

    /// Generates a trace of `length` accesses (useful for offline analysis and
    /// tests).
    pub fn trace(&mut self, length: usize) -> Vec<MemoryAccess> {
        (0..length).map(|_| self.next_access()).collect()
    }
}

/// A [`TrafficModel`] that drives the network simulator with an application's
/// post-cache miss stream from a set of processor-attached nodes.
#[derive(Debug)]
pub struct WorkloadTraffic {
    mapper: AddressMapper,
    intensity: f64,
    injectors: HashMap<usize, InjectorState>,
    issued: u64,
    request_limit: Option<u64>,
}

#[derive(Debug)]
struct InjectorState {
    workload: ApplicationWorkload,
    cache: CacheHierarchy,
    rng: DeterministicRng,
}

impl WorkloadTraffic {
    /// Maximum cache lookups attempted per injection opportunity before
    /// giving up for this cycle (a long run of cache hits means the processor
    /// simply is not producing memory traffic that cycle).
    const MAX_PROBES_PER_CYCLE: usize = 16;

    /// Creates workload traffic for `model` injected from `injector_nodes`
    /// (the nodes processors are attached to), with the paper's cache
    /// hierarchy in front of every injector.
    ///
    /// # Errors
    ///
    /// Returns [`SfError::InvalidConfiguration`] if `injector_nodes` is empty
    /// or an injector lies outside the mapper's node range.
    pub fn new(
        model: ApplicationModel,
        mapper: AddressMapper,
        injector_nodes: &[NodeId],
        seed: u64,
    ) -> SfResult<Self> {
        let cache = CacheHierarchy::paper_default()?;
        Self::with_cache(model, mapper, injector_nodes, seed, &cache)
    }

    /// Like [`WorkloadTraffic::new`] but with an explicit cache hierarchy
    /// template (cloned per injector); smaller caches make unit tests fast
    /// and model accelerator-style front ends.
    ///
    /// # Errors
    ///
    /// Returns [`SfError::InvalidConfiguration`] if `injector_nodes` is empty
    /// or an injector lies outside the mapper's node range.
    pub fn with_cache(
        model: ApplicationModel,
        mapper: AddressMapper,
        injector_nodes: &[NodeId],
        seed: u64,
        cache_template: &CacheHierarchy,
    ) -> SfResult<Self> {
        if injector_nodes.is_empty() {
            return Err(SfError::InvalidConfiguration {
                reason: "workload traffic needs at least one injector node".to_string(),
            });
        }
        let mut injectors = HashMap::new();
        // Size the per-injector working set to a slice of the memory pool,
        // capped so address arithmetic stays fast.
        let working_set =
            (mapper.total_capacity_bytes() / injector_nodes.len() as u64).clamp(1 << 20, 1 << 32);
        for (i, node) in injector_nodes.iter().enumerate() {
            if node.index() >= mapper.num_nodes() {
                return Err(SfError::InvalidConfiguration {
                    reason: format!(
                        "injector {node} is outside the {}-node memory pool",
                        mapper.num_nodes()
                    ),
                });
            }
            injectors.insert(
                node.index(),
                InjectorState {
                    workload: ApplicationWorkload::new(
                        model,
                        working_set,
                        seed.wrapping_add(i as u64 * 7919),
                    ),
                    cache: cache_template.clone(),
                    rng: DeterministicRng::new(seed.wrapping_add(0x9e37 + i as u64)),
                },
            );
        }
        Ok(Self {
            mapper,
            intensity: model.memory_intensity(),
            injectors,
            issued: 0,
            request_limit: None,
        })
    }

    /// Limits the total number of memory requests issued (the paper collects
    /// 100,000 operations per workload).
    #[must_use]
    pub fn with_request_limit(mut self, limit: u64) -> Self {
        self.request_limit = Some(limit);
        self
    }

    /// Overrides the per-cycle injection intensity.
    #[must_use]
    pub fn with_intensity(mut self, intensity: f64) -> Self {
        self.intensity = intensity.clamp(0.0, 1.0);
        self
    }

    /// Number of memory requests issued so far.
    #[must_use]
    pub fn issued(&self) -> u64 {
        self.issued
    }

    /// Aggregate LLC miss rate over all injectors.
    #[must_use]
    pub fn llc_miss_rate(&self) -> f64 {
        let (mut accesses, mut misses) = (0u64, 0u64);
        for inj in self.injectors.values() {
            accesses += inj.cache.stats().accesses;
            misses += inj.cache.stats().misses;
        }
        if accesses == 0 {
            0.0
        } else {
            misses as f64 / accesses as f64
        }
    }
}

impl TrafficModel for WorkloadTraffic {
    fn maybe_inject(&mut self, _cycle: u64, source: NodeId) -> Option<TrafficRequest> {
        if self.is_exhausted() {
            return None;
        }
        let mapper = self.mapper;
        let intensity = self.intensity;
        let injector = self.injectors.get_mut(&source.index())?;
        if !injector.rng.next_bool(intensity) {
            return None;
        }
        for _ in 0..Self::MAX_PROBES_PER_CYCLE {
            let access = injector.workload.next_access();
            if injector.cache.access(access.address).goes_to_memory() {
                self.issued += 1;
                let dest = mapper.node_of(access.address);
                return Some(TrafficRequest {
                    destination: dest,
                    write: access.write,
                });
            }
        }
        None
    }

    fn is_exhausted(&self) -> bool {
        self.request_limit.is_some_and(|limit| self.issued >= limit)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_model_generates_in_bounds_addresses() {
        for model in ApplicationModel::ALL {
            let mut w = ApplicationWorkload::new(model, 1 << 22, 1);
            for access in w.trace(2_000) {
                assert!(
                    access.address < (1 << 22),
                    "{model}: address {:#x} out of working set",
                    access.address
                );
            }
        }
    }

    #[test]
    fn read_ratios_are_respected() {
        for model in ApplicationModel::ALL {
            let mut w = ApplicationWorkload::new(model, 1 << 22, 3);
            let trace = w.trace(20_000);
            let writes = trace.iter().filter(|a| a.write).count() as f64 / trace.len() as f64;
            let expected = 1.0 - model.read_ratio();
            assert!(
                (writes - expected).abs() < 0.12,
                "{model}: write fraction {writes} vs expected {expected}"
            );
        }
    }

    #[test]
    fn streaming_workloads_have_spatial_locality() {
        let mut w = ApplicationWorkload::new(ApplicationModel::SparkGrep, 1 << 24, 5);
        let trace = w.trace(5_000);
        let sequential = trace
            .windows(2)
            .filter(|p| p[1].address.wrapping_sub(p[0].address) == 64)
            .count();
        assert!(
            sequential as f64 / trace.len() as f64 > 0.8,
            "grep should be mostly sequential ({sequential})"
        );
    }

    #[test]
    fn key_value_workloads_are_skewed() {
        let mut w = ApplicationWorkload::new(ApplicationModel::Redis, 1 << 24, 7);
        let trace = w.trace(20_000);
        let mut counts: HashMap<u64, usize> = HashMap::new();
        for a in &trace {
            *counts.entry(a.address / 256).or_default() += 1;
        }
        let mut freqs: Vec<usize> = counts.values().copied().collect();
        freqs.sort_unstable_by(|a, b| b.cmp(a));
        let top10: usize = freqs.iter().take(10).sum();
        assert!(
            top10 as f64 / trace.len() as f64 > 0.10,
            "zipfian accesses should concentrate on hot keys"
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let mut a = ApplicationWorkload::new(ApplicationModel::Pagerank, 1 << 22, 9);
        let mut b = ApplicationWorkload::new(ApplicationModel::Pagerank, 1 << 22, 9);
        assert_eq!(a.trace(500), b.trace(500));
        let mut c = ApplicationWorkload::new(ApplicationModel::Pagerank, 1 << 22, 10);
        assert_ne!(a.trace(500), c.trace(500));
    }

    #[test]
    fn workload_traffic_reaches_memory_nodes() {
        let mapper = AddressMapper::new(16, 1 << 26, 64).unwrap();
        let cache = CacheHierarchy::tiny().unwrap();
        let mut traffic = WorkloadTraffic::with_cache(
            ApplicationModel::SparkSort,
            mapper,
            &[NodeId::new(0), NodeId::new(8)],
            11,
            &cache,
        )
        .unwrap()
        .with_intensity(1.0);
        let mut requests = 0;
        let mut destinations = std::collections::HashSet::new();
        for cycle in 0..4_000 {
            for src in [NodeId::new(0), NodeId::new(8), NodeId::new(3)] {
                if let Some(req) = traffic.maybe_inject(cycle, src) {
                    assert_ne!(src, NodeId::new(3), "non-injector nodes must stay silent");
                    assert!(req.destination.index() < 16);
                    destinations.insert(req.destination);
                    requests += 1;
                }
            }
        }
        assert!(requests > 100, "only {requests} requests issued");
        assert!(destinations.len() > 4, "traffic should spread across nodes");
        assert_eq!(traffic.issued(), requests);
        assert!(traffic.llc_miss_rate() > 0.0);
    }

    #[test]
    fn request_limit_exhausts_traffic() {
        let mapper = AddressMapper::new(8, 1 << 24, 64).unwrap();
        let cache = CacheHierarchy::tiny().unwrap();
        let mut traffic = WorkloadTraffic::with_cache(
            ApplicationModel::MatMul,
            mapper,
            &[NodeId::new(1)],
            3,
            &cache,
        )
        .unwrap()
        .with_intensity(1.0)
        .with_request_limit(50);
        let mut total = 0;
        for cycle in 0..10_000 {
            if traffic.maybe_inject(cycle, NodeId::new(1)).is_some() {
                total += 1;
            }
            if traffic.is_exhausted() {
                break;
            }
        }
        assert_eq!(total, 50);
        assert!(traffic.is_exhausted());
    }

    #[test]
    fn invalid_injector_configurations_rejected() {
        let mapper = AddressMapper::new(8, 1 << 24, 64).unwrap();
        assert!(WorkloadTraffic::new(ApplicationModel::Redis, mapper, &[], 1).is_err());
        let cache = CacheHierarchy::tiny().unwrap();
        assert!(WorkloadTraffic::with_cache(
            ApplicationModel::Redis,
            mapper,
            &[NodeId::new(99)],
            1,
            &cache
        )
        .is_err());
    }

    #[test]
    fn model_metadata() {
        assert_eq!(ApplicationModel::ALL.len(), 8);
        assert_eq!(ApplicationModel::Redis.to_string(), "redis");
        for model in ApplicationModel::ALL {
            assert!(model.read_ratio() > 0.5);
            assert!(model.memory_intensity() > 0.0 && model.memory_intensity() <= 1.0);
        }
        let w = ApplicationWorkload::new(ApplicationModel::Kmeans, 1 << 20, 0);
        assert_eq!(w.model(), ApplicationModel::Kmeans);
        assert_eq!(w.working_set_bytes(), 1 << 20);
    }
}
