//! # `sf-workloads`
//!
//! Workload generation for the String Figure reproduction (HPCA 2019): the
//! synthetic traffic patterns of Table III, synthetic equivalents of the
//! paper's trace-driven "real" workloads (Table IV), the cache hierarchy the
//! paper filters its traces through, and the physical-address-to-memory-node
//! mapping.
//!
//! The paper collects Pin traces of Spark, Redis, Memcached, CloudSuite, and
//! kernel workloads on a real server. Those traces are not redistributable,
//! so this crate substitutes parameterised synthetic access-stream models
//! that reproduce the properties the memory network actually observes:
//! post-LLC access rate, read/write mix, spatial distribution across memory
//! nodes (streaming, zipfian-skewed, graph-structured, blocked, or
//! iterative), and working-set size. See `DESIGN.md` for the substitution
//! rationale.
//!
//! ## Modules
//!
//! * [`patterns`] — the seven synthetic traffic patterns of Table III.
//! * [`cache`] — a three-level set-associative cache hierarchy filter.
//! * [`address`] — physical-address-to-memory-node interleaving.
//! * [`apps`] — the eight application models of Table IV and their
//!   trace generators.
//!
//! ## Example
//!
//! ```
//! use sf_workloads::patterns::{SyntheticPattern, PatternTraffic};
//! use sf_netsim::TrafficModel;
//! use sf_types::NodeId;
//!
//! let mut traffic = PatternTraffic::new(SyntheticPattern::Tornado, 64, 0.1, 1);
//! // The tornado pattern sends to the node halfway around the network.
//! let request = traffic.destination(NodeId::new(3));
//! assert_eq!(request.index(), 3 + 32);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

pub mod address;
pub mod apps;
pub mod cache;
pub mod patterns;

pub use address::AddressMapper;
pub use apps::{ApplicationModel, ApplicationWorkload, WorkloadTraffic};
pub use cache::{CacheHierarchy, CacheLevelConfig};
pub use patterns::{PatternTraffic, SyntheticPattern};
