//! Physical-address to memory-node mapping.
//!
//! The paper distributes workload data "among the memory nodes based on their
//! physical address". [`AddressMapper`] models that distribution: the
//! physical address space covering all memory nodes is interleaved across the
//! nodes at a configurable granularity (cache line by default, page-sized
//! interleaving also supported), and any address can be translated to the
//! memory node that owns it plus the node-local offset.

use serde::{Deserialize, Serialize};
use sf_types::{NodeId, SfError, SfResult};

/// Maps physical addresses to memory nodes by interleaving.
///
/// # Examples
///
/// ```
/// use sf_workloads::AddressMapper;
/// use sf_types::NodeId;
///
/// // 4 nodes of 8 GiB interleaved at 64-byte granularity.
/// let mapper = AddressMapper::new(4, 8 * 1024 * 1024 * 1024, 64)?;
/// assert_eq!(mapper.node_of(0), NodeId::new(0));
/// assert_eq!(mapper.node_of(64), NodeId::new(1));
/// assert_eq!(mapper.node_of(256), NodeId::new(0));
/// # Ok::<(), sf_types::SfError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AddressMapper {
    num_nodes: usize,
    node_capacity_bytes: u64,
    interleave_bytes: u64,
}

impl AddressMapper {
    /// Creates a mapper over `num_nodes` memory nodes of
    /// `node_capacity_bytes` each, interleaved every `interleave_bytes`.
    ///
    /// # Errors
    ///
    /// Returns [`SfError::InvalidConfiguration`] if any parameter is zero or
    /// the node capacity is not a multiple of the interleave granularity.
    pub fn new(
        num_nodes: usize,
        node_capacity_bytes: u64,
        interleave_bytes: u64,
    ) -> SfResult<Self> {
        if num_nodes == 0 || node_capacity_bytes == 0 || interleave_bytes == 0 {
            return Err(SfError::InvalidConfiguration {
                reason: "address mapper parameters must be non-zero".to_string(),
            });
        }
        if !node_capacity_bytes.is_multiple_of(interleave_bytes) {
            return Err(SfError::InvalidConfiguration {
                reason: format!(
                    "node capacity {node_capacity_bytes} is not a multiple of the interleave \
                     granularity {interleave_bytes}"
                ),
            });
        }
        Ok(Self {
            num_nodes,
            node_capacity_bytes,
            interleave_bytes,
        })
    }

    /// Convenience constructor matching the paper's working example: 8 GiB
    /// per node, cache-line (64 B) interleaving.
    ///
    /// # Errors
    ///
    /// Propagates [`AddressMapper::new`] errors (never fails for positive
    /// `num_nodes`).
    pub fn paper_default(num_nodes: usize) -> SfResult<Self> {
        Self::new(num_nodes, 8 * 1024 * 1024 * 1024, 64)
    }

    /// Number of memory nodes covered.
    #[must_use]
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// Total byte capacity of the memory pool.
    #[must_use]
    pub fn total_capacity_bytes(&self) -> u64 {
        self.node_capacity_bytes * self.num_nodes as u64
    }

    /// The memory node owning `address` (addresses wrap around the pool).
    #[must_use]
    pub fn node_of(&self, address: u64) -> NodeId {
        let block = address / self.interleave_bytes;
        NodeId::new((block % self.num_nodes as u64) as usize)
    }

    /// The node-local byte offset of `address` within its owning node.
    #[must_use]
    pub fn local_offset(&self, address: u64) -> u64 {
        let block = address / self.interleave_bytes;
        let local_block = block / self.num_nodes as u64;
        let within = address % self.interleave_bytes;
        (local_block * self.interleave_bytes + within) % self.node_capacity_bytes
    }

    /// Restricts the mapper to a subset of `remaining` nodes (used when the
    /// network is down-scaled and data is re-distributed over the remaining
    /// nodes).
    ///
    /// # Errors
    ///
    /// Returns [`SfError::InvalidConfiguration`] if `remaining` is zero or
    /// larger than the current node count.
    pub fn shrink_to(&self, remaining: usize) -> SfResult<Self> {
        if remaining == 0 || remaining > self.num_nodes {
            return Err(SfError::InvalidConfiguration {
                reason: format!(
                    "cannot shrink a {}-node pool to {remaining} nodes",
                    self.num_nodes
                ),
            });
        }
        Self::new(remaining, self.node_capacity_bytes, self.interleave_bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_robin_interleaving() {
        let m = AddressMapper::new(4, 1 << 20, 64).unwrap();
        assert_eq!(m.node_of(0).index(), 0);
        assert_eq!(m.node_of(63).index(), 0);
        assert_eq!(m.node_of(64).index(), 1);
        assert_eq!(m.node_of(128).index(), 2);
        assert_eq!(m.node_of(192).index(), 3);
        assert_eq!(m.node_of(256).index(), 0);
    }

    #[test]
    fn local_offsets_are_dense_per_node() {
        let m = AddressMapper::new(4, 1 << 20, 64).unwrap();
        assert_eq!(m.local_offset(0), 0);
        assert_eq!(m.local_offset(64), 0);
        assert_eq!(m.local_offset(256), 64);
        assert_eq!(m.local_offset(257), 65);
    }

    #[test]
    fn page_interleaving() {
        let m = AddressMapper::new(8, 1 << 30, 4096).unwrap();
        assert_eq!(m.node_of(0).index(), 0);
        assert_eq!(m.node_of(4095).index(), 0);
        assert_eq!(m.node_of(4096).index(), 1);
    }

    #[test]
    fn all_nodes_receive_addresses() {
        let m = AddressMapper::paper_default(17).unwrap();
        let mut seen = [false; 17];
        for i in 0..1000u64 {
            seen[m.node_of(i * 64).index()] = true;
        }
        assert!(seen.iter().all(|&s| s));
        assert_eq!(m.num_nodes(), 17);
        assert_eq!(m.total_capacity_bytes(), 17 * 8 * 1024 * 1024 * 1024);
    }

    #[test]
    fn invalid_parameters_rejected() {
        assert!(AddressMapper::new(0, 1024, 64).is_err());
        assert!(AddressMapper::new(4, 0, 64).is_err());
        assert!(AddressMapper::new(4, 1024, 0).is_err());
        assert!(AddressMapper::new(4, 1000, 64).is_err());
    }

    #[test]
    fn shrink_redistributes() {
        let m = AddressMapper::new(8, 1 << 20, 64).unwrap();
        let s = m.shrink_to(6).unwrap();
        assert_eq!(s.num_nodes(), 6);
        for i in 0..100u64 {
            assert!(s.node_of(i * 64).index() < 6);
        }
        assert!(m.shrink_to(0).is_err());
        assert!(m.shrink_to(9).is_err());
    }

    #[test]
    fn local_offset_wraps_within_capacity() {
        let m = AddressMapper::new(2, 1024, 64).unwrap();
        for i in 0..10_000u64 {
            assert!(m.local_offset(i) < 1024);
        }
    }
}
