//! Three-level set-associative cache hierarchy filter.
//!
//! The paper's trace generator models a 32 KB L1, 2 MB L2, and 32 MB L3 with
//! associativities 4, 8, and 16 (64-byte lines) and only sends last-level
//! cache misses to the memory network. This module reproduces that filter so
//! the synthetic application models exercise the network with a realistic
//! post-LLC access stream.

use serde::{Deserialize, Serialize};
use sf_types::{SfError, SfResult};

/// Configuration of a single cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheLevelConfig {
    /// Total capacity in bytes.
    pub capacity_bytes: usize,
    /// Associativity (ways per set).
    pub associativity: usize,
    /// Line size in bytes.
    pub line_bytes: usize,
}

impl CacheLevelConfig {
    /// Number of sets in this level.
    ///
    /// # Errors
    ///
    /// Returns [`SfError::InvalidConfiguration`] if the geometry is not
    /// consistent (zero sizes or capacity not divisible by way size).
    pub fn sets(&self) -> SfResult<usize> {
        if self.capacity_bytes == 0 || self.associativity == 0 || self.line_bytes == 0 {
            return Err(SfError::InvalidConfiguration {
                reason: "cache level sizes must be non-zero".to_string(),
            });
        }
        let way_bytes = self.associativity * self.line_bytes;
        if !self.capacity_bytes.is_multiple_of(way_bytes) {
            return Err(SfError::InvalidConfiguration {
                reason: format!(
                    "cache capacity {} is not a multiple of ways x line size {}",
                    self.capacity_bytes, way_bytes
                ),
            });
        }
        Ok(self.capacity_bytes / way_bytes)
    }
}

/// Outcome of a cache hierarchy access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CacheOutcome {
    /// Hit in the given level (0 = L1).
    Hit(usize),
    /// Missed every level: the access goes to the memory network.
    Miss,
}

impl CacheOutcome {
    /// Whether the access must be sent to the memory network.
    #[must_use]
    pub fn goes_to_memory(self) -> bool {
        matches!(self, Self::Miss)
    }
}

/// Hit/miss statistics of the hierarchy.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheStats {
    /// Total accesses presented to the hierarchy.
    pub accesses: u64,
    /// Hits per level (index 0 = L1).
    pub hits: Vec<u64>,
    /// Accesses that missed all levels.
    pub misses: u64,
}

impl CacheStats {
    /// Fraction of accesses that reach memory.
    #[must_use]
    pub fn miss_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses as f64
        }
    }
}

/// One set-associative cache level with LRU replacement.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct CacheLevel {
    config: CacheLevelConfig,
    sets: usize,
    /// `tags[set]` holds (tag, last-use stamp) pairs, at most `associativity`.
    tags: Vec<Vec<(u64, u64)>>,
    stamp: u64,
}

impl CacheLevel {
    fn new(config: CacheLevelConfig) -> SfResult<Self> {
        let sets = config.sets()?;
        Ok(Self {
            config,
            sets,
            tags: vec![Vec::new(); sets],
            stamp: 0,
        })
    }

    /// Accesses the line containing `address`; returns `true` on a hit. On a
    /// miss the line is installed (with LRU eviction).
    fn access(&mut self, address: u64) -> bool {
        self.stamp += 1;
        let line = address / self.config.line_bytes as u64;
        let set = (line % self.sets as u64) as usize;
        let tag = line / self.sets as u64;
        let ways = &mut self.tags[set];
        if let Some(entry) = ways.iter_mut().find(|(t, _)| *t == tag) {
            entry.1 = self.stamp;
            return true;
        }
        if ways.len() >= self.config.associativity {
            // Evict the least recently used way.
            let lru = ways
                .iter()
                .enumerate()
                .min_by_key(|(_, (_, stamp))| *stamp)
                .map(|(i, _)| i)
                .expect("non-empty set");
            ways.swap_remove(lru);
        }
        ways.push((tag, self.stamp));
        false
    }
}

/// The paper's three-level cache hierarchy filter.
///
/// # Examples
///
/// ```
/// use sf_workloads::cache::CacheHierarchy;
///
/// let mut cache = CacheHierarchy::paper_default()?;
/// // The first touch of a line misses everywhere, the second hits in L1.
/// assert!(cache.access(0x1000).goes_to_memory());
/// assert!(!cache.access(0x1000).goes_to_memory());
/// # Ok::<(), sf_types::SfError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CacheHierarchy {
    levels: Vec<CacheLevel>,
    stats: CacheStats,
}

impl CacheHierarchy {
    /// Builds a hierarchy from per-level configurations (L1 first).
    ///
    /// # Errors
    ///
    /// Returns [`SfError::InvalidConfiguration`] if no levels are supplied or
    /// any level has inconsistent geometry.
    pub fn new(levels: &[CacheLevelConfig]) -> SfResult<Self> {
        if levels.is_empty() {
            return Err(SfError::InvalidConfiguration {
                reason: "a cache hierarchy needs at least one level".to_string(),
            });
        }
        let built: SfResult<Vec<CacheLevel>> = levels.iter().map(|&c| CacheLevel::new(c)).collect();
        let built = built?;
        let stats = CacheStats {
            hits: vec![0; built.len()],
            ..CacheStats::default()
        };
        Ok(Self {
            levels: built,
            stats,
        })
    }

    /// The paper's configuration: 32 KB / 4-way L1, 2 MB / 8-way L2,
    /// 32 MB / 16-way L3, all with 64-byte lines.
    ///
    /// # Errors
    ///
    /// Never fails in practice; the signature matches [`CacheHierarchy::new`].
    pub fn paper_default() -> SfResult<Self> {
        Self::new(&[
            CacheLevelConfig {
                capacity_bytes: 32 * 1024,
                associativity: 4,
                line_bytes: 64,
            },
            CacheLevelConfig {
                capacity_bytes: 2 * 1024 * 1024,
                associativity: 8,
                line_bytes: 64,
            },
            CacheLevelConfig {
                capacity_bytes: 32 * 1024 * 1024,
                associativity: 16,
                line_bytes: 64,
            },
        ])
    }

    /// A small hierarchy (a few KB) useful for fast unit tests and for
    /// modelling accelerator-style nodes with tiny caches.
    ///
    /// # Errors
    ///
    /// Never fails in practice; the signature matches [`CacheHierarchy::new`].
    pub fn tiny() -> SfResult<Self> {
        Self::new(&[
            CacheLevelConfig {
                capacity_bytes: 1024,
                associativity: 2,
                line_bytes: 64,
            },
            CacheLevelConfig {
                capacity_bytes: 8 * 1024,
                associativity: 4,
                line_bytes: 64,
            },
        ])
    }

    /// Number of levels.
    #[must_use]
    pub fn num_levels(&self) -> usize {
        self.levels.len()
    }

    /// Presents one access to the hierarchy; lower levels are only consulted
    /// on a miss, and the line is installed in every level it missed in
    /// (inclusive fill).
    pub fn access(&mut self, address: u64) -> CacheOutcome {
        self.stats.accesses += 1;
        let mut hit_level = None;
        for (i, level) in self.levels.iter_mut().enumerate() {
            if level.access(address) {
                hit_level = Some(i);
                break;
            }
        }
        match hit_level {
            Some(level) => {
                self.stats.hits[level] += 1;
                CacheOutcome::Hit(level)
            }
            None => {
                self.stats.misses += 1;
                CacheOutcome::Miss
            }
        }
    }

    /// Accumulated statistics.
    #[must_use]
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_geometry() {
        let cache = CacheHierarchy::paper_default().unwrap();
        assert_eq!(cache.num_levels(), 3);
        let l1 = CacheLevelConfig {
            capacity_bytes: 32 * 1024,
            associativity: 4,
            line_bytes: 64,
        };
        assert_eq!(l1.sets().unwrap(), 128);
    }

    #[test]
    fn invalid_geometry_rejected() {
        assert!(CacheHierarchy::new(&[]).is_err());
        let bad = CacheLevelConfig {
            capacity_bytes: 1000,
            associativity: 3,
            line_bytes: 64,
        };
        assert!(CacheHierarchy::new(&[bad]).is_err());
        let zero = CacheLevelConfig {
            capacity_bytes: 0,
            associativity: 4,
            line_bytes: 64,
        };
        assert!(zero.sets().is_err());
    }

    #[test]
    fn temporal_locality_hits_in_l1() {
        let mut cache = CacheHierarchy::paper_default().unwrap();
        assert_eq!(cache.access(0x42), CacheOutcome::Miss);
        assert_eq!(cache.access(0x42), CacheOutcome::Hit(0));
        // Same line, different byte offset.
        assert_eq!(cache.access(0x43), CacheOutcome::Hit(0));
        assert!((cache.stats().miss_rate() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn capacity_eviction_falls_back_to_lower_levels() {
        let mut cache = CacheHierarchy::tiny().unwrap();
        // Touch far more lines than L1 (1 KB = 16 lines) can hold but fewer
        // than L2 (8 KB = 128 lines).
        for i in 0..64u64 {
            cache.access(i * 64);
        }
        // Re-touching the first line should miss L1 but hit L2.
        let outcome = cache.access(0);
        assert_eq!(outcome, CacheOutcome::Hit(1));
        assert!(!outcome.goes_to_memory());
    }

    #[test]
    fn working_set_larger_than_llc_misses() {
        let mut cache = CacheHierarchy::tiny().unwrap();
        // 1024 lines is far beyond the 8 KB L2.
        for i in 0..1024u64 {
            cache.access(i * 64);
        }
        // Streaming back over the same addresses still misses (LRU evicted
        // them long ago).
        let before = cache.stats().misses;
        for i in 0..16u64 {
            assert!(cache.access(i * 64).goes_to_memory());
        }
        assert_eq!(cache.stats().misses, before + 16);
    }

    #[test]
    fn stats_accumulate() {
        let mut cache = CacheHierarchy::tiny().unwrap();
        for i in 0..10u64 {
            cache.access(i * 64);
        }
        for i in 0..10u64 {
            cache.access(i * 64);
        }
        let stats = cache.stats();
        assert_eq!(stats.accesses, 20);
        assert_eq!(stats.misses, 10);
        assert_eq!(stats.hits.iter().sum::<u64>(), 10);
        assert!((stats.miss_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_stats_miss_rate_is_zero() {
        let cache = CacheHierarchy::tiny().unwrap();
        assert_eq!(cache.stats().miss_rate(), 0.0);
    }
}
