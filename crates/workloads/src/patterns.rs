//! The synthetic traffic patterns of Table III.
//!
//! Each pattern maps a source node to a destination node; the traffic model
//! injects a request towards that destination with a configurable per-node,
//! per-cycle injection probability. Destination formulas follow the paper's
//! Table III, with node count `N` standing in for `nports`:
//!
//! | pattern            | destination                                        |
//! |---------------------|---------------------------------------------------|
//! | uniform random      | `randint(0, N-1)`                                  |
//! | tornado             | `(src + N/2) % N`                                  |
//! | hotspot             | a single constant node                             |
//! | opposite            | `N - 1 - src`                                      |
//! | nearest neighbour   | `src + 1`                                          |
//! | complement          | `src XOR (N-1)` (bit complement)                   |
//! | partition-2         | random destination within the source's half        |
//!
//! Beyond Table III, three **adversarial** patterns stress the network in
//! ways the paper's evaluation never does (see
//! [`SyntheticPattern::ADVERSARIAL`]):
//!
//! | pattern        | behaviour                                                |
//! |----------------|----------------------------------------------------------|
//! | hotspot storm  | all nodes converge on one victim that rotates every `storm_period` cycles |
//! | bursty on/off  | double-rate injection during "on" windows, silence during "off" windows |
//! | bit reversal   | worst-case static permutation: `rev_bits(src)` within `ceil(log2 N)` bits |

use serde::{Deserialize, Serialize};
use sf_netsim::{TrafficModel, TrafficRequest};
use sf_types::rng::splitmix64;
use sf_types::{DeterministicRng, NodeId};
use std::fmt;

/// One of the synthetic traffic patterns of Table III.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SyntheticPattern {
    /// Each node sends to a uniformly random destination.
    UniformRandom,
    /// Each node sends to the node halfway around the network.
    Tornado,
    /// Every node sends to the same destination node.
    Hotspot,
    /// Each node sends to its mirror on the opposite side of the network.
    Opposite,
    /// Each node sends to its successor.
    NearestNeighbor,
    /// Each node sends to its bitwise complement.
    Complement,
    /// The network is split into two halves; nodes send to random nodes within
    /// their half.
    Partition2,
    /// Adversarial: every node targets one victim node, and the victim
    /// rotates pseudo-randomly every storm period — a moving congestion
    /// singularity no static provisioning can absorb.
    HotspotStorm,
    /// Adversarial: traffic arrives in on/off bursts — double the configured
    /// rate during "on" windows, silence during "off" windows — so queues
    /// see the worst transient load a given average rate can produce.
    BurstyOnOff,
    /// Adversarial: the bit-reversal permutation (`rev_bits(src)` within
    /// `ceil(log2 N)` bits), a classic worst case for minimal routing.
    BitReversal,
}

impl SyntheticPattern {
    /// All seven patterns, in the order Table III lists them.
    pub const ALL: [Self; 7] = [
        Self::UniformRandom,
        Self::Tornado,
        Self::Hotspot,
        Self::Opposite,
        Self::NearestNeighbor,
        Self::Complement,
        Self::Partition2,
    ];

    /// The three adversarial patterns that go beyond the paper's Table III.
    pub const ADVERSARIAL: [Self; 3] = [Self::HotspotStorm, Self::BurstyOnOff, Self::BitReversal];

    /// Whether destinations depend on random draws (as opposed to being a
    /// pure function of the source and cycle).
    #[must_use]
    pub fn is_random(self) -> bool {
        matches!(
            self,
            Self::UniformRandom | Self::Partition2 | Self::BurstyOnOff
        )
    }

    /// Whether this is one of the adversarial (non-Table III) patterns.
    #[must_use]
    pub fn is_adversarial(self) -> bool {
        Self::ADVERSARIAL.contains(&self)
    }

    /// Short name used in experiment output.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Self::UniformRandom => "uniform_random",
            Self::Tornado => "tornado",
            Self::Hotspot => "hotspot",
            Self::Opposite => "opposite",
            Self::NearestNeighbor => "neighbor",
            Self::Complement => "complement",
            Self::Partition2 => "partition2",
            Self::HotspotStorm => "hotspot_storm",
            Self::BurstyOnOff => "bursty_onoff",
            Self::BitReversal => "bit_reversal",
        }
    }

    /// The pattern whose [`name`](Self::name) is `name`, if any — the inverse
    /// of the experiment-output rendering, used when restoring checkpointed
    /// rows. Covers both the Table III and the adversarial patterns.
    #[must_use]
    pub fn from_name(name: &str) -> Option<Self> {
        Self::ALL
            .into_iter()
            .chain(Self::ADVERSARIAL)
            .find(|p| p.name() == name)
    }
}

impl fmt::Display for SyntheticPattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A [`TrafficModel`] producing one of the synthetic patterns at a fixed
/// injection rate.
#[derive(Debug, Clone)]
pub struct PatternTraffic {
    pattern: SyntheticPattern,
    num_nodes: usize,
    injection_rate: f64,
    hotspot_target: usize,
    storm_period: u64,
    burst_period: u64,
    rng: DeterministicRng,
}

impl PatternTraffic {
    /// Creates pattern traffic over `num_nodes` nodes. `injection_rate` is the
    /// probability that a node injects a packet in a given cycle.
    ///
    /// # Panics
    ///
    /// Panics if `num_nodes` is zero.
    #[must_use]
    pub fn new(
        pattern: SyntheticPattern,
        num_nodes: usize,
        injection_rate: f64,
        seed: u64,
    ) -> Self {
        assert!(num_nodes > 0, "pattern traffic needs at least one node");
        Self {
            pattern,
            num_nodes,
            injection_rate: injection_rate.clamp(0.0, 1.0),
            hotspot_target: 0,
            storm_period: 128,
            burst_period: 64,
            rng: DeterministicRng::new(seed),
        }
    }

    /// Changes the hotspot destination (default node 0).
    #[must_use]
    pub fn with_hotspot_target(mut self, target: NodeId) -> Self {
        self.hotspot_target = target.index() % self.num_nodes;
        self
    }

    /// Changes how many cycles a hotspot-storm victim reigns before the
    /// storm moves on (default 128).
    ///
    /// # Panics
    ///
    /// Panics if `period` is zero.
    #[must_use]
    pub fn with_storm_period(mut self, period: u64) -> Self {
        assert!(period > 0, "storm period must be at least one cycle");
        self.storm_period = period;
        self
    }

    /// Changes the on/off window length of the bursty pattern (default 64).
    ///
    /// # Panics
    ///
    /// Panics if `period` is zero.
    #[must_use]
    pub fn with_burst_period(mut self, period: u64) -> Self {
        assert!(period > 0, "burst period must be at least one cycle");
        self.burst_period = period;
        self
    }

    /// The pattern this traffic model produces.
    #[must_use]
    pub fn pattern(&self) -> SyntheticPattern {
        self.pattern
    }

    /// The configured injection rate.
    #[must_use]
    pub fn injection_rate(&self) -> f64 {
        self.injection_rate
    }

    /// The destination the pattern maps `source` to (drawing random numbers
    /// for the random patterns). Cycle-driven patterns behave as at cycle 0;
    /// use [`destination_at`](Self::destination_at) for those.
    pub fn destination(&mut self, source: NodeId) -> NodeId {
        self.destination_at(0, source)
    }

    /// The destination the pattern maps `source` to at `cycle`. Only the
    /// adversarial patterns depend on the cycle; for the Table III patterns
    /// this is identical to [`destination`](Self::destination).
    pub fn destination_at(&mut self, cycle: u64, source: NodeId) -> NodeId {
        let n = self.num_nodes;
        let src = source.index();
        let dest = match self.pattern {
            SyntheticPattern::UniformRandom => self.rng.next_index(n),
            SyntheticPattern::Tornado => (src + n / 2) % n,
            SyntheticPattern::Hotspot => self.hotspot_target,
            SyntheticPattern::Opposite => n - 1 - src,
            SyntheticPattern::NearestNeighbor => (src + 1) % n,
            SyntheticPattern::Complement => {
                let bits = usize::BITS - (n - 1).leading_zeros();
                let mask = if bits == 0 { 0 } else { (1usize << bits) - 1 };
                (src ^ mask) % n
            }
            SyntheticPattern::Partition2 => {
                let half = (n / 2).max(1);
                let group = src / half;
                let within = self.rng.next_index(half);
                (group * half + within).min(n - 1)
            }
            SyntheticPattern::HotspotStorm => {
                // The victim is a pure function of the storm epoch — every
                // node agrees on it without consuming any RNG stream.
                let epoch = cycle / self.storm_period;
                (splitmix64(epoch) as usize) % n
            }
            SyntheticPattern::BurstyOnOff => self.rng.next_index(n),
            SyntheticPattern::BitReversal => {
                let bits = usize::BITS - (n - 1).leading_zeros();
                if bits == 0 {
                    0
                } else {
                    ((src as u64).reverse_bits() >> (64 - bits)) as usize % n
                }
            }
        };
        NodeId::new(dest % n)
    }

    /// Whether a bursty-pattern node may inject at `cycle` (always true for
    /// the other patterns).
    #[must_use]
    pub fn burst_window_open(&self, cycle: u64) -> bool {
        self.pattern != SyntheticPattern::BurstyOnOff
            || (cycle / self.burst_period).is_multiple_of(2)
    }
}

impl TrafficModel for PatternTraffic {
    fn maybe_inject(&mut self, cycle: u64, source: NodeId) -> Option<TrafficRequest> {
        // Bursty traffic concentrates its average load into the "on"
        // windows: silence off-window (no RNG consumed — the decision is a
        // pure function of the cycle), double rate on-window.
        let rate = if self.pattern == SyntheticPattern::BurstyOnOff {
            if !self.burst_window_open(cycle) {
                return None;
            }
            (self.injection_rate * 2.0).min(1.0)
        } else {
            self.injection_rate
        };
        if !self.rng.next_bool(rate) {
            return None;
        }
        let mut dest = self.destination_at(cycle, source);
        if dest == source {
            // Self-traffic exercises nothing in the network; redirect to the
            // successor as the nearest meaningful destination.
            dest = NodeId::new((source.index() + 1) % self.num_nodes);
        }
        Some(TrafficRequest::read(dest))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: usize) -> NodeId {
        NodeId::new(i)
    }

    #[test]
    fn tornado_and_opposite_formulas() {
        let mut t = PatternTraffic::new(SyntheticPattern::Tornado, 64, 1.0, 1);
        assert_eq!(t.destination(n(0)), n(32));
        assert_eq!(t.destination(n(40)), n(8));
        let mut o = PatternTraffic::new(SyntheticPattern::Opposite, 64, 1.0, 1);
        assert_eq!(o.destination(n(0)), n(63));
        assert_eq!(o.destination(n(63)), n(0));
        assert_eq!(o.destination(n(10)), n(53));
    }

    #[test]
    fn neighbor_and_complement_formulas() {
        let mut nn = PatternTraffic::new(SyntheticPattern::NearestNeighbor, 16, 1.0, 1);
        assert_eq!(nn.destination(n(3)), n(4));
        assert_eq!(nn.destination(n(15)), n(0));
        let mut c = PatternTraffic::new(SyntheticPattern::Complement, 16, 1.0, 1);
        assert_eq!(c.destination(n(0)), n(15));
        assert_eq!(c.destination(n(5)), n(10));
    }

    #[test]
    fn complement_on_non_power_of_two() {
        let mut c = PatternTraffic::new(SyntheticPattern::Complement, 10, 1.0, 1);
        for i in 0..10 {
            let d = c.destination(n(i));
            assert!(d.index() < 10);
        }
    }

    #[test]
    fn hotspot_targets_single_node() {
        let mut h =
            PatternTraffic::new(SyntheticPattern::Hotspot, 32, 1.0, 1).with_hotspot_target(n(7));
        for i in 0..32 {
            assert_eq!(h.destination(n(i)), n(7));
        }
    }

    #[test]
    fn uniform_random_covers_the_network() {
        let mut u = PatternTraffic::new(SyntheticPattern::UniformRandom, 16, 1.0, 3);
        let mut seen = [false; 16];
        for _ in 0..1000 {
            seen[u.destination(n(0)).index()] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn partition2_stays_within_half() {
        let mut p = PatternTraffic::new(SyntheticPattern::Partition2, 64, 1.0, 5);
        for _ in 0..200 {
            assert!(p.destination(n(3)).index() < 32);
            assert!(p.destination(n(40)).index() >= 32);
        }
    }

    #[test]
    fn injection_rate_controls_offered_load() {
        let mut quiet = PatternTraffic::new(SyntheticPattern::UniformRandom, 16, 0.0, 1);
        let mut busy = PatternTraffic::new(SyntheticPattern::UniformRandom, 16, 1.0, 1);
        let quiet_count: usize = (0..100)
            .filter(|&c| quiet.maybe_inject(c, n(0)).is_some())
            .count();
        let busy_count: usize = (0..100)
            .filter(|&c| busy.maybe_inject(c, n(0)).is_some())
            .count();
        assert_eq!(quiet_count, 0);
        assert_eq!(busy_count, 100);
        assert!(busy.injection_rate() >= quiet.injection_rate());
    }

    #[test]
    fn injected_requests_never_target_self() {
        for pattern in SyntheticPattern::ALL
            .into_iter()
            .chain(SyntheticPattern::ADVERSARIAL)
        {
            let mut t = PatternTraffic::new(pattern, 9, 1.0, 2);
            for cycle in 0..50 {
                for src in 0..9 {
                    if let Some(req) = t.maybe_inject(cycle, n(src)) {
                        assert_ne!(req.destination, n(src), "{pattern}");
                        assert!(req.destination.index() < 9, "{pattern}");
                    }
                }
            }
        }
    }

    #[test]
    fn hotspot_storm_rotates_a_shared_victim() {
        let mut s =
            PatternTraffic::new(SyntheticPattern::HotspotStorm, 64, 1.0, 1).with_storm_period(100);
        // Within one storm epoch every node targets the same victim.
        let victim = s.destination_at(0, n(0));
        for src in 1..64 {
            assert_eq!(s.destination_at(50, n(src)), victim);
        }
        // Over many epochs the victim moves around the network.
        let mut victims: Vec<usize> = (0..40)
            .map(|epoch| s.destination_at(epoch * 100, n(0)).index())
            .collect();
        victims.dedup();
        assert!(victims.len() > 5, "storm never moved: {victims:?}");
    }

    #[test]
    fn bursty_onoff_is_silent_off_window_and_loud_on_window() {
        let mut b =
            PatternTraffic::new(SyntheticPattern::BurstyOnOff, 16, 0.5, 3).with_burst_period(10);
        let mut on = 0usize;
        let mut off = 0usize;
        for cycle in 0..200 {
            let injected = b.maybe_inject(cycle, n(1)).is_some();
            if (cycle / 10) % 2 == 0 {
                on += usize::from(injected);
            } else {
                assert!(!injected, "cycle {cycle} is an off window");
                off += usize::from(injected);
            }
        }
        assert!(on > 50, "on windows should carry double rate, got {on}");
        assert_eq!(off, 0);
        assert!(b.burst_window_open(5));
        assert!(!b.burst_window_open(15));
    }

    #[test]
    fn bit_reversal_is_an_involution_on_powers_of_two() {
        let mut p = PatternTraffic::new(SyntheticPattern::BitReversal, 16, 1.0, 1);
        assert_eq!(p.destination(n(1)), n(8));
        assert_eq!(p.destination(n(8)), n(1));
        assert_eq!(p.destination(n(3)), n(12));
        assert_eq!(p.destination(n(0)), n(0));
        // Non-power-of-two sizes stay within range.
        let mut q = PatternTraffic::new(SyntheticPattern::BitReversal, 11, 1.0, 1);
        for src in 0..11 {
            assert!(q.destination(n(src)).index() < 11);
        }
    }

    #[test]
    fn adversarial_metadata_and_names_round_trip() {
        assert_eq!(SyntheticPattern::ADVERSARIAL.len(), 3);
        for pattern in SyntheticPattern::ADVERSARIAL {
            assert!(pattern.is_adversarial());
            assert_eq!(SyntheticPattern::from_name(pattern.name()), Some(pattern));
        }
        for pattern in SyntheticPattern::ALL {
            assert!(!pattern.is_adversarial());
            assert_eq!(SyntheticPattern::from_name(pattern.name()), Some(pattern));
        }
        assert!(SyntheticPattern::BurstyOnOff.is_random());
        assert!(!SyntheticPattern::HotspotStorm.is_random());
        assert!(!SyntheticPattern::BitReversal.is_random());
        assert_eq!(SyntheticPattern::from_name("nope"), None);
    }

    #[test]
    fn pattern_metadata() {
        assert_eq!(SyntheticPattern::ALL.len(), 7);
        assert!(SyntheticPattern::UniformRandom.is_random());
        assert!(SyntheticPattern::Partition2.is_random());
        assert!(!SyntheticPattern::Tornado.is_random());
        assert_eq!(SyntheticPattern::Hotspot.to_string(), "hotspot");
        let t = PatternTraffic::new(SyntheticPattern::Tornado, 8, 0.5, 0);
        assert_eq!(t.pattern(), SyntheticPattern::Tornado);
    }
}
