//! The synthetic traffic patterns of Table III.
//!
//! Each pattern maps a source node to a destination node; the traffic model
//! injects a request towards that destination with a configurable per-node,
//! per-cycle injection probability. Destination formulas follow the paper's
//! Table III, with node count `N` standing in for `nports`:
//!
//! | pattern            | destination                                        |
//! |---------------------|---------------------------------------------------|
//! | uniform random      | `randint(0, N-1)`                                  |
//! | tornado             | `(src + N/2) % N`                                  |
//! | hotspot             | a single constant node                             |
//! | opposite            | `N - 1 - src`                                      |
//! | nearest neighbour   | `src + 1`                                          |
//! | complement          | `src XOR (N-1)` (bit complement)                   |
//! | partition-2         | random destination within the source's half        |

use serde::{Deserialize, Serialize};
use sf_netsim::{TrafficModel, TrafficRequest};
use sf_types::{DeterministicRng, NodeId};
use std::fmt;

/// One of the synthetic traffic patterns of Table III.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SyntheticPattern {
    /// Each node sends to a uniformly random destination.
    UniformRandom,
    /// Each node sends to the node halfway around the network.
    Tornado,
    /// Every node sends to the same destination node.
    Hotspot,
    /// Each node sends to its mirror on the opposite side of the network.
    Opposite,
    /// Each node sends to its successor.
    NearestNeighbor,
    /// Each node sends to its bitwise complement.
    Complement,
    /// The network is split into two halves; nodes send to random nodes within
    /// their half.
    Partition2,
}

impl SyntheticPattern {
    /// All seven patterns, in the order Table III lists them.
    pub const ALL: [Self; 7] = [
        Self::UniformRandom,
        Self::Tornado,
        Self::Hotspot,
        Self::Opposite,
        Self::NearestNeighbor,
        Self::Complement,
        Self::Partition2,
    ];

    /// Whether destinations depend on random draws (as opposed to being a
    /// pure function of the source).
    #[must_use]
    pub fn is_random(self) -> bool {
        matches!(self, Self::UniformRandom | Self::Partition2)
    }

    /// Short name used in experiment output.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Self::UniformRandom => "uniform_random",
            Self::Tornado => "tornado",
            Self::Hotspot => "hotspot",
            Self::Opposite => "opposite",
            Self::NearestNeighbor => "neighbor",
            Self::Complement => "complement",
            Self::Partition2 => "partition2",
        }
    }

    /// The pattern whose [`name`](Self::name) is `name`, if any — the inverse
    /// of the experiment-output rendering, used when restoring checkpointed
    /// rows.
    #[must_use]
    pub fn from_name(name: &str) -> Option<Self> {
        Self::ALL.into_iter().find(|p| p.name() == name)
    }
}

impl fmt::Display for SyntheticPattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A [`TrafficModel`] producing one of the synthetic patterns at a fixed
/// injection rate.
#[derive(Debug, Clone)]
pub struct PatternTraffic {
    pattern: SyntheticPattern,
    num_nodes: usize,
    injection_rate: f64,
    hotspot_target: usize,
    rng: DeterministicRng,
}

impl PatternTraffic {
    /// Creates pattern traffic over `num_nodes` nodes. `injection_rate` is the
    /// probability that a node injects a packet in a given cycle.
    ///
    /// # Panics
    ///
    /// Panics if `num_nodes` is zero.
    #[must_use]
    pub fn new(
        pattern: SyntheticPattern,
        num_nodes: usize,
        injection_rate: f64,
        seed: u64,
    ) -> Self {
        assert!(num_nodes > 0, "pattern traffic needs at least one node");
        Self {
            pattern,
            num_nodes,
            injection_rate: injection_rate.clamp(0.0, 1.0),
            hotspot_target: 0,
            rng: DeterministicRng::new(seed),
        }
    }

    /// Changes the hotspot destination (default node 0).
    #[must_use]
    pub fn with_hotspot_target(mut self, target: NodeId) -> Self {
        self.hotspot_target = target.index() % self.num_nodes;
        self
    }

    /// The pattern this traffic model produces.
    #[must_use]
    pub fn pattern(&self) -> SyntheticPattern {
        self.pattern
    }

    /// The configured injection rate.
    #[must_use]
    pub fn injection_rate(&self) -> f64 {
        self.injection_rate
    }

    /// The destination the pattern maps `source` to (drawing random numbers
    /// for the random patterns).
    pub fn destination(&mut self, source: NodeId) -> NodeId {
        let n = self.num_nodes;
        let src = source.index();
        let dest = match self.pattern {
            SyntheticPattern::UniformRandom => self.rng.next_index(n),
            SyntheticPattern::Tornado => (src + n / 2) % n,
            SyntheticPattern::Hotspot => self.hotspot_target,
            SyntheticPattern::Opposite => n - 1 - src,
            SyntheticPattern::NearestNeighbor => (src + 1) % n,
            SyntheticPattern::Complement => {
                let bits = usize::BITS - (n - 1).leading_zeros();
                let mask = if bits == 0 { 0 } else { (1usize << bits) - 1 };
                (src ^ mask) % n
            }
            SyntheticPattern::Partition2 => {
                let half = (n / 2).max(1);
                let group = src / half;
                let within = self.rng.next_index(half);
                (group * half + within).min(n - 1)
            }
        };
        NodeId::new(dest % n)
    }
}

impl TrafficModel for PatternTraffic {
    fn maybe_inject(&mut self, _cycle: u64, source: NodeId) -> Option<TrafficRequest> {
        if !self.rng.next_bool(self.injection_rate) {
            return None;
        }
        let mut dest = self.destination(source);
        if dest == source {
            // Self-traffic exercises nothing in the network; redirect to the
            // successor as the nearest meaningful destination.
            dest = NodeId::new((source.index() + 1) % self.num_nodes);
        }
        Some(TrafficRequest::read(dest))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: usize) -> NodeId {
        NodeId::new(i)
    }

    #[test]
    fn tornado_and_opposite_formulas() {
        let mut t = PatternTraffic::new(SyntheticPattern::Tornado, 64, 1.0, 1);
        assert_eq!(t.destination(n(0)), n(32));
        assert_eq!(t.destination(n(40)), n(8));
        let mut o = PatternTraffic::new(SyntheticPattern::Opposite, 64, 1.0, 1);
        assert_eq!(o.destination(n(0)), n(63));
        assert_eq!(o.destination(n(63)), n(0));
        assert_eq!(o.destination(n(10)), n(53));
    }

    #[test]
    fn neighbor_and_complement_formulas() {
        let mut nn = PatternTraffic::new(SyntheticPattern::NearestNeighbor, 16, 1.0, 1);
        assert_eq!(nn.destination(n(3)), n(4));
        assert_eq!(nn.destination(n(15)), n(0));
        let mut c = PatternTraffic::new(SyntheticPattern::Complement, 16, 1.0, 1);
        assert_eq!(c.destination(n(0)), n(15));
        assert_eq!(c.destination(n(5)), n(10));
    }

    #[test]
    fn complement_on_non_power_of_two() {
        let mut c = PatternTraffic::new(SyntheticPattern::Complement, 10, 1.0, 1);
        for i in 0..10 {
            let d = c.destination(n(i));
            assert!(d.index() < 10);
        }
    }

    #[test]
    fn hotspot_targets_single_node() {
        let mut h =
            PatternTraffic::new(SyntheticPattern::Hotspot, 32, 1.0, 1).with_hotspot_target(n(7));
        for i in 0..32 {
            assert_eq!(h.destination(n(i)), n(7));
        }
    }

    #[test]
    fn uniform_random_covers_the_network() {
        let mut u = PatternTraffic::new(SyntheticPattern::UniformRandom, 16, 1.0, 3);
        let mut seen = [false; 16];
        for _ in 0..1000 {
            seen[u.destination(n(0)).index()] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn partition2_stays_within_half() {
        let mut p = PatternTraffic::new(SyntheticPattern::Partition2, 64, 1.0, 5);
        for _ in 0..200 {
            assert!(p.destination(n(3)).index() < 32);
            assert!(p.destination(n(40)).index() >= 32);
        }
    }

    #[test]
    fn injection_rate_controls_offered_load() {
        let mut quiet = PatternTraffic::new(SyntheticPattern::UniformRandom, 16, 0.0, 1);
        let mut busy = PatternTraffic::new(SyntheticPattern::UniformRandom, 16, 1.0, 1);
        let quiet_count: usize = (0..100)
            .filter(|&c| quiet.maybe_inject(c, n(0)).is_some())
            .count();
        let busy_count: usize = (0..100)
            .filter(|&c| busy.maybe_inject(c, n(0)).is_some())
            .count();
        assert_eq!(quiet_count, 0);
        assert_eq!(busy_count, 100);
        assert!(busy.injection_rate() >= quiet.injection_rate());
    }

    #[test]
    fn injected_requests_never_target_self() {
        for pattern in SyntheticPattern::ALL {
            let mut t = PatternTraffic::new(pattern, 9, 1.0, 2);
            for cycle in 0..50 {
                for src in 0..9 {
                    if let Some(req) = t.maybe_inject(cycle, n(src)) {
                        assert_ne!(req.destination, n(src), "{pattern}");
                        assert!(req.destination.index() < 9, "{pattern}");
                    }
                }
            }
        }
    }

    #[test]
    fn pattern_metadata() {
        assert_eq!(SyntheticPattern::ALL.len(), 7);
        assert!(SyntheticPattern::UniformRandom.is_random());
        assert!(SyntheticPattern::Partition2.is_random());
        assert!(!SyntheticPattern::Tornado.is_random());
        assert_eq!(SyntheticPattern::Hotspot.to_string(), "hotspot");
        let t = PatternTraffic::new(SyntheticPattern::Tornado, 8, 0.5, 0);
        assert_eq!(t.pattern(), SyntheticPattern::Tornado);
    }
}
