//! Property tests for the histogram encoding: generated shapes must
//! round-trip exactly, adversarial framing garbage must never panic or
//! produce a malformed accept, and bucketwise merge must be commutative
//! (the property the cross-worker determinism guarantee rests on).

use proptest::collection;
use proptest::prelude::*;
use sf_obs::hist::Histogram;

/// Characters chosen to stress the `sfh1|…|…` framing: digits, the two
/// separators, signs, exponent markers, float specials, and the tag's own
/// letters.
const PALETTE: &[char] = &[
    '0', '1', '9', '.', ',', '|', '-', '+', 'e', 'E', 's', 'f', 'h', 'n', 'a', 'i', 'x', ' ',
];

/// Deterministically unfolds one `u64` into an adversarial string of up to
/// 24 palette characters.
fn adversarial_string(mut bits: u64) -> String {
    let len = (bits % 25) as usize;
    bits /= 25;
    let mut out = String::new();
    for _ in 0..len {
        out.push(PALETTE[(bits % PALETTE.len() as u64) as usize]);
        bits = bits / PALETTE.len() as u64 + 0x9e37;
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any histogram built from strictly positive bound increments and
    /// arbitrary observations (including a NaN, which must land in
    /// overflow) round-trips exactly through encode/decode.
    #[test]
    fn encode_decode_round_trips(
        increments in collection::vec(0.001f64..500.0, 1..10),
        observations in collection::vec(0.0f64..4000.0, 0..40),
        nan_tail in any::<bool>(),
    ) {
        let mut bounds = Vec::new();
        let mut acc = 0.0f64;
        for inc in increments {
            acc += inc;
            bounds.push(acc);
        }
        let mut h = Histogram::new(&bounds).expect("cumulative bounds increase strictly");
        let expected_total = observations.len() as u64 + u64::from(nan_tail);
        for v in observations {
            h.observe(v);
        }
        if nan_tail {
            h.observe(f64::NAN);
        }
        prop_assert_eq!(h.total(), expected_total);
        prop_assert_eq!(Histogram::decode(&h.encode()), Some(h));
    }

    /// Adversarial framing garbage either decodes to a well-formed
    /// histogram whose canonical re-encoding parses back identically, or is
    /// rejected — never a panic, never a malformed accept.
    #[test]
    fn decode_survives_adversarial_input(bits in any::<u64>(), with_tag in any::<bool>()) {
        let mut text = adversarial_string(bits);
        if with_tag {
            text = format!("sfh1|{text}");
        }
        if let Some(h) = Histogram::decode(&text) {
            prop_assert_eq!(h.counts().len(), h.bounds().len() + 1);
            prop_assert!(h.bounds().windows(2).all(|w| w[0] < w[1]));
            prop_assert!(h.bounds().iter().all(|b| b.is_finite()));
            prop_assert_eq!(Histogram::decode(&h.encode()), Some(h));
        }
    }

    /// Bucketwise merge is commutative: folding A into B and B into A give
    /// bit-identical histograms whatever the observations were.
    #[test]
    fn merge_order_cannot_change_totals(
        xs in collection::vec(0.0f64..5000.0, 0..30),
        ys in collection::vec(0.0f64..5000.0, 0..30),
    ) {
        let mut a = Histogram::exponential(10);
        let mut b = Histogram::exponential(10);
        for v in &xs {
            a.observe(*v);
        }
        for v in &ys {
            b.observe(*v);
        }
        let mut ab = a.clone();
        prop_assert!(ab.merge(&b));
        let mut ba = b.clone();
        prop_assert!(ba.merge(&a));
        prop_assert_eq!(ab, ba);
    }
}
