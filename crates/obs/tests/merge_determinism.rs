//! End-to-end metrics determinism: running the same quick study under
//! every worker × shard combination must leave a bit-identical
//! deterministic-namespace snapshot in the global registry.
//!
//! This is the observable form of the merge contract: counters sum,
//! gauges take maxima, histograms add bucketwise — all commutative and
//! associative — so neither the sweep-pool worker count nor the
//! intra-simulation shard count can leak into `sim.*` / `pool.*` totals.
//! (`sched.*` and `time.*` are excluded by [`MetricsSnapshot::deterministic`]
//! — cache hit/miss counts genuinely depend on worker interleaving.)
//!
//! `stringfigure` is a dev-dependency of `sf-obs` here (the reverse of the
//! build dependency), which is legal for dev-deps and lets the leaf crate
//! test the whole stack it instruments.
//!
//! [`MetricsSnapshot::deterministic`]: sf_obs::metrics::MetricsSnapshot::deterministic

use sf_obs::metrics::{self, MetricsSnapshot};
use stringfigure::study::{execute, RunContext, StudyRegistry};

// One #[test] on purpose: the registry, progress reporter, and the two
// environment knobs are process-global state.
#[test]
fn deterministic_metrics_are_bit_identical_across_worker_shard_matrix() {
    let registry = StudyRegistry::all();
    let study = registry
        .get("fault_resilience")
        .expect("fault_resilience registered");
    // Silence study notes so the matrix runs do not spam test output.
    let progress = sf_obs::progress::Progress::global();
    progress.configure(true);

    let mut reference: Option<(String, MetricsSnapshot)> = None;
    for workers in ["1", "4"] {
        for shards in ["1", "2", "4"] {
            std::env::set_var("SF_HARNESS_THREADS", workers);
            std::env::set_var("SF_SIM_SHARDS", shards);
            metrics::global().reset();
            execute(study, &RunContext::new().quick(true)).expect("quick fault_resilience run");
            let snapshot = metrics::global().snapshot().deterministic();

            assert!(
                snapshot.get("sim.delivered").is_some(),
                "simulation metrics missing from snapshot"
            );
            assert!(snapshot.get("pool.jobs_completed").is_some());
            // The kernel's slab-pool gauges are part of the deterministic
            // namespace: peaks and push totals are pure functions of the
            // simulated workload, never of the worker × shard layout.
            for name in [
                "sim.pool.packets_peak",
                "sim.pool.in_flight_peak",
                "sim.pool.commit_entries_peak",
                "sim.pool.packet_pushes",
                "sim.pool.in_flight_pushes",
                "sim.pool.commit_pushes",
            ] {
                let nonzero = match snapshot.get(name) {
                    Some(metrics::MetricValue::Counter(v) | metrics::MetricValue::Gauge(v)) => {
                        *v > 0
                    }
                    _ => false,
                };
                assert!(nonzero, "{name} missing or zero in deterministic snapshot");
            }
            assert!(snapshot
                .iter()
                .all(|(name, _)| metrics::is_deterministic_name(name)));

            let label = format!("workers={workers} shards={shards}");
            match &reference {
                None => reference = Some((label, snapshot)),
                Some((ref_label, expected)) => assert_eq!(
                    &snapshot, expected,
                    "deterministic metrics diverged between {ref_label} and {label}"
                ),
            }
        }
    }

    std::env::remove_var("SF_HARNESS_THREADS");
    std::env::remove_var("SF_SIM_SHARDS");
    metrics::global().reset();
    progress.reset();
}
