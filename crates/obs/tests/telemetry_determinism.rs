//! End-to-end telemetry determinism: running the same quick study under
//! every worker × shard combination must publish a **byte-identical**
//! `sf-telemetry/v1` stream.
//!
//! This is the out-of-band counterpart of `merge_determinism.rs`. The
//! kernel samples at cycle boundaries on the coordinating thread while the
//! shard workers are parked, so every sampled quantity (queue depths, link
//! occupancies, credit stalls, committed energy) is shard-invariant
//! simulation state; across the sweep pool, blocks are reordered into job
//! enumeration order by the collector's scoped delivery. Neither knob may
//! leak into the stream.
//!
//! Like `merge_determinism.rs`, `stringfigure` is a dev-dependency here —
//! the leaf crate tests the full stack it instruments.

use stringfigure::study::{execute, RunContext, StudyRegistry};

// One #[test] on purpose: the telemetry collector, progress reporter, and
// the two environment knobs are process-global state.
#[test]
fn telemetry_streams_are_bit_identical_across_worker_shard_matrix() {
    let registry = StudyRegistry::all();
    let study = registry
        .get("fault_resilience")
        .expect("fault_resilience registered");
    let progress = sf_obs::progress::Progress::global();
    progress.configure(true);

    let dir = std::env::temp_dir().join(format!("sf-telemetry-determinism-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");

    let mut reference: Option<(String, Vec<u8>)> = None;
    for workers in ["1", "4"] {
        for shards in ["1", "2", "4"] {
            std::env::set_var("SF_HARNESS_THREADS", workers);
            std::env::set_var("SF_SIM_SHARDS", shards);
            let label = format!("workers={workers} shards={shards}");
            let path = dir.join(format!("w{workers}-s{shards}.bin"));
            let ctx = RunContext::new().quick(true).with_telemetry(&path);
            execute(study, &ctx).expect("quick fault_resilience run");

            let bytes = std::fs::read(&path).expect("telemetry stream published");
            assert!(
                bytes.starts_with(sf_obs::telemetry::MAGIC),
                "{label}: stream does not start with the schema magic"
            );
            assert!(
                !path.with_extension("bin.part").exists(),
                "{label}: unpublished .part left behind"
            );
            let blocks = sf_obs::telemetry::parse_stream(&bytes).expect("published stream parses");
            assert!(!blocks.is_empty(), "{label}: no telemetry blocks recorded");
            assert!(
                blocks.iter().all(|b| b.samples() > 0 && b.routers > 0),
                "{label}: a block recorded no samples"
            );

            match &reference {
                None => reference = Some((label, bytes)),
                Some((ref_label, expected)) => assert!(
                    &bytes == expected,
                    "telemetry stream diverged between {ref_label} and {label} \
                     ({} vs {} bytes)",
                    expected.len(),
                    bytes.len()
                ),
            }
        }
    }

    std::env::remove_var("SF_HARNESS_THREADS");
    std::env::remove_var("SF_SIM_SHARDS");
    let _ = std::fs::remove_dir_all(&dir);
    progress.reset();
}
