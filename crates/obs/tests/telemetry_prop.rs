//! Property tests for the `sf-telemetry/v1` codec: whatever a
//! [`RunSeries`] records round-trips through encode/parse exactly, and the
//! parser never panics on truncated or corrupted input.
//!
//! The offline proptest shim samples primitive dimensions; the cell values
//! themselves come from a local splitmix64 stream seeded per case, so every
//! failure is reproducible from the printed inputs.

use proptest::prelude::*;
use sf_obs::telemetry::{parse_stream, RunSeries, MAGIC};

/// Deterministic value stream for filling series cells.
struct Vals {
    state: u64,
}

impl Vals {
    fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Finite energy-like value in `[-1e12, 1e12)`.
    #[allow(clippy::cast_precision_loss)]
    fn energy(&mut self) -> f64 {
        (self.next() >> 11) as f64 / (1u64 << 53) as f64 * 2e12 - 1e12
    }
}

/// The flat values one generated series holds, kept for the round-trip
/// comparison: per sample, `(queue, stalls)` per router, occupancy per
/// link, and the energy pair.
type Sample = (Vec<(u32, u64)>, Vec<u32>, (f64, f64));

#[allow(clippy::cast_possible_truncation)]
fn build(
    routers: usize,
    links: usize,
    every: u64,
    samples: usize,
    seed: u64,
) -> (RunSeries, Vec<Sample>) {
    let mut vals = Vals { state: seed };
    let mut series = RunSeries::new(routers, links, every);
    let mut expected = Vec::with_capacity(samples);
    for i in 0..samples {
        let energy = (vals.energy(), vals.energy());
        assert!(series.begin_sample(i as u64 * every, energy.0, energy.1));
        let mut row = Vec::with_capacity(routers);
        for _ in 0..routers {
            let (queue, stalls) = (vals.next() as u32, vals.next());
            series.push_router(queue, stalls);
            row.push((queue, stalls));
        }
        let mut occs = Vec::with_capacity(links);
        for _ in 0..links {
            let occ = vals.next() as u32;
            series.push_link(occ);
            occs.push(occ);
        }
        expected.push((row, occs, energy));
    }
    (series, expected)
}

fn stream_of(series: &RunSeries) -> Vec<u8> {
    let mut stream = MAGIC.to_vec();
    stream.extend_from_slice(&series.encode());
    stream
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn encode_parse_round_trips_exactly(
        routers in 0usize..4,
        links in 0usize..5,
        every in 1u64..8,
        samples in 0usize..12,
        seed in any::<u64>(),
    ) {
        let (series, expected) = build(routers, links, every, samples, seed);
        let blocks = parse_stream(&stream_of(&series)).expect("own encoding parses");
        prop_assert_eq!(blocks.len(), 1);
        let block = &blocks[0];
        prop_assert_eq!(block.routers as usize, routers);
        prop_assert_eq!(block.links as usize, links);
        prop_assert_eq!(block.every, every);
        prop_assert_eq!(block.samples(), samples);
        for (i, (row, occs, energy)) in expected.iter().enumerate() {
            prop_assert_eq!(block.cycles[i], i as u64 * every);
            let queues: Vec<u32> = row.iter().map(|&(q, _)| q).collect();
            let stalls: Vec<u64> = row.iter().map(|&(_, s)| s).collect();
            prop_assert_eq!(block.queue_row(i), &queues[..]);
            prop_assert_eq!(block.stall_row(i), &stalls[..]);
            prop_assert_eq!(block.link_row(i), &occs[..]);
            prop_assert_eq!(block.energy[i], *energy);
        }
    }

    #[test]
    fn truncation_never_panics_and_never_parses(
        routers in 0usize..4,
        links in 0usize..5,
        every in 1u64..8,
        samples in 1usize..12,
        seed in any::<u64>(),
        cut_seed in any::<u64>(),
    ) {
        let stream = stream_of(&build(routers, links, every, samples, seed).0);
        // Any strict prefix past the bare magic (itself a valid empty
        // stream) must be an error — never a panic, never a silently
        // shortened success.
        let span = stream.len() - MAGIC.len() - 1;
        let cut = MAGIC.len() + 1 + (cut_seed as usize % span.max(1));
        prop_assert!(cut < stream.len());
        prop_assert!(parse_stream(&stream[..cut]).is_err());
    }

    #[test]
    fn corruption_never_panics(
        routers in 0usize..4,
        links in 0usize..5,
        every in 1u64..8,
        samples in 0usize..12,
        seed in any::<u64>(),
        pos_seed in any::<u64>(),
        byte in any::<u8>(),
    ) {
        let mut stream = stream_of(&build(routers, links, every, samples, seed).0);
        let pos = pos_seed as usize % stream.len();
        stream[pos] = byte;
        // A flipped payload byte may still parse; a flipped header byte
        // fails — either way the parser must stay total.
        let _ = parse_stream(&stream);
    }

    #[test]
    fn arbitrary_bytes_never_panic(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        let _ = parse_stream(&bytes);
    }
}
