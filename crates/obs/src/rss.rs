//! In-process memory probe backed by `/proc/self/status`.
//!
//! This replaces the external `/usr/bin/time -v` / polling-loop probes in
//! ci.sh: because the read happens *inside* the measured process, it cannot
//! race process exit and report `0 kB` for fast runs. `VmHWM` is the kernel's
//! own high-water mark, so a single read at the end of a run captures the
//! true peak. On platforms without procfs both probes return `None` and
//! callers degrade gracefully.

use std::fs;

fn status_field_kb(field: &str) -> Option<u64> {
    let status = fs::read_to_string("/proc/self/status").ok()?;
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix(field) {
            let rest = rest.trim_start_matches(':').trim();
            let number = rest.split_whitespace().next()?;
            return number.parse().ok();
        }
    }
    None
}

/// Peak resident set size of this process in kB (`VmHWM`), or `None` when
/// procfs is unavailable.
#[must_use]
pub fn peak_rss_kb() -> Option<u64> {
    status_field_kb("VmHWM")
}

/// Current resident set size of this process in kB (`VmRSS`).
#[must_use]
pub fn current_rss_kb() -> Option<u64> {
    status_field_kb("VmRSS")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn probes_report_plausible_values_on_linux() {
        if !std::path::Path::new("/proc/self/status").exists() {
            return;
        }
        // Read current *first*: each probe re-reads /proc/self/status, and
        // memory allocated between the two snapshots could otherwise push the
        // later-read VmRSS above the earlier-read VmHWM.
        let current = current_rss_kb().expect("VmRSS present on Linux");
        let peak = peak_rss_kb().expect("VmHWM present on Linux");
        // A running Rust test binary occupies at least a few hundred kB and
        // the peak can never be below an earlier current level.
        assert!(current > 100, "current {current} kB");
        assert!(peak >= current, "peak {peak} < current {current}");
    }
}
