//! Fixed-bucket histograms with a textual encoding designed for exact
//! round-trips.
//!
//! A histogram is a strictly increasing list of finite upper bounds plus
//! `bounds.len() + 1` bucket counts (the last bucket is the overflow bucket
//! for values above every bound). Only the integer counts are stored — no
//! floating-point sum — so merging two histograms (bucketwise add) is
//! commutative and associative and therefore order-independent: the merged
//! result is bit-identical no matter how worker-local shards are combined.

/// A fixed-bucket histogram: values are classified into the first bucket
/// whose upper bound is `>=` the value, or the overflow bucket.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    bounds: Vec<f64>,
    counts: Vec<u64>,
}

/// Magic prefix of the textual encoding; bump on format changes.
const ENCODING_TAG: &str = "sfh1";

impl Histogram {
    /// Creates an empty histogram. `bounds` must be finite and strictly
    /// increasing; returns `None` otherwise (including empty bounds).
    #[must_use]
    pub fn new(bounds: &[f64]) -> Option<Self> {
        if bounds.is_empty()
            || bounds.iter().any(|b| !b.is_finite())
            || bounds.windows(2).any(|w| w[0] >= w[1])
        {
            return None;
        }
        Some(Self {
            bounds: bounds.to_vec(),
            counts: vec![0; bounds.len() + 1],
        })
    }

    /// Power-of-two bounds `1, 2, 4, … 2^(n-1)` — the default shape for
    /// cycle-count distributions.
    #[must_use]
    pub fn exponential(buckets: usize) -> Self {
        let bounds: Vec<f64> = (0..buckets.max(1)).map(|i| (1u64 << i) as f64).collect();
        Self::new(&bounds).expect("power-of-two bounds are strictly increasing")
    }

    /// Upper bounds of the finite buckets.
    #[must_use]
    pub fn bounds(&self) -> &[f64] {
        &self.bounds
    }

    /// Bucket counts (`bounds().len() + 1` entries; last is overflow).
    #[must_use]
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Total number of recorded observations.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Records one observation. NaN lands in the overflow bucket (it compares
    /// greater than every bound under `partial_cmp`-style `<=` checks).
    pub fn observe(&mut self, value: f64) {
        let idx = self
            .bounds
            .iter()
            .position(|&b| value <= b)
            .unwrap_or(self.bounds.len());
        self.counts[idx] += 1;
    }

    /// Bucketwise add. Returns `false` (leaving `self` untouched) when the
    /// bucket bounds differ — merging histograms of different shapes would
    /// silently corrupt both.
    #[must_use]
    pub fn merge(&mut self, other: &Histogram) -> bool {
        if self.bounds != other.bounds {
            return false;
        }
        for (mine, theirs) in self.counts.iter_mut().zip(&other.counts) {
            *mine += theirs;
        }
        true
    }

    /// Bucketwise saturating subtract (for computing deltas against a
    /// baseline snapshot). Requires identical bounds.
    #[must_use]
    pub fn subtract(&mut self, baseline: &Histogram) -> bool {
        if self.bounds != baseline.bounds {
            return false;
        }
        for (mine, base) in self.counts.iter_mut().zip(&baseline.counts) {
            *mine = mine.saturating_sub(*base);
        }
        true
    }

    /// Encodes to a single line: `sfh1|b0,b1,…|c0,c1,…`. Bounds use Rust's
    /// shortest round-trip float formatting, so [`Histogram::decode`] of the
    /// result reproduces the histogram exactly.
    #[must_use]
    pub fn encode(&self) -> String {
        let bounds: Vec<String> = self.bounds.iter().map(|b| format!("{b:?}")).collect();
        let counts: Vec<String> = self.counts.iter().map(u64::to_string).collect();
        format!("{ENCODING_TAG}|{}|{}", bounds.join(","), counts.join(","))
    }

    /// Parses [`Histogram::encode`] output. Any malformed input — wrong tag,
    /// non-finite or non-increasing bounds, count-list length mismatch,
    /// unparseable numbers — yields `None`, never a panic.
    #[must_use]
    pub fn decode(text: &str) -> Option<Self> {
        let mut parts = text.split('|');
        if parts.next()? != ENCODING_TAG {
            return None;
        }
        let bounds: Vec<f64> = parts
            .next()?
            .split(',')
            .map(|t| t.trim().parse::<f64>().ok())
            .collect::<Option<_>>()?;
        let counts: Vec<u64> = parts
            .next()?
            .split(',')
            .map(|t| t.trim().parse::<u64>().ok())
            .collect::<Option<_>>()?;
        if parts.next().is_some() || counts.len() != bounds.len() + 1 {
            return None;
        }
        let mut hist = Self::new(&bounds)?;
        hist.counts = counts;
        Some(hist)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn observe_classifies_into_bounds_and_overflow() {
        let mut h = Histogram::new(&[1.0, 4.0, 16.0]).unwrap();
        for v in [0.5, 1.0, 3.0, 16.0, 17.0, f64::NAN] {
            h.observe(v);
        }
        assert_eq!(h.counts(), &[2, 1, 1, 2]);
        assert_eq!(h.total(), 6);
    }

    #[test]
    fn merge_is_bucketwise_and_rejects_shape_mismatch() {
        let mut a = Histogram::exponential(4);
        let mut b = Histogram::exponential(4);
        a.observe(3.0);
        b.observe(3.0);
        b.observe(100.0);
        assert!(a.merge(&b));
        assert_eq!(a.counts(), &[0, 0, 2, 0, 1]);
        let other = Histogram::new(&[2.0, 3.0]).unwrap();
        assert!(!a.merge(&other));
    }

    #[test]
    fn encode_decode_round_trips() {
        let mut h = Histogram::new(&[0.5, 2.25, 1e9]).unwrap();
        for v in [0.1, 1.0, 5.0, 2e9] {
            h.observe(v);
        }
        assert_eq!(Histogram::decode(&h.encode()), Some(h));
    }

    #[test]
    fn decode_rejects_garbage() {
        for bad in [
            "",
            "sfh1",
            "sfh1||",
            "sfh2|1,2|0,0,0",
            "sfh1|2,1|0,0,0",
            "sfh1|1,1|0,0,0",
            "sfh1|1,inf|0,0,0",
            "sfh1|1,2|0,0",
            "sfh1|1,2|0,0,0,0",
            "sfh1|1,2|0,0,x",
            "sfh1|1,2|0,0,0|extra",
        ] {
            assert_eq!(Histogram::decode(bad), None, "{bad:?}");
        }
    }
}
