//! Hierarchical metrics registry: counters, gauges, and fixed-bucket
//! histograms, with worker-local accumulation and order-independent merge.
//!
//! # Determinism contract
//!
//! Metric names are dot-separated paths (`sim.delivered`,
//! `journal.appends`, `sched.cache_hits`, `time.run_wall_us`). Everything is
//! deterministic by default: counters are integer sums, histograms are
//! integer bucket counts, and both merge with commutative, associative
//! operators, so merged totals are bit-identical for any worker or shard
//! count. Two top-level prefixes opt *out* of that guarantee:
//!
//! - `time.` — wall-clock quantities; inherently nondeterministic.
//! - `sched.` — counts that depend on scheduling order (topology-cache
//!   hits/misses, journal compactions triggered by append interleaving).
//! - `serve.` — daemon request traffic (`sfbench serve` jobs accepted,
//!   rows streamed); depends on what clients submit, not on the sweep.
//!
//! [`MetricsSnapshot::deterministic`] filters to the guaranteed namespace —
//! that filtered view is what the cross worker×shard property test pins.
//!
//! Workers accumulate into a lock-free-to-share [`LocalMetrics`] and merge
//! into the global [`Registry`] when done; [`Registry::absorb_ordered`]
//! additionally sorts by an id first so even order-sensitive future metric
//! kinds (e.g. float sums) would merge reproducibly.

use std::collections::BTreeMap;
use std::sync::{Mutex, OnceLock};

use crate::hist::Histogram;

/// One metric's current value.
#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    /// Monotonic integer count; merges by addition.
    Counter(u64),
    /// Level quantity; merges by maximum (e.g. high-water marks).
    Gauge(u64),
    /// Fixed-bucket distribution; merges bucketwise.
    Histogram(Histogram),
}

impl MetricValue {
    /// Folds `other` into `self` using the per-kind merge operator. A kind or
    /// histogram-shape mismatch leaves `self` unchanged and returns `false`.
    fn merge(&mut self, other: &MetricValue) -> bool {
        match (self, other) {
            (MetricValue::Counter(a), MetricValue::Counter(b)) => {
                *a += b;
                true
            }
            (MetricValue::Gauge(a), MetricValue::Gauge(b)) => {
                *a = (*a).max(*b);
                true
            }
            (MetricValue::Histogram(a), MetricValue::Histogram(b)) => a.merge(b),
            _ => false,
        }
    }

    /// Renders the value for the flat JSON metrics document.
    fn to_json_value(&self) -> String {
        match self {
            MetricValue::Counter(v) | MetricValue::Gauge(v) => v.to_string(),
            MetricValue::Histogram(h) => format!("\"{}\"", h.encode()),
        }
    }
}

/// True when `name` is covered by the bit-identical merge guarantee (i.e. it
/// is not under the `time.`, `sched.`, or `serve.` nondeterministic
/// prefixes).
#[must_use]
pub fn is_deterministic_name(name: &str) -> bool {
    !(name.starts_with("time.") || name.starts_with("sched.") || name.starts_with("serve."))
}

/// Worker-local metric accumulator: no locking while recording; fold into the
/// global registry once at the end of the worker's run.
#[derive(Debug, Default)]
pub struct LocalMetrics {
    entries: BTreeMap<String, MetricValue>,
}

impl LocalMetrics {
    /// Empty accumulator.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `delta` to counter `name` (creating it at zero).
    pub fn counter_add(&mut self, name: &str, delta: u64) {
        match self.entries.get_mut(name) {
            Some(MetricValue::Counter(v)) => *v += delta,
            Some(_) => {}
            None => {
                self.entries
                    .insert(name.to_string(), MetricValue::Counter(delta));
            }
        }
    }

    /// Raises gauge `name` to at least `value`.
    pub fn gauge_max(&mut self, name: &str, value: u64) {
        match self.entries.get_mut(name) {
            Some(MetricValue::Gauge(v)) => *v = (*v).max(value),
            Some(_) => {}
            None => {
                self.entries
                    .insert(name.to_string(), MetricValue::Gauge(value));
            }
        }
    }

    /// Records `value` into histogram `name`, creating it with `shape`'s
    /// bounds on first use.
    pub fn observe(&mut self, name: &str, value: f64, shape: &Histogram) {
        let entry = self
            .entries
            .entry(name.to_string())
            .or_insert_with(|| MetricValue::Histogram(shape.clone()));
        if let MetricValue::Histogram(h) = entry {
            h.observe(value);
        }
    }

    fn into_entries(self) -> BTreeMap<String, MetricValue> {
        self.entries
    }
}

/// The process-global metrics registry.
#[derive(Debug, Default)]
pub struct Registry {
    merged: Mutex<BTreeMap<String, MetricValue>>,
}

static GLOBAL: OnceLock<Registry> = OnceLock::new();

/// The process-global registry instance.
#[must_use]
pub fn global() -> &'static Registry {
    GLOBAL.get_or_init(Registry::default)
}

impl Registry {
    /// Adds `delta` to counter `name` directly on the global map (one lock).
    pub fn counter_add(&self, name: &str, delta: u64) {
        let mut merged = self.merged.lock().expect("metrics registry poisoned");
        match merged.get_mut(name) {
            Some(MetricValue::Counter(v)) => *v += delta,
            Some(_) => {}
            None => {
                merged.insert(name.to_string(), MetricValue::Counter(delta));
            }
        }
    }

    /// Raises gauge `name` to at least `value`.
    pub fn gauge_max(&self, name: &str, value: u64) {
        let mut merged = self.merged.lock().expect("metrics registry poisoned");
        match merged.get_mut(name) {
            Some(MetricValue::Gauge(v)) => *v = (*v).max(value),
            Some(_) => {}
            None => {
                merged.insert(name.to_string(), MetricValue::Gauge(value));
            }
        }
    }

    /// Records one observation into histogram `name` (created with `shape`).
    pub fn observe(&self, name: &str, value: f64, shape: &Histogram) {
        let mut merged = self.merged.lock().expect("metrics registry poisoned");
        let entry = merged
            .entry(name.to_string())
            .or_insert_with(|| MetricValue::Histogram(shape.clone()));
        if let MetricValue::Histogram(h) = entry {
            h.observe(value);
        }
    }

    /// Folds one worker-local accumulator into the registry. Counter and
    /// histogram merges are commutative, so absorb order cannot change the
    /// merged totals.
    pub fn absorb(&self, local: LocalMetrics) {
        let mut merged = self.merged.lock().expect("metrics registry poisoned");
        for (name, value) in local.into_entries() {
            match merged.get_mut(&name) {
                Some(existing) => {
                    let _ = existing.merge(&value);
                }
                None => {
                    merged.insert(name, value);
                }
            }
        }
    }

    /// Folds many worker-local accumulators in ascending id order. With
    /// today's integer metric kinds this is equivalent to any-order
    /// [`Registry::absorb`]; the explicit ordering is the forward-compatible
    /// seam for metric kinds whose merge is not commutative.
    pub fn absorb_ordered<I>(&self, locals: I)
    where
        I: IntoIterator<Item = (u64, LocalMetrics)>,
    {
        let mut ordered: Vec<(u64, LocalMetrics)> = locals.into_iter().collect();
        ordered.sort_by_key(|(id, _)| *id);
        for (_, local) in ordered {
            self.absorb(local);
        }
    }

    /// Point-in-time copy of every metric.
    #[must_use]
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            entries: self
                .merged
                .lock()
                .expect("metrics registry poisoned")
                .clone(),
        }
    }

    /// Clears the registry (test isolation).
    pub fn reset(&self) {
        self.merged
            .lock()
            .expect("metrics registry poisoned")
            .clear();
    }
}

/// Immutable point-in-time view of the registry.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    entries: BTreeMap<String, MetricValue>,
}

impl MetricsSnapshot {
    /// All `(name, value)` pairs in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &MetricValue)> {
        self.entries.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Looks up one metric by exact name.
    #[must_use]
    pub fn get(&self, name: &str) -> Option<&MetricValue> {
        self.entries.get(name)
    }

    /// Number of metrics in the snapshot.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the snapshot holds no metrics.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The change since `baseline`: counters and histograms subtract
    /// (saturating); gauges keep their current value. Metrics absent from
    /// `baseline` pass through unchanged.
    #[must_use]
    pub fn delta(&self, baseline: &MetricsSnapshot) -> MetricsSnapshot {
        let mut entries = self.entries.clone();
        for (name, value) in &mut entries {
            match (value, baseline.entries.get(name)) {
                (MetricValue::Counter(v), Some(MetricValue::Counter(b))) => {
                    *v = v.saturating_sub(*b);
                }
                (MetricValue::Histogram(h), Some(MetricValue::Histogram(b))) => {
                    let _ = h.subtract(b);
                }
                _ => {}
            }
        }
        MetricsSnapshot { entries }
    }

    /// Filters to the deterministic namespace (drops `time.` / `sched.`).
    #[must_use]
    pub fn deterministic(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            entries: self
                .entries
                .iter()
                .filter(|(name, _)| is_deterministic_name(name))
                .map(|(name, value)| (name.clone(), value.clone()))
                .collect(),
        }
    }

    /// Flat JSON object, one key per metric in name order. Histograms are
    /// embedded as their [`Histogram::encode`] string.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        let mut first = true;
        for (name, value) in &self.entries {
            if !first {
                out.push_str(",\n");
            }
            first = false;
            out.push_str(&format!("  \"{}\": {}", name, value.to_json_value()));
        }
        out.push_str("\n}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn absorb_order_does_not_change_totals() {
        let reg_a = Registry::default();
        let reg_b = Registry::default();
        let make = |tag: u64| {
            let mut local = LocalMetrics::new();
            local.counter_add("sim.delivered", tag * 10);
            local.gauge_max("pool.peak_inflight", tag);
            local.observe("sim.latency", tag as f64, &Histogram::exponential(6));
            local
        };
        reg_a.absorb_ordered([(0, make(1)), (1, make(2)), (2, make(3))]);
        reg_b.absorb_ordered([(2, make(3)), (0, make(1)), (1, make(2))]);
        assert_eq!(reg_a.snapshot(), reg_b.snapshot());
        assert_eq!(
            reg_a.snapshot().get("sim.delivered"),
            Some(&MetricValue::Counter(60))
        );
        assert_eq!(
            reg_a.snapshot().get("pool.peak_inflight"),
            Some(&MetricValue::Gauge(3))
        );
    }

    #[test]
    fn namespace_rule_matches_documented_prefixes() {
        assert!(is_deterministic_name("sim.delivered"));
        assert!(is_deterministic_name("journal.appends"));
        assert!(!is_deterministic_name("time.run_wall_us"));
        assert!(!is_deterministic_name("sched.cache_hits"));
        assert!(!is_deterministic_name("serve.jobs_done"));
    }

    #[test]
    fn delta_subtracts_counters_and_keeps_new_metrics() {
        let reg = Registry::default();
        reg.counter_add("sink.rows", 5);
        let baseline = reg.snapshot();
        reg.counter_add("sink.rows", 7);
        reg.counter_add("journal.appends", 2);
        let delta = reg.snapshot().delta(&baseline);
        assert_eq!(delta.get("sink.rows"), Some(&MetricValue::Counter(7)));
        assert_eq!(delta.get("journal.appends"), Some(&MetricValue::Counter(2)));
    }

    #[test]
    fn snapshot_json_is_flat_and_sorted() {
        let reg = Registry::default();
        reg.counter_add("b.two", 2);
        reg.counter_add("a.one", 1);
        let json = reg.snapshot().to_json();
        let a = json.find("a.one").unwrap();
        let b = json.find("b.two").unwrap();
        assert!(a < b, "{json}");
        assert!(json.contains("\"a.one\": 1"));
    }

    #[test]
    fn kind_mismatch_is_ignored_not_corrupted() {
        let reg = Registry::default();
        reg.counter_add("x", 3);
        reg.gauge_max("x", 99);
        assert_eq!(reg.snapshot().get("x"), Some(&MetricValue::Counter(3)));
    }
}
