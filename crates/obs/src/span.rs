//! Span-based phase timing with aggregate summaries and an optional
//! JSON-lines trace emitter.
//!
//! Timing is globally gated: when disabled (the default) every
//! instrumentation site reduces to one relaxed atomic load, so the hot paths
//! (journal appends, per-cycle kernel phases) pay nothing measurable. When
//! enabled, spans accumulate `(count, total, max)` per name, and — if a trace
//! file is attached — each completed span also appends one JSON line:
//!
//! ```json
//! {"name":"topology_build","thread":0,"start_us":1234,"dur_us":567}
//! ```
//!
//! `start_us` is microseconds since the tracer's epoch (first enable or
//! trace-file attach). All timing metrics are wall-clock and therefore live
//! outside the determinism guarantee (`time.` namespace when exported).

use std::collections::BTreeMap;
use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::{Duration, Instant};

static TIMING: AtomicBool = AtomicBool::new(false);

/// True when span timing is active. Instrumentation sites check this before
/// reading the clock.
#[inline]
#[must_use]
pub fn timing_enabled() -> bool {
    TIMING.load(Ordering::Relaxed)
}

/// Globally enables/disables span timing.
pub fn set_timing(enabled: bool) {
    if enabled {
        // Pin the epoch before any span can observe it.
        let _ = Tracer::global().epoch();
    }
    TIMING.store(enabled, Ordering::Relaxed);
}

/// Starts a manual timing measurement: `Some(now)` when timing is enabled.
/// Pair with [`timing_add`]. This is the allocation-free form for hot loops
/// that aggregate locally before flushing.
#[inline]
#[must_use]
pub fn timing_start() -> Option<Instant> {
    timing_enabled().then(Instant::now)
}

/// Completes a [`timing_start`] measurement into the aggregate table (no
/// trace event — use [`Tracer::span`] for traced phases).
pub fn timing_add(name: &'static str, started: Option<Instant>, count: u64) {
    if let Some(started) = started {
        Tracer::global().add_duration(name, started.elapsed(), count);
    }
}

/// Aggregate statistics for one span name.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpanAgg {
    /// Completed spans (or batched units for [`Tracer::add_duration`]).
    pub count: u64,
    /// Total inclusive time.
    pub total: Duration,
    /// Longest single span.
    pub max: Duration,
}

/// One row of [`Tracer::summary`].
#[derive(Debug, Clone)]
pub struct SpanSummary {
    /// Span name.
    pub name: &'static str,
    /// Aggregate stats.
    pub agg: SpanAgg,
}

#[derive(Default)]
struct TraceWriter {
    writer: Option<BufWriter<File>>,
    path: Option<PathBuf>,
}

/// Reserved trace lane for synthetic events flushed by
/// [`Tracer::add_duration_event`] — far above any real thread id, so the
/// report's per-thread span nesting never mixes them with live spans.
const SYNTHETIC_LANE: u64 = u64::MAX;

/// The process-global span collector.
pub struct Tracer {
    epoch: OnceLock<Instant>,
    aggregates: Mutex<BTreeMap<&'static str, SpanAgg>>,
    writer: Mutex<TraceWriter>,
    next_thread_id: AtomicU64,
    /// Monotonic cursor laying out synthetic events on [`SYNTHETIC_LANE`].
    synthetic_us: AtomicU64,
}

static GLOBAL: OnceLock<Tracer> = OnceLock::new();

thread_local! {
    static THREAD_ID: std::cell::Cell<Option<u64>> = const { std::cell::Cell::new(None) };
}

impl Tracer {
    /// The process-global tracer instance.
    #[must_use]
    pub fn global() -> &'static Tracer {
        GLOBAL.get_or_init(|| Tracer {
            epoch: OnceLock::new(),
            aggregates: Mutex::new(BTreeMap::new()),
            writer: Mutex::new(TraceWriter::default()),
            next_thread_id: AtomicU64::new(0),
            synthetic_us: AtomicU64::new(0),
        })
    }

    fn epoch(&self) -> Instant {
        *self.epoch.get_or_init(Instant::now)
    }

    fn thread_id(&self) -> u64 {
        THREAD_ID.with(|cell| match cell.get() {
            Some(id) => id,
            None => {
                let id = self.next_thread_id.fetch_add(1, Ordering::Relaxed);
                cell.set(Some(id));
                id
            }
        })
    }

    /// Opens `path` as the JSON-lines trace sink and enables timing.
    pub fn open_trace(&self, path: &Path) -> io::Result<()> {
        let file = File::create(path)?;
        let mut writer = self.writer.lock().expect("trace writer poisoned");
        writer.writer = Some(BufWriter::new(file));
        writer.path = Some(path.to_path_buf());
        drop(writer);
        set_timing(true);
        Ok(())
    }

    /// Flushes and detaches the trace sink, returning its path when one was
    /// attached. Timing stays enabled (the summary table may still be wanted).
    pub fn finish_trace(&self) -> io::Result<Option<PathBuf>> {
        let mut writer = self.writer.lock().expect("trace writer poisoned");
        if let Some(mut w) = writer.writer.take() {
            w.flush()?;
        }
        Ok(writer.path.take())
    }

    /// Starts a traced span. Returns a guard that records on drop; when
    /// timing is disabled the guard is inert and free.
    #[must_use]
    pub fn span(&'static self, name: &'static str) -> Span {
        Span {
            tracer: self,
            name,
            started: timing_enabled().then(Instant::now),
        }
    }

    /// Adds a pre-aggregated duration (e.g. a per-cycle phase accumulated
    /// locally over a whole run) to the summary table without emitting a
    /// trace event.
    pub fn add_duration(&self, name: &'static str, total: Duration, count: u64) {
        if total.is_zero() && count == 0 {
            return;
        }
        let mut aggregates = self.aggregates.lock().expect("span aggregates poisoned");
        let agg = aggregates.entry(name).or_default();
        agg.count += count;
        agg.total += total;
        agg.max = agg.max.max(total);
    }

    /// Like [`Tracer::add_duration`], but also emits one synthetic trace
    /// event when a trace sink is attached — so locally-aggregated phase
    /// totals (the kernel's per-cycle route/commit timers) show up in
    /// `sfbench report`'s span tree, not just the summary table.
    ///
    /// Synthetic events are placed on a reserved thread lane behind a
    /// monotonic cursor: each event occupies its own disjoint interval, so
    /// the report's containment-based nesting renders every flushed total as
    /// an independent root span (their intervals are bookkeeping, not
    /// wall-clock placement).
    pub fn add_duration_event(&self, name: &'static str, total: Duration, count: u64) {
        if total.is_zero() && count == 0 {
            return;
        }
        self.add_duration(name, total, count);
        let mut writer = self.writer.lock().expect("trace writer poisoned");
        if let Some(w) = writer.writer.as_mut() {
            let dur_us = total.as_micros().max(1) as u64;
            let start_us = self.synthetic_us.fetch_add(dur_us + 1, Ordering::Relaxed);
            let line = format!(
                "{{\"name\":\"{name}\",\"thread\":{SYNTHETIC_LANE},\"start_us\":{start_us},\"dur_us\":{dur_us}}}\n",
            );
            let _ = w.write_all(line.as_bytes());
        }
    }

    fn record(&self, name: &'static str, started: Instant) {
        let dur = started.elapsed();
        {
            let mut aggregates = self.aggregates.lock().expect("span aggregates poisoned");
            let agg = aggregates.entry(name).or_default();
            agg.count += 1;
            agg.total += dur;
            agg.max = agg.max.max(dur);
        }
        let mut writer = self.writer.lock().expect("trace writer poisoned");
        if let Some(w) = writer.writer.as_mut() {
            let start_us = started.duration_since(self.epoch()).as_micros();
            let line = format!(
                "{{\"name\":\"{}\",\"thread\":{},\"start_us\":{},\"dur_us\":{}}}\n",
                name,
                self.thread_id(),
                start_us,
                dur.as_micros()
            );
            let _ = w.write_all(line.as_bytes());
        }
    }

    /// Aggregate rows sorted by total inclusive time, descending.
    #[must_use]
    pub fn summary(&self) -> Vec<SpanSummary> {
        let aggregates = self.aggregates.lock().expect("span aggregates poisoned");
        let mut rows: Vec<SpanSummary> = aggregates
            .iter()
            .map(|(&name, &agg)| SpanSummary { name, agg })
            .collect();
        rows.sort_by(|a, b| b.agg.total.cmp(&a.agg.total).then(a.name.cmp(b.name)));
        rows
    }

    /// Clears aggregates and detaches any trace sink (test isolation).
    pub fn reset(&self) {
        self.aggregates
            .lock()
            .expect("span aggregates poisoned")
            .clear();
        let mut writer = self.writer.lock().expect("trace writer poisoned");
        writer.writer = None;
        writer.path = None;
        drop(writer);
        self.synthetic_us.store(0, Ordering::Relaxed);
    }
}

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tracer").finish_non_exhaustive()
    }
}

/// RAII guard for one traced span; records its duration on drop.
#[derive(Debug)]
pub struct Span {
    tracer: &'static Tracer,
    name: &'static str,
    started: Option<Instant>,
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(started) = self.started.take() {
            self.tracer.record(self.name, started);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Tracer state is process-global, so the unit tests here run as one
    // sequence inside a single #[test] to avoid cross-test interference.
    #[test]
    fn spans_aggregate_and_trace_lines_are_json_objects() {
        let tracer = Tracer::global();
        tracer.reset();
        set_timing(true);
        {
            let _a = tracer.span("phase_a");
            let _b = tracer.span("phase_b");
        }
        tracer.add_duration("phase_a", Duration::from_micros(50), 10);
        let summary = tracer.summary();
        assert!(summary
            .iter()
            .any(|s| s.name == "phase_a" && s.agg.count == 11));
        assert!(summary
            .iter()
            .any(|s| s.name == "phase_b" && s.agg.count == 1));

        let dir = std::env::temp_dir().join(format!("sf-obs-span-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("trace.jsonl");
        tracer.open_trace(&path).unwrap();
        {
            let _c = tracer.span("traced_phase");
        }
        tracer.add_duration_event("flushed_phase", Duration::from_millis(2), 100);
        let finished = tracer.finish_trace().unwrap();
        assert_eq!(finished.as_deref(), Some(path.as_path()));
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("\"name\":\"traced_phase\""), "{text}");
        // Synthetic events land on the reserved lane and in the aggregates.
        assert!(
            text.contains(&format!(
                "\"name\":\"flushed_phase\",\"thread\":{}",
                u64::MAX
            )),
            "{text}"
        );
        assert!(tracer
            .summary()
            .iter()
            .any(|s| s.name == "flushed_phase" && s.agg.count == 100));
        assert!(text
            .trim_end()
            .lines()
            .all(|l| l.starts_with('{') && l.ends_with('}')));

        set_timing(false);
        assert!(timing_start().is_none());
        {
            let _d = tracer.span("disabled_phase");
        }
        assert!(tracer.summary().iter().all(|s| s.name != "disabled_phase"));
        tracer.reset();
        std::fs::remove_dir_all(&dir).ok();
    }
}
