//! The single stderr progress reporter for the whole pipeline.
//!
//! Two kinds of output flow through here:
//!
//! - **Notes** — the `# …` status lines the pipeline has always printed
//!   (`# wrote results.csv (64 rows)`, `# resuming fig10 …`). Notes print
//!   unless quiet.
//! - **Heartbeat** — a rate-limited live line during a sweep with jobs
//!   done/total, rows/s, ETA, and current RSS. The heartbeat only runs when
//!   the reporter has been explicitly configured verbose (a CLI run without
//!   `--quiet`), so library consumers and `cargo test` stay silent.
//!
//! Precedence of controls: explicit `--quiet` beats everything; otherwise the
//! `SF_PROGRESS` environment variable (`0`/`false` → quiet, `1`/`true` →
//! heartbeat on) beats the in-process default. Unconfigured processes print
//! notes but no heartbeat.

use std::io::{self, Write};
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::{Duration, Instant};

use crate::rss;

/// Environment variable overriding progress verbosity (`0` quiet, `1` live).
pub const PROGRESS_ENV: &str = "SF_PROGRESS";

const MODE_NOTES: u8 = 0; // unconfigured: notes yes, heartbeat no
const MODE_QUIET: u8 = 1;
const MODE_LIVE: u8 = 2;

const HEARTBEAT_EVERY: Duration = Duration::from_millis(250);

#[derive(Debug, Default)]
struct SweepState {
    label: String,
    total: usize,
    done: usize,
    rows: usize,
    started: Option<Instant>,
    last_beat: Option<Instant>,
    line_open: bool,
}

/// Process-global progress reporter; obtain via [`Progress::global`].
#[derive(Debug)]
pub struct Progress {
    mode: AtomicU8,
    task: Mutex<String>,
    state: Mutex<SweepState>,
}

static GLOBAL: OnceLock<Progress> = OnceLock::new();

impl Progress {
    /// The process-global reporter instance.
    #[must_use]
    pub fn global() -> &'static Progress {
        GLOBAL.get_or_init(|| Progress {
            mode: AtomicU8::new(MODE_NOTES),
            task: Mutex::new(String::new()),
            state: Mutex::new(SweepState::default()),
        })
    }

    /// Names the current task (study name); subsequent sweeps report under
    /// this label.
    pub fn set_task(&self, name: &str) {
        *self.task.lock().expect("progress task poisoned") = name.to_string();
    }

    /// Configures the reporter from CLI intent: `quiet` silences everything;
    /// otherwise the heartbeat turns on. `SF_PROGRESS` overrides the
    /// non-quiet default (set to `0` to suppress the heartbeat *and* notes,
    /// `1` to force the heartbeat) but an explicit `--quiet` always wins.
    pub fn configure(&self, quiet: bool) {
        let mode = if quiet {
            MODE_QUIET
        } else {
            match std::env::var(PROGRESS_ENV).ok().as_deref() {
                Some("0") | Some("false") => MODE_QUIET,
                Some("1") | Some("true") => MODE_LIVE,
                _ => MODE_LIVE,
            }
        };
        self.mode.store(mode, Ordering::Relaxed);
    }

    /// Restores the unconfigured default (test isolation).
    pub fn reset(&self) {
        self.mode.store(MODE_NOTES, Ordering::Relaxed);
        self.task.lock().expect("progress task poisoned").clear();
        *self.state.lock().expect("progress state poisoned") = SweepState::default();
    }

    fn mode(&self) -> u8 {
        self.mode.load(Ordering::Relaxed)
    }

    /// True when all output (notes included) is suppressed.
    #[must_use]
    pub fn is_quiet(&self) -> bool {
        self.mode() == MODE_QUIET
    }

    /// Prints a status note (a `# …` line) unless quiet. Clears any open
    /// heartbeat line first so notes never interleave mid-line.
    pub fn note(&self, message: &str) {
        if self.is_quiet() {
            return;
        }
        let mut state = self.state.lock().expect("progress state poisoned");
        Self::clear_line(&mut state);
        eprintln!("{message}");
    }

    /// Begins a sweep of `total` jobs under the current task label. Resets
    /// row/ETA tracking.
    pub fn start_sweep(&self, total: usize) {
        let label = self.task.lock().expect("progress task poisoned").clone();
        let mut state = self.state.lock().expect("progress state poisoned");
        Self::clear_line(&mut state);
        *state = SweepState {
            label: if label.is_empty() {
                "sweep".to_string()
            } else {
                label
            },
            total,
            started: Some(Instant::now()),
            ..SweepState::default()
        };
    }

    /// Records finished jobs and emitted rows, emitting a heartbeat when due.
    pub fn tick(&self, jobs_done: usize, rows_done: usize) {
        if self.mode() != MODE_LIVE {
            return;
        }
        let mut state = self.state.lock().expect("progress state poisoned");
        state.done += jobs_done;
        state.rows += rows_done;
        let now = Instant::now();
        let due = state
            .last_beat
            .is_none_or(|last| now.duration_since(last) >= HEARTBEAT_EVERY);
        if !due {
            return;
        }
        state.last_beat = Some(now);
        let elapsed = state
            .started
            .map_or(Duration::ZERO, |started| now.duration_since(started));
        let secs = elapsed.as_secs_f64().max(1e-9);
        let rate = state.rows as f64 / secs;
        let eta = if state.done > 0 && state.total > state.done {
            let per_job = secs / state.done as f64;
            format_eta(per_job * (state.total - state.done) as f64)
        } else {
            "--".to_string()
        };
        let rss = rss::current_rss_kb().map_or_else(
            || "?".to_string(),
            |kb| format!("{:.1} MB", kb as f64 / 1024.0),
        );
        let line = format!(
            "# {}: {}/{} jobs  {:.0} rows/s  ETA {}  rss {}",
            state.label, state.done, state.total, rate, eta, rss
        );
        eprint!("\r\x1b[2K{line}");
        let _ = io::stderr().flush();
        state.line_open = true;
    }

    /// Ends the current sweep, clearing any open heartbeat line.
    pub fn finish_sweep(&self) {
        let mut state = self.state.lock().expect("progress state poisoned");
        Self::clear_line(&mut state);
        *state = SweepState::default();
    }

    fn clear_line(state: &mut SweepState) {
        if state.line_open {
            eprint!("\r\x1b[2K");
            let _ = io::stderr().flush();
            state.line_open = false;
        }
    }
}

fn format_eta(seconds: f64) -> String {
    if !seconds.is_finite() {
        return "--".to_string();
    }
    let total = seconds.round() as u64;
    if total >= 3600 {
        format!("{}h{:02}m", total / 3600, (total % 3600) / 60)
    } else if total >= 60 {
        format!("{}m{:02}s", total / 60, total % 60)
    } else {
        format!("{total}s")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eta_formats_across_magnitudes() {
        assert_eq!(format_eta(5.2), "5s");
        assert_eq!(format_eta(65.0), "1m05s");
        assert_eq!(format_eta(3661.0), "1h01m");
        assert_eq!(format_eta(f64::INFINITY), "--");
    }

    // Mode state is process-global; exercise the transitions in one test.
    #[test]
    fn quiet_mode_suppresses_notes_and_ticks_are_inert_when_unconfigured() {
        let progress = Progress::global();
        progress.reset();
        assert!(!progress.is_quiet());
        // Unconfigured: ticks must not print (heartbeat requires MODE_LIVE),
        // exercised here only for absence of panics/state corruption.
        progress.set_task("unit");
        progress.start_sweep(4);
        progress.tick(1, 10);
        progress.finish_sweep();
        progress.configure(true);
        assert!(progress.is_quiet());
        progress.note("# this line must not appear");
        progress.reset();
    }
}
