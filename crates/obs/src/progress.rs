//! The single stderr progress reporter for the whole pipeline.
//!
//! Two kinds of output flow through here:
//!
//! - **Notes** — the `# …` status lines the pipeline has always printed
//!   (`# wrote results.csv (64 rows)`, `# resuming fig10 …`). Notes print
//!   unless quiet.
//! - **Heartbeat** — a rate-limited live line during a sweep with jobs
//!   done/total, rows/s, ETA, and current RSS. The heartbeat only runs when
//!   the reporter has been explicitly configured verbose (a CLI run without
//!   `--quiet`), so library consumers and `cargo test` stay silent.
//!
//! Precedence of controls: explicit `--quiet` beats everything; otherwise the
//! `SF_PROGRESS` environment variable (`0`/`false` → quiet, `1`/`true` →
//! heartbeat on) beats the in-process default. Unconfigured processes print
//! notes but no heartbeat.

use std::io::{self, Write};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU8, AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::{Duration, Instant};

use crate::rss;

/// Environment variable overriding progress verbosity (`0` quiet, `1` live).
pub const PROGRESS_ENV: &str = "SF_PROGRESS";

/// Environment variable naming a machine-readable heartbeat file. When set,
/// every sweep writes a one-line JSON snapshot of its progress there
/// (atomically, via temp + rename) regardless of the stderr mode — this is
/// how `sfbench dispatch` workers report progress to the coordinator while
/// running `--quiet`.
pub const HEARTBEAT_FILE_ENV: &str = "SF_HEARTBEAT_FILE";

/// Environment variable naming the pid of the supervising process (the
/// `sfbench dispatch` coordinator sets it to its own pid when spawning
/// workers). When set, every progress tick checks whether this process has
/// been **reparented** — the supervisor died hard (`kill -9`, OOM) and could
/// not tear its workers down — and exits with [`ORPHAN_EXIT_CODE`] instead
/// of running on as an orphan. Graceful supervisor exits (panic, error
/// return, Ctrl-C) kill workers directly via their RAII handles; this check
/// is the backstop for the exits no userspace cleanup survives.
pub const WATCH_PARENT_ENV: &str = "SF_WATCH_PARENT";

/// Exit code of a worker that found itself orphaned (see
/// [`WATCH_PARENT_ENV`]).
pub const ORPHAN_EXIT_CODE: i32 = 3;

const MODE_NOTES: u8 = 0; // unconfigured: notes yes, heartbeat no
const MODE_QUIET: u8 = 1;
const MODE_LIVE: u8 = 2;

const HEARTBEAT_EVERY: Duration = Duration::from_millis(250);

/// Rate limiter for the heartbeat line. Armed at sweep start so the first
/// beat waits a full interval — a sweep shorter than the interval prints no
/// heartbeat at all instead of flashing one before totals mean anything.
#[derive(Debug, Default)]
struct HeartbeatLimiter {
    last: Option<Instant>,
}

impl HeartbeatLimiter {
    /// A limiter whose first due beat is a full interval after `now`.
    fn armed(now: Instant) -> Self {
        Self { last: Some(now) }
    }

    /// Whether a beat is due at `now`; a due beat re-arms from `now`.
    fn due(&mut self, now: Instant) -> bool {
        let due = self
            .last
            .is_none_or(|last| now.duration_since(last) >= HEARTBEAT_EVERY);
        if due {
            self.last = Some(now);
        }
        due
    }
}

/// Estimated seconds remaining after `done` of `total` jobs took
/// `elapsed_secs`; `None` when no estimate exists (nothing done yet, or
/// nothing left).
fn eta_seconds(done: usize, total: usize, elapsed_secs: f64) -> Option<f64> {
    if done == 0 || total <= done || !elapsed_secs.is_finite() || elapsed_secs < 0.0 {
        return None;
    }
    Some(elapsed_secs / done as f64 * (total - done) as f64)
}

#[derive(Debug, Default)]
struct SweepState {
    label: String,
    total: usize,
    done: usize,
    rows: usize,
    started: Option<Instant>,
    beat: HeartbeatLimiter,
    line_open: bool,
    /// Destination of the machine-readable heartbeat, from
    /// [`HEARTBEAT_FILE_ENV`] at sweep start; `None` disables the channel.
    heartbeat_path: Option<PathBuf>,
    /// Separate limiter for the heartbeat file, so quiet workers still beat.
    file_beat: HeartbeatLimiter,
}

/// Renders the one-line JSON heartbeat snapshot (`sf-heartbeat/v1`).
#[must_use]
pub fn heartbeat_line(
    label: &str,
    done: usize,
    total: usize,
    rows: usize,
    elapsed_ms: u128,
    finished: bool,
) -> String {
    let escaped: String = label
        .chars()
        .flat_map(|c| match c {
            '"' | '\\' => vec!['\\', c],
            '\n' => vec!['\\', 'n'],
            other => vec![other],
        })
        .collect();
    format!(
        "{{\"schema\":\"sf-heartbeat/v1\",\"label\":\"{escaped}\",\"done\":{done},\"total\":{total},\"rows\":{rows},\"elapsed_ms\":{elapsed_ms},\"finished\":{finished}}}\n"
    )
}

/// Process-global progress reporter; obtain via [`Progress::global`].
#[derive(Debug)]
pub struct Progress {
    mode: AtomicU8,
    task: Mutex<String>,
    state: Mutex<SweepState>,
}

static GLOBAL: OnceLock<Progress> = OnceLock::new();

impl Progress {
    /// The process-global reporter instance.
    #[must_use]
    pub fn global() -> &'static Progress {
        GLOBAL.get_or_init(|| Progress {
            mode: AtomicU8::new(MODE_NOTES),
            task: Mutex::new(String::new()),
            state: Mutex::new(SweepState::default()),
        })
    }

    /// Names the current task (study name); subsequent sweeps report under
    /// this label.
    pub fn set_task(&self, name: &str) {
        *self.task.lock().expect("progress task poisoned") = name.to_string();
    }

    /// Configures the reporter from CLI intent: `quiet` silences everything;
    /// otherwise the heartbeat turns on. `SF_PROGRESS` overrides the
    /// non-quiet default (set to `0` to suppress the heartbeat *and* notes,
    /// `1` to force the heartbeat) but an explicit `--quiet` always wins.
    pub fn configure(&self, quiet: bool) {
        let mode = if quiet {
            MODE_QUIET
        } else {
            match std::env::var(PROGRESS_ENV).ok().as_deref() {
                Some("0") | Some("false") => MODE_QUIET,
                Some("1") | Some("true") => MODE_LIVE,
                _ => MODE_LIVE,
            }
        };
        self.mode.store(mode, Ordering::Relaxed);
    }

    /// Restores the unconfigured default (test isolation).
    pub fn reset(&self) {
        self.mode.store(MODE_NOTES, Ordering::Relaxed);
        self.task.lock().expect("progress task poisoned").clear();
        *self.state.lock().expect("progress state poisoned") = SweepState::default();
    }

    fn mode(&self) -> u8 {
        self.mode.load(Ordering::Relaxed)
    }

    /// True when all output (notes included) is suppressed.
    #[must_use]
    pub fn is_quiet(&self) -> bool {
        self.mode() == MODE_QUIET
    }

    /// Prints a status note (a `# …` line) unless quiet. Clears any open
    /// heartbeat line first so notes never interleave mid-line.
    pub fn note(&self, message: &str) {
        if self.is_quiet() {
            return;
        }
        let mut state = self.state.lock().expect("progress state poisoned");
        Self::clear_line(&mut state);
        eprintln!("{message}");
    }

    /// Begins a sweep of `total` jobs under the current task label. Resets
    /// row/ETA tracking.
    pub fn start_sweep(&self, total: usize) {
        let label = self.task.lock().expect("progress task poisoned").clone();
        let mut state = self.state.lock().expect("progress state poisoned");
        Self::clear_line(&mut state);
        let now = Instant::now();
        *state = SweepState {
            label: if label.is_empty() {
                "sweep".to_string()
            } else {
                label
            },
            total,
            started: Some(now),
            beat: HeartbeatLimiter::armed(now),
            heartbeat_path: std::env::var_os(HEARTBEAT_FILE_ENV).map(PathBuf::from),
            // Unarmed: the first in-sweep tick beats the file immediately,
            // after the initial snapshot below.
            file_beat: HeartbeatLimiter::armed(now),
            ..SweepState::default()
        };
        Self::write_heartbeat(&state, Duration::ZERO, false);
    }

    /// Records finished jobs and emitted rows, emitting a stderr heartbeat
    /// when due — and, with [`HEARTBEAT_FILE_ENV`] set, the machine-readable
    /// heartbeat file *whatever the stderr mode* (dispatch workers run
    /// `--quiet` yet must still report progress to their coordinator).
    ///
    /// With [`WATCH_PARENT_ENV`] set, every tick also verifies the
    /// supervising process is still this process's parent, exiting with
    /// [`ORPHAN_EXIT_CODE`] otherwise — the orphaned-worker backstop for a
    /// coordinator killed too hard to clean up after itself.
    pub fn tick(&self, jobs_done: usize, rows_done: usize) {
        exit_if_orphaned();
        let live = self.mode() == MODE_LIVE;
        let mut state = self.state.lock().expect("progress state poisoned");
        if !live && state.heartbeat_path.is_none() {
            return;
        }
        state.done += jobs_done;
        state.rows += rows_done;
        // A tick outside any sweep (start_sweep not called yet) has no
        // totals or start time — a heartbeat here would print a `0/0 jobs`
        // line, so it only accumulates.
        let Some(started) = state.started else {
            return;
        };
        let now = Instant::now();
        if state.file_beat.due(now) {
            Self::write_heartbeat(&state, now.duration_since(started), false);
        }
        if !live || !state.beat.due(now) {
            return;
        }
        let secs = now.duration_since(started).as_secs_f64().max(1e-9);
        let rate = state.rows as f64 / secs;
        let eta =
            eta_seconds(state.done, state.total, secs).map_or_else(|| "--".to_string(), format_eta);
        let rss = rss::current_rss_kb().map_or_else(
            || "?".to_string(),
            |kb| format!("{:.1} MB", kb as f64 / 1024.0),
        );
        let line = format!(
            "# {}: {}/{} jobs  {:.0} rows/s  ETA {}  rss {}",
            state.label, state.done, state.total, rate, eta, rss
        );
        eprint!("\r\x1b[2K{line}");
        let _ = io::stderr().flush();
        state.line_open = true;
    }

    /// Ends the current sweep, clearing any open heartbeat line and marking
    /// the heartbeat file finished.
    pub fn finish_sweep(&self) {
        let mut state = self.state.lock().expect("progress state poisoned");
        Self::clear_line(&mut state);
        let elapsed = state
            .started
            .map_or(Duration::ZERO, |started| started.elapsed());
        Self::write_heartbeat(&state, elapsed, true);
        *state = SweepState::default();
    }

    /// Writes the heartbeat file atomically (temp sibling + rename), so the
    /// coordinator never reads a torn snapshot. Failures are swallowed — the
    /// heartbeat is advisory and must never fail a run.
    fn write_heartbeat(state: &SweepState, elapsed: Duration, finished: bool) {
        let Some(path) = &state.heartbeat_path else {
            return;
        };
        let line = heartbeat_line(
            &state.label,
            state.done,
            state.total,
            state.rows,
            elapsed.as_millis(),
            finished,
        );
        let mut tmp = path.as_os_str().to_os_string();
        tmp.push(".tmp");
        let tmp = PathBuf::from(tmp);
        if std::fs::write(&tmp, line).is_ok() {
            let _ = std::fs::rename(&tmp, path);
        }
    }

    fn clear_line(state: &mut SweepState) {
        if state.line_open {
            eprint!("\r\x1b[2K");
            let _ = io::stderr().flush();
            state.line_open = false;
        }
    }
}

/// Whether this process has been reparented away from `watched` — i.e. the
/// supervising process named by [`WATCH_PARENT_ENV`] is gone and the kernel
/// handed us to init (or the nearest subreaper). Always `false` on
/// non-Unix targets.
#[must_use]
pub fn orphaned(watched: u32) -> bool {
    #[cfg(unix)]
    {
        std::os::unix::process::parent_id() != watched
    }
    #[cfg(not(unix))]
    {
        let _ = watched;
        false
    }
}

/// The pid parsed from [`WATCH_PARENT_ENV`], read once per process.
fn watched_parent() -> Option<u32> {
    static WATCHED: OnceLock<Option<u32>> = OnceLock::new();
    *WATCHED.get_or_init(|| {
        std::env::var(WATCH_PARENT_ENV)
            .ok()
            .and_then(|v| v.parse().ok())
    })
}

/// Exits with [`ORPHAN_EXIT_CODE`] when the supervisor named by
/// [`WATCH_PARENT_ENV`] is no longer this process's parent. A no-op when
/// the variable is unset (the overwhelmingly common case: one atomic load
/// after the first call).
fn exit_if_orphaned() {
    if let Some(watched) = watched_parent() {
        if orphaned(watched) {
            std::process::exit(ORPHAN_EXIT_CODE);
        }
    }
}

/// One job's progress scope on a multi-tenant host (the `sfbench serve`
/// daemon): tracks done/row counts for a single job independently of the
/// process-global reporter, so any number of concurrent jobs can report
/// without interleaving each other's state. Renders the same
/// `sf-heartbeat/v1` lines the global heartbeat file uses, for streaming to
/// the job's own client.
#[derive(Debug)]
pub struct JobScope {
    label: String,
    total: usize,
    done: AtomicUsize,
    rows: AtomicUsize,
    started: Instant,
}

impl JobScope {
    /// Opens a scope for a job expected to deliver `total` rows.
    #[must_use]
    pub fn new(label: impl Into<String>, total: usize) -> Self {
        Self {
            label: label.into(),
            total,
            done: AtomicUsize::new(0),
            rows: AtomicUsize::new(0),
            started: Instant::now(),
        }
    }

    /// Records finished jobs and emitted rows (callable from any thread).
    pub fn tick(&self, jobs_done: usize, rows_done: usize) {
        self.done.fetch_add(jobs_done, Ordering::Relaxed);
        self.rows.fetch_add(rows_done, Ordering::Relaxed);
    }

    /// Jobs recorded done so far.
    #[must_use]
    pub fn done(&self) -> usize {
        self.done.load(Ordering::Relaxed)
    }

    /// Rows recorded so far.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows.load(Ordering::Relaxed)
    }

    /// Expected total rows.
    #[must_use]
    pub fn total(&self) -> usize {
        self.total
    }

    /// The scope's current state as one `sf-heartbeat/v1` line.
    #[must_use]
    pub fn heartbeat(&self, finished: bool) -> String {
        heartbeat_line(
            &self.label,
            self.done(),
            self.total,
            self.rows(),
            self.started.elapsed().as_millis(),
            finished,
        )
    }
}

fn format_eta(seconds: f64) -> String {
    if !seconds.is_finite() {
        return "--".to_string();
    }
    let total = seconds.round() as u64;
    if total >= 3600 {
        format!("{}h{:02}m", total / 3600, (total % 3600) / 60)
    } else if total >= 60 {
        format!("{}m{:02}s", total / 60, total % 60)
    } else {
        format!("{total}s")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eta_formats_across_magnitudes() {
        assert_eq!(format_eta(5.2), "5s");
        assert_eq!(format_eta(65.0), "1m05s");
        assert_eq!(format_eta(3661.0), "1h01m");
        assert_eq!(format_eta(f64::INFINITY), "--");
    }

    #[test]
    fn eta_estimates_remaining_work_and_knows_when_it_cannot() {
        // No estimate before the first completion or after the last one.
        assert_eq!(eta_seconds(0, 10, 5.0), None);
        assert_eq!(eta_seconds(10, 10, 5.0), None);
        // A total smaller than done (restored jobs over-delivering) must
        // not underflow into a bogus estimate.
        assert_eq!(eta_seconds(12, 10, 5.0), None);
        assert_eq!(eta_seconds(0, 0, 5.0), None);
        assert_eq!(eta_seconds(2, 10, f64::NAN), None);
        // 2 of 10 jobs in 4s -> 2s/job -> 16s for the remaining 8.
        assert_eq!(eta_seconds(2, 10, 4.0), Some(16.0));
        assert_eq!(eta_seconds(5, 10, 5.0), Some(5.0));
    }

    #[test]
    fn heartbeat_line_is_one_json_object_with_escaped_label() {
        let line = heartbeat_line("megasweep", 3, 24, 3, 1234, false);
        assert_eq!(
            line,
            "{\"schema\":\"sf-heartbeat/v1\",\"label\":\"megasweep\",\"done\":3,\"total\":24,\"rows\":3,\"elapsed_ms\":1234,\"finished\":false}\n"
        );
        let hostile = heartbeat_line("we\"ird\\lab\nel", 0, 0, 0, 0, true);
        assert!(hostile.contains("we\\\"ird\\\\lab\\nel"), "{hostile}");
        assert!(
            hostile.trim_end().ends_with("\"finished\":true}"),
            "{hostile}"
        );
    }

    #[test]
    fn heartbeat_limiter_armed_at_sweep_start_waits_a_full_interval() {
        let t0 = Instant::now();
        let mut armed = HeartbeatLimiter::armed(t0);
        // The short-run edge case: within the first interval nothing fires,
        // so a sweep faster than HEARTBEAT_EVERY prints no heartbeat.
        assert!(!armed.due(t0));
        assert!(!armed.due(t0 + HEARTBEAT_EVERY / 2));
        assert!(armed.due(t0 + HEARTBEAT_EVERY));
        // A due beat re-arms from its own instant.
        assert!(!armed.due(t0 + HEARTBEAT_EVERY + HEARTBEAT_EVERY / 2));
        assert!(armed.due(t0 + HEARTBEAT_EVERY * 2));
        // The unarmed default fires immediately — which is why tick gates
        // on the sweep having started before consulting the limiter.
        let mut fresh = HeartbeatLimiter::default();
        assert!(fresh.due(t0));
    }

    #[test]
    fn orphan_detection_compares_against_the_actual_parent() {
        #[cfg(unix)]
        {
            let real_parent = std::os::unix::process::parent_id();
            assert!(!orphaned(real_parent));
            // Pid 0 is never a process's parent — a watched supervisor that
            // is gone looks exactly like this.
            assert!(orphaned(0));
        }
    }

    #[test]
    fn job_scopes_track_independent_jobs_without_shared_state() {
        let a = JobScope::new("job-a", 10);
        let b = JobScope::new("job-b", 4);
        a.tick(2, 2);
        b.tick(1, 1);
        a.tick(1, 1);
        assert_eq!((a.done(), a.rows(), a.total()), (3, 3, 10));
        assert_eq!((b.done(), b.rows(), b.total()), (1, 1, 4));
        let beat = a.heartbeat(false);
        assert!(beat.contains("\"label\":\"job-a\""), "{beat}");
        assert!(beat.contains("\"done\":3"), "{beat}");
        assert!(beat.contains("\"total\":10"), "{beat}");
        assert!(b.heartbeat(true).contains("\"finished\":true"));
    }

    // Mode state is process-global; exercise the transitions in one test.
    #[test]
    fn quiet_mode_suppresses_notes_and_ticks_are_inert_when_unconfigured() {
        let progress = Progress::global();
        progress.reset();
        assert!(!progress.is_quiet());
        // Unconfigured: ticks must not print (heartbeat requires MODE_LIVE),
        // exercised here only for absence of panics/state corruption.
        progress.set_task("unit");
        progress.start_sweep(4);
        progress.tick(1, 10);
        progress.finish_sweep();
        // A tick arriving before any start_sweep (the very-short-run edge
        // case) must never open a heartbeat line, whatever the mode.
        progress.configure(false);
        progress.tick(1, 1);
        assert!(!progress.state.lock().expect("state").line_open);
        progress.reset();
        progress.configure(true);
        assert!(progress.is_quiet());
        progress.note("# this line must not appear");
        progress.reset();
    }
}
