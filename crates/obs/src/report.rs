//! Schema-versioned perf-trajectory reports (`BENCH_<n>.json`).
//!
//! Each PR records one snapshot: a handful of named wall-clock probes plus
//! the process peak RSS. ci.sh diffs the fresh snapshot against the newest
//! prior `BENCH_*.json` and fails on regression, turning the bench benches
//! from write-only output into an enforced trajectory.
//!
//! The JSON is written and parsed by this module alone (the environment is
//! offline, no serde_json), so the parser only promises to read what
//! [`BenchReport::to_json`] emits — it scans for the known keys line by line
//! and returns `None` on anything structurally unexpected.

use std::time::Duration;

/// Schema identifier embedded in every report; bump on layout changes.
pub const SCHEMA: &str = "sf-bench-report/v1";

/// Wall-clock regression threshold: fail when `new > old * (1 + this)`.
pub const WALL_TOLERANCE: f64 = 0.25;
/// Peak-RSS regression threshold: fail when `new > old * (1 + this)`.
pub const RSS_TOLERANCE: f64 = 0.10;
/// Absolute wall-clock floor below which jitter is ignored (sub-millisecond
/// micro-benches can double without meaning anything).
const WALL_FLOOR_MS: f64 = 2.0;

/// One named probe result.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchEntry {
    /// Probe name, e.g. `shard_sync/4` or `fig10_quick`.
    pub name: String,
    /// Median wall-clock milliseconds across samples.
    pub wall_ms: f64,
    /// Number of timed samples the median was taken over.
    pub samples: u32,
    /// Optional throughput (units per second, e.g. simulated cycles/s for
    /// the `kernel_cps/*` probes). Informational: recorded in the snapshot
    /// but never gated — the wall-clock comparison already covers it.
    pub rate_per_s: Option<f64>,
    /// Whether this probe participates in regression gating and drift
    /// estimation. Delta probes (the difference of two multi-second
    /// subprocess walls, e.g. `dispatch_overhead`) set this to `false`:
    /// their variance on a contended host exceeds the tolerance band by
    /// construction, so they are recorded for trajectory visibility only.
    pub gated: bool,
}

/// A full perf snapshot for one PR.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchReport {
    /// Snapshot label, conventionally `BENCH_<pr>`.
    pub label: String,
    /// Peak resident set size of the bench process in kB.
    pub peak_rss_kb: u64,
    /// Probe results in execution order.
    pub entries: Vec<BenchEntry>,
}

impl BenchReport {
    /// Median of raw samples as milliseconds (empty → 0).
    #[must_use]
    pub fn median_ms(samples: &[Duration]) -> f64 {
        if samples.is_empty() {
            return 0.0;
        }
        let mut ms: Vec<f64> = samples.iter().map(|d| d.as_secs_f64() * 1e3).collect();
        ms.sort_by(f64::total_cmp);
        let mid = ms.len() / 2;
        if ms.len() % 2 == 1 {
            ms[mid]
        } else {
            (ms[mid - 1] + ms[mid]) / 2.0
        }
    }

    /// Minimum of raw samples as milliseconds (empty → 0). The estimator of
    /// choice for *delta* probes: wall-clock noise is strictly additive
    /// (scheduling, cache pollution), so the minimum is the sample closest
    /// to the true cost, and subtracting two minima doesn't compound two
    /// medians' worth of jitter.
    #[must_use]
    pub fn min_ms(samples: &[Duration]) -> f64 {
        samples
            .iter()
            .map(|d| d.as_secs_f64() * 1e3)
            .min_by(f64::total_cmp)
            .unwrap_or(0.0)
    }

    /// Serialises the report; stable key order, one entry per line.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str(&format!("  \"schema\": \"{SCHEMA}\",\n"));
        out.push_str(&format!("  \"label\": \"{}\",\n", self.label));
        out.push_str(&format!("  \"peak_rss_kb\": {},\n", self.peak_rss_kb));
        out.push_str("  \"entries\": [\n");
        for (i, entry) in self.entries.iter().enumerate() {
            let comma = if i + 1 == self.entries.len() { "" } else { "," };
            let rate = entry
                .rate_per_s
                .map(|r| format!(", \"rate_per_s\": {r:.1}"))
                .unwrap_or_default();
            let gated = if entry.gated {
                ""
            } else {
                ", \"gated\": false"
            };
            out.push_str(&format!(
                "    {{\"name\": \"{}\", \"wall_ms\": {:.3}, \"samples\": {}{rate}{gated}}}{comma}\n",
                entry.name, entry.wall_ms, entry.samples
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Parses [`BenchReport::to_json`] output (including reports written by
    /// earlier PRs with the same schema tag). Returns `None` on a schema
    /// mismatch or malformed document.
    #[must_use]
    pub fn parse(text: &str) -> Option<Self> {
        if extract_str(text, "schema")? != SCHEMA {
            return None;
        }
        let label = extract_str(text, "label")?.to_string();
        let peak_rss_kb = extract_num(text, "peak_rss_kb")?.round() as u64;
        let mut entries = Vec::new();
        for line in text.lines() {
            let line = line.trim();
            if !line.starts_with('{') || !line.contains("\"wall_ms\"") {
                continue;
            }
            entries.push(BenchEntry {
                name: extract_str(line, "name")?.to_string(),
                wall_ms: extract_num(line, "wall_ms")?,
                samples: extract_num(line, "samples")?.round() as u32,
                rate_per_s: extract_num(line, "rate_per_s"),
                gated: !line.contains("\"gated\": false"),
            });
        }
        Some(Self {
            label,
            peak_rss_kb,
            entries,
        })
    }

    /// Compares this (fresh) snapshot against `baseline`, returning one
    /// human-readable line per regression: a probe slower by more than
    /// [`WALL_TOLERANCE`] (and more than an absolute jitter floor), or peak
    /// RSS above [`RSS_TOLERANCE`]. Probes present in only one snapshot are
    /// skipped — the trajectory may legitimately grow. A probe whose
    /// *baseline* sat below the jitter floor is also skipped: a near-zero
    /// recording means the probe was lost in measurement noise when the
    /// baseline was taken, so any ratio against it is meaningless. Probes
    /// marked ungated on either side (see [`BenchEntry::gated`]) are
    /// recorded but never compared.
    ///
    /// Peak RSS is gated only when the baseline ran every probe this
    /// snapshot ran: RSS is process-global, so a snapshot that added probes
    /// (bigger in-process workloads) has a legitimately higher high-water
    /// mark. The comparison re-arms on the next snapshot pair with equal
    /// probe sets.
    ///
    /// Wall-clock comparisons are normalised for **machine drift**: snapshots
    /// recorded in different sessions see different CPU weather (frequency
    /// scaling, noisy container neighbours), which slows every probe by a
    /// common factor and says nothing about the code. The baseline is scaled
    /// by the median new/old ratio across common probes (only upward — a
    /// uniformly faster machine must not hide a real regression), so a
    /// genuine code regression still fires: it moves its own probes well past
    /// the shared median.
    #[must_use]
    pub fn regressions_vs(&self, baseline: &BenchReport) -> Vec<String> {
        let drift = self.drift_vs(baseline);
        let mut problems = Vec::new();
        for entry in &self.entries {
            let Some(base) = baseline.entries.iter().find(|b| b.name == entry.name) else {
                continue;
            };
            if base.wall_ms <= WALL_FLOOR_MS || !entry.gated || !base.gated {
                continue;
            }
            let adjusted = base.wall_ms * drift;
            let limit = adjusted * (1.0 + WALL_TOLERANCE);
            if entry.wall_ms > limit && entry.wall_ms - adjusted > WALL_FLOOR_MS {
                problems.push(format!(
                    "{}: {:.3} ms vs baseline {:.3} ms (drift-adjusted {:.3} ms, > +{:.0}%)",
                    entry.name,
                    entry.wall_ms,
                    base.wall_ms,
                    adjusted,
                    WALL_TOLERANCE * 100.0
                ));
            }
        }
        let probe_set_grew = self
            .entries
            .iter()
            .any(|entry| !baseline.entries.iter().any(|b| b.name == entry.name));
        if baseline.peak_rss_kb > 0 && !probe_set_grew {
            let limit = baseline.peak_rss_kb as f64 * (1.0 + RSS_TOLERANCE);
            if self.peak_rss_kb as f64 > limit {
                problems.push(format!(
                    "peak_rss_kb: {} vs baseline {} (> +{:.0}%)",
                    self.peak_rss_kb,
                    baseline.peak_rss_kb,
                    RSS_TOLERANCE * 100.0
                ));
            }
        }
        problems
    }

    /// The machine-drift factor vs `baseline`: the median `new/old`
    /// wall-clock ratio over gated probes present in both snapshots and
    /// above the jitter floor, clamped to at least 1.0. With fewer than four common
    /// probes a single regressing probe would drag the median itself, so
    /// small populations get no adjustment (factor 1.0).
    #[must_use]
    pub fn drift_vs(&self, baseline: &BenchReport) -> f64 {
        let mut ratios: Vec<f64> = self
            .entries
            .iter()
            .filter_map(|entry| {
                let base = baseline.entries.iter().find(|b| b.name == entry.name)?;
                (base.wall_ms > WALL_FLOOR_MS && entry.gated && base.gated)
                    .then(|| entry.wall_ms / base.wall_ms)
            })
            .collect();
        if ratios.len() < 4 {
            return 1.0;
        }
        ratios.sort_by(f64::total_cmp);
        let mid = ratios.len() / 2;
        let median = if ratios.len() % 2 == 1 {
            ratios[mid]
        } else {
            (ratios[mid - 1] + ratios[mid]) / 2.0
        };
        median.max(1.0)
    }
}

fn extract_str<'a>(text: &'a str, key: &str) -> Option<&'a str> {
    let pattern = format!("\"{key}\":");
    let after = &text[text.find(&pattern)? + pattern.len()..];
    let open = after.find('"')?;
    let rest = &after[open + 1..];
    Some(&rest[..rest.find('"')?])
}

fn extract_num(text: &str, key: &str) -> Option<f64> {
    let pattern = format!("\"{key}\":");
    let after = text[text.find(&pattern)? + pattern.len()..].trim_start();
    let end = after
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == '+'))
        .unwrap_or(after.len());
    after[..end].parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> BenchReport {
        BenchReport {
            label: "BENCH_6".to_string(),
            peak_rss_kb: 50_000,
            entries: vec![
                BenchEntry {
                    name: "shard_sync/1".to_string(),
                    wall_ms: 12.5,
                    samples: 3,
                    rate_per_s: None,
                    gated: true,
                },
                BenchEntry {
                    name: "fig10_quick".to_string(),
                    wall_ms: 850.0,
                    samples: 1,
                    rate_per_s: Some(87_654.3),
                    gated: true,
                },
            ],
        }
    }

    #[test]
    fn json_round_trips() {
        let report = sample();
        assert_eq!(BenchReport::parse(&report.to_json()), Some(report));
    }

    #[test]
    fn parse_rejects_other_schemas_and_garbage() {
        assert_eq!(BenchReport::parse(""), None);
        assert_eq!(BenchReport::parse("{\"schema\": \"other/v9\"}"), None);
        let mangled = sample().to_json().replace(SCHEMA, "sf-bench-report/v0");
        assert_eq!(BenchReport::parse(&mangled), None);
    }

    #[test]
    fn regression_rules_fire_on_wall_and_rss_but_not_jitter() {
        let base = sample();
        let mut fresh = sample();
        assert!(fresh.regressions_vs(&base).is_empty());
        // 30% slower on a probe above the jitter floor → flagged.
        fresh.entries[1].wall_ms = 850.0 * 1.30;
        assert_eq!(fresh.regressions_vs(&base).len(), 1);
        // Sub-floor absolute change never flags even at huge ratios.
        let tiny_base = BenchReport {
            entries: vec![BenchEntry {
                name: "x".into(),
                wall_ms: 0.4,
                samples: 3,
                rate_per_s: None,
                gated: true,
            }],
            ..sample()
        };
        let mut tiny_fresh = tiny_base.clone();
        tiny_fresh.entries[0].wall_ms = 1.2;
        assert!(tiny_fresh.regressions_vs(&tiny_base).is_empty());
        // RSS over 10% → flagged.
        let mut fat = sample();
        fat.peak_rss_kb = 60_000;
        assert_eq!(fat.regressions_vs(&base).len(), 1);
        // New probes in the fresh snapshot are not regressions.
        let mut grown = sample();
        grown.entries.push(BenchEntry {
            name: "new_probe".into(),
            wall_ms: 5.0,
            samples: 3,
            rate_per_s: None,
            gated: true,
        });
        assert!(grown.regressions_vs(&base).is_empty());
    }

    #[test]
    fn sub_floor_baselines_are_ungateable() {
        // A probe recorded at ~0 ms (e.g. a delta probe whose overhead was
        // lost in noise) gives a meaningless ratio: any later nonzero
        // reading would look like an infinite regression. Skip it.
        let mut base = sample();
        base.entries.push(BenchEntry {
            name: "delta_probe".into(),
            wall_ms: 0.0,
            samples: 3,
            rate_per_s: None,
            gated: true,
        });
        let mut fresh = base.clone();
        fresh.entries[2].wall_ms = 21.7;
        assert!(fresh.regressions_vs(&base).is_empty());
    }

    #[test]
    fn ungated_probes_round_trip_and_never_fire() {
        let mut base = sample();
        base.entries.push(BenchEntry {
            name: "dispatch_overhead".into(),
            wall_ms: 12.0,
            samples: 3,
            rate_per_s: None,
            gated: false,
        });
        // The flag survives serialisation (and old files without it parse
        // as gated).
        assert_eq!(BenchReport::parse(&base.to_json()), Some(base.clone()));
        // A 4x blow-up on the ungated probe is recorded, not flagged.
        let mut fresh = base.clone();
        fresh.entries.last_mut().unwrap().wall_ms = 48.0;
        assert!(fresh.regressions_vs(&base).is_empty());
        // Ungated on the *baseline* side alone also disarms: the fresh side
        // may re-gate a probe only once a gated baseline exists.
        let mut regated = fresh.clone();
        regated.entries.last_mut().unwrap().gated = true;
        assert!(regated.regressions_vs(&base).is_empty());
    }

    #[test]
    fn rss_gate_disarms_when_the_probe_set_grows() {
        // Peak RSS is process-global: a snapshot that ran extra (bigger)
        // probes has a legitimately higher high-water mark, so the
        // comparison only holds between equal probe sets.
        let base = sample();
        let mut grown = sample();
        grown.entries.push(BenchEntry {
            name: "kernel_cps/2048".into(),
            wall_ms: 650.0,
            samples: 3,
            rate_per_s: Some(670.0),
            gated: true,
        });
        grown.peak_rss_kb = 40_000_000;
        assert!(grown.regressions_vs(&base).is_empty());
        // With identical probe sets the gate still fires.
        let mut fat = sample();
        fat.peak_rss_kb = 40_000_000;
        assert_eq!(fat.regressions_vs(&base).len(), 1);
    }

    #[test]
    fn median_handles_odd_even_and_empty() {
        assert_eq!(BenchReport::median_ms(&[]), 0.0);
        let odd = [10, 30, 20].map(Duration::from_millis);
        assert!((BenchReport::median_ms(&odd) - 20.0).abs() < 1e-9);
        let even = [10, 20, 30, 40].map(Duration::from_millis);
        assert!((BenchReport::median_ms(&even) - 25.0).abs() < 1e-9);
    }

    #[test]
    fn min_picks_the_quietest_sample() {
        assert_eq!(BenchReport::min_ms(&[]), 0.0);
        let runs = [30, 10, 20].map(Duration::from_millis);
        assert!((BenchReport::min_ms(&runs) - 10.0).abs() < 1e-9);
    }

    fn wide(label: &str, scale: f64) -> BenchReport {
        let probes = [
            ("a", 100.0),
            ("b", 200.0),
            ("c", 400.0),
            ("d", 800.0),
            ("e", 1600.0),
        ];
        BenchReport {
            label: label.to_string(),
            peak_rss_kb: 50_000,
            entries: probes
                .iter()
                .map(|(name, ms)| BenchEntry {
                    name: (*name).to_string(),
                    wall_ms: ms * scale,
                    samples: 3,
                    rate_per_s: None,
                    gated: true,
                })
                .collect(),
        }
    }

    #[test]
    fn uniform_machine_drift_is_normalised_but_outliers_still_fire() {
        let base = wide("BENCH_7", 1.0);
        // Every probe uniformly 40% slower: machine drift, not a regression.
        let slow_host = wide("BENCH_8", 1.4);
        assert!((slow_host.drift_vs(&base) - 1.4).abs() < 1e-9);
        assert!(slow_host.regressions_vs(&base).is_empty());
        // One probe doubling while the rest drift 40% is a real regression
        // and the message shows the drift-adjusted baseline.
        let mut outlier = wide("BENCH_8", 1.4);
        outlier.entries[2].wall_ms = 400.0 * 2.0;
        let problems = outlier.regressions_vs(&base);
        assert_eq!(problems.len(), 1, "{problems:?}");
        assert!(problems[0].starts_with("c: 800.000 ms"), "{}", problems[0]);
        assert!(
            problems[0].contains("drift-adjusted 560.000 ms"),
            "{}",
            problems[0]
        );
        // A uniformly *faster* machine never relaxes the gate: the factor is
        // clamped at 1.0, so a regression on a fast host still fires.
        let mut fast_host = wide("BENCH_8", 0.7);
        assert_eq!(fast_host.drift_vs(&base), 1.0);
        fast_host.entries[0].wall_ms = 100.0 * 1.5;
        assert_eq!(fast_host.regressions_vs(&base).len(), 1);
    }

    #[test]
    fn fewer_than_four_common_probes_get_no_drift_adjustment() {
        let base = sample();
        let mut fresh = sample();
        for entry in &mut fresh.entries {
            entry.wall_ms *= 1.4;
        }
        assert_eq!(fresh.drift_vs(&base), 1.0);
        assert_eq!(fresh.regressions_vs(&base).len(), 2);
    }
}
