//! Deterministic in-simulator time-series telemetry (`sf-telemetry/v1`).
//!
//! A [`RunSeries`] records per-router queue occupancy, per-link credit
//! occupancy, per-router credit-stall counts, and the two energy
//! accumulators, sampled every `every` cycles **on the coordinating thread
//! at a cycle boundary** (the same seam fault injection uses, with all
//! routing workers parked). Sampling therefore observes exactly the state
//! the serial reference simulator would hold, which makes the recorded
//! bytes bit-identical for any worker x shard count — and because nothing
//! in the simulation ever reads the series, telemetry is strictly
//! out-of-band: result artifacts are byte-identical with it on or off.
//!
//! # Binary stream layout
//!
//! A stream is the 16-byte magic `b"sf-telemetry/v1\n"` followed by zero or
//! more **run blocks**, one per simulation run, each fully self-describing
//! (all integers little-endian, floats IEEE-754 little-endian bits):
//!
//! | field        | type                     | meaning                         |
//! |--------------|--------------------------|---------------------------------|
//! | marker       | `u8` = `0x01`            | block start                     |
//! | routers      | `u32`                    | routers per sample (id order)   |
//! | links        | `u32`                    | directed links per sample       |
//! | every        | `u64`                    | final sampling stride in cycles |
//! | samples      | `u32`                    | sample count                    |
//! | cycles       | `samples x u64`          | sampled cycle numbers           |
//! | queue depth  | `samples x routers x u32`| injection + VC queue packets    |
//! | link occ     | `samples x links x u32`  | credit-counter occupancy        |
//! | stalls       | `samples x routers x u64`| cumulative credit stalls        |
//! | energy       | `samples x 2 x f64`      | network pJ, DRAM pJ (cumulative)|
//!
//! Links are enumerated in deterministic construction order: router id,
//! then adjacency order (the same order fault injection uses for its
//! victim pool).
//!
//! # Bounded memory
//!
//! A series holds at most [`SAMPLE_CAP`] samples. When a run outgrows the
//! cap the series thins itself: every other sample is dropped and the
//! stride doubles. Retained cycles are exactly the multiples of the new
//! stride, so the thinned series is indistinguishable from one recorded at
//! the wider stride from the start — a pure function of the cycle count,
//! preserving determinism.
//!
//! # Ordered collection across a sweep
//!
//! A study sweep runs many simulations on pool worker threads that finish
//! in nondeterministic order. The process-global [`Collector`] restores
//! determinism with the same seam the row pipeline uses: each sweep job
//! wraps itself in a [`job_scope`] keyed by `(sweep, job index)`, encoded
//! blocks park in an ordered buffer, and the coordinator's **in-order**
//! row delivery calls [`Collector::deliver_through`] to flush them — so
//! the stream's block order equals the job enumeration order for any
//! worker count, and the buffer never outgrows the pool's in-flight
//! window. The file itself goes through the atomic `.part`-rename pattern
//! shared with every other artifact sink.
//!
//! Jobs restored from a checkpoint journal skip their simulations, so a
//! resumed run records blocks only for the jobs it actually re-executes;
//! byte-level stream comparisons should use fresh (`--no-resume`) runs.

use std::cell::Cell;
use std::collections::BTreeMap;
use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, OnceLock};

/// Schema identifier of the telemetry stream format.
pub const SCHEMA: &str = "sf-telemetry/v1";

/// The 16-byte stream magic (schema name plus a newline, so `head -c 16`
/// on a stream prints it).
pub const MAGIC: &[u8; 16] = b"sf-telemetry/v1\n";

/// Default sampling stride in cycles when `--telemetry` is given without
/// `--telemetry-every`.
pub const DEFAULT_EVERY: u64 = 64;

/// Maximum samples a single run's series holds before thinning (see the
/// module docs on bounded memory).
pub const SAMPLE_CAP: usize = 1024;

const BLOCK_MARKER: u8 = 0x01;

// ---------------------------------------------------------------------------
// RunSeries: the per-run recorder
// ---------------------------------------------------------------------------

/// Columnar recorder for one simulation run.
///
/// The kernel drives it per sampled cycle: [`begin_sample`] (which applies
/// the stride and the thinning policy), then one [`push_router`] per
/// router in id order and one [`push_link`] per directed link in
/// construction order. [`encode`] serialises the whole run as one block.
///
/// [`begin_sample`]: Self::begin_sample
/// [`push_router`]: Self::push_router
/// [`push_link`]: Self::push_link
/// [`encode`]: Self::encode
#[derive(Debug, Clone)]
pub struct RunSeries {
    routers: u32,
    links: u32,
    every: u64,
    cycles: Vec<u64>,
    queue: Vec<u32>,
    link_occ: Vec<u32>,
    stalls: Vec<u64>,
    energy: Vec<f64>,
}

impl RunSeries {
    /// A recorder for a network of `routers` routers and `links` directed
    /// links, sampling every `every` cycles (clamped to at least 1).
    #[must_use]
    pub fn new(routers: usize, links: usize, every: u64) -> Self {
        Self {
            routers: routers as u32,
            links: links as u32,
            every: every.max(1),
            cycles: Vec::new(),
            queue: Vec::new(),
            link_occ: Vec::new(),
            stalls: Vec::new(),
            energy: Vec::new(),
        }
    }

    /// Current sampling stride in cycles (grows when the series thins).
    #[must_use]
    pub fn every(&self) -> u64 {
        self.every
    }

    /// Number of samples currently held.
    #[must_use]
    pub fn samples(&self) -> usize {
        self.cycles.len()
    }

    /// Opens a sample at `cycle` with the cumulative energy accumulators.
    /// Returns `false` (record nothing) when the cycle is off-stride —
    /// including when the thinning triggered by a full series widens the
    /// stride past this cycle.
    pub fn begin_sample(&mut self, cycle: u64, network_pj: f64, dram_pj: f64) -> bool {
        if !cycle.is_multiple_of(self.every) {
            return false;
        }
        if self.cycles.len() >= SAMPLE_CAP {
            self.thin();
            if !cycle.is_multiple_of(self.every) {
                return false;
            }
        }
        self.cycles.push(cycle);
        self.energy.push(network_pj);
        self.energy.push(dram_pj);
        true
    }

    /// Appends one router's queue depth and cumulative credit-stall count
    /// to the open sample. Call once per router, in id order.
    pub fn push_router(&mut self, queue_depth: u32, stalls: u64) {
        self.queue.push(queue_depth);
        self.stalls.push(stalls);
    }

    /// Appends one directed link's credit-counter occupancy to the open
    /// sample. Call once per link, in construction order.
    pub fn push_link(&mut self, occupancy: u32) {
        self.link_occ.push(occupancy);
    }

    /// Drops every other sample and doubles the stride. Survivors are the
    /// even-indexed samples — i.e. exactly the multiples of the doubled
    /// stride, so subsequent sampling continues the same arithmetic
    /// sequence.
    fn thin(&mut self) {
        retain_even_chunks(&mut self.cycles, 1);
        retain_even_chunks(&mut self.queue, self.routers as usize);
        retain_even_chunks(&mut self.link_occ, self.links as usize);
        retain_even_chunks(&mut self.stalls, self.routers as usize);
        retain_even_chunks(&mut self.energy, 2);
        self.every *= 2;
    }

    /// Serialises the series as one self-describing run block.
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let samples = self.cycles.len();
        let mut out = Vec::with_capacity(
            1 + 4
                + 4
                + 8
                + 4
                + self.cycles.len() * 8
                + self.queue.len() * 4
                + self.link_occ.len() * 4
                + self.stalls.len() * 8
                + self.energy.len() * 8,
        );
        out.push(BLOCK_MARKER);
        out.extend_from_slice(&self.routers.to_le_bytes());
        out.extend_from_slice(&self.links.to_le_bytes());
        out.extend_from_slice(&self.every.to_le_bytes());
        out.extend_from_slice(&(samples as u32).to_le_bytes());
        for v in &self.cycles {
            out.extend_from_slice(&v.to_le_bytes());
        }
        for v in &self.queue {
            out.extend_from_slice(&v.to_le_bytes());
        }
        for v in &self.link_occ {
            out.extend_from_slice(&v.to_le_bytes());
        }
        for v in &self.stalls {
            out.extend_from_slice(&v.to_le_bytes());
        }
        for v in &self.energy {
            out.extend_from_slice(&v.to_bits().to_le_bytes());
        }
        out
    }
}

/// Keeps the even-numbered `chunk`-sized groups of `data`, in order.
fn retain_even_chunks<T: Copy>(data: &mut Vec<T>, chunk: usize) {
    if chunk == 0 {
        data.clear();
        return;
    }
    let mut write = 0usize;
    let mut group = 0usize;
    while (group + 1) * chunk <= data.len() {
        if group.is_multiple_of(2) {
            for k in 0..chunk {
                data[write + k] = data[group * chunk + k];
            }
            write += chunk;
        }
        group += 1;
    }
    data.truncate(write);
}

// ---------------------------------------------------------------------------
// Decoding
// ---------------------------------------------------------------------------

/// One decoded run block of a telemetry stream.
#[derive(Debug, Clone, PartialEq)]
pub struct TelemetryBlock {
    /// Routers per sample (id order).
    pub routers: u32,
    /// Directed links per sample (construction order).
    pub links: u32,
    /// Sampling stride in cycles.
    pub every: u64,
    /// Sampled cycle numbers.
    pub cycles: Vec<u64>,
    /// Queue depths, sample-major: `queue[sample * routers + router]`.
    pub queue: Vec<u32>,
    /// Link occupancies, sample-major: `link_occ[sample * links + link]`.
    pub link_occ: Vec<u32>,
    /// Cumulative credit stalls, sample-major like `queue`.
    pub stalls: Vec<u64>,
    /// Cumulative `(network pJ, DRAM pJ)` per sample.
    pub energy: Vec<(f64, f64)>,
}

impl TelemetryBlock {
    /// Number of samples in the block.
    #[must_use]
    pub fn samples(&self) -> usize {
        self.cycles.len()
    }

    /// The queue-depth row of one sample (length `routers`).
    #[must_use]
    pub fn queue_row(&self, sample: usize) -> &[u32] {
        let r = self.routers as usize;
        &self.queue[sample * r..(sample + 1) * r]
    }

    /// The link-occupancy row of one sample (length `links`).
    #[must_use]
    pub fn link_row(&self, sample: usize) -> &[u32] {
        let l = self.links as usize;
        &self.link_occ[sample * l..(sample + 1) * l]
    }

    /// The credit-stall row of one sample (length `routers`).
    #[must_use]
    pub fn stall_row(&self, sample: usize) -> &[u64] {
        let r = self.routers as usize;
        &self.stalls[sample * r..(sample + 1) * r]
    }
}

struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], String> {
        if self.remaining() < n {
            return Err(format!(
                "truncated telemetry stream: wanted {n} byte(s) at offset {}, {} left",
                self.pos,
                self.remaining()
            ));
        }
        let slice = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8, String> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, String> {
        Ok(u32::from_le_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }

    fn u64(&mut self) -> Result<u64, String> {
        Ok(u64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    fn f64(&mut self) -> Result<f64, String> {
        Ok(f64::from_bits(self.u64()?))
    }
}

/// Parses a whole telemetry stream (magic plus run blocks).
///
/// Never panics on malformed input: truncation, a bad magic, an unknown
/// block marker, or a header whose promised payload exceeds the remaining
/// bytes (which also guards the decoder against garbage-driven
/// allocations) all return `Err`.
///
/// # Errors
///
/// Returns a description of the first structural problem found.
pub fn parse_stream(bytes: &[u8]) -> Result<Vec<TelemetryBlock>, String> {
    let mut reader = Reader { bytes, pos: 0 };
    let magic = reader.take(MAGIC.len())?;
    if magic != MAGIC {
        return Err(format!("not a {SCHEMA} stream (bad magic)"));
    }
    let mut blocks = Vec::new();
    while reader.remaining() > 0 {
        let marker = reader.u8()?;
        if marker != BLOCK_MARKER {
            return Err(format!(
                "unknown block marker 0x{marker:02x} at offset {}",
                reader.pos - 1
            ));
        }
        let routers = reader.u32()?;
        let links = reader.u32()?;
        let every = reader.u64()?;
        let samples = reader.u32()?;
        // Validate the promised payload size against the remaining bytes
        // *before* allocating anything sized by the header.
        let per_sample = 8u64 + u64::from(routers) * 12 + u64::from(links) * 4 + 16;
        let needed = u64::from(samples)
            .checked_mul(per_sample)
            .ok_or_else(|| "telemetry block size overflows".to_string())?;
        if needed > reader.remaining() as u64 {
            return Err(format!(
                "truncated telemetry block: header promises {needed} byte(s), {} left",
                reader.remaining()
            ));
        }
        let samples = samples as usize;
        let mut block = TelemetryBlock {
            routers,
            links,
            every,
            cycles: Vec::with_capacity(samples),
            queue: Vec::with_capacity(samples * routers as usize),
            link_occ: Vec::with_capacity(samples * links as usize),
            stalls: Vec::with_capacity(samples * routers as usize),
            energy: Vec::with_capacity(samples),
        };
        for _ in 0..samples {
            block.cycles.push(reader.u64()?);
        }
        for _ in 0..samples * routers as usize {
            block.queue.push(reader.u32()?);
        }
        for _ in 0..samples * links as usize {
            block.link_occ.push(reader.u32()?);
        }
        for _ in 0..samples * routers as usize {
            block.stalls.push(reader.u64()?);
        }
        for _ in 0..samples {
            let network = reader.f64()?;
            let dram = reader.f64()?;
            block.energy.push((network, dram));
        }
        blocks.push(block);
    }
    Ok(blocks)
}

// ---------------------------------------------------------------------------
// The process-global collector
// ---------------------------------------------------------------------------

static ENABLED: AtomicBool = AtomicBool::new(false);

thread_local! {
    /// The sweep-job scope of the current thread: `(sweep, job index,
    /// next sub-block ordinal)`.
    static JOB_SCOPE: Cell<Option<(u64, u64, u64)>> = const { Cell::new(None) };
}

/// Merges partition telemetry streams into one stream byte-identical to the
/// serial run's: one magic header, then every input's block section in the
/// given (partition) order. Works because the collector publishes blocks in
/// job enumeration order within each partition, and partitions cover
/// contiguous ascending index ranges — concatenation *is* the serial order.
///
/// Every input is structurally validated before any bytes are emitted.
///
/// # Errors
///
/// Returns a description of the first invalid input stream.
pub fn merge_streams<B: AsRef<[u8]>>(parts: &[B]) -> Result<Vec<u8>, String> {
    for (i, part) in parts.iter().enumerate() {
        parse_stream(part.as_ref()).map_err(|e| format!("input stream {i}: {e}"))?;
    }
    let mut merged = MAGIC.to_vec();
    for part in parts {
        merged.extend_from_slice(&part.as_ref()[MAGIC.len()..]);
    }
    Ok(merged)
}

/// Cheap global gate the kernel checks before allocating a [`RunSeries`].
/// True between a successful [`Collector::configure`] and the matching
/// [`Collector::finish`]/[`Collector::abort`].
#[must_use]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// RAII marker placing the current thread inside sweep job
/// `(seq, index)`; created by [`job_scope`].
#[derive(Debug)]
pub struct JobScope {
    prev: Option<(u64, u64, u64)>,
}

/// Declares that simulations on this thread, until the guard drops, belong
/// to sweep `seq` job `index` — their blocks park in the collector's
/// ordered buffer instead of being written immediately.
#[must_use]
pub fn job_scope(seq: u64, index: u64) -> JobScope {
    let prev = JOB_SCOPE.with(|cell| cell.replace(Some((seq, index, 0))));
    JobScope { prev }
}

impl Drop for JobScope {
    fn drop(&mut self) {
        JOB_SCOPE.with(|cell| cell.set(self.prev.take()));
    }
}

/// Incremental atomic stream writer: bytes go to `<dest>.part`, `finish`
/// renames into place, and dropping an unfinished writer removes the
/// partial file (the same contract as the row sinks).
#[derive(Debug)]
struct PartWriter {
    dest: PathBuf,
    part: PathBuf,
    file: BufWriter<File>,
    finished: bool,
}

impl PartWriter {
    fn open(dest: &Path) -> io::Result<Self> {
        let mut part = dest.as_os_str().to_owned();
        part.push(".part");
        let part = PathBuf::from(part);
        let mut file = BufWriter::new(File::create(&part)?);
        file.write_all(MAGIC)?;
        Ok(Self {
            dest: dest.to_path_buf(),
            part,
            file,
            finished: false,
        })
    }

    fn finish(mut self) -> io::Result<PathBuf> {
        self.file.flush()?;
        std::fs::rename(&self.part, &self.dest)?;
        self.finished = true;
        Ok(self.dest.clone())
    }
}

impl Drop for PartWriter {
    fn drop(&mut self) {
        if !self.finished {
            let _ = std::fs::remove_file(&self.part);
        }
    }
}

#[derive(Debug, Default)]
struct CollectorState {
    sink: Option<PartWriter>,
    /// Blocks awaiting their in-order delivery slot, keyed by
    /// `(sweep, job index, sub-block ordinal)`.
    pending: BTreeMap<(u64, u64, u64), Vec<u8>>,
    blocks: u64,
}

/// The process-global telemetry stream collector; obtain via
/// [`Collector::global`]. See the module docs for the ordering protocol.
#[derive(Debug, Default)]
pub struct Collector {
    state: Mutex<CollectorState>,
}

static GLOBAL: OnceLock<Collector> = OnceLock::new();

impl Collector {
    /// The process-global collector instance.
    #[must_use]
    pub fn global() -> &'static Collector {
        GLOBAL.get_or_init(Collector::default)
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, CollectorState> {
        self.state.lock().expect("telemetry collector poisoned")
    }

    /// Opens a stream at `path` (via `<path>.part`), writes the magic, and
    /// turns the global [`enabled`] gate on. Any previously open stream is
    /// aborted first.
    ///
    /// # Errors
    ///
    /// Surfaces filesystem failures; the gate stays off on error.
    pub fn configure(&self, path: &Path) -> io::Result<()> {
        let mut state = self.lock();
        state.pending.clear();
        state.blocks = 0;
        state.sink = None; // drops (and removes) any abandoned .part
        state.sink = Some(PartWriter::open(path)?);
        ENABLED.store(true, Ordering::Release);
        Ok(())
    }

    /// Accepts one encoded run block. Inside a [`job_scope`] the block
    /// parks in the ordered buffer; outside any scope (a direct library
    /// run) it is written immediately. A no-op when no stream is open.
    pub fn submit(&self, block: Vec<u8>) {
        if !enabled() {
            return;
        }
        let key = JOB_SCOPE.with(|cell| {
            cell.get().map(|(seq, index, sub)| {
                cell.set(Some((seq, index, sub + 1)));
                (seq, index, sub)
            })
        });
        let mut state = self.lock();
        if state.sink.is_none() {
            return;
        }
        match key {
            Some(key) => {
                state.pending.insert(key, block);
            }
            None => Self::write_block(&mut state, &block),
        }
    }

    /// Flushes every parked block up to and including sweep `seq` job
    /// `index`, in key order. Called from the coordinator's in-order row
    /// delivery, which is what makes the written block order independent
    /// of worker scheduling.
    pub fn deliver_through(&self, seq: u64, index: u64) {
        if !enabled() {
            return;
        }
        let mut state = self.lock();
        if state.sink.is_none() || state.pending.is_empty() {
            return;
        }
        // Sub-ordinal u64::MAX is never a real key (it would require 2^64
        // submits in one job), so splitting there keeps exactly the later
        // jobs parked.
        let mut ready = std::mem::take(&mut state.pending);
        state.pending = ready.split_off(&(seq, index, u64::MAX));
        for block in ready.values() {
            Self::write_block(&mut state, block);
        }
    }

    fn write_block(state: &mut CollectorState, block: &[u8]) {
        let Some(sink) = state.sink.as_mut() else {
            return;
        };
        if let Err(e) = sink.file.write_all(block) {
            crate::progress::Progress::global().note(&format!(
                "# warning: telemetry write to {} failed: {e}; telemetry disabled",
                sink.part.display()
            ));
            // Disable and drop the sink: Drop removes the .part so a bad
            // stream is never published.
            ENABLED.store(false, Ordering::Release);
            state.sink = None;
            state.pending.clear();
            return;
        }
        state.blocks += 1;
    }

    /// Flushes any still-parked blocks (in key order) and atomically
    /// publishes the stream. Returns the final path and block count, or
    /// `None` when no stream was open (never configured, or disabled by a
    /// write failure).
    ///
    /// # Errors
    ///
    /// Surfaces the final flush/rename failure.
    pub fn finish(&self) -> io::Result<Option<(PathBuf, u64)>> {
        ENABLED.store(false, Ordering::Release);
        let mut state = self.lock();
        let remaining = std::mem::take(&mut state.pending);
        for block in remaining.values() {
            // write_block needs the sink; bypass the enabled() gate, which
            // is already off.
            if state.sink.is_some() {
                Self::write_block(&mut state, block);
            }
        }
        let blocks = std::mem::take(&mut state.blocks);
        match state.sink.take() {
            Some(sink) => Ok(Some((sink.finish()?, blocks))),
            None => Ok(None),
        }
    }

    /// Discards the open stream (removing its `.part`) and any parked
    /// blocks; the failed run publishes nothing.
    pub fn abort(&self) {
        ENABLED.store(false, Ordering::Release);
        let mut state = self.lock();
        state.pending.clear();
        state.blocks = 0;
        state.sink = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn series_with(routers: usize, links: usize, every: u64, samples: u64) -> RunSeries {
        let mut series = RunSeries::new(routers, links, every);
        for s in 0..samples {
            let cycle = s * every;
            assert!(series.begin_sample(cycle, s as f64 * 1.5, s as f64 * 0.5));
            for r in 0..routers {
                series.push_router((s as u32) + r as u32, s * 10 + r as u64);
            }
            for l in 0..links {
                series.push_link((s as u32) * 2 + l as u32);
            }
        }
        series
    }

    #[test]
    fn encode_decode_round_trip() {
        let series = series_with(3, 5, 4, 7);
        let mut stream = MAGIC.to_vec();
        stream.extend_from_slice(&series.encode());
        let blocks = parse_stream(&stream).expect("round trip");
        assert_eq!(blocks.len(), 1);
        let block = &blocks[0];
        assert_eq!(block.routers, 3);
        assert_eq!(block.links, 5);
        assert_eq!(block.every, 4);
        assert_eq!(block.samples(), 7);
        assert_eq!(block.cycles, vec![0, 4, 8, 12, 16, 20, 24]);
        assert_eq!(block.queue_row(2), &[2, 3, 4]);
        assert_eq!(block.link_row(1), &[2, 3, 4, 5, 6]);
        assert_eq!(block.stall_row(6), &[60, 61, 62]);
        assert_eq!(block.energy[3], (4.5, 1.5));
    }

    #[test]
    fn off_stride_cycles_are_rejected() {
        let mut series = RunSeries::new(2, 2, 8);
        assert!(series.begin_sample(0, 0.0, 0.0));
        assert!(!series.begin_sample(3, 0.0, 0.0));
        assert!(series.begin_sample(8, 0.0, 0.0));
        assert_eq!(series.samples(), 2);
    }

    #[test]
    fn thinning_doubles_the_stride_and_keeps_multiples() {
        let mut series = RunSeries::new(1, 1, 1);
        let mut recorded = Vec::new();
        for cycle in 0..(SAMPLE_CAP as u64 + 10) {
            if series.begin_sample(cycle, 0.0, 0.0) {
                series.push_router(cycle as u32, cycle);
                series.push_link(cycle as u32);
                recorded.push(cycle);
            }
        }
        assert_eq!(series.every(), 2);
        assert!(series.samples() <= SAMPLE_CAP);
        // Every retained cycle is a multiple of the final stride, and the
        // columns stayed aligned with the cycle column.
        assert!(series.cycles.iter().all(|c| c % series.every() == 0));
        assert_eq!(series.cycles.len(), series.queue.len());
        assert_eq!(series.cycles.len(), series.link_occ.len());
        assert_eq!(series.cycles.len(), series.stalls.len());
        assert_eq!(series.cycles.len() * 2, series.energy.len());
        assert_eq!(
            series.cycles,
            series
                .queue
                .iter()
                .map(|&q| u64::from(q))
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn thinned_series_matches_wider_stride_recording() {
        // Record at stride 1 until thinning fires, then compare with a
        // series recorded at stride 2 from the start over the same cycles.
        let cycles = SAMPLE_CAP as u64 + 100;
        let mut fine = RunSeries::new(1, 1, 1);
        let mut wide = RunSeries::new(1, 1, 2);
        for cycle in 0..cycles {
            if fine.begin_sample(cycle, cycle as f64, 0.0) {
                fine.push_router(cycle as u32, cycle);
                fine.push_link(0);
            }
            if wide.begin_sample(cycle, cycle as f64, 0.0) {
                wide.push_router(cycle as u32, cycle);
                wide.push_link(0);
            }
        }
        assert_eq!(fine.every(), 2);
        assert_eq!(fine.encode(), wide.encode());
    }

    #[test]
    fn parse_rejects_bad_magic_and_truncation() {
        assert!(parse_stream(b"not a stream").is_err());
        let mut stream = MAGIC.to_vec();
        stream.extend_from_slice(&series_with(2, 3, 4, 5).encode());
        // Every strict prefix (past the bare magic, which is a valid empty
        // stream) must error, never panic.
        for cut in MAGIC.len() + 1..stream.len() {
            assert!(parse_stream(&stream[..cut]).is_err(), "prefix {cut}");
        }
        // A garbage header promising an enormous payload errors cleanly.
        let mut huge = MAGIC.to_vec();
        huge.push(BLOCK_MARKER);
        huge.extend_from_slice(&u32::MAX.to_le_bytes());
        huge.extend_from_slice(&u32::MAX.to_le_bytes());
        huge.extend_from_slice(&1u64.to_le_bytes());
        huge.extend_from_slice(&u32::MAX.to_le_bytes());
        assert!(parse_stream(&huge).is_err());
    }

    #[test]
    fn empty_stream_parses_to_no_blocks() {
        assert_eq!(parse_stream(MAGIC).expect("magic only"), Vec::new());
    }

    #[test]
    fn merge_streams_concatenates_to_the_serial_stream() {
        // The serial run records blocks A, B, C in job order; partitions
        // record (A, B) and (C). Merging the partition streams must yield
        // the serial bytes, and an invalid input must be rejected up front.
        let blocks: Vec<Vec<u8>> = (1..=3u64)
            .map(|i| series_with(i as usize, i as usize, 2, i + 1).encode())
            .collect();
        let mut serial = MAGIC.to_vec();
        let mut part_a = MAGIC.to_vec();
        let mut part_b = MAGIC.to_vec();
        for block in &blocks {
            serial.extend_from_slice(block);
        }
        part_a.extend_from_slice(&blocks[0]);
        part_a.extend_from_slice(&blocks[1]);
        part_b.extend_from_slice(&blocks[2]);
        let merged = merge_streams(&[part_a.clone(), part_b.clone()]).expect("merge");
        assert_eq!(merged, serial);
        // Magic-only partitions (no telemetry recorded) merge away cleanly.
        let merged = merge_streams(&[part_a, MAGIC.to_vec(), part_b]).expect("merge");
        assert_eq!(merged, serial);
        let err = merge_streams(&[serial, b"not a stream".to_vec()]).unwrap_err();
        assert!(err.contains("input stream 1"), "{err}");
    }

    // The collector is process-global, so its whole lifecycle runs in one
    // test: out-of-scope writes, scoped reordering, finish, and abort.
    #[test]
    fn collector_orders_scoped_blocks_and_publishes_atomically() {
        let dir = std::env::temp_dir().join(format!("sf-telemetry-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join("stream.bin");
        let collector = Collector::global();

        collector.configure(&path).expect("configure");
        assert!(enabled());
        // The stream stays a .part until finish publishes it.
        assert!(dir.join("stream.bin.part").exists());
        assert!(!path.exists());

        // Jobs finish out of order: job 1 submits before job 0.
        {
            let _scope = job_scope(0, 1);
            collector.submit(series_with(1, 1, 1, 2).encode());
        }
        {
            let _scope = job_scope(0, 0);
            collector.submit(series_with(2, 2, 1, 1).encode());
        }
        // Nothing is written until the in-order delivery reaches each job.
        collector.deliver_through(0, 0);
        collector.deliver_through(0, 1);
        let (published, blocks) = collector
            .finish()
            .expect("finish")
            .expect("stream was open");
        assert!(!enabled());
        assert_eq!(blocks, 2);
        assert_eq!(published, path);
        let bytes = std::fs::read(&path).expect("published stream");
        let decoded = parse_stream(&bytes).expect("valid stream");
        // Delivery order, not completion order: job 0's block first.
        assert_eq!(decoded[0].routers, 2);
        assert_eq!(decoded[1].routers, 1);

        // An aborted stream leaves nothing behind.
        let gone = dir.join("aborted.bin");
        collector.configure(&gone).expect("configure");
        collector.submit(series_with(1, 1, 1, 1).encode());
        collector.abort();
        assert!(!gone.exists());
        assert!(!enabled());
        assert_eq!(collector.finish().expect("idempotent finish"), None);

        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_dir(&dir);
    }
}
