//! Deterministic observability layer for the String Figure reproduction.
//!
//! Everything here is strictly out-of-band from simulation results: enabling
//! or disabling any part of this crate must never change a single byte of an
//! emitted CSV/JSON artifact. The crate provides four pieces:
//!
//! - [`metrics`]: a hierarchical metrics registry (counters, gauges,
//!   fixed-bucket histograms). Metric *values that describe simulation
//!   behaviour* (packets delivered, journal appends, sink rows) are integer
//!   quantities whose merge operators are commutative and associative, so the
//!   merged totals are bit-identical regardless of worker or shard count.
//!   Names under the `time.` or `sched.` prefixes are explicitly
//!   *nondeterministic* (wall-clock durations, scheduling-dependent counts
//!   such as cache hits or journal compactions) and are excluded from
//!   determinism guarantees — see [`metrics::is_deterministic_name`].
//! - [`span`]: low-overhead span-based phase timing (`topology_build`,
//!   `kernel_cycle_phases`, `commit_replay`, `journal_io`, `sink_flush`,
//!   `pool_backpressure_wait`) with an optional JSON-lines trace emitter and
//!   an aggregate summary table. When timing is disabled (the default) an
//!   instrumentation site costs one relaxed atomic load.
//! - [`progress`]: a single stderr progress reporter — notes (the `# …`
//!   lines the pipeline always printed) plus an opt-in live heartbeat with
//!   jobs done/total, rows/s, ETA, and current RSS — behind `--quiet` /
//!   `SF_PROGRESS` control.
//! - [`rss`] + [`report`]: an in-process `/proc/self/status` peak-RSS probe
//!   and the schema-versioned `BENCH_<n>.json` perf-trajectory report with
//!   regression comparison.
//! - [`telemetry`]: the in-simulator `sf-telemetry/v1` time-series stream —
//!   per-router queue occupancy, per-link utilisation, credit stalls, and
//!   energy, sampled at cycle boundaries on the coordinating thread so the
//!   recorded bytes are bit-identical for any worker x shard count.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod hist;
pub mod metrics;
pub mod progress;
pub mod report;
pub mod rss;
pub mod span;
pub mod telemetry;
