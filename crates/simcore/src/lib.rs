//! # `sf-simcore`
//!
//! Sharded deterministic cycle-level simulation kernel for the String Figure
//! reproduction (HPCA 2019).
//!
//! `sf-harness` (the sweep engine) parallelises *across* experiment points;
//! this crate parallelises *inside* one simulation. A paper-scale run — 1296
//! memory nodes for tens of thousands of cycles — is a single sweep job, and
//! before this crate existed it saturated exactly one core. The kernel
//! partitions the routers into K shards with their own queues and worker
//! threads, synchronised at cycle boundaries, and keeps the result
//! **bit-identical for every K** (including K = 1, which reproduces the
//! original serial simulator exactly). See [`kernel`] for the full
//! determinism argument and [`shard`] for the wavefront schedule that makes
//! it work.
//!
//! The two parallelism layers share one core budget
//! (`sf_harness::budget`): when a sweep reserves its workers, automatic
//! shard selection sizes itself to the leftover cores, so nested parallelism
//! never oversubscribes the machine.
//!
//! ## Modules
//!
//! * [`packet`] — packets, packet kinds/sizes, and the [`TrafficModel`] trait
//!   the workload generators implement.
//! * [`memory`] — the per-node DRAM service model (row-buffer behaviour and
//!   Table I timing).
//! * [`shard`] — shard planning: round-robin ownership, per-router wait
//!   lists, and the shard-count resolution policy (`SF_SIM_SHARDS`, core
//!   budget, explicit config).
//! * [`pool`] — index-linked free-list slabs ([`pool::Pool`], [`pool::List`],
//!   [`pool::InFlightPool`]) that make steady-state cycles allocation-free.
//! * [`kernel`] — the [`ShardedSimulator`] itself.
//! * [`stats`] — [`SimulationStats`] and derived metrics (latency, accepted
//!   throughput, energy-delay product, saturation heuristic).
//!
//! Downstream code normally consumes this crate through the `sf-netsim`
//! facade, which keeps the original `NetworkSimulator` API.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

pub mod kernel;
pub mod memory;
pub mod packet;
pub mod pool;
pub mod shard;
pub mod stats;

pub use kernel::{ShardedSimulator, UniformRandomTraffic};
pub use memory::{MemoryNodeModel, MemoryNodeStats};
pub use packet::{Packet, PacketKind, TrafficModel, TrafficRequest};
pub use shard::{resolve_shard_count, ShardPlan, SHARDS_ENV};
pub use stats::SimulationStats;
