//! Index-linked free-list pools backing the kernel's hot-loop storage.
//!
//! The sharded kernel used to keep every router input queue as its own
//! `VecDeque<Packet>`, every injection queue as another, and every cycle's
//! commit log as a freshly grown `Vec` — thousands of little heap objects
//! churned per cycle. This module replaces all of them with three slab
//! structures so that a steady-state cycle performs **zero heap
//! allocations**:
//!
//! * [`Pool<T>`] — a slab of `T` plus a `u32` free list. Allocation pops the
//!   free list; freeing pushes it back. The slab only grows while the
//!   simulation is still discovering its high-water mark; after warm-up every
//!   alloc recycles a previously freed slot.
//! * [`List`] — a 12-byte FIFO handle (`head`/`tail`/`len`) chaining slots of
//!   a [`Pool`]. Hundreds of queues share one pool: a router's input queues,
//!   its injection queue, and its commit log are each a [`List`] over their
//!   shard's pool.
//! * [`InFlightPool`] — the shard's arrival inbox: a struct-of-arrays slab of
//!   in-flight link traversals (arrival cycles, destinations, and packets in
//!   separate columns, so the per-cycle due-scan touches only the metadata
//!   columns) with a single built-in FIFO chain and a one-pass
//!   [`extract_if`](InFlightPool::extract_if) that unlinks matching entries
//!   in place — the primitive behind both arrival draining and fault purges.
//!
//! Slot indices are internal bookkeeping: two runs may lay the same logical
//! queue out in different slots (the sharded kernel's inboxes are filled in
//! nondeterministic cross-shard order), but the *values* observed through
//! `push`/`pop`/`front` are what the determinism contract pins, and those
//! depend only on per-list FIFO order.

use crate::packet::Packet;

/// Sentinel "null" slot index terminating free lists and FIFO chains.
const NIL: u32 = u32::MAX;

/// A slab allocator of `T` with an intrusive `u32` free list.
///
/// `T: Copy` keeps `alloc`/`free` a plain slot write/read with no drop glue —
/// exactly the layout discipline (SoA-ish dense slabs, index links instead of
/// pointers) the BookSim/gem5 lineage of simulators uses for packet storage.
#[derive(Debug, Clone)]
pub struct Pool<T: Copy> {
    slots: Vec<T>,
    /// `next[i]` — free-list successor when slot `i` is free, FIFO successor
    /// when it is live inside a [`List`].
    next: Vec<u32>,
    free_head: u32,
    live: u32,
    pushes: u64,
    grows: u64,
}

impl<T: Copy> Default for Pool<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: Copy> Pool<T> {
    /// Creates an empty pool; slots are created on demand by `alloc`.
    #[must_use]
    pub fn new() -> Self {
        Self {
            slots: Vec::new(),
            next: Vec::new(),
            free_head: NIL,
            live: 0,
            pushes: 0,
            grows: 0,
        }
    }

    fn alloc(&mut self, value: T) -> u32 {
        self.live += 1;
        self.pushes += 1;
        if self.free_head == NIL {
            self.grows += 1;
            let idx = self.slots.len() as u32;
            self.slots.push(value);
            self.next.push(NIL);
            return idx;
        }
        let idx = self.free_head;
        self.free_head = self.next[idx as usize];
        self.slots[idx as usize] = value;
        self.next[idx as usize] = NIL;
        idx
    }

    fn free(&mut self, idx: u32) -> T {
        let value = self.slots[idx as usize];
        self.next[idx as usize] = self.free_head;
        self.free_head = idx;
        self.live -= 1;
        value
    }

    /// Number of slots currently held by lists chained through this pool.
    #[must_use]
    pub fn live(&self) -> u32 {
        self.live
    }

    /// Total slots ever created (the pool's high-water mark; never shrinks).
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Total allocations served over the pool's lifetime.
    #[must_use]
    pub fn pushes(&self) -> u64 {
        self.pushes
    }

    /// Allocations that had to create a new slot instead of recycling one —
    /// constant once the simulation reaches its steady state.
    #[must_use]
    pub fn grows(&self) -> u64 {
        self.grows
    }
}

/// A FIFO queue handle chaining slots of a [`Pool`]. Copyable and 12 bytes:
/// a router stores one per input queue where it used to own a `VecDeque`.
///
/// A `List` must always be used with the pool its slots were allocated from;
/// mixing pools corrupts both (the kernel enforces this by construction —
/// every list of a shard chains through that shard's pool).
#[derive(Debug, Clone, Copy)]
pub struct List {
    head: u32,
    tail: u32,
    len: u32,
}

impl Default for List {
    fn default() -> Self {
        Self::new()
    }
}

impl List {
    /// An empty list.
    #[must_use]
    pub const fn new() -> Self {
        Self {
            head: NIL,
            tail: NIL,
            len: 0,
        }
    }

    /// Appends `value` to the back of the queue.
    pub fn push_back<T: Copy>(&mut self, pool: &mut Pool<T>, value: T) {
        let idx = pool.alloc(value);
        if self.tail == NIL {
            self.head = idx;
        } else {
            pool.next[self.tail as usize] = idx;
        }
        self.tail = idx;
        self.len += 1;
    }

    /// Removes and returns the front of the queue, recycling its slot.
    pub fn pop_front<T: Copy>(&mut self, pool: &mut Pool<T>) -> Option<T> {
        if self.head == NIL {
            return None;
        }
        let idx = self.head;
        self.head = pool.next[idx as usize];
        if self.head == NIL {
            self.tail = NIL;
        }
        self.len -= 1;
        Some(pool.free(idx))
    }

    /// The front of the queue without removing it.
    #[must_use]
    pub fn front<'p, T: Copy>(&self, pool: &'p Pool<T>) -> Option<&'p T> {
        if self.head == NIL {
            return None;
        }
        Some(&pool.slots[self.head as usize])
    }

    /// Number of queued values.
    #[must_use]
    pub fn len(&self) -> u32 {
        self.len
    }

    /// Whether the queue is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

/// Metadata of one in-flight link traversal (everything the due-scan and
/// fault purges need without touching the packet column).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InFlightMeta {
    /// Cycle at which the packet reaches the downstream input queue.
    pub arrival_cycle: u64,
    /// Receiving router.
    pub to_node: u32,
    /// Position of the sender in the receiver's adjacency list (= input
    /// queue group).
    pub from_index: u32,
    /// Virtual channel the packet occupies.
    pub vc: u32,
}

/// A shard's arrival inbox: packets in flight towards this shard's routers,
/// stored as a struct-of-arrays slab with one built-in FIFO chain.
///
/// Pushed by *any* shard at forward time (under the inbox mutex), drained by
/// the owning shard at the start of its routing phase. Push order across
/// source shards is nondeterministic, but every (router, port, vc) input
/// queue receives at most one packet per cycle, so the extraction order
/// across *distinct* queues is unobservable — see the kernel's determinism
/// notes.
#[derive(Debug)]
pub struct InFlightPool {
    arrival: Vec<u64>,
    to_node: Vec<u32>,
    from_index: Vec<u32>,
    vc: Vec<u32>,
    packet: Vec<Packet>,
    next: Vec<u32>,
    free_head: u32,
    head: u32,
    tail: u32,
    len: u32,
    pushes: u64,
    grows: u64,
}

impl Default for InFlightPool {
    fn default() -> Self {
        Self::new()
    }
}

impl InFlightPool {
    /// Creates an empty inbox.
    #[must_use]
    pub fn new() -> Self {
        Self {
            arrival: Vec::new(),
            to_node: Vec::new(),
            from_index: Vec::new(),
            vc: Vec::new(),
            packet: Vec::new(),
            next: Vec::new(),
            free_head: NIL,
            head: NIL,
            tail: NIL,
            len: 0,
            pushes: 0,
            grows: 0,
        }
    }

    /// Appends one in-flight entry to the inbox.
    pub fn push(&mut self, meta: InFlightMeta, packet: Packet) {
        self.len += 1;
        self.pushes += 1;
        let idx = if self.free_head == NIL {
            self.grows += 1;
            let idx = self.arrival.len() as u32;
            self.arrival.push(meta.arrival_cycle);
            self.to_node.push(meta.to_node);
            self.from_index.push(meta.from_index);
            self.vc.push(meta.vc);
            self.packet.push(packet);
            self.next.push(NIL);
            idx
        } else {
            let idx = self.free_head;
            let i = idx as usize;
            self.free_head = self.next[i];
            self.arrival[i] = meta.arrival_cycle;
            self.to_node[i] = meta.to_node;
            self.from_index[i] = meta.from_index;
            self.vc[i] = meta.vc;
            self.packet[i] = packet;
            self.next[i] = NIL;
            idx
        };
        if self.tail == NIL {
            self.head = idx;
        } else {
            self.next[self.tail as usize] = idx;
        }
        self.tail = idx;
    }

    /// Extracts every entry matching `pred` in one in-place pass, in FIFO
    /// order, feeding each to `sink` — no take-and-rebuild, no allocation.
    /// Non-matching entries keep their relative order.
    pub fn extract_if(
        &mut self,
        mut pred: impl FnMut(InFlightMeta) -> bool,
        mut sink: impl FnMut(InFlightMeta, Packet),
    ) {
        let mut prev = NIL;
        let mut cur = self.head;
        while cur != NIL {
            let i = cur as usize;
            let meta = InFlightMeta {
                arrival_cycle: self.arrival[i],
                to_node: self.to_node[i],
                from_index: self.from_index[i],
                vc: self.vc[i],
            };
            let next = self.next[i];
            if pred(meta) {
                // Unlink and recycle the slot before the sink runs, so a
                // sink that pushes into *another* pool sees this one
                // consistent.
                if prev == NIL {
                    self.head = next;
                } else {
                    self.next[prev as usize] = next;
                }
                if next == NIL {
                    self.tail = prev;
                }
                self.next[i] = self.free_head;
                self.free_head = cur;
                self.len -= 1;
                let packet = self.packet[i];
                sink(meta, packet);
            } else {
                prev = cur;
            }
            cur = next;
        }
    }

    /// Number of packets currently in flight towards this shard.
    #[must_use]
    pub fn len(&self) -> u32 {
        self.len
    }

    /// Whether the inbox is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Total slots ever created (high-water mark; never shrinks).
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.arrival.len()
    }

    /// Total entries ever pushed.
    #[must_use]
    pub fn pushes(&self) -> u64 {
        self.pushes
    }

    /// Pushes that created a new slot instead of recycling one.
    #[must_use]
    pub fn grows(&self) -> u64 {
        self.grows
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sf_types::{NodeId, VirtualChannelId};

    fn packet(id: u64) -> Packet {
        Packet {
            id,
            source: NodeId::new(0),
            destination: NodeId::new(1),
            kind: crate::packet::PacketKind::Synthetic,
            injected_at: 0,
            request_issued_at: 0,
            hops: 0,
            virtual_channel: VirtualChannelId::UP,
        }
    }

    #[test]
    fn list_is_fifo_and_recycles_slots() {
        let mut pool: Pool<u64> = Pool::new();
        let mut a = List::new();
        let mut b = List::new();
        for i in 0..4 {
            a.push_back(&mut pool, i);
            b.push_back(&mut pool, 100 + i);
        }
        assert_eq!(pool.live(), 8);
        assert_eq!(a.front(&pool), Some(&0));
        assert_eq!(a.pop_front(&mut pool), Some(0));
        assert_eq!(b.pop_front(&mut pool), Some(100));
        // Freed slots are reused before the slab grows.
        let grows = pool.grows();
        a.push_back(&mut pool, 4);
        b.push_back(&mut pool, 104);
        assert_eq!(pool.grows(), grows);
        let drained: Vec<u64> = std::iter::from_fn(|| a.pop_front(&mut pool)).collect();
        assert_eq!(drained, vec![1, 2, 3, 4]);
        assert!(a.is_empty());
        let drained: Vec<u64> = std::iter::from_fn(|| b.pop_front(&mut pool)).collect();
        assert_eq!(drained, vec![101, 102, 103, 104]);
        assert_eq!(pool.live(), 0);
        assert_eq!(pool.pushes(), 10);
    }

    #[test]
    fn inflight_extract_if_preserves_order_and_recycles() {
        let mut inbox = InFlightPool::new();
        for i in 0..6u64 {
            inbox.push(
                InFlightMeta {
                    arrival_cycle: i,
                    to_node: i as u32,
                    from_index: 0,
                    vc: 0,
                },
                packet(i),
            );
        }
        // Extract the even arrival cycles; order within the extraction and
        // among the survivors must both stay FIFO.
        let mut seen = Vec::new();
        inbox.extract_if(
            |m| m.arrival_cycle % 2 == 0,
            |m, p| {
                assert_eq!(m.arrival_cycle, p.id);
                seen.push(p.id);
            },
        );
        assert_eq!(seen, vec![0, 2, 4]);
        assert_eq!(inbox.len(), 3);
        // Refills reuse the freed slots.
        let grows = inbox.grows();
        inbox.push(
            InFlightMeta {
                arrival_cycle: 9,
                to_node: 9,
                from_index: 1,
                vc: 1,
            },
            packet(9),
        );
        assert_eq!(inbox.grows(), grows);
        let mut rest = Vec::new();
        inbox.extract_if(|_| true, |_, p| rest.push(p.id));
        assert_eq!(rest, vec![1, 3, 5, 9]);
        assert!(inbox.is_empty());
    }

    #[test]
    fn extract_from_singleton_and_tail_updates() {
        let mut inbox = InFlightPool::new();
        inbox.push(
            InFlightMeta {
                arrival_cycle: 1,
                to_node: 0,
                from_index: 0,
                vc: 0,
            },
            packet(1),
        );
        inbox.extract_if(|_| true, |_, _| {});
        assert!(inbox.is_empty());
        // Tail must be valid again after emptying via extract_if.
        inbox.push(
            InFlightMeta {
                arrival_cycle: 2,
                to_node: 0,
                from_index: 0,
                vc: 0,
            },
            packet(2),
        );
        inbox.push(
            InFlightMeta {
                arrival_cycle: 3,
                to_node: 0,
                from_index: 0,
                vc: 0,
            },
            packet(3),
        );
        let mut ids = Vec::new();
        inbox.extract_if(|_| true, |_, p| ids.push(p.id));
        assert_eq!(ids, vec![2, 3]);
    }
}
