//! Statistics collected by the cycle-level simulator.

use serde::{Deserialize, Serialize};

/// Aggregate results of one simulation run.
///
/// Latency statistics only cover packets injected after the warm-up period;
/// energy counters cover the measured (post-warm-up) phase as well.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct SimulationStats {
    /// Number of cycles simulated (including warm-up).
    pub cycles: u64,
    /// Number of active nodes in the simulated network.
    pub active_nodes: usize,
    /// Packets injected during the measured phase.
    pub injected: u64,
    /// Packets delivered (ejected at their destination) during the measured
    /// phase.
    pub delivered: u64,
    /// Read/write requests that received their reply during the measured
    /// phase (only meaningful in request-reply mode).
    pub completed_requests: u64,
    /// Sum of per-packet network latencies (inject to eject), in cycles.
    pub total_latency_cycles: u64,
    /// Maximum observed per-packet network latency, in cycles.
    pub max_latency_cycles: u64,
    /// Sum of request round-trip latencies (request issue to reply delivery),
    /// in cycles.
    pub total_round_trip_cycles: u64,
    /// Sum of hops over delivered packets.
    pub total_hops: u64,
    /// Dynamic network energy spent, in picojoules.
    pub network_energy_pj: f64,
    /// Dynamic DRAM access energy spent, in picojoules.
    pub dram_energy_pj: f64,
    /// Packets still queued or in flight when the simulation ended.
    pub in_flight_at_end: u64,
    /// Packets waiting in injection queues when the simulation ended.
    pub backlog_at_end: u64,
    /// Forwarding decisions that could not be made because the output was
    /// busy or had no credit (a congestion indicator).
    pub blocked_forwards: u64,
    /// Packets lost to fault injection: queued at a router when it was
    /// power-gated, in flight on a link when it failed, released or injected
    /// towards a fault-down node. Always zero without a fault plan.
    pub dropped_packets: u64,
    /// Undirected link-down fault events applied over the run.
    pub link_down_events: u64,
    /// Router power-gate fault events applied over the run.
    pub router_down_events: u64,
}

impl SimulationStats {
    /// Average packet network latency in cycles (0 when nothing was
    /// delivered).
    #[must_use]
    pub fn average_latency_cycles(&self) -> f64 {
        if self.delivered == 0 {
            0.0
        } else {
            self.total_latency_cycles as f64 / self.delivered as f64
        }
    }

    /// Average request round-trip latency in cycles (0 when no requests
    /// completed).
    #[must_use]
    pub fn average_round_trip_cycles(&self) -> f64 {
        if self.completed_requests == 0 {
            0.0
        } else {
            self.total_round_trip_cycles as f64 / self.completed_requests as f64
        }
    }

    /// Average hop count of delivered packets.
    #[must_use]
    pub fn average_hops(&self) -> f64 {
        if self.delivered == 0 {
            0.0
        } else {
            self.total_hops as f64 / self.delivered as f64
        }
    }

    /// Delivered packets per node per cycle (the accepted throughput).
    #[must_use]
    pub fn accepted_throughput(&self, measured_cycles: u64) -> f64 {
        if measured_cycles == 0 || self.active_nodes == 0 {
            0.0
        } else {
            self.delivered as f64 / (measured_cycles as f64 * self.active_nodes as f64)
        }
    }

    /// Fraction of injected packets that were delivered by the end of the run.
    #[must_use]
    pub fn delivery_ratio(&self) -> f64 {
        if self.injected == 0 {
            1.0
        } else {
            self.delivered as f64 / self.injected as f64
        }
    }

    /// Total fault events applied (link-down plus router power-gate).
    #[must_use]
    pub fn fault_events(&self) -> u64 {
        self.link_down_events + self.router_down_events
    }

    /// Total dynamic energy (network plus DRAM), in picojoules.
    #[must_use]
    pub fn total_energy_pj(&self) -> f64 {
        self.network_energy_pj + self.dram_energy_pj
    }

    /// The two cumulative energy accumulators as `(network pJ, DRAM pJ)` —
    /// the pair the telemetry sampler snapshots each sampled cycle.
    #[must_use]
    pub fn energy_breakdown_pj(&self) -> (f64, f64) {
        (self.network_energy_pj, self.dram_energy_pj)
    }

    /// Energy-delay product using average round-trip latency (falls back to
    /// network latency when no requests completed), in pJ·cycles.
    #[must_use]
    pub fn energy_delay_product(&self) -> f64 {
        let delay = if self.completed_requests > 0 {
            self.average_round_trip_cycles()
        } else {
            self.average_latency_cycles()
        };
        self.total_energy_pj() * delay
    }

    /// A simple saturation heuristic: the network is considered saturated when
    /// a large backlog of packets never made it out of the injection queues or
    /// the delivery ratio collapsed.
    #[must_use]
    pub fn is_saturated(&self) -> bool {
        if self.injected == 0 {
            return false;
        }
        let backlog_ratio = self.backlog_at_end as f64 / self.injected as f64;
        backlog_ratio > 0.10 || self.delivery_ratio() < 0.75
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats() -> SimulationStats {
        SimulationStats {
            cycles: 1000,
            active_nodes: 10,
            injected: 100,
            delivered: 90,
            completed_requests: 40,
            total_latency_cycles: 900,
            max_latency_cycles: 50,
            total_round_trip_cycles: 2000,
            total_hops: 270,
            network_energy_pj: 1000.0,
            dram_energy_pj: 500.0,
            in_flight_at_end: 10,
            backlog_at_end: 0,
            blocked_forwards: 5,
            dropped_packets: 0,
            link_down_events: 0,
            router_down_events: 0,
        }
    }

    #[test]
    fn derived_metrics() {
        let s = stats();
        assert!((s.average_latency_cycles() - 10.0).abs() < 1e-12);
        assert!((s.average_round_trip_cycles() - 50.0).abs() < 1e-12);
        assert!((s.average_hops() - 3.0).abs() < 1e-12);
        assert!((s.accepted_throughput(900) - 0.01).abs() < 1e-12);
        assert!((s.delivery_ratio() - 0.9).abs() < 1e-12);
        assert!((s.total_energy_pj() - 1500.0).abs() < 1e-12);
        assert!((s.energy_delay_product() - 75_000.0).abs() < 1e-9);
    }

    #[test]
    fn zero_division_guards() {
        let s = SimulationStats::default();
        assert_eq!(s.average_latency_cycles(), 0.0);
        assert_eq!(s.average_round_trip_cycles(), 0.0);
        assert_eq!(s.average_hops(), 0.0);
        assert_eq!(s.accepted_throughput(0), 0.0);
        assert_eq!(s.delivery_ratio(), 1.0);
        assert!(!s.is_saturated());
    }

    #[test]
    fn saturation_heuristic() {
        let mut s = stats();
        assert!(!s.is_saturated());
        s.backlog_at_end = 20;
        assert!(s.is_saturated());
        s.backlog_at_end = 0;
        s.delivered = 50;
        assert!(s.is_saturated());
    }

    #[test]
    fn fault_counters_default_to_zero() {
        let s = SimulationStats::default();
        assert_eq!(s.dropped_packets, 0);
        assert_eq!(s.fault_events(), 0);
        let mut f = stats();
        f.link_down_events = 3;
        f.router_down_events = 2;
        assert_eq!(f.fault_events(), 5);
    }

    #[test]
    fn edp_falls_back_to_network_latency() {
        let mut s = stats();
        s.completed_requests = 0;
        assert!((s.energy_delay_product() - 15_000.0).abs() < 1e-9);
    }
}
