//! Shard planning: which worker owns which router, and which routers a
//! router must wait for inside a cycle.
//!
//! # Why sharding a cycle-level simulator is delicate
//!
//! The simulator's per-cycle routing phase is *not* embarrassingly parallel:
//! when router `m` makes a forwarding decision it reads the credit counters
//! of its neighbours' input queues (for the adaptive load estimate and the
//! credit check), and those counters are decremented by the neighbours' own
//! queue pops *in the same cycle*. In the reference serial loop routers run
//! in id order, so router `m` observes the pops of every neighbour `x < m`
//! and none of any neighbour `x > m`.
//!
//! The saving grace is locality: a credit counter for the link `m → x` is
//! written only by `m` (credit take on forward) and by `x` (credit return on
//! pop), and read only by `m`. Nothing else in the routing phase couples two
//! routers — queues are per-router, link traversals take at least one cycle,
//! and all remaining side effects (statistics, in-flight hand-off, DRAM
//! service and reply creation) are deferred to a serial commit. So the
//! serial loop's data dependencies form a DAG: **router `m` depends exactly
//! on its smaller-id neighbours**.
//!
//! [`ShardPlan`] turns that DAG into a schedule. Routers are dealt
//! round-robin to `count` shards (`owner = id % count`), each shard processes
//! its members in increasing id order, and before processing router `m` a
//! shard waits (on a per-router epoch) for `m`'s smaller-id neighbours owned
//! by *other* shards. Any execution respecting those waits makes every router
//! observe exactly the state it would have seen in the serial loop — which is
//! why results are bit-identical for every shard count, including 1.
//!
//! Round-robin ownership matters: contiguous ranges would make shard `k`'s
//! first router wait on ids scattered through shard `k-1`'s whole range,
//! serialising the phase into a pipeline. With interleaved ownership all
//! shards advance through the id space in lockstep and waits are rare.

use sf_types::SimulationConfig;

/// Environment variable overriding the shard count (`0`/unset = auto).
pub const SHARDS_ENV: &str = "SF_SIM_SHARDS";

/// Below this many active routers automatic selection stays serial: a cycle
/// of a small network is microseconds, and two barrier crossings per cycle
/// would cost more than the sharded work saves.
pub const AUTO_MIN_NODES: usize = 192;

/// Automatic selection aims for at least this many routers per shard so the
/// per-cycle synchronisation amortises.
pub const AUTO_NODES_PER_SHARD: usize = 96;

/// Resolves the shard count for a simulation over `active_nodes` routers.
///
/// Priority: an explicit `config.shards`, then the [`SHARDS_ENV`] environment
/// variable, then the automatic policy — serial below [`AUTO_MIN_NODES`]
/// routers, otherwise the intra-job share of the process core budget (see
/// `sf_harness::budget`), capped so each shard keeps at least
/// [`AUTO_NODES_PER_SHARD`] routers. The result is always in
/// `1..=active_nodes` and never affects simulation output, only wall-clock
/// time.
#[must_use]
pub fn resolve_shard_count(config: &SimulationConfig, active_nodes: usize) -> usize {
    let explicit = if config.shards > 0 {
        Some(config.shards)
    } else {
        env_shard_override()
    };
    let count = explicit.unwrap_or_else(|| {
        if active_nodes < AUTO_MIN_NODES {
            1
        } else {
            sf_harness::budget::intra_job_share().min(active_nodes / AUTO_NODES_PER_SHARD)
        }
    });
    count.clamp(1, active_nodes.max(1))
}

/// The [`SHARDS_ENV`] override, if set to a positive integer — the same
/// lookup [`resolve_shard_count`] performs, exposed so callers that describe
/// the policy (e.g. the bench binaries' announcement) cannot drift from it.
#[must_use]
pub fn env_shard_override() -> Option<usize> {
    sf_harness::budget::env_positive_usize(SHARDS_ENV)
}

/// The static schedule of one sharded simulation: ownership plus per-router
/// wait lists.
#[derive(Debug, Clone)]
pub struct ShardPlan {
    count: usize,
    /// `members[s]` — router ids owned by shard `s`, in increasing order.
    members: Vec<Vec<usize>>,
    /// `wait_for[m]` — smaller-id routers `m` must wait for before being
    /// processed: active graph neighbours (in either link direction) owned by
    /// a different shard. Same-shard predecessors need no wait — the owner
    /// processes its members in id order.
    wait_for: Vec<Vec<usize>>,
}

impl ShardPlan {
    /// Builds the schedule for `count` shards over a network given each
    /// router's active-neighbour lists and activity flags.
    ///
    /// `adjacency[m]` lists the routers `m` can forward to. Dependencies are
    /// added for both directions of every link so the plan stays correct even
    /// for asymmetric (uni-directional) graphs, where `x`'s credit state can
    /// depend on `m` without `m` appearing in `adjacency[x]`.
    #[must_use]
    pub fn new(adjacency: &[Vec<sf_types::NodeId>], active: &[bool], count: usize) -> Self {
        let n = adjacency.len();
        let count = count.clamp(1, n.max(1));
        let mut members = vec![Vec::new(); count];
        for m in 0..n {
            members[m % count].push(m);
        }
        let mut wait_for = vec![Vec::new(); n];
        if count > 1 {
            for (m, neighbors) in adjacency.iter().enumerate() {
                if !active[m] {
                    continue;
                }
                for x in neighbors {
                    let x = x.index();
                    if !active[x] {
                        continue;
                    }
                    // The larger endpoint waits for the smaller one when they
                    // live in different shards.
                    let (small, large) = if x < m { (x, m) } else { (m, x) };
                    if small % count != large % count {
                        wait_for[large].push(small);
                    }
                }
            }
            for list in &mut wait_for {
                list.sort_unstable();
                list.dedup();
            }
        }
        Self {
            count,
            members,
            wait_for,
        }
    }

    /// Number of shards.
    #[must_use]
    pub fn count(&self) -> usize {
        self.count
    }

    /// Router ids owned by shard `s`, in increasing order.
    #[must_use]
    pub fn members(&self, s: usize) -> &[usize] {
        &self.members[s]
    }

    /// Where router `m` lives: `(owning shard, slot within that shard)`.
    ///
    /// This is the single source of truth for the ownership mapping — all
    /// kernel state indexed per shard must go through it, so a change of
    /// assignment strategy cannot silently desynchronise the call sites.
    #[must_use]
    pub fn locate(&self, m: usize) -> (usize, usize) {
        (m % self.count, m / self.count)
    }

    /// Smaller-id routers `m` must wait for before its routing step.
    #[must_use]
    pub fn wait_for(&self, m: usize) -> &[usize] {
        &self.wait_for[m]
    }

    /// Every router's location in increasing id order, as
    /// `(router id, owning shard, slot within that shard)` — the iteration
    /// shape of every id-ordered walk over sharded state (stat merging,
    /// memory stats, telemetry sampling).
    pub fn locations(&self) -> impl Iterator<Item = (usize, usize, usize)> + '_ {
        (0..self.wait_for.len()).map(|m| {
            let (shard, slot) = self.locate(m);
            (m, shard, slot)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sf_types::NodeId;

    fn ring(n: usize) -> Vec<Vec<NodeId>> {
        (0..n)
            .map(|i| vec![NodeId::new((i + 1) % n), NodeId::new((i + n - 1) % n)])
            .collect()
    }

    #[test]
    fn ownership_is_round_robin_and_ordered() {
        let adj = ring(10);
        let plan = ShardPlan::new(&adj, &[true; 10], 3);
        assert_eq!(plan.count(), 3);
        assert_eq!(plan.members(0), &[0, 3, 6, 9]);
        assert_eq!(plan.members(1), &[1, 4, 7]);
        assert_eq!(plan.members(2), &[2, 5, 8]);
    }

    #[test]
    fn waits_cover_cross_shard_smaller_neighbors_only() {
        let adj = ring(6);
        let plan = ShardPlan::new(&adj, &[true; 6], 2);
        // Node 3's ring neighbours are 2 and 4; it waits only for the smaller
        // one (2), which lives in the other shard (2 % 2 == 0 != 3 % 2).
        assert_eq!(plan.wait_for(3), &[2]);
        // Node 2's smaller neighbour is 1 (other shard); 3 is larger.
        assert_eq!(plan.wait_for(2), &[1]);
        // Node 0 has no smaller neighbours at all.
        assert!(plan.wait_for(0).is_empty());
        // Node 5 neighbours 4 (other shard) and 0 (wrap, other... 0 % 2 == 0,
        // 5 % 2 == 1): both smaller and cross-shard.
        assert_eq!(plan.wait_for(5), &[0, 4]);
    }

    #[test]
    fn serial_plan_has_no_waits() {
        let adj = ring(8);
        let plan = ShardPlan::new(&adj, &[true; 8], 1);
        assert_eq!(plan.count(), 1);
        for m in 0..8 {
            assert!(plan.wait_for(m).is_empty());
        }
        assert_eq!(plan.members(0).len(), 8);
    }

    #[test]
    fn inactive_nodes_create_no_dependencies() {
        let adj = ring(6);
        let mut active = vec![true; 6];
        active[2] = false;
        let plan = ShardPlan::new(&adj, &active, 2);
        // 3's only smaller neighbour (2) is inactive: no wait.
        assert!(plan.wait_for(3).is_empty());
    }

    #[test]
    fn shard_count_is_clamped() {
        let adj = ring(4);
        let plan = ShardPlan::new(&adj, &[true; 4], 99);
        assert_eq!(plan.count(), 4);
        let config = SimulationConfig {
            shards: 200,
            ..SimulationConfig::default()
        };
        assert_eq!(resolve_shard_count(&config, 64), 64);
        let serial = SimulationConfig {
            shards: 1,
            ..SimulationConfig::default()
        };
        assert_eq!(resolve_shard_count(&serial, 1_000), 1);
    }

    #[test]
    fn auto_policy_keeps_small_networks_serial() {
        // Explicit shards take priority; with shards = 0 and no env override
        // a small network resolves to 1 regardless of the machine.
        let auto = SimulationConfig {
            shards: 0,
            ..SimulationConfig::default()
        };
        if std::env::var(SHARDS_ENV).is_err() {
            assert_eq!(resolve_shard_count(&auto, AUTO_MIN_NODES - 1), 1);
        }
    }
}
